//! YCSB request-key generators.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// FNV-1a 64-bit hash, used by YCSB's scrambled zipfian generator.
pub fn fnv1a_64(mut x: u64) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(PRIME);
        x >>= 8;
    }
    h
}

/// A source of record numbers in `[0, item_count)`.
pub trait Generator: Send {
    /// Next record number.
    fn next(&mut self) -> u64;
    /// Inform the generator that the item space grew (inserts).
    fn set_item_count(&mut self, n: u64);
}

/// Uniform distribution over the item space.
pub struct UniformGenerator {
    n: u64,
    rng: SmallRng,
}

impl UniformGenerator {
    /// Uniform over `[0, n)`.
    pub fn new(n: u64, seed: u64) -> UniformGenerator {
        UniformGenerator {
            n: n.max(1),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Generator for UniformGenerator {
    fn next(&mut self) -> u64 {
        self.rng.random_range(0..self.n)
    }
    fn set_item_count(&mut self, n: u64) {
        self.n = n.max(1);
    }
}

/// The YCSB zipfian generator (Gray et al.'s algorithm), skewed toward low
/// record numbers with the standard constant θ = 0.99.
pub struct ZipfianGenerator {
    items: u64,
    base: u64,
    theta: f64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
    rng: SmallRng,
}

impl ZipfianGenerator {
    const THETA: f64 = 0.99;

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for the item counts this harness uses (scaled datasets).
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Zipfian over `[0, n)`.
    pub fn new(n: u64, seed: u64) -> ZipfianGenerator {
        let n = n.max(1);
        let theta = Self::THETA;
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        ZipfianGenerator {
            items: n,
            base: 0,
            theta,
            zeta_n,
            zeta2,
            alpha,
            eta,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return self.base;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return self.base + 1;
        }
        self.base
            + ((self.items as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
    }
}

impl Generator for ZipfianGenerator {
    fn next(&mut self) -> u64 {
        self.sample().min(self.base + self.items - 1)
    }

    fn set_item_count(&mut self, n: u64) {
        // Incremental zeta, as YCSB computes it: growth extends the sum
        // term by term (O(delta)); shrinking recomputes.
        let n = n.max(1);
        if n == self.items {
            return;
        }
        if n > self.items {
            for i in self.items + 1..=n {
                self.zeta_n += 1.0 / (i as f64).powf(self.theta);
            }
        } else {
            self.zeta_n = Self::zeta(n, self.theta);
        }
        self.items = n;
        self.eta = (1.0 - (2.0 / n as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2 / self.zeta_n);
    }
}

/// Scrambled zipfian: zipfian popularity spread over the key space by
/// hashing, as YCSB does for its default `zipfian` request distribution.
pub struct ScrambledZipfianGenerator {
    inner: ZipfianGenerator,
    n: u64,
}

impl ScrambledZipfianGenerator {
    /// Scrambled zipfian over `[0, n)`.
    pub fn new(n: u64, seed: u64) -> ScrambledZipfianGenerator {
        ScrambledZipfianGenerator {
            inner: ZipfianGenerator::new(n, seed),
            n: n.max(1),
        }
    }
}

impl Generator for ScrambledZipfianGenerator {
    fn next(&mut self) -> u64 {
        fnv1a_64(self.inner.next()) % self.n
    }
    fn set_item_count(&mut self, n: u64) {
        self.n = n.max(1);
        self.inner.set_item_count(n);
    }
}

/// The `latest` distribution: recency-skewed — most requests target
/// recently inserted records (used by workload D).
pub struct LatestGenerator {
    inner: ZipfianGenerator,
    n: u64,
}

impl LatestGenerator {
    /// Latest-skewed over `[0, n)`.
    pub fn new(n: u64, seed: u64) -> LatestGenerator {
        LatestGenerator {
            inner: ZipfianGenerator::new(n, seed),
            n: n.max(1),
        }
    }
}

impl Generator for LatestGenerator {
    fn next(&mut self) -> u64 {
        let off = self.inner.next();
        self.n - 1 - off.min(self.n - 1)
    }
    fn set_item_count(&mut self, n: u64) {
        self.n = n.max(1);
        self.inner.set_item_count(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut g = UniformGenerator::new(10, 1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[g.next() as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn zipfian_skews_to_head() {
        let mut g = ZipfianGenerator::new(1000, 42);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[g.next() as usize] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[500..510].iter().sum();
        assert!(
            head > tail * 20,
            "zipfian head ({head}) must dominate tail ({tail})"
        );
        // Popularity is monotonically roughly decreasing.
        assert!(counts[0] > counts[100]);
        assert!(counts[1] > counts[500]);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let mut g = ScrambledZipfianGenerator::new(1000, 7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[g.next() as usize] += 1;
        }
        // Still skewed: some key is much hotter than the median...
        let max = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[500];
        assert!(max > median * 10, "max {max} median {median}");
        // ...but the hottest keys are not all clustered at the low end.
        let head: u32 = counts[..10].iter().sum();
        assert!(head < 50_000, "scrambling must spread the head");
    }

    #[test]
    fn latest_prefers_recent() {
        let mut g = LatestGenerator::new(1000, 3);
        let mut newest = 0u32;
        let mut oldest = 0u32;
        for _ in 0..100_000 {
            let k = g.next();
            if k >= 990 {
                newest += 1;
            }
            if k < 10 {
                oldest += 1;
            }
        }
        assert!(newest > oldest * 20, "latest skews to recent: {newest} vs {oldest}");
    }

    #[test]
    fn generators_track_growth() {
        let mut g = LatestGenerator::new(10, 3);
        g.set_item_count(1_000_000);
        let mut max = 0;
        for _ in 0..10_000 {
            max = max.max(g.next());
        }
        assert!(max > 500_000, "grew item space (max {max})");
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a_64(0), fnv1a_64(0));
        assert_ne!(fnv1a_64(1), fnv1a_64(2));
    }

    #[test]
    fn zipfian_bounds() {
        let mut g = ZipfianGenerator::new(100, 5);
        for _ in 0..10_000 {
            assert!(g.next() < 100);
        }
    }
}
