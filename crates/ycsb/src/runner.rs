//! The YCSB client runner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::generator::{Generator, LatestGenerator, ScrambledZipfianGenerator};
use crate::Histogram;
use crate::workload::{RequestDistribution, WorkloadSpec};
use crate::{field_value, record_key};

/// The operations a store adapter must serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Fetch a record (all fields when `read_all_fields`).
    Read,
    /// Rewrite one field of a record.
    Update,
    /// Insert a fresh record.
    Insert,
    /// Read, modify one field, write back.
    Rmw,
}

/// A per-thread connection to the store under test.
///
/// Return `false` for an operation the store failed to apply (missing key
/// on a read is still `true`-worthy: YCSB counts it as a completed
/// operation).
pub trait KvClient: Send {
    /// Read `key` (all fields). Implementations should materialize the
    /// field values (that is where marshalling costs surface).
    fn read(&mut self, key: &str) -> bool;
    /// Overwrite field `field` of `key` with `value`.
    fn update(&mut self, key: &str, field: usize, value: &[u8]) -> bool;
    /// Insert a record with the given field values.
    fn insert(&mut self, key: &str, fields: &[Vec<u8>]) -> bool;
    /// Read `key`, then overwrite field `field` with `value`.
    fn rmw(&mut self, key: &str, field: usize, value: &[u8]) -> bool;
}

/// Outcome of a run: wall time, throughput and latency distributions.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock completion time.
    pub completion: Duration,
    /// Operations executed.
    pub ops: u64,
    /// Operations per second.
    pub throughput: f64,
    /// All operations.
    pub total: Histogram,
    /// Reads only.
    pub reads: Histogram,
    /// Updates only.
    pub updates: Histogram,
    /// Inserts only.
    pub inserts: Histogram,
    /// Read-modify-writes only.
    pub rmws: Histogram,
}

impl RunReport {
    fn empty() -> RunReport {
        RunReport {
            completion: Duration::ZERO,
            ops: 0,
            throughput: 0.0,
            total: Histogram::new(),
            reads: Histogram::new(),
            updates: Histogram::new(),
            inserts: Histogram::new(),
            rmws: Histogram::new(),
        }
    }

    fn merge(&mut self, other: &RunReport) {
        self.ops += other.ops;
        self.total.merge(&other.total);
        self.reads.merge(&other.reads);
        self.updates.merge(&other.updates);
        self.inserts.merge(&other.inserts);
        self.rmws.merge(&other.rmws);
    }
}

fn make_generator(spec: &WorkloadSpec, items: u64, seed: u64) -> Box<dyn Generator> {
    match spec.distribution {
        RequestDistribution::Zipfian => Box::new(ScrambledZipfianGenerator::new(items, seed)),
        RequestDistribution::Latest => Box::new(LatestGenerator::new(items, seed)),
        RequestDistribution::Uniform => Box::new(crate::UniformGenerator::new(items, seed)),
    }
}

/// Load phase: insert `spec.record_count` records through `spec.threads`
/// clients. Returns the wall time.
pub fn run_load<C, F>(spec: &WorkloadSpec, factory: F) -> Duration
where
    C: KvClient,
    F: Fn(usize) -> C + Sync,
{
    let start = Instant::now();
    let threads = spec.threads.max(1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let spec = spec.clone();
            let factory = &factory;
            s.spawn(move || {
                let mut client = factory(t);
                let mut rng = SmallRng::seed_from_u64(spec.seed ^ (t as u64) << 32);
                let mut n = t as u64;
                while n < spec.record_count {
                    let fields: Vec<Vec<u8>> = (0..spec.field_count)
                        .map(|_| field_value(&mut rng, spec.field_len))
                        .collect();
                    client.insert(&record_key(n), &fields);
                    n += threads as u64;
                }
            });
        }
    });
    start.elapsed()
}

/// Run phase: execute `spec.op_count` operations across `spec.threads`
/// clients with the workload's operation mix and request distribution.
pub fn run_workload<C, F>(spec: &WorkloadSpec, factory: F) -> RunReport
where
    C: KvClient,
    F: Fn(usize) -> C + Sync,
{
    let threads = spec.threads.max(1);
    let insert_cursor = AtomicU64::new(spec.record_count);
    let start = Instant::now();
    let mut report = RunReport::empty();
    let partials = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let spec = spec.clone();
                let factory = &factory;
                let insert_cursor = &insert_cursor;
                s.spawn(move || {
                    let mut client = factory(t);
                    let mut local = RunReport::empty();
                    let mut rng = SmallRng::seed_from_u64(spec.seed ^ (0xabcd + t as u64));
                    let mut gen = make_generator(&spec, spec.record_count, spec.seed + t as u64);
                    let my_ops = spec.op_count / threads as u64
                        + u64::from((spec.op_count % threads as u64) > t as u64);
                    for _ in 0..my_ops {
                        let dice: f64 = rng.random();
                        let kind = if dice < spec.read {
                            OpKind::Read
                        } else if dice < spec.read + spec.update {
                            OpKind::Update
                        } else if dice < spec.read + spec.update + spec.insert {
                            OpKind::Insert
                        } else {
                            OpKind::Rmw
                        };
                        let items = insert_cursor.load(Ordering::Relaxed);
                        gen.set_item_count(items);
                        // Keys and field payloads are generated *before*
                        // the latency clock starts: the RNG fill for a
                        // large field_len dwarfs the store op itself and
                        // belongs to the harness, not the histograms.
                        match kind {
                            OpKind::Read => {
                                let key = record_key(gen.next() % items);
                                let t0 = Instant::now();
                                client.read(&key);
                                let ns = t0.elapsed().as_nanos() as u64;
                                local.reads.record(ns);
                                local.total.record(ns);
                            }
                            OpKind::Update => {
                                let key = record_key(gen.next() % items);
                                let field = rng.random_range(0..spec.field_count);
                                let value = field_value(&mut rng, spec.field_len);
                                let t0 = Instant::now();
                                client.update(&key, field, &value);
                                let ns = t0.elapsed().as_nanos() as u64;
                                local.updates.record(ns);
                                local.total.record(ns);
                            }
                            OpKind::Insert => {
                                let n = insert_cursor.fetch_add(1, Ordering::Relaxed);
                                let key = record_key(n);
                                let fields: Vec<Vec<u8>> = (0..spec.field_count)
                                    .map(|_| field_value(&mut rng, spec.field_len))
                                    .collect();
                                let t0 = Instant::now();
                                client.insert(&key, &fields);
                                let ns = t0.elapsed().as_nanos() as u64;
                                local.inserts.record(ns);
                                local.total.record(ns);
                            }
                            OpKind::Rmw => {
                                let key = record_key(gen.next() % items);
                                let field = rng.random_range(0..spec.field_count);
                                let value = field_value(&mut rng, spec.field_len);
                                let t0 = Instant::now();
                                client.rmw(&key, field, &value);
                                let ns = t0.elapsed().as_nanos() as u64;
                                local.rmws.record(ns);
                                local.total.record(ns);
                            }
                        }
                        local.ops += 1;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ycsb worker thread panicked"))
            .collect::<Vec<_>>()
    });
    for p in &partials {
        report.merge(p);
    }
    report.completion = start.elapsed();
    report.throughput = report.ops as f64 / report.completion.as_secs_f64().max(1e-9);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    /// A trivially correct in-memory store for exercising the runner.
    #[derive(Clone, Default)]
    struct MemStore {
        data: Arc<Mutex<HashMap<String, Vec<Vec<u8>>>>>,
    }

    impl KvClient for MemStore {
        fn read(&mut self, key: &str) -> bool {
            self.data.lock().unwrap().get(key).is_some()
        }
        fn update(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
            match self.data.lock().unwrap().get_mut(key) {
                Some(f) if field < f.len() => {
                    f[field] = value.to_vec();
                    true
                }
                _ => false,
            }
        }
        fn insert(&mut self, key: &str, fields: &[Vec<u8>]) -> bool {
            self.data
                .lock()
                .unwrap()
                .insert(key.to_string(), fields.to_vec());
            true
        }
        fn rmw(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
            let mut d = self.data.lock().unwrap();
            match d.get(key).cloned() {
                Some(mut f) if field < f.len() => {
                    f[field] = value.to_vec();
                    d.insert(key.to_string(), f);
                    true
                }
                _ => false,
            }
        }
    }

    #[test]
    fn load_inserts_every_record() {
        let store = MemStore::default();
        let spec = Workload::A.spec(500, 0);
        run_load(&spec, |_| store.clone());
        assert_eq!(store.data.lock().unwrap().len(), 500);
        assert!(store.data.lock().unwrap().contains_key(&record_key(0)));
        assert!(store.data.lock().unwrap().contains_key(&record_key(499)));
    }

    #[test]
    fn multithreaded_load_covers_range() {
        let store = MemStore::default();
        let mut spec = Workload::A.spec(501, 0);
        spec.threads = 4;
        run_load(&spec, |_| store.clone());
        assert_eq!(store.data.lock().unwrap().len(), 501);
    }

    #[test]
    fn run_executes_requested_ops() {
        let store = MemStore::default();
        let spec = Workload::A.spec(100, 1000);
        run_load(&spec, |_| store.clone());
        let report = run_workload(&spec, |_| store.clone());
        assert_eq!(report.ops, 1000);
        assert_eq!(report.total.count(), 1000);
        // A is 50/50 read/update: both present, no inserts or rmws.
        assert!(report.reads.count() > 300);
        assert!(report.updates.count() > 300);
        assert_eq!(report.inserts.count(), 0);
        assert_eq!(report.rmws.count(), 0);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn workload_d_grows_keyspace() {
        let store = MemStore::default();
        let spec = Workload::D.spec(100, 2000);
        run_load(&spec, |_| store.clone());
        let report = run_workload(&spec, |_| store.clone());
        assert!(report.inserts.count() > 0, "D performs inserts");
        assert!(store.data.lock().unwrap().len() > 100);
    }

    #[test]
    fn workload_f_performs_rmw() {
        let store = MemStore::default();
        let spec = Workload::F.spec(100, 1000);
        run_load(&spec, |_| store.clone());
        let report = run_workload(&spec, |_| store.clone());
        assert!(report.rmws.count() > 300);
    }

    /// A client whose every op is free. Any latency the histograms see
    /// is pure harness overhead, so with a huge `field_len` the insert
    /// median stays tiny only if value generation happens *outside* the
    /// timed region.
    struct NoopClient;

    impl KvClient for NoopClient {
        fn read(&mut self, _key: &str) -> bool {
            true
        }
        fn update(&mut self, _key: &str, _field: usize, _value: &[u8]) -> bool {
            true
        }
        fn insert(&mut self, _key: &str, _fields: &[Vec<u8>]) -> bool {
            true
        }
        fn rmw(&mut self, _key: &str, _field: usize, _value: &[u8]) -> bool {
            true
        }
    }

    #[test]
    fn value_generation_is_not_timed() {
        let mut spec = Workload::A.spec(64, 60);
        spec.read = 0.5;
        spec.update = 0.0;
        spec.insert = 0.5;
        spec.rmw = 0.0;
        spec.field_count = 2;
        spec.field_len = 1 << 21; // 2 MiB per field: generation >> no-op store
        spec.threads = 1;
        let report = run_workload(&spec, |_| NoopClient);
        assert!(report.inserts.count() > 10);
        let median = report.inserts.quantile(0.5);
        assert!(
            median < 200_000,
            "insert median {median} ns: 2 MiB value generation leaked into the timed region"
        );
    }

    #[test]
    fn op_split_across_threads_is_exact() {
        let store = MemStore::default();
        let mut spec = Workload::C.spec(50, 1001);
        spec.threads = 8;
        run_load(&spec, |_| store.clone());
        let report = run_workload(&spec, |_| store.clone());
        assert_eq!(report.ops, 1001);
    }
}
