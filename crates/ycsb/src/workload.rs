//! The YCSB core workload definitions.

/// Request-key distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestDistribution {
    /// Scrambled zipfian (YCSB's default `zipfian`).
    Zipfian,
    /// Recency-skewed (workload D).
    Latest,
    /// Uniform.
    Uniform,
}

/// The standard workloads (E omitted — the paper skips it because
/// Infinispan only exposes scans through JPQL, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Update heavy: 50 % read, 50 % update, zipfian.
    A,
    /// Read mostly: 95 % read, 5 % update, zipfian.
    B,
    /// Read only, zipfian.
    C,
    /// Read latest: 95 % read, 5 % insert, latest.
    D,
    /// Read-modify-write: 50 % read, 50 % RMW, zipfian.
    F,
}

impl Workload {
    /// All workloads the paper evaluates, in Figure 7 order.
    pub const ALL: [Workload; 5] = [Workload::A, Workload::B, Workload::C, Workload::D, Workload::F];

    /// One-letter label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::B => "B",
            Workload::C => "C",
            Workload::D => "D",
            Workload::F => "F",
        }
    }

    /// Parse a one-letter label.
    pub fn parse(s: &str) -> Option<Workload> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Some(Workload::A),
            "B" => Some(Workload::B),
            "C" => Some(Workload::C),
            "D" => Some(Workload::D),
            "F" => Some(Workload::F),
            _ => None,
        }
    }

    /// The operation mix and distribution of this workload.
    pub fn spec(&self, record_count: u64, op_count: u64) -> WorkloadSpec {
        let base = WorkloadSpec {
            record_count,
            op_count,
            field_count: 10,
            field_len: 100,
            read_all_fields: true,
            threads: 1,
            seed: 0x9e3779b97f4a7c15,
            read: 0.0,
            update: 0.0,
            insert: 0.0,
            rmw: 0.0,
            distribution: RequestDistribution::Zipfian,
        };
        match self {
            Workload::A => WorkloadSpec {
                read: 0.5,
                update: 0.5,
                ..base
            },
            Workload::B => WorkloadSpec {
                read: 0.95,
                update: 0.05,
                ..base
            },
            Workload::C => WorkloadSpec {
                read: 1.0,
                ..base
            },
            Workload::D => WorkloadSpec {
                read: 0.95,
                insert: 0.05,
                distribution: RequestDistribution::Latest,
                ..base
            },
            Workload::F => WorkloadSpec {
                read: 0.5,
                rmw: 0.5,
                ..base
            },
        }
    }
}

/// Fully-resolved workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Records loaded before the run.
    pub record_count: u64,
    /// Operations executed during the run (across all threads).
    pub op_count: u64,
    /// Fields per record (paper default: 10).
    pub field_count: usize,
    /// Bytes per field (paper default: 100).
    pub field_len: usize,
    /// Reads fetch every field (YCSB default).
    pub read_all_fields: bool,
    /// Client threads (paper default: sequential).
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Proportion of reads.
    pub read: f64,
    /// Proportion of whole-record updates (one random field rewritten).
    pub update: f64,
    /// Proportion of inserts.
    pub insert: f64,
    /// Proportion of read-modify-writes.
    pub rmw: f64,
    /// Request-key distribution.
    pub distribution: RequestDistribution,
}

impl WorkloadSpec {
    /// Total record bytes (excluding keys and metadata).
    pub fn dataset_bytes(&self) -> u64 {
        self.record_count * (self.field_count * self.field_len) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_one() {
        for w in Workload::ALL {
            let s = w.spec(1000, 1000);
            let sum = s.read + s.update + s.insert + s.rmw;
            assert!((sum - 1.0).abs() < 1e-9, "workload {w:?} sums to {sum}");
        }
    }

    #[test]
    fn labels_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.label()), Some(w));
        }
        assert_eq!(Workload::parse("E"), None);
        assert_eq!(Workload::parse("a"), Some(Workload::A));
    }

    #[test]
    fn d_uses_latest() {
        assert_eq!(
            Workload::D.spec(1, 1).distribution,
            RequestDistribution::Latest
        );
        assert_eq!(
            Workload::A.spec(1, 1).distribution,
            RequestDistribution::Zipfian
        );
    }

    #[test]
    fn dataset_bytes() {
        let s = Workload::A.spec(1000, 1);
        assert_eq!(s.dataset_bytes(), 1000 * 1000);
    }
}
