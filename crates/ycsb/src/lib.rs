//! # jnvm-ycsb — a reimplementation of the Yahoo! Cloud Serving Benchmark
//!
//! Provides the pieces of YCSB 0.18 the paper's evaluation uses (§5.2):
//!
//! * the standard **workloads A–F** (E excluded, as in the paper) with
//!   their operation mixes and request distributions,
//! * the **zipfian**, **scrambled zipfian**, **latest** and **uniform**
//!   request generators,
//! * a multi-threaded **runner** that drives any store implementing
//!   [`KvClient`], recording per-operation latency into log-bucketed
//!   histograms and reporting throughput, completion time and tail
//!   percentiles.
//!
//! Default parameters mirror the paper: 10 fields of 100 B per record,
//! zipfian/latest request patterns, sequential (single-threaded) clients
//! unless a thread count is given. Record counts are scaled down by the
//! harness flags (EXPERIMENTS.md records the scale in use).

mod generator;
mod runner;
mod workload;

pub use generator::{
    fnv1a_64, Generator, LatestGenerator, ScrambledZipfianGenerator, UniformGenerator,
    ZipfianGenerator,
};
// The histogram moved down the crate graph into `jnvm-obs` (the metrics
// registry needs it below `jnvm-pmem`); re-exported here so runner users
// keep their import paths.
pub use jnvm_obs::{Histogram, HistogramSummary};
pub use runner::{run_load, run_workload, KvClient, OpKind, RunReport};
pub use workload::{RequestDistribution, Workload, WorkloadSpec};

/// Format a YCSB record key from its number ("user" + zero-padded id).
pub fn record_key(num: u64) -> String {
    format!("user{num:012}")
}

/// Field name `i` ("field0", "field1"...).
pub fn field_name(i: usize) -> String {
    format!("field{i}")
}

/// Deterministically generate a field value of `len` bytes.
pub fn field_value(rng: &mut impl rand::RngExt, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}
