//! The managed object arena the simulated collectors trace.

/// Index of an object in the arena.
pub type ObjId = u32;

/// Sentinel for "no object".
pub const NIL: ObjId = u32::MAX;

/// Handle on a GC root slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootId(pub(crate) u32);

#[derive(Debug)]
pub(crate) struct Obj {
    pub size: u32,
    pub marked: bool,
    /// 0 = young, 1 = old (used by the generational collector).
    pub generation: u8,
    pub live: bool,
    pub refs: Vec<ObjId>,
}

/// Occupancy counters of a [`ManagedHeap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStatsSnapshot {
    /// Objects currently allocated (live + unreclaimed garbage).
    pub objects: u64,
    /// Bytes currently allocated.
    pub bytes: u64,
    /// Bytes allocated since the last collection.
    pub bytes_since_gc: u64,
    /// Bytes allocated over the heap's lifetime.
    pub total_allocated: u64,
    /// Root slots in use.
    pub roots: u64,
}

/// A managed heap: objects with sizes and reference lists, root slots, and
/// the bookkeeping collectors need. Allocation is arena-based; reclamation
/// only ever happens through a collector.
#[derive(Debug, Default)]
pub struct ManagedHeap {
    pub(crate) objs: Vec<Obj>,
    pub(crate) free: Vec<ObjId>,
    pub(crate) roots: Vec<ObjId>,
    root_free: Vec<u32>,
    pub(crate) bytes: u64,
    pub(crate) bytes_since_gc: u64,
    total_allocated: u64,
    live_roots: u64,
}

impl ManagedHeap {
    /// An empty heap.
    pub fn new() -> ManagedHeap {
        ManagedHeap::default()
    }

    /// Allocate an object of `size` bytes referencing `refs`.
    pub fn alloc(&mut self, size: u32, refs: Vec<ObjId>) -> ObjId {
        self.bytes += size as u64;
        self.bytes_since_gc += size as u64;
        self.total_allocated += size as u64;
        let obj = Obj {
            size,
            marked: false,
            generation: 0,
            live: true,
            refs,
        };
        match self.free.pop() {
            Some(id) => {
                self.objs[id as usize] = obj;
                id
            }
            None => {
                self.objs.push(obj);
                (self.objs.len() - 1) as ObjId
            }
        }
    }

    /// Overwrite reference slot `slot` of `obj`. Collectors with barriers
    /// wrap this ([`crate::GenerationalGc::write_ref`]).
    pub fn set_ref(&mut self, obj: ObjId, slot: usize, target: ObjId) {
        let o = &mut self.objs[obj as usize];
        debug_assert!(o.live, "write to reclaimed object {obj}");
        if slot >= o.refs.len() {
            o.refs.resize(slot + 1, NIL);
        }
        o.refs[slot] = target;
    }

    /// Read reference slot `slot` of `obj`.
    pub fn get_ref(&self, obj: ObjId, slot: usize) -> ObjId {
        self.objs[obj as usize].refs.get(slot).copied().unwrap_or(NIL)
    }

    /// Whether `obj` is currently allocated.
    pub fn is_live(&self, obj: ObjId) -> bool {
        (obj as usize) < self.objs.len() && self.objs[obj as usize].live
    }

    /// Pin `obj` as a GC root; returns the slot handle.
    pub fn add_root(&mut self, obj: ObjId) -> RootId {
        self.live_roots += 1;
        match self.root_free.pop() {
            Some(i) => {
                self.roots[i as usize] = obj;
                RootId(i)
            }
            None => {
                self.roots.push(obj);
                RootId((self.roots.len() - 1) as u32)
            }
        }
    }

    /// Release a root slot.
    pub fn remove_root(&mut self, root: RootId) {
        self.roots[root.0 as usize] = NIL;
        self.root_free.push(root.0);
        self.live_roots -= 1;
    }

    /// Re-point a root slot at a different object.
    pub fn set_root(&mut self, root: RootId, obj: ObjId) {
        self.roots[root.0 as usize] = obj;
    }

    /// Current occupancy.
    pub fn stats(&self) -> HeapStatsSnapshot {
        HeapStatsSnapshot {
            objects: (self.objs.len() - self.free.len()) as u64,
            bytes: self.bytes,
            bytes_since_gc: self.bytes_since_gc,
            total_allocated: self.total_allocated,
            roots: self.live_roots,
        }
    }

    pub(crate) fn reclaim(&mut self, id: ObjId) {
        let o = &mut self.objs[id as usize];
        debug_assert!(o.live);
        o.live = false;
        self.bytes -= o.size as u64;
        o.refs = Vec::new();
        self.free.push(id);
    }

    /// Mark from the roots following `filter` (a generation gate); returns
    /// the number of objects marked. Marks are left set — the caller
    /// sweeps and clears.
    pub(crate) fn mark<F: Fn(&Obj) -> bool>(&mut self, extra_roots: &[ObjId], filter: F) -> u64 {
        let mut stack: Vec<ObjId> = self
            .roots
            .iter()
            .chain(extra_roots.iter())
            .copied()
            .filter(|r| *r != NIL)
            .collect();
        let mut marked = 0;
        while let Some(id) = stack.pop() {
            if id == NIL {
                continue;
            }
            let o = &mut self.objs[id as usize];
            if !o.live || o.marked || !filter(o) {
                continue;
            }
            o.marked = true;
            marked += 1;
            // Children: push a snapshot (mark-bits make re-push harmless).
            let refs = o.refs.clone();
            stack.extend(refs);
        }
        marked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roots() {
        let mut h = ManagedHeap::new();
        let a = h.alloc(100, vec![]);
        let b = h.alloc(50, vec![a]);
        let r = h.add_root(b);
        let s = h.stats();
        assert_eq!(s.objects, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.roots, 1);
        assert_eq!(h.get_ref(b, 0), a);
        h.remove_root(r);
        assert_eq!(h.stats().roots, 0);
    }

    #[test]
    fn set_ref_grows_slots() {
        let mut h = ManagedHeap::new();
        let a = h.alloc(8, vec![]);
        let b = h.alloc(8, vec![]);
        h.set_ref(a, 3, b);
        assert_eq!(h.get_ref(a, 3), b);
        assert_eq!(h.get_ref(a, 0), NIL);
        assert_eq!(h.get_ref(a, 10), NIL);
    }

    #[test]
    fn root_slot_reuse() {
        let mut h = ManagedHeap::new();
        let a = h.alloc(8, vec![]);
        let r1 = h.add_root(a);
        h.remove_root(r1);
        let r2 = h.add_root(a);
        assert_eq!(r1.0, r2.0, "slot recycled");
    }
}
