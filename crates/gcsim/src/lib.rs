//! # jnvm-gcsim — a managed-heap simulator with real tracing collectors
//!
//! The paper's motivation (§2.2) is quantitative: *running a garbage
//! collector over a persistent dataset costs CPU time proportional to the
//! live set, until GC dominates execution*. Rust has no runtime GC, so this
//! crate builds one — an object arena ([`ManagedHeap`]) plus two
//! collectors whose work is **real graph traversal over real objects**,
//! not a cost model:
//!
//! * [`TriColorGc`] — stop-the-world mark-sweep triggered every N allocated
//!   bytes, reproducing go-pmem's collector and its "collect every 10 GB"
//!   workaround (Figure 2),
//! * [`GenerationalGc`] — a young/old collector with a write barrier and
//!   remembered set, standing in for HotSpot G1 (young collections are
//!   cheap; old-generation collections traverse the whole live set and
//!   pause the application — the source of Figure 1's completion-time
//!   blow-up and latency tail).
//!
//! On top sit the two stores the paper measures:
//!
//! * [`RedisLikeStore`] — go-redis-pmem: every record lives in the managed
//!   (persistent) heap, so each GC pass visits the entire dataset,
//! * [`CachedFsStore`] — Infinispan-over-ext4: records live in a file
//!   system (modeled cost) with a volatile LRU cache of configurable
//!   ratio; the cache *is* the old-generation live set.
//!
//! Dataset sizes are scaled (default 1/100, the harness flags record the
//! factor); the claim under test is the *scaling law*, which survives
//! scaling by construction.

mod gen;
mod heap;
mod store;
mod tricolor;

pub use gen::{GenConfig, GenerationalGc};
pub use heap::{HeapStatsSnapshot, ManagedHeap, ObjId, RootId};
pub use store::{CachedFsStore, FsCost, RedisLikeStore};
pub use tricolor::{GcPass, TriColorGc};
