//! A generational stop-the-world collector with a write barrier and
//! remembered set — the HotSpot G1 stand-in behind Figure 1.
//!
//! G1's relevant behaviour for the paper's experiment is: frequent cheap
//! young collections (the marshalling garbage of a data store dies young),
//! plus old-generation passes whose cost is proportional to the old live
//! set — which, for Infinispan, is the volatile cache. Compaction and
//! region selection do not change that asymptotic, so this collector keeps
//! the generational structure and drops the region machinery (DESIGN.md
//! records the substitution).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::heap::{ManagedHeap, ObjId};
use crate::tricolor::GcPass;

/// Generational collector tuning.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Young-generation allocation budget per young collection.
    pub eden_bytes: u64,
    /// An old collection triggers when the old generation exceeds
    /// `factor × live bytes measured by the previous old collection`
    /// (an IHOP-like heuristic).
    pub old_trigger_factor: f64,
    /// Floor below which old collections never trigger.
    pub min_old_bytes: u64,
    /// Absolute old-occupancy trigger (G1's IHOP as a fraction of a fixed
    /// heap capacity). 0 disables it and the factor heuristic applies.
    /// The Figure 1 experiment sets this to 45 % of the per-configuration
    /// heap size the paper tuned (20/30/100 GB for 1/10/100 % cache).
    pub old_trigger_bytes: u64,
    /// Modeled evacuation cost per live object in an old collection
    /// (G1 mixed collections *copy* live data and rebuild remembered
    /// sets; pure marking over the arena under-counts that by an order of
    /// magnitude). 0 = marking only.
    pub evac_ns_per_obj: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            eden_bytes: 4 << 20,
            old_trigger_factor: 1.5,
            min_old_bytes: 16 << 20,
            old_trigger_bytes: 0,
            evac_ns_per_obj: 0,
        }
    }
}

/// The generational collector.
#[derive(Debug)]
pub struct GenerationalGc {
    cfg: GenConfig,
    young: Vec<ObjId>,
    young_bytes: u64,
    /// Old objects that may reference young ones.
    remembered: HashSet<ObjId>,
    old_bytes: u64,
    last_old_live: u64,
    /// Cumulative collection time.
    pub gc_time: Duration,
    /// Young passes run.
    pub young_passes: u64,
    /// Old (full) passes run.
    pub full_passes: u64,
    /// Individual pause durations `(is_full, duration)`.
    pub pauses: Vec<(bool, Duration)>,
}

impl GenerationalGc {
    /// Create with the given tuning.
    pub fn new(cfg: GenConfig) -> GenerationalGc {
        GenerationalGc {
            cfg,
            young: Vec::new(),
            young_bytes: 0,
            remembered: HashSet::new(),
            old_bytes: 0,
            last_old_live: 0,
            gc_time: Duration::ZERO,
            young_passes: 0,
            full_passes: 0,
            pauses: Vec::new(),
        }
    }

    /// Bytes currently attributed to the old generation.
    pub fn old_bytes(&self) -> u64 {
        self.old_bytes
    }

    /// Allocate through the collector (tracks the young generation).
    pub fn alloc(&mut self, heap: &mut ManagedHeap, size: u32, refs: Vec<ObjId>) -> ObjId {
        let id = heap.alloc(size, refs);
        self.young.push(id);
        self.young_bytes += size as u64;
        id
    }

    /// Reference-write barrier: records old→young edges in the remembered
    /// set, then performs the write.
    pub fn write_ref(&mut self, heap: &mut ManagedHeap, obj: ObjId, slot: usize, target: ObjId) {
        if heap.objs[obj as usize].generation == 1
            && target != crate::heap::NIL
            && heap.objs[target as usize].generation == 0
        {
            self.remembered.insert(obj);
        }
        heap.set_ref(obj, slot, target);
    }

    /// Run whatever collections the budgets call for.
    pub fn maybe_collect(&mut self, heap: &mut ManagedHeap) -> Option<GcPass> {
        if self.young_bytes < self.cfg.eden_bytes {
            return None;
        }
        let mut pass = self.young_collect(heap);
        let threshold = if self.cfg.old_trigger_bytes > 0 {
            self.cfg.old_trigger_bytes
        } else {
            self.cfg
                .min_old_bytes
                .max((self.last_old_live as f64 * self.cfg.old_trigger_factor) as u64)
        };
        if self.old_bytes > threshold {
            let full = self.full_collect(heap);
            pass.marked += full.marked;
            pass.swept += full.swept;
            pass.duration += full.duration;
        }
        Some(pass)
    }

    /// Collect the young generation: survivors are promoted.
    pub fn young_collect(&mut self, heap: &mut ManagedHeap) -> GcPass {
        let start = Instant::now();
        // Entry points beyond the roots: children of remembered old objects.
        let mut extra: Vec<ObjId> = Vec::new();
        for old in &self.remembered {
            if heap.objs[*old as usize].live {
                extra.extend(heap.objs[*old as usize].refs.iter().copied());
            }
        }
        let marked = heap.mark(&extra, |o| o.generation == 0);
        let mut swept = 0;
        for id in std::mem::take(&mut self.young) {
            let o = &mut heap.objs[id as usize];
            if !o.live || o.generation != 0 {
                continue;
            }
            if o.marked {
                o.marked = false;
                o.generation = 1;
                self.old_bytes += o.size as u64;
            } else {
                heap.reclaim(id);
                swept += 1;
            }
        }
        self.young_bytes = 0;
        heap.bytes_since_gc = 0;
        // Promotion turned every old→young edge into old→old.
        self.remembered.clear();
        let duration = start.elapsed();
        self.gc_time += duration;
        self.young_passes += 1;
        self.pauses.push((false, duration));
        GcPass {
            marked,
            swept,
            duration,
        }
    }

    /// Full collection: trace and sweep the entire heap (the expensive,
    /// live-set-proportional pass).
    pub fn full_collect(&mut self, heap: &mut ManagedHeap) -> GcPass {
        let start = Instant::now();
        let marked = heap.mark(&[], |_| true);
        if self.cfg.evac_ns_per_obj > 0 {
            busy_ns(marked * self.cfg.evac_ns_per_obj);
        }
        let mut swept = 0;
        let mut live_bytes = 0u64;
        for id in 0..heap.objs.len() as u32 {
            let o = &mut heap.objs[id as usize];
            if !o.live {
                continue;
            }
            if o.marked {
                o.marked = false;
                o.generation = 1;
                live_bytes += o.size as u64;
            } else {
                heap.reclaim(id);
                swept += 1;
            }
        }
        self.young.clear();
        self.young_bytes = 0;
        self.remembered.clear();
        self.old_bytes = live_bytes;
        self.last_old_live = live_bytes;
        heap.bytes_since_gc = 0;
        let duration = start.elapsed();
        self.gc_time += duration;
        self.full_passes += 1;
        self.pauses.push((true, duration));
        GcPass {
            marked,
            swept,
            duration,
        }
    }
}

/// Local busy-wait (gcsim keeps no dependency on jnvm-pmem).
fn busy_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(eden: u64) -> GenConfig {
        GenConfig {
            eden_bytes: eden,
            old_trigger_factor: 1.5,
            min_old_bytes: 1 << 30,
            old_trigger_bytes: 0,
            evac_ns_per_obj: 0,
        }
    }

    #[test]
    fn young_collection_reclaims_garbage_promotes_survivors() {
        let mut heap = ManagedHeap::new();
        let mut gc = GenerationalGc::new(cfg(u64::MAX));
        let survivor = gc.alloc(&mut heap, 100, vec![]);
        heap.add_root(survivor);
        for _ in 0..10 {
            gc.alloc(&mut heap, 100, vec![]); // garbage
        }
        let pass = gc.young_collect(&mut heap);
        assert_eq!(pass.marked, 1);
        assert_eq!(pass.swept, 10);
        assert!(heap.is_live(survivor));
        assert_eq!(gc.old_bytes(), 100);
    }

    #[test]
    fn remembered_set_keeps_young_alive_via_old_parent() {
        let mut heap = ManagedHeap::new();
        let mut gc = GenerationalGc::new(cfg(u64::MAX));
        let parent = gc.alloc(&mut heap, 8, vec![]);
        heap.add_root(parent);
        gc.young_collect(&mut heap); // parent is old now
        let child = gc.alloc(&mut heap, 8, vec![]);
        gc.write_ref(&mut heap, parent, 0, child);
        let pass = gc.young_collect(&mut heap);
        assert_eq!(pass.swept, 0);
        assert!(heap.is_live(child), "old->young edge must keep child");
    }

    #[test]
    fn without_barrier_edge_would_be_missed() {
        // Sanity-check the test above is meaningful: writing the same edge
        // *without* the barrier loses the child. (Documents why the
        // barrier exists; a managed runtime inserts it automatically.)
        let mut heap = ManagedHeap::new();
        let mut gc = GenerationalGc::new(cfg(u64::MAX));
        let parent = gc.alloc(&mut heap, 8, vec![]);
        heap.add_root(parent);
        gc.young_collect(&mut heap);
        let child = gc.alloc(&mut heap, 8, vec![]);
        heap.set_ref(parent, 0, child); // no barrier
        gc.young_collect(&mut heap);
        assert!(!heap.is_live(child));
    }

    #[test]
    fn full_collection_cost_tracks_old_live_set() {
        let mut heap = ManagedHeap::new();
        let mut gc = GenerationalGc::new(cfg(u64::MAX));
        for _ in 0..500 {
            let o = gc.alloc(&mut heap, 64, vec![]);
            heap.add_root(o);
        }
        gc.young_collect(&mut heap);
        let pass = gc.full_collect(&mut heap);
        assert_eq!(pass.marked, 500);
        assert_eq!(gc.old_bytes(), 500 * 64);
    }

    #[test]
    fn maybe_collect_honours_eden_budget() {
        let mut heap = ManagedHeap::new();
        let mut gc = GenerationalGc::new(cfg(1000));
        gc.alloc(&mut heap, 100, vec![]);
        assert!(gc.maybe_collect(&mut heap).is_none());
        gc.alloc(&mut heap, 2000, vec![]);
        assert!(gc.maybe_collect(&mut heap).is_some());
        assert_eq!(gc.young_passes, 1);
    }

    #[test]
    fn old_collections_trigger_under_pressure() {
        let mut heap = ManagedHeap::new();
        let mut gc = GenerationalGc::new(GenConfig {
            eden_bytes: 1000,
            old_trigger_factor: 1.5,
            min_old_bytes: 2000,
            old_trigger_bytes: 0,
            evac_ns_per_obj: 0,
        });
        // Retain everything: old generation grows past the floor.
        for i in 0..100 {
            let o = gc.alloc(&mut heap, 100, vec![]);
            heap.add_root(o);
            let _ = i;
            gc.maybe_collect(&mut heap);
        }
        assert!(gc.full_passes >= 1, "old pressure must trigger full GC");
        assert!(gc.pauses.iter().any(|(full, _)| *full));
    }
}
