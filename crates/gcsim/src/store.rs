//! The two stores the motivation experiments run on (§2.2.1).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;

use crate::gen::{GenConfig, GenerationalGc};
use crate::heap::{ManagedHeap, ObjId, RootId};
use crate::tricolor::TriColorGc;

/// go-redis-pmem: a feature-poor Redis whose records live in the managed
/// (joint volatile + persistent) heap. Every GC pass marks the entire
/// dataset — the mechanism behind Figure 2.
pub struct RedisLikeStore {
    heap: ManagedHeap,
    gc: TriColorGc,
    index: HashMap<String, (RootId, ObjId)>,
    nfields: usize,
    field_size: u32,
}

impl RedisLikeStore {
    /// `gc_threshold` is go-pmem's forced-collection budget ("every 10 GB
    /// of allocation", scaled down with everything else).
    pub fn new(nfields: usize, field_size: u32, gc_threshold: u64) -> RedisLikeStore {
        RedisLikeStore {
            heap: ManagedHeap::new(),
            gc: TriColorGc::new(gc_threshold),
            index: HashMap::new(),
            nfields,
            field_size,
        }
    }

    fn alloc_record(&mut self) -> ObjId {
        let fields: Vec<ObjId> = (0..self.nfields)
            .map(|_| self.heap.alloc(self.field_size, vec![]))
            .collect();
        self.heap.alloc(8 * self.nfields as u32 + 16, fields)
    }

    /// Insert (or replace) `key`.
    pub fn insert(&mut self, key: &str) {
        let rec = self.alloc_record();
        match self.index.get(key) {
            Some((root, _)) => {
                let root = *root;
                self.heap.set_root(root, rec);
                self.index.insert(key.to_string(), (root, rec));
            }
            None => {
                let root = self.heap.add_root(rec);
                self.index.insert(key.to_string(), (root, rec));
            }
        }
        self.gc.maybe_collect(&mut self.heap);
    }

    /// Read `key`: touches every field object (real pointer chasing).
    pub fn read(&mut self, key: &str) -> bool {
        match self.index.get(key) {
            Some((_, rec)) => {
                let mut checksum = 0u64;
                for slot in 0..self.nfields {
                    let f = self.heap.get_ref(*rec, slot);
                    checksum ^= f as u64;
                }
                std::hint::black_box(checksum);
                true
            }
            None => false,
        }
    }

    /// Read-modify-write: replace one field object (the old one becomes
    /// garbage for the next GC pass).
    pub fn rmw(&mut self, key: &str, field: usize) -> bool {
        let Some((_, rec)) = self.index.get(key).copied() else {
            return false;
        };
        self.read(key);
        let fresh = self.heap.alloc(self.field_size, vec![]);
        self.heap.set_ref(rec, field % self.nfields, fresh);
        self.gc.maybe_collect(&mut self.heap);
        true
    }

    /// Allocate transient client-side garbage (Go's YCSB client allocates
    /// wrappers per operation; this models that allocation pressure, which
    /// sets the collection frequency).
    pub fn alloc_temp(&mut self, size: u32) {
        let tmp = self.heap.alloc(size, vec![]);
        std::hint::black_box(tmp);
        self.gc.maybe_collect(&mut self.heap);
    }

    /// Records stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Cumulative GC time.
    pub fn gc_time(&self) -> Duration {
        self.gc.gc_time
    }

    /// GC passes run and objects visited.
    pub fn gc_stats(&self) -> (u64, u64) {
        (self.gc.passes, self.gc.objects_visited)
    }

    /// The heap (inspection).
    pub fn heap(&self) -> &ManagedHeap {
        &self.heap
    }
}

/// Modeled file-system costs for [`CachedFsStore`] (spin-injected; the
/// *real* marshalling cost model lives in `jnvm-kvstore` — here the
/// subject under study is the collector, so FS work is a constant).
#[derive(Debug, Clone, Copy)]
pub struct FsCost {
    /// Read-path cost (syscall + unmarshal), nanoseconds.
    pub read_ns: u64,
    /// Write-path cost, nanoseconds.
    pub write_ns: u64,
}

impl FsCost {
    /// Zero cost (tests).
    pub const fn free() -> FsCost {
        FsCost {
            read_ns: 0,
            write_ns: 0,
        }
    }
}

/// Infinispan-over-ext4 with a volatile LRU cache of configurable ratio —
/// the store behind Figure 1. Cached records are old-generation live data;
/// unmarshalled records and temporaries are young garbage.
pub struct CachedFsStore {
    heap: ManagedHeap,
    gc: GenerationalGc,
    /// Transient objects allocated per operation beyond the record graphs
    /// (marshalling buffers, boxed wrappers — the Java client/stack churn).
    pub temps_per_op: usize,
    /// Number of recent temporaries kept referenced across collection
    /// boundaries (connection/session state, batched result buffers).
    /// These medium-lived objects are what G1 promotes and later collects
    /// from the old generation; 0 disables the effect.
    pub survivor_window: usize,
    survivors: VecDeque<(RootId, ObjId)>,
    /// key -> (root, record object, recency stamp).
    cache: HashMap<String, (RootId, ObjId, u64)>,
    /// recency stamp -> key (LRU order).
    recency: BTreeMap<u64, String>,
    stamp: u64,
    cache_capacity: usize,
    nfields: usize,
    field_size: u32,
    costs: FsCost,
}

impl CachedFsStore {
    /// Create with a cache of `cache_capacity` records.
    pub fn new(
        cache_capacity: usize,
        nfields: usize,
        field_size: u32,
        gc: GenConfig,
        costs: FsCost,
    ) -> CachedFsStore {
        CachedFsStore {
            heap: ManagedHeap::new(),
            gc: GenerationalGc::new(gc),
            temps_per_op: 2,
            survivor_window: 0,
            survivors: VecDeque::new(),
            cache: HashMap::new(),
            recency: BTreeMap::new(),
            stamp: 0,
            cache_capacity,
            nfields,
            field_size,
            costs,
        }
    }

    fn alloc_record(&mut self) -> ObjId {
        let fields: Vec<ObjId> = (0..self.nfields)
            .map(|_| self.gc.alloc(&mut self.heap, self.field_size, vec![]))
            .collect();
        self.gc
            .alloc(&mut self.heap, 8 * self.nfields as u32 + 16, fields)
    }

    fn touch(&mut self, key: &str) {
        if let Some((_, _, old_stamp)) = self.cache.get(key) {
            let old = *old_stamp;
            self.recency.remove(&old);
            self.stamp += 1;
            let s = self.stamp;
            self.recency.insert(s, key.to_string());
            if let Some(e) = self.cache.get_mut(key) {
                e.2 = s;
            }
        }
    }

    fn cache_insert(&mut self, key: &str, rec: ObjId) {
        if self.cache_capacity == 0 {
            return;
        }
        if self.cache.len() >= self.cache_capacity && !self.cache.contains_key(key) {
            // Evict LRU: the record graph becomes old-generation garbage.
            if let Some((_, victim)) = self.recency.pop_first() {
                if let Some((root, _, _)) = self.cache.remove(&victim) {
                    self.heap.remove_root(root);
                }
            }
        }
        self.stamp += 1;
        match self.cache.get(key) {
            Some((root, _, old_stamp)) => {
                let (root, old_stamp) = (*root, *old_stamp);
                self.recency.remove(&old_stamp);
                self.heap.set_root(root, rec);
                self.cache
                    .insert(key.to_string(), (root, rec, self.stamp));
            }
            None => {
                let root = self.heap.add_root(rec);
                self.cache
                    .insert(key.to_string(), (root, rec, self.stamp));
            }
        }
        let s = self.stamp;
        self.recency.insert(s, key.to_string());
    }

    /// Read `key` (assumed loaded): cache hit touches the record; a miss
    /// pays the FS cost and materializes a fresh record graph. Both paths
    /// allocate result-copy temporaries (the client materializes the
    /// record either way).
    pub fn read(&mut self, key: &str) {
        if self.cache.contains_key(key) {
            self.touch(key);
            let rec = self.cache[key].1;
            let mut cs = 0u64;
            for slot in 0..self.nfields {
                cs ^= self.heap.get_ref(rec, slot) as u64;
            }
            std::hint::black_box(cs);
        } else {
            jnvm_pmem_free_spin(self.costs.read_ns);
            let rec = self.alloc_record();
            self.cache_insert(key, rec);
        }
        self.alloc_temps();
        self.gc.maybe_collect(&mut self.heap);
    }

    fn alloc_temps(&mut self) {
        // Temporaries are record-shaped graphs: the Java path materializes
        // result maps, marshalling buffers and boxed fields per operation.
        for _ in 0..self.temps_per_op {
            let tmp = self.alloc_record();
            if self.survivor_window > 0 {
                // Medium-lived: stays referenced across young collections,
                // gets promoted, then dies in the old generation.
                let root = self.heap.add_root(tmp);
                self.survivors.push_back((root, tmp));
                if self.survivors.len() > self.survivor_window {
                    if let Some((old_root, _)) = self.survivors.pop_front() {
                        self.heap.remove_root(old_root);
                    }
                }
            } else {
                std::hint::black_box(tmp);
            }
        }
    }

    /// Read-modify-write: write-through to the FS plus fresh temporaries
    /// (the marshalling garbage). If the key is cached, the cached record
    /// graph is **replaced** — the old, promoted graph becomes
    /// old-generation garbage, the mechanism that makes large caches
    /// GC-expensive (§2.2.1).
    pub fn rmw(&mut self, key: &str) {
        self.read(key);
        jnvm_pmem_free_spin(self.costs.write_ns);
        self.alloc_temps();
        if self.cache.contains_key(key) {
            let fresh = self.alloc_record();
            let (root, _, stamp) = self.cache[key];
            self.heap.set_root(root, fresh);
            self.cache.insert(key.to_string(), (root, fresh, stamp));
        }
        self.gc.maybe_collect(&mut self.heap);
    }

    /// Cached records.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Cumulative GC time.
    pub fn gc_time(&self) -> Duration {
        self.gc.gc_time
    }

    /// The collector (pause inspection).
    pub fn gc(&self) -> &GenerationalGc {
        &self.gc
    }

    /// The heap (inspection).
    pub fn heap(&self) -> &ManagedHeap {
        &self.heap
    }
}

// gcsim deliberately has no dependency on jnvm-pmem; a local spin keeps
// the modeled FS cost self-contained.
fn jnvm_pmem_free_spin(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redis_like_insert_read_rmw() {
        let mut s = RedisLikeStore::new(10, 100, u64::MAX);
        for i in 0..100 {
            s.insert(&format!("k{i}"));
        }
        assert_eq!(s.len(), 100);
        assert!(s.read("k5"));
        assert!(!s.read("missing"));
        assert!(s.rmw("k5", 3));
        assert!(!s.rmw("missing", 0));
        // 100 records x 11 objects, plus one replaced field not yet
        // collected.
        assert_eq!(s.heap().stats().objects, 1101);
    }

    #[test]
    fn redis_like_gc_time_grows_with_dataset() {
        // Two identical op sequences over different dataset sizes: the
        // bigger store must visit ~10x the objects in GC.
        let run = |records: usize| {
            let mut s = RedisLikeStore::new(10, 100, 50_000);
            for i in 0..records {
                s.insert(&format!("k{i}"));
            }
            let (_passes_before, _) = s.gc_stats();
            for i in 0..2000 {
                s.rmw(&format!("k{}", i % records), i);
            }
            let (passes, visited) = s.gc_stats();
            (passes, visited)
        };
        let (p_small, v_small) = run(100);
        let (p_big, v_big) = run(1000);
        assert!(p_small > 0 && p_big > 0);
        let per_pass_small = v_small / p_small.max(1);
        let per_pass_big = v_big / p_big.max(1);
        assert!(
            per_pass_big > per_pass_small * 5,
            "marking work per pass must scale with the dataset: {per_pass_small} vs {per_pass_big}"
        );
    }

    #[test]
    fn cached_fs_store_eviction_bounds_cache() {
        let mut s = CachedFsStore::new(
            10,
            10,
            100,
            GenConfig {
                eden_bytes: u64::MAX,
                ..GenConfig::default()
            },
            FsCost::free(),
        );
        for i in 0..100 {
            s.read(&format!("k{i}"));
        }
        assert_eq!(s.cached(), 10);
    }

    #[test]
    fn cached_fs_store_old_gen_tracks_cache_ratio() {
        let run = |cache: usize| {
            let mut s = CachedFsStore::new(
                cache,
                10,
                100,
                GenConfig {
                    eden_bytes: 64 << 10,
                    old_trigger_factor: 10.0, // no full GCs: observe old growth
                    min_old_bytes: u64::MAX,
                    ..GenConfig::default()
                },
                FsCost::free(),
            );
            s.temps_per_op = 0; // isolate the cache's contribution
            for i in 0..2000u32 {
                s.read(&format!("k{}", i % 1000));
            }
            s.gc().old_bytes()
        };
        let small = run(10);
        let big = run(500);
        assert!(
            big > small * 5,
            "old generation must scale with the cache: {small} vs {big}"
        );
    }

    #[test]
    fn cache_hits_allocate_only_temporaries() {
        let mut s = CachedFsStore::new(
            10,
            10,
            100,
            GenConfig {
                eden_bytes: u64::MAX,
                ..GenConfig::default()
            },
            FsCost::free(),
        );
        s.temps_per_op = 0;
        s.read("k");
        let before = s.heap().stats().total_allocated;
        for _ in 0..100 {
            s.read("k"); // hits: no record graph materialized
        }
        assert_eq!(s.heap().stats().total_allocated, before);
        s.temps_per_op = 2;
        s.read("k");
        assert!(s.heap().stats().total_allocated > before, "temps allocated");
    }
}
