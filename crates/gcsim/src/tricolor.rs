//! A stop-the-world tri-color mark-sweep collector — go-pmem's collector
//! under the simulator's stop-the-world simplification (§2.2.1).
//!
//! go-pmem collects the *joint* volatile+persistent heap with a tri-color
//! concurrent marker and never compacts; the paper forces a collection
//! every 10 GB of allocation to dodge a resizing-policy bug. The cost that
//! matters for Figure 2 is the marking work, which visits **every live
//! object — the whole persistent dataset — on every pass**. This collector
//! does exactly that work on the caller's thread, so GC time lands in the
//! operation latencies just as a stop-the-world pause would.

use std::time::{Duration, Instant};

use crate::heap::ManagedHeap;

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPass {
    /// Objects marked live (the dataset-proportional cost).
    pub marked: u64,
    /// Objects reclaimed.
    pub swept: u64,
    /// Wall time of the pass.
    pub duration: Duration,
}

/// The go-pmem-style collector.
#[derive(Debug)]
pub struct TriColorGc {
    /// Allocation budget between collections ("collect every 10 GB").
    pub threshold_bytes: u64,
    /// Cumulative GC time.
    pub gc_time: Duration,
    /// Collections run.
    pub passes: u64,
    /// Objects visited across all passes.
    pub objects_visited: u64,
}

impl TriColorGc {
    /// A collector triggered every `threshold_bytes` of allocation.
    pub fn new(threshold_bytes: u64) -> TriColorGc {
        TriColorGc {
            threshold_bytes,
            gc_time: Duration::ZERO,
            passes: 0,
            objects_visited: 0,
        }
    }

    /// Collect if the allocation budget is exhausted.
    pub fn maybe_collect(&mut self, heap: &mut ManagedHeap) -> Option<GcPass> {
        if heap.bytes_since_gc < self.threshold_bytes {
            return None;
        }
        Some(self.collect(heap))
    }

    /// Unconditional full mark-sweep.
    pub fn collect(&mut self, heap: &mut ManagedHeap) -> GcPass {
        let start = Instant::now();
        let marked = heap.mark(&[], |_| true);
        // Sweep: reclaim every unmarked live object, clear marks.
        let mut swept = 0;
        for id in 0..heap.objs.len() as u32 {
            let o = &mut heap.objs[id as usize];
            if !o.live {
                continue;
            }
            if o.marked {
                o.marked = false;
            } else {
                heap.reclaim(id);
                swept += 1;
            }
        }
        heap.bytes_since_gc = 0;
        let duration = start.elapsed();
        self.gc_time += duration;
        self.passes += 1;
        self.objects_visited += marked;
        GcPass {
            marked,
            swept,
            duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_unreachable_keeps_reachable() {
        let mut h = ManagedHeap::new();
        let mut gc = TriColorGc::new(u64::MAX);
        let kept_child = h.alloc(10, vec![]);
        let kept = h.alloc(10, vec![kept_child]);
        h.add_root(kept);
        let _garbage = h.alloc(10, vec![]);
        let pass = gc.collect(&mut h);
        assert_eq!(pass.marked, 2);
        assert_eq!(pass.swept, 1);
        assert!(h.is_live(kept));
        assert!(h.is_live(kept_child));
        assert_eq!(h.stats().objects, 2);
    }

    #[test]
    fn threshold_gates_collection() {
        let mut h = ManagedHeap::new();
        let mut gc = TriColorGc::new(1000);
        h.alloc(100, vec![]);
        assert!(gc.maybe_collect(&mut h).is_none());
        h.alloc(950, vec![]);
        assert!(gc.maybe_collect(&mut h).is_some());
        assert_eq!(gc.passes, 1);
        // Budget resets.
        assert!(gc.maybe_collect(&mut h).is_none());
    }

    #[test]
    fn marking_cost_scales_with_live_set() {
        // The Figure 2 scaling law in miniature: 10x live objects =>
        // (about) 10x marked objects per pass.
        let mut small = ManagedHeap::new();
        let mut big = ManagedHeap::new();
        for _ in 0..100 {
            let o = small.alloc(8, vec![]);
            small.add_root(o);
        }
        for _ in 0..1000 {
            let o = big.alloc(8, vec![]);
            big.add_root(o);
        }
        let mut gc = TriColorGc::new(u64::MAX);
        let a = gc.collect(&mut small);
        let b = gc.collect(&mut big);
        assert_eq!(a.marked, 100);
        assert_eq!(b.marked, 1000);
    }

    #[test]
    fn cycles_are_collected() {
        let mut h = ManagedHeap::new();
        let a = h.alloc(8, vec![]);
        let b = h.alloc(8, vec![a]);
        h.set_ref(a, 0, b); // cycle a <-> b, unrooted
        let mut gc = TriColorGc::new(u64::MAX);
        let pass = gc.collect(&mut h);
        assert_eq!(pass.swept, 2);
        assert_eq!(h.stats().objects, 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut h = ManagedHeap::new();
        let mut gc = TriColorGc::new(u64::MAX);
        for _ in 0..100 {
            h.alloc(8, vec![]);
        }
        gc.collect(&mut h);
        assert_eq!(h.stats().objects, 0);
        for _ in 0..100 {
            h.alloc(8, vec![]);
        }
        assert_eq!(h.objs.len(), 100, "arena did not grow");
    }
}
