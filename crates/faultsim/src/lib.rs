//! # jnvm-faultsim — crash-point sweep driver
//!
//! The `jnvm-pmem` injection engine ([`jnvm_pmem::FaultPlan`]) can crash the
//! simulated device immediately **before** its N-th persistence-relevant
//! operation. This crate turns that single primitive into an exhaustive
//! testing harness: given a workload, it
//!
//! 1. runs a **count pass** ([`FaultMode::Count`]) to learn how many
//!    persistence-relevant operations the workload performs (and optionally
//!    the full op trace), then
//! 2. **sweeps**: for every crash point `i` in `0..N` it rebuilds the
//!    initial state from scratch, arms [`FaultMode::CrashAt`]`(i)`, runs the
//!    workload until the injected power failure unwinds it, and hands the
//!    crashed device to a caller-supplied `verify` closure — which typically
//!    re-opens the pool and asserts the workload's recovery invariants.
//!
//! The driver takes care of the delicate ordering around the unwind: the
//! workload context is dropped **while the device is still frozen**, so that
//! destructors running during/after the unwind (e.g. a failure-atomic
//! guard's abort path) cannot retroactively repair the crash image, and only
//! then is the device thawed for verification.
//!
//! The driver is deliberately generic over the workload context `Ctx` so
//! the same loop drives raw-device workloads, `jnvm` runtimes, and whole
//! KV stores (see the workspace's `tests/crash_points.rs`).
//!
//! ## Concurrent torture ([`torture_point`] / [`torture_sweep`])
//!
//! The single-threaded sweep can only falsify sequential durability bugs.
//! The torture variants run `nthreads` workers over one shared context
//! with crash injection armed: the interleaving of the workers' op
//! streams decides which thread hits the trigger, every *other* thread's
//! next device op unwinds with a secondary [`CrashInjected`], and the
//! driver joins all workers (the quiesce protocol), drops the context
//! while the device is still frozen, thaws it, resynchronizes the cache
//! ([`Pmem::resync_cache`] — workers mid-store at the moment of the crash
//! may have scribbled on the rebuilt cache), and only then verifies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use jnvm_pmem::{catch_crash, CrashInjected, FaultMode, FaultPlan, Pmem, TraceRecord};

/// What happened at one crash point of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct CrashReport {
    /// The 0-based index of the persistence-relevant op that was replaced
    /// by a power failure.
    pub point: u64,
    /// The op that would have executed, as unwound by the engine.
    pub crash: CrashInjected,
}

/// Aggregate result of [`sweep`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepSummary {
    /// Crash points actually exercised (workload crashed and was verified).
    pub points_crashed: usize,
    /// Points at which the workload ran to completion instead of crashing
    /// (the point index was past the end of the op stream).
    pub points_completed: usize,
}

/// Run `workload` once with the injector in counting mode and return the
/// number of persistence-relevant operations it performs.
///
/// `setup` builds a fresh device + workload context; the same closures are
/// then typically handed to [`sweep`].
pub fn count_ops<Ctx>(
    setup: impl FnOnce() -> (Arc<Pmem>, Ctx),
    workload: impl FnOnce(&Ctx),
) -> u64 {
    let (pmem, ctx) = setup();
    pmem.arm_faults(FaultPlan::count());
    workload(&ctx);
    drop(ctx);
    pmem.disarm_faults()
}

/// Like [`count_ops`], additionally returning the ordered trace of
/// persistence-relevant operations — one [`TraceRecord`] per crash point,
/// so `trace[i]` names the op that a [`FaultMode::CrashAt`]`(i)` run would
/// replace with a power failure.
pub fn trace_ops<Ctx>(
    setup: impl FnOnce() -> (Arc<Pmem>, Ctx),
    workload: impl FnOnce(&Ctx),
) -> (u64, Vec<TraceRecord>) {
    let (pmem, ctx) = setup();
    pmem.arm_faults(FaultPlan::count());
    workload(&ctx);
    drop(ctx);
    let trace = pmem.fault_trace();
    let n = pmem.disarm_faults();
    (n, trace)
}

/// Sweep the given crash points of a workload.
///
/// For each point `i` in `points`:
///
/// 1. `setup()` builds a fresh device and workload context (pool created,
///    warmed up, fences drained — everything *before* the region under
///    test);
/// 2. the device is armed with `CrashAt(i)` (under `plan`'s crash policy);
/// 3. `workload(&ctx)` runs inside [`catch_crash`]; the injected power
///    failure unwinds it at op `i`;
/// 4. the context is dropped **while the device is still frozen**, then the
///    device is disarmed (thawed);
/// 5. on a crash, `verify(&pmem, &report)` checks recovery invariants
///    (typically: reopen the pool, assert the workload's atomicity /
///    durability contract, check for leaked blocks). If the workload
///    instead ran to completion, the point was past the end of the op
///    stream; it is tallied in [`SweepSummary::points_completed`] and
///    `verify` is not called.
///
/// Panics from `workload` that are not injected crashes propagate (they are
/// real bugs); panics from `verify` propagate (they are failed invariants).
pub fn sweep<Ctx>(
    points: impl IntoIterator<Item = u64>,
    plan: FaultPlan,
    mut setup: impl FnMut() -> (Arc<Pmem>, Ctx),
    mut workload: impl FnMut(&Ctx),
    mut verify: impl FnMut(&Arc<Pmem>, &CrashReport),
) -> SweepSummary {
    let mut summary = SweepSummary::default();
    for point in points {
        let (pmem, ctx) = setup();
        pmem.arm_faults(FaultPlan {
            mode: FaultMode::CrashAt(point),
            ..plan
        });
        let outcome = catch_crash(|| workload(&ctx));
        // Destructors (e.g. fa-guard abort paths) must not be able to touch
        // the post-crash image: drop the context before thawing.
        drop(ctx);
        pmem.disarm_faults();
        match outcome {
            Err(crash) => {
                summary.points_crashed += 1;
                verify(&pmem, &CrashReport { point, crash });
            }
            Ok(()) => summary.points_completed += 1,
        }
    }
    summary
}

/// Sweep **every** crash point of the workload: a count pass learns the op
/// count `N`, then [`sweep`] runs over `0..N`. Returns the summary; the
/// caller's invariants live in `verify`.
///
/// `setup` is invoked `N + 1` times (once for the count pass); it must be
/// deterministic enough that every instance performs the same op stream.
pub fn sweep_all<Ctx>(
    plan: FaultPlan,
    mut setup: impl FnMut() -> (Arc<Pmem>, Ctx),
    mut workload: impl FnMut(&Ctx),
    verify: impl FnMut(&Arc<Pmem>, &CrashReport),
) -> SweepSummary {
    let total = count_ops(&mut setup, &mut workload);
    let summary = sweep(0..total, plan, setup, workload, verify);
    assert_eq!(
        summary.points_completed, 0,
        "count pass reported {total} ops but a CrashAt point within 0..{total} \
         did not fire — the workload is not deterministic across setups"
    );
    summary
}

/// Like [`sweep`], for workloads that are **internally multi-threaded** —
/// the canonical case being a parallel recovery pass, where the workload
/// under test spawns its own replay/mark/sweep workers. Two differences
/// from the single-threaded sweep:
///
/// * after an injected crash the device cache is resynchronized from media
///   ([`Pmem::resync_cache`]) before `verify` runs — workers that were
///   mid-store at the moment of the crash may have scribbled on the
///   rebuilt cache;
/// * the workload is expected to re-throw a worker's [`CrashInjected`]
///   from the spawning thread (see `jnvm_heap::par::run_workers`), so the
///   primary crash still reaches this driver's [`catch_crash`].
pub fn sweep_resync<Ctx>(
    points: impl IntoIterator<Item = u64>,
    plan: FaultPlan,
    mut setup: impl FnMut() -> (Arc<Pmem>, Ctx),
    mut workload: impl FnMut(&Ctx),
    mut verify: impl FnMut(&Arc<Pmem>, &CrashReport),
) -> SweepSummary {
    let mut summary = SweepSummary::default();
    for point in points {
        let (pmem, ctx) = setup();
        pmem.arm_faults(FaultPlan {
            mode: FaultMode::CrashAt(point),
            ..plan
        });
        let outcome = catch_crash(|| workload(&ctx));
        drop(ctx);
        pmem.disarm_faults();
        match outcome {
            Err(crash) => {
                pmem.resync_cache();
                summary.points_crashed += 1;
                verify(&pmem, &CrashReport { point, crash });
            }
            Ok(()) => summary.points_completed += 1,
        }
    }
    summary
}

/// What happened at one crash point of a concurrent torture run.
#[derive(Debug, Clone, Copy)]
pub struct TortureOutcome {
    /// The 0-based op index that was replaced by a power failure (ops are
    /// counted across *all* threads in interleaving order).
    pub point: u64,
    /// Workers unwound by the crash: the trigger thread plus every worker
    /// whose next device op hit the frozen device.
    pub crashed_threads: usize,
    /// Workers that ran their workload to completion.
    pub completed_threads: usize,
}

impl TortureOutcome {
    /// True when the armed point fired before the workload drained.
    pub fn injected(&self) -> bool {
        self.crashed_threads > 0
    }
}

/// Aggregate result of [`torture_sweep`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TortureSummary {
    /// Points at which a crash was injected (and verified).
    pub points_injected: usize,
    /// Points past the end of the interleaved op stream: the workload
    /// completed; `verify` still ran against the completed image.
    pub points_completed: usize,
}

/// Count the persistence-relevant ops of a concurrent workload: `setup`
/// builds the shared context, then `nthreads` workers each run
/// `workload(t, &ctx)`. The total is exact (every op is counted once)
/// but how the ops interleave — and therefore what op index a given
/// thread's Nth op gets — varies run to run.
pub fn torture_count<Ctx: Sync>(
    nthreads: usize,
    setup: impl FnOnce() -> (Arc<Pmem>, Ctx),
    workload: impl Fn(usize, &Ctx) + Sync,
) -> u64 {
    let (pmem, ctx) = setup();
    pmem.arm_faults(FaultPlan::count());
    std::thread::scope(|s| {
        for t in 0..nthreads {
            let ctx = &ctx;
            let workload = &workload;
            s.spawn(move || workload(t, ctx));
        }
    });
    drop(ctx);
    pmem.disarm_faults()
}

/// Run one concurrent crash-point experiment.
///
/// 1. `setup()` builds a fresh device and shared context;
/// 2. the device is armed with `CrashAt(point)` under `plan`'s policy;
/// 3. `nthreads` workers run `workload(t, &ctx)`, each inside
///    [`catch_crash`]. Whichever thread's op lands on `point` triggers
///    the power failure; every other worker's next device op unwinds
///    with a secondary [`CrashInjected`];
/// 4. the scope join is the quiesce barrier. The context is dropped while
///    the device is still frozen (unwind destructors must not repair the
///    crash image), the device is thawed, and — if a crash fired — the
///    cache is resynchronized from media to discard stores that were
///    in flight when power was lost;
/// 5. `verify(&pmem, &outcome)` checks recovery invariants. It is called
///    for completed (past-the-end) points too: a fully-applied image must
///    satisfy the same invariants.
///
/// Panics from workers that are not injected crashes propagate out of the
/// scope join (they are real bugs); panics from `verify` are failed
/// invariants.
pub fn torture_point<Ctx: Sync>(
    point: u64,
    plan: FaultPlan,
    nthreads: usize,
    setup: impl FnOnce() -> (Arc<Pmem>, Ctx),
    workload: impl Fn(usize, &Ctx) + Sync,
    verify: impl FnOnce(&Arc<Pmem>, &TortureOutcome),
) -> TortureOutcome {
    let (pmem, ctx) = setup();
    pmem.arm_faults(FaultPlan {
        mode: FaultMode::CrashAt(point),
        ..plan
    });
    let crashed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..nthreads {
            let ctx = &ctx;
            let workload = &workload;
            let crashed = &crashed;
            s.spawn(move || {
                if catch_crash(|| workload(t, ctx)).is_err() {
                    crashed.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    let injected = pmem.faults_frozen();
    drop(ctx);
    pmem.disarm_faults();
    if injected {
        pmem.resync_cache();
    }
    let crashed_threads = crashed.load(Ordering::SeqCst);
    let outcome = TortureOutcome {
        point,
        crashed_threads,
        completed_threads: nthreads - crashed_threads,
    };
    verify(&pmem, &outcome);
    outcome
}

/// Sweep the given crash points of a concurrent workload with
/// [`torture_point`]. Because the interleaving differs between runs, the
/// same point index may fall on a different op each time — that is the
/// point: sweeping plus repetition explores the interleaving space.
pub fn torture_sweep<Ctx: Sync>(
    points: impl IntoIterator<Item = u64>,
    plan: FaultPlan,
    nthreads: usize,
    mut setup: impl FnMut() -> (Arc<Pmem>, Ctx),
    workload: impl Fn(usize, &Ctx) + Sync,
    mut verify: impl FnMut(&Arc<Pmem>, &TortureOutcome),
) -> TortureSummary {
    let mut summary = TortureSummary::default();
    for point in points {
        let outcome = torture_point(point, plan, nthreads, &mut setup, &workload, &mut verify);
        if outcome.injected() {
            summary.points_injected += 1;
        } else {
            summary.points_completed += 1;
        }
    }
    summary
}

/// What happened in one sharded crash experiment.
#[derive(Debug, Clone, Copy)]
pub struct ShardedTortureOutcome {
    /// The armed crash point (ops counted on the crash shard's device).
    pub point: u64,
    /// Which device the crash was armed on.
    pub crash_shard: usize,
    /// Whether the point fired before the crash shard's op stream ended.
    pub injected: bool,
    /// Workers unwound by the crash. With one worker per disjoint device
    /// this is at most 1 — workers never touch the frozen device, so no
    /// secondary unwinds occur; that *is* the isolation property.
    pub crashed_workers: usize,
    /// Workers that ran to completion.
    pub completed_workers: usize,
}

/// Run one **shard-aware** crash experiment over N disjoint devices: the
/// crash is armed on `crash_shard`'s device only, one worker per shard
/// runs `workload(shard, &ctx)`, and only workers that touch the frozen
/// device unwind — the rest must complete. This is the device-level model
/// of the sharded server's failure-isolation contract (one committer per
/// pool; a power failure on one pool leaves the others committing).
///
/// Sequence per the single-device drivers: workers join (quiesce), the
/// context is dropped while the crash device is still frozen, the device
/// is thawed, its cache resynchronized from media if the crash fired, and
/// only then does `verify(&pmems, &outcome)` run.
pub fn sharded_torture_point<Ctx: Sync>(
    point: u64,
    plan: FaultPlan,
    crash_shard: usize,
    setup: impl FnOnce() -> (Vec<Arc<Pmem>>, Ctx),
    workload: impl Fn(usize, &Ctx) + Sync,
    verify: impl FnOnce(&[Arc<Pmem>], &ShardedTortureOutcome),
) -> ShardedTortureOutcome {
    let (pmems, ctx) = setup();
    assert!(
        crash_shard < pmems.len(),
        "crash shard {crash_shard} out of range ({} devices)",
        pmems.len()
    );
    for i in 0..pmems.len() {
        for j in i + 1..pmems.len() {
            assert!(
                !Arc::ptr_eq(&pmems[i], &pmems[j]),
                "shards {i} and {j} share one device — isolation claims need disjoint devices"
            );
        }
    }
    pmems[crash_shard].arm_faults(FaultPlan {
        mode: FaultMode::CrashAt(point),
        ..plan
    });
    let crashed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for shard in 0..pmems.len() {
            let ctx = &ctx;
            let workload = &workload;
            let crashed = &crashed;
            s.spawn(move || {
                if catch_crash(|| workload(shard, ctx)).is_err() {
                    crashed.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    let injected = pmems[crash_shard].faults_frozen();
    drop(ctx);
    pmems[crash_shard].disarm_faults();
    if injected {
        pmems[crash_shard].resync_cache();
    }
    let crashed_workers = crashed.load(Ordering::SeqCst);
    let outcome = ShardedTortureOutcome {
        point,
        crash_shard,
        injected,
        crashed_workers,
        completed_workers: pmems.len() - crashed_workers,
    };
    verify(&pmems, &outcome);
    outcome
}

/// What happened in one replicated crash experiment.
#[derive(Debug, Clone)]
pub struct ReplicatedTortureOutcome {
    /// The armed crash point (ops counted on the crash device).
    pub point: u64,
    /// Which shard's replica set took the crash.
    pub crash_shard: usize,
    /// Which replica of that shard crashed (0 = primary).
    pub crash_replica: usize,
    /// The crash device's identity ([`Pmem::label`]), for reports.
    pub crash_label: String,
    /// Whether the point fired before the crash device's op stream ended.
    pub injected: bool,
    /// Workers unwound by the crash (at most 1 with one worker per shard).
    pub crashed_workers: usize,
    /// Workers that ran to completion.
    pub completed_workers: usize,
}

/// Run one **replicated** crash experiment: N shards, each owning a
/// replica set of disjoint devices (`pmems[shard][replica]`; replica 0 is
/// the primary). The crash is armed on exactly one replica's device; one
/// worker per shard runs `workload(shard, &ctx)` and drives *all* of its
/// shard's replicas (the committer model: stream to the backup, commit on
/// the primary). Only the worker that touches the frozen device unwinds —
/// across shards that is the isolation contract of
/// [`sharded_torture_point`]; within a shard it is the caller's failover
/// logic (promote on a primary crash, degrade on a backup crash) that
/// decides whether the worker unwinds at all.
///
/// Sequence as in the other drivers: workers join (quiesce), the context
/// is dropped while the crash device is still frozen, the device is
/// thawed, its cache resynchronized from media if the crash fired, and
/// only then does `verify(&pmems, &outcome)` run — typically re-opening
/// the *surviving* replica of the crash shard and asserting that every
/// acked write is readable and untorn there (acked ⇒ durable on a
/// survivor), then auditing the crashed image for divergence.
pub fn replicated_torture_point<Ctx: Sync>(
    point: u64,
    plan: FaultPlan,
    crash_shard: usize,
    crash_replica: usize,
    setup: impl FnOnce() -> (Vec<Vec<Arc<Pmem>>>, Ctx),
    workload: impl Fn(usize, &Ctx) + Sync,
    verify: impl FnOnce(&[Vec<Arc<Pmem>>], &ReplicatedTortureOutcome),
) -> ReplicatedTortureOutcome {
    let (pmems, ctx) = setup();
    assert!(
        crash_shard < pmems.len(),
        "crash shard {crash_shard} out of range ({} shards)",
        pmems.len()
    );
    assert!(
        crash_replica < pmems[crash_shard].len(),
        "crash replica {crash_replica} out of range ({} replicas on shard {crash_shard})",
        pmems[crash_shard].len()
    );
    let flat: Vec<&Arc<Pmem>> = pmems.iter().flatten().collect();
    for i in 0..flat.len() {
        for j in i + 1..flat.len() {
            assert!(
                !Arc::ptr_eq(flat[i], flat[j]),
                "two replicas share one device — replication claims need disjoint devices"
            );
        }
    }
    let crash_dev = &pmems[crash_shard][crash_replica];
    let crash_label = crash_dev.label().to_string();
    crash_dev.arm_faults(FaultPlan {
        mode: FaultMode::CrashAt(point),
        ..plan
    });
    let crashed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for shard in 0..pmems.len() {
            let ctx = &ctx;
            let workload = &workload;
            let crashed = &crashed;
            s.spawn(move || {
                if catch_crash(|| workload(shard, ctx)).is_err() {
                    crashed.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    let injected = crash_dev.faults_frozen();
    drop(ctx);
    crash_dev.disarm_faults();
    if injected {
        crash_dev.resync_cache();
    }
    let crashed_workers = crashed.load(Ordering::SeqCst);
    let outcome = ReplicatedTortureOutcome {
        point,
        crash_shard,
        crash_replica,
        crash_label,
        injected,
        crashed_workers,
        completed_workers: pmems.len() - crashed_workers,
    };
    verify(&pmems, &outcome);
    outcome
}

/// Evenly strided sample of `0..total` with at most `max_points` elements,
/// always including the first and last point. Lets long workloads run a
/// representative sweep by default while keeping the exhaustive sweep
/// (`stride == 1`) available behind `--ignored` test gates.
pub fn strided_points(total: u64, max_points: u64) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    let max_points = max_points.max(2);
    let stride = total.div_ceil(max_points).max(1);
    let mut pts: Vec<u64> = (0..total).step_by(stride as usize).collect();
    if *pts.last().expect("non-empty") != total - 1 {
        pts.push(total - 1);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm_pmem::{silence_crash_panics, FaultOp, PmemConfig};

    /// A miniature redo-log commit against the raw device: write a value
    /// and a commit flag with a correct flush/fence protocol.
    fn raw_commit(pmem: &Arc<Pmem>) {
        pmem.write_u64(0, 0xfeed);
        pmem.pwb(0);
        pmem.pfence();
        pmem.write_u64(64, 1); // commit flag on its own line
        pmem.pwb(64);
        pmem.pfence();
    }

    fn setup() -> (Arc<Pmem>, Arc<Pmem>) {
        let pmem = Pmem::new(PmemConfig::crash_sim(4096));
        (Arc::clone(&pmem), pmem)
    }

    #[test]
    fn count_matches_trace_len() {
        let (n, trace) = trace_ops(setup, raw_commit);
        assert_eq!(n, 6);
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[0].op, FaultOp::Write);
        assert_eq!(trace[5].op, FaultOp::Pfence);
    }

    #[test]
    fn sweep_all_visits_every_point() {
        let mut seen = Vec::new();
        let summary = sweep_all(
            FaultPlan::count(),
            setup,
            raw_commit,
            |pmem, report| {
                // The protocol's invariant: if the commit flag reached the
                // media, the value must be there too.
                if pmem.read_u64(64) == 1 {
                    assert_eq!(pmem.read_u64(0), 0xfeed, "flag durable before value");
                }
                seen.push(report.point);
            },
        );
        assert_eq!(summary.points_crashed, 6);
        assert_eq!(summary.points_completed, 0);
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn past_the_end_points_complete() {
        let summary = sweep(
            [100u64, 200u64],
            FaultPlan::count(),
            setup,
            raw_commit,
            |_, _| panic!("no crash expected"),
        );
        assert_eq!(summary.points_crashed, 0);
        assert_eq!(summary.points_completed, 2);
    }

    const TORTURE_THREADS: usize = 4;
    /// Per-thread ops: 16 iterations × (write + pwb + pfence).
    const TORTURE_OPS_PER_THREAD: u64 = 16 * 3;

    fn torture_setup() -> (Arc<Pmem>, Arc<Pmem>) {
        let pmem = Pmem::new(PmemConfig::crash_sim(64 * 1024));
        (Arc::clone(&pmem), pmem)
    }

    /// Each worker writes its own 16 lines with a correct flush/fence per
    /// write, so after any crash a thread's region holds only values it
    /// wrote (or zero).
    fn torture_workload(t: usize, p: &Arc<Pmem>) {
        let base = t as u64 * 8192;
        for i in 0..16u64 {
            let addr = base + i * 64;
            p.write_u64(addr, i + 1);
            p.pwb(addr);
            p.pfence();
        }
    }

    #[test]
    fn torture_count_totals_all_threads() {
        let total = torture_count(TORTURE_THREADS, torture_setup, torture_workload);
        assert_eq!(total, TORTURE_THREADS as u64 * TORTURE_OPS_PER_THREAD);
    }

    #[test]
    fn injected_crash_stops_every_thread() {
        silence_crash_panics();
        // Crash very early: every worker still has ops ahead of it, so
        // every worker must unwind — the trigger thread via the primary
        // CrashInjected, the rest via secondary unwinds. (Before the
        // secondary-unwind protocol, non-trigger workers silently
        // completed against the frozen device.)
        let outcome = torture_point(
            2,
            FaultPlan::count(),
            TORTURE_THREADS,
            torture_setup,
            torture_workload,
            |pmem, outcome| {
                assert!(outcome.injected());
                // No thread fenced more than its prefix: each surviving
                // value must be one the owner actually wrote.
                for t in 0..TORTURE_THREADS as u64 {
                    for i in 0..16u64 {
                        let v = pmem.read_u64(t * 8192 + i * 64);
                        assert!(v == 0 || v == i + 1, "torn value {v} at thread {t} slot {i}");
                    }
                }
            },
        );
        assert_eq!(
            outcome.crashed_threads, TORTURE_THREADS,
            "a power failure must stop every thread, not just the trigger"
        );
        assert_eq!(outcome.completed_threads, 0);
    }

    #[test]
    fn torture_sweep_tallies_injected_and_completed() {
        silence_crash_panics();
        let total = TORTURE_THREADS as u64 * TORTURE_OPS_PER_THREAD;
        let summary = torture_sweep(
            [0, total / 2, total + 50],
            FaultPlan::count(),
            TORTURE_THREADS,
            torture_setup,
            torture_workload,
            |pmem, outcome| {
                if !outcome.injected() {
                    // Completed run: every fenced write is durable.
                    for t in 0..TORTURE_THREADS as u64 {
                        for i in 0..16u64 {
                            assert_eq!(pmem.read_u64(t * 8192 + i * 64), i + 1);
                        }
                    }
                }
            },
        );
        assert_eq!(summary.points_injected, 2);
        assert_eq!(summary.points_completed, 1);
    }

    /// A workload that spawns its own workers (as parallel recovery does):
    /// each worker is wrapped in [`catch_crash`] and the spawning thread
    /// re-throws the primary crash, which [`sweep_resync`] must catch,
    /// resync and hand to `verify`.
    fn threaded_workload(pmem: &Arc<Pmem>) {
        let crash = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2u64)
                .map(|t| {
                    let p = Arc::clone(pmem);
                    s.spawn(move || {
                        catch_crash(|| {
                            let base = t * 4096;
                            for i in 0..8u64 {
                                p.write_u64(base + i * 64, i + 1);
                                p.pwb(base + i * 64);
                            }
                            p.pfence();
                        })
                    })
                })
                .collect();
            let mut primary: Option<CrashInjected> = None;
            for h in handles {
                if let Err(ci) = h.join().expect("no non-crash panics") {
                    if primary.as_ref().is_none_or(|p| p.secondary && !ci.secondary) {
                        primary = Some(ci);
                    }
                }
            }
            primary
        });
        if let Some(ci) = crash {
            std::panic::panic_any(ci);
        }
    }

    #[test]
    fn sweep_resync_handles_internally_threaded_workloads() {
        silence_crash_panics();
        let setup = || {
            let pmem = Pmem::new(PmemConfig::crash_sim(64 * 1024));
            (Arc::clone(&pmem), pmem)
        };
        let total = count_ops(setup, threaded_workload);
        assert!(total > 0);
        let summary = sweep_resync(
            strided_points(total, 8),
            FaultPlan::count(),
            setup,
            threaded_workload,
            |pmem, _report| {
                // Post-resync reads must see media: each slot holds a value
                // its owner wrote (or zero), never a torn cache leftover.
                for t in 0..2u64 {
                    for i in 0..8u64 {
                        let v = pmem.read_u64(t * 4096 + i * 64);
                        assert!(v == 0 || v == i + 1, "torn value {v}");
                    }
                }
            },
        );
        assert!(summary.points_crashed > 0, "sweep must exercise crash points");
    }

    #[test]
    fn sharded_crash_stops_only_the_crash_shards_worker() {
        silence_crash_panics();
        let setup = || {
            let pmems: Vec<Arc<Pmem>> = (0..3)
                .map(|_| Pmem::new(PmemConfig::crash_sim(4096)))
                .collect();
            let ctx = pmems.clone();
            (pmems, ctx)
        };
        // Worker s writes 8 fenced lines to device s only.
        let workload = |s: usize, devs: &Vec<Arc<Pmem>>| {
            for i in 0..8u64 {
                devs[s].write_u64(i * 64, i + 1);
                devs[s].pwb(i * 64);
                devs[s].pfence();
            }
        };
        let outcome = sharded_torture_point(
            2,
            FaultPlan::count(),
            1,
            setup,
            workload,
            |pmems, outcome| {
                assert!(outcome.injected);
                // Non-crashed shards: every fenced write durable.
                for s in [0usize, 2] {
                    for i in 0..8u64 {
                        assert_eq!(
                            pmems[s].read_u64(i * 64),
                            i + 1,
                            "shard {s} lost a fenced write to another shard's crash"
                        );
                    }
                }
                // Crash shard: only its written prefix may be there.
                for i in 0..8u64 {
                    let v = pmems[1].read_u64(i * 64);
                    assert!(v == 0 || v == i + 1, "torn value {v} on crash shard");
                }
            },
        );
        assert_eq!(
            outcome.crashed_workers, 1,
            "only the crash shard's worker touches the frozen device"
        );
        assert_eq!(outcome.completed_workers, 2);
    }

    #[test]
    fn replicated_crash_leaves_backup_ahead_of_primary() {
        silence_crash_panics();
        let setup = || {
            let pmems: Vec<Vec<Arc<Pmem>>> = (0..2)
                .map(|s| {
                    (0..2)
                        .map(|r| {
                            let role = if r == 0 { "primary" } else { "backup" };
                            Pmem::new(
                                PmemConfig::crash_sim(4096).with_label(&format!("s{s}/{role}")),
                            )
                        })
                        .collect()
                })
                .collect();
            let ctx = pmems.clone();
            (pmems, ctx)
        };
        // Each shard's worker is a miniature replicated committer: per
        // line, write + fence the backup first, then the primary.
        let workload = |s: usize, devs: &Vec<Vec<Arc<Pmem>>>| {
            for i in 0..8u64 {
                for dev in [&devs[s][1], &devs[s][0]] {
                    dev.write_u64(i * 64, i + 1);
                    dev.pwb(i * 64);
                    dev.pfence();
                }
            }
        };
        // Arm the crash on shard 1's PRIMARY, mid-stream.
        let outcome = replicated_torture_point(
            7,
            FaultPlan::count(),
            1,
            0,
            setup,
            workload,
            |pmems, outcome| {
                assert!(outcome.injected);
                assert_eq!(outcome.crash_label, "s1/primary");
                // The untouched shard is fully durable on both replicas.
                for replica in &pmems[0] {
                    for i in 0..8u64 {
                        assert_eq!(replica.read_u64(i * 64), i + 1);
                    }
                }
                // On the crash shard, backup-first ordering means the
                // backup's image is ahead of (or equal to) the primary's
                // at every slot — the superset-prefix failover relies on.
                for i in 0..8u64 {
                    let p = pmems[1][0].read_u64(i * 64);
                    let b = pmems[1][1].read_u64(i * 64);
                    assert!(p == 0 || p == i + 1, "torn primary value {p}");
                    assert!(b == 0 || b == i + 1, "torn backup value {b}");
                    if p == i + 1 {
                        assert_eq!(b, i + 1, "backup fell behind the primary at slot {i}");
                    }
                }
            },
        );
        assert_eq!(outcome.crashed_workers, 1);
        assert_eq!(outcome.completed_workers, 1);
    }

    #[test]
    fn strided_points_cover_ends() {
        assert_eq!(strided_points(0, 8), Vec::<u64>::new());
        assert_eq!(strided_points(1, 8), vec![0]);
        assert_eq!(strided_points(6, 8), vec![0, 1, 2, 3, 4, 5]);
        let pts = strided_points(1000, 10);
        assert!(pts.len() <= 11, "{pts:?}");
        assert_eq!(pts[0], 0);
        assert_eq!(*pts.last().expect("non-empty"), 999);
    }
}
