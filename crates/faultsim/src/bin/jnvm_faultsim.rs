//! `jnvm-faultsim`: command-line front end for the crash-point engine.
//!
//! ```text
//! # render the commit timeline around an injected power failure
//! jnvm-faultsim timeline [--threads 3] [--point N] [--rounds 4]
//!                        [--keys 4] [--pool-mb 16] [--max-spans 48]
//!
//! # sweep crash points and hold every run to durable linearizability
//! jnvm-faultsim lincheck [--points 12] [--shards 2] [--replicas 2]
//!                        [--crash-shard 0] [--crash-backup] [--seed N]
//!                        [--conns 4] [--ops 120]
//! ```
//!
//! The `lincheck` subcommand drives the kill-during-traffic torture at
//! strided crash points; each run captures every client's
//! invocation/response-stamped op history, reopens the surviving
//! replicas, appends the recovered state as post-recovery reads, and
//! checks the whole thing with the per-key Wing–Gong verifier
//! (`jnvm-lincheck`). The first non-linearizable history stops the sweep
//! and prints its minimized witness — the shortest per-key subsequence
//! that fails — then exits 1.
//!
//! The `timeline` subcommand runs a concurrent failure-atomic KV churn on
//! a CrashSim device with the Optane-like latency profile, arms a power
//! failure at op `--point` (default: the middle of the counted op
//! stream), recovers the pool, and renders the observability layer's
//! span rings as one interleaved timeline: every `fa_stage`,
//! `fa_commit_group`, ordering point, and recovery span, per thread, on
//! the modeled device clock. The crash splits the timeline in two — the
//! spans the workload completed before power was lost, then the recovery
//! pass's marks and replays.
//!
//! Timestamps are **per-thread modeled nanoseconds** (each thread's own
//! charged device time, as if it had a dedicated core), so cross-thread
//! ordering in the merged view is approximate; within a thread it is
//! exact.

use std::sync::Arc;

use jnvm::{Jnvm, JnvmBuilder};
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{register_kvstore, DataGrid, GridConfig, JnvmBackend, Record};
use jnvm_pmem::{
    catch_crash, silence_crash_panics, FaultMode, FaultPlan, LatencyProfile, Pmem, PmemConfig,
    SimMode,
};

struct TimelineOpts {
    threads: usize,
    point: Option<u64>,
    rounds: usize,
    keys: usize,
    pool_mb: u64,
    max_spans: usize,
}

fn opt<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Ctx {
    /// Keeps the runtime (and its heap/pools) alive for the workload's lifetime.
    _rt: Jnvm,
    grid: DataGrid,
}

fn setup(opts: &TimelineOpts) -> (Arc<Pmem>, Ctx) {
    // CrashSim fidelity *with* the Optane latency profile: the injected
    // spin both charges the modeled clock (span timestamps) and spreads
    // the threads' op streams out so the timeline shows real overlap.
    let pmem = Pmem::new(PmemConfig {
        size: opts.pool_mb << 20,
        mode: SimMode::CrashSim,
        latency: LatencyProfile::optane_like(),
        ..PmemConfig::crash_sim(0)
    });
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("create pool");
    let be = JnvmBackend::create(&rt, 2, true).expect("backend");
    let grid = DataGrid::new(
        Arc::new(be),
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    );
    for t in 0..opts.threads {
        for k in 0..opts.keys {
            let v = format!("t{t}k{k}-init").into_bytes();
            assert!(grid.insert(&Record::ycsb(&format!("t{t}k{k}"), &[v.clone(), v])));
        }
    }
    pmem.psync();
    (pmem, Ctx { _rt: rt, grid })
}

/// Per-thread churn: RMW / remove / re-insert over the thread's own keys,
/// contending on the shared heap, redo-log pool and map shards.
fn workload(t: usize, ctx: &Ctx, opts: &TimelineOpts) {
    for i in 0..opts.rounds {
        for k in 0..opts.keys {
            let key = format!("t{t}k{k}");
            let val = format!("t{t}k{k}-{i:04}").into_bytes();
            match i % 3 {
                0 => drop(ctx.grid.rmw(&key, 0, &val)),
                1 => drop(ctx.grid.remove(&key)),
                _ => drop(ctx.grid.insert(&Record::ycsb(&key, &[val.clone(), val]))),
            }
        }
    }
}

fn run_workers(pmem: &Arc<Pmem>, ctx: Ctx, opts: &TimelineOpts) -> usize {
    let crashed = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..opts.threads {
            let ctx = &ctx;
            let crashed = &crashed;
            std::thread::Builder::new()
                .name(format!("worker-{t}"))
                .spawn_scoped(s, move || {
                    if catch_crash(|| workload(t, ctx, opts)).is_err() {
                        crashed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                })
                .expect("spawn worker");
        }
    });
    let injected = pmem.faults_frozen();
    drop(ctx); // unwind destructors must not repair the crash image
    pmem.disarm_faults();
    if injected {
        pmem.resync_cache();
    }
    crashed.load(std::sync::atomic::Ordering::SeqCst)
}

fn render_timeline(max_spans: usize) {
    // Merge every thread's recent spans into one chronological view.
    let mut rows: Vec<(String, jnvm_obs::SpanRecord)> = Vec::new();
    for (thread, _total, spans) in jnvm_obs::recent_spans(max_spans) {
        for s in spans {
            rows.push((thread.clone(), s));
        }
    }
    rows.sort_by_key(|(_, s)| (s.begin_ns, s.seq));
    println!(
        "{:>12}  {:>9}  {:<14}  {:<16}  label",
        "t(ns)", "dur(ns)", "thread", "kind"
    );
    for (thread, s) in &rows {
        println!(
            "{:>12}  {:>9}  {:<14}  {:<16}  {}",
            s.begin_ns,
            s.end_ns - s.begin_ns,
            thread,
            s.kind.name(),
            s.label
        );
    }
    let totals = jnvm_obs::span_totals();
    let summary: Vec<String> = jnvm_obs::SpanKind::all()
        .iter()
        .map(|k| format!("{}={}", k.name(), totals[*k as usize]))
        .collect();
    println!("---\nspans {}", summary.join(" "));
}

fn timeline(args: &[String]) {
    let opts = TimelineOpts {
        threads: opt(args, "--threads", 3),
        point: args
            .iter()
            .position(|a| a == "--point")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--point takes an op index")),
        rounds: opt(args, "--rounds", 4),
        keys: opt(args, "--keys", 4),
        pool_mb: opt(args, "--pool-mb", 16),
        max_spans: opt(args, "--max-spans", 48),
    };
    silence_crash_panics();

    // Count pass: learn the interleaved op total so the default crash
    // point lands mid-stream. Tracing stays off here so the rendered
    // timeline holds only the crash run and its recovery.
    jnvm_obs::set_mode(jnvm_obs::ObsMode::Off);
    let (pmem, ctx) = setup(&opts);
    pmem.arm_faults(FaultPlan::count());
    run_workers(&pmem, ctx, &opts);
    let total = pmem.disarm_faults();
    let point = opts.point.unwrap_or(total / 2);
    println!("op space ~{total}; arming power failure at op {point}\n");
    jnvm_obs::set_mode(jnvm_obs::ObsMode::Log);

    // Crash run on a fresh device, then recovery — both traced.
    let (pmem, ctx) = setup(&opts);
    pmem.arm_faults(FaultPlan {
        mode: FaultMode::CrashAt(point),
        ..FaultPlan::count()
    });
    let crashed = run_workers(&pmem, ctx, &opts);
    println!(
        "crash {}: {crashed}/{} workers unwound; recovering...\n",
        if crashed > 0 { "fired" } else { "did not fire (point past stream end)" },
        opts.threads
    );
    let (_rt, report) = register_kvstore(JnvmBuilder::new())
        .open(Arc::clone(&pmem))
        .expect("recovery");
    println!(
        "recovered: {} live blocks, {} logs replayed\n",
        report.live_blocks, report.replayed_logs
    );
    render_timeline(opts.max_spans);
}

/// Sweep strided crash points through kill-during-traffic and hold every
/// run to durable linearizability. Exits 1 on the first violation, with
/// the checker's minimized witness on stderr.
fn lincheck(args: &[String]) {
    use jnvm_server::{
        kill_during_traffic, traffic_op_count, LoadgenConfig, ServerConfig, TortureConfig,
    };
    let cfg = TortureConfig {
        load: LoadgenConfig {
            conns: opt(args, "--conns", 4),
            ops_per_conn: opt(args, "--ops", 120),
            pipeline: opt(args, "--pipeline", 16),
            fields: opt(args, "--fields", 4),
            value_size: opt(args, "--value-size", 32),
            seed: opt(args, "--seed", 0),
        },
        shards: opt(args, "--map-shards", 16),
        pool_shards: opt(args, "--shards", 2),
        replicas: opt(args, "--replicas", 1),
        crash_shard: opt(args, "--crash-shard", 0),
        crash_replica: usize::from(args.iter().any(|a| a == "--crash-backup")),
        pool_bytes: opt(args, "--pool-mb", 64u64) << 20,
        recovery_threads: opt(args, "--recovery-threads", 2),
        server: ServerConfig::default(),
    };
    let points = opt(args, "--points", 12u64);
    let total = traffic_op_count(&cfg);
    println!(
        "lincheck sweep: {} shard(s) x {} replica(s), seed {}, op space ~{total}, {points} points",
        cfg.pool_shards, cfg.replicas, cfg.load.seed
    );
    let mut checked_keys = 0u64;
    let mut checked_events = 0u64;
    let mut injected = 0u64;
    for k in 0..points {
        let point = 1 + k * total.max(1) / points.max(1);
        match kill_during_traffic(point, &cfg) {
            Ok(r) => {
                checked_keys += r.lincheck_keys;
                checked_events += r.lincheck_events;
                injected += u64::from(r.injected);
                println!(
                    "point {point}: linearizable ({} keys, {} events, acked={}, \
                     promotions={})",
                    r.lincheck_keys, r.lincheck_events, r.acked_writes, r.promotions
                );
            }
            Err(e) => {
                eprintln!("point {point}: VIOLATION\n{e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "verdict: durably linearizable — {points} crash points ({injected} fired), \
         {checked_keys} key partitions, {checked_events} events"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("timeline") => timeline(&args[1..]),
        Some("lincheck") => lincheck(&args[1..]),
        _ => {
            eprintln!(
                "usage: jnvm-faultsim timeline [--threads N] [--point N] [--rounds N] \
                 [--keys N] [--pool-mb MB] [--max-spans N]\n\
                 \x20      jnvm-faultsim lincheck [--points N] [--shards N] [--replicas N] \
                 [--crash-shard N] [--crash-backup] [--seed N] [--conns N] [--ops N]"
            );
            std::process::exit(2);
        }
    }
}
