//! The volatile liveness bitmap used by the recovery procedure (§4.1.3).
//!
//! The bitmap is **striped and atomic** so the parallel recovery traversal
//! can mark from many worker threads without locks: the bit words are
//! `AtomicU64`s set with `fetch_or`, and the `marked`/`highest` bookkeeping
//! is kept per *stripe* (a fixed span of words, each with its own counters)
//! to avoid a single contended cache line. The accessors
//! [`LiveBitmap::marked_count`] / [`LiveBitmap::highest_marked`] merge the
//! stripes on read. `mark` therefore takes `&self` — the single-threaded
//! recovery path and the N-thread path share one type, and a mark that
//! races with another mark of the same block is counted exactly once (the
//! `fetch_or` decides the winner).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bit words per stripe: 1024 words = 65 536 blocks = 16 MiB of heap per
/// stripe at the default 256-B block size.
const STRIPE_WORDS: usize = 1024;

/// Per-stripe bookkeeping, padded onto its own cache line so concurrent
/// markers in different heap regions do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe {
    /// Blocks marked within this stripe.
    marked: AtomicU64,
    /// `highest marked block index + 1` within this stripe; 0 = none.
    highest_plus1: AtomicU64,
}

/// One bit per block; built during the recovery traversal, consumed by
/// [`crate::BlockHeap::rebuild_free_queue`].
#[derive(Debug)]
pub struct LiveBitmap {
    bits: Vec<AtomicU64>,
    stripes: Vec<Stripe>,
    nblocks: u64,
}

impl LiveBitmap {
    /// Create an all-clear bitmap covering `nblocks` blocks.
    pub fn new(nblocks: u64) -> LiveBitmap {
        let words = nblocks.div_ceil(64) as usize;
        let nstripes = words.div_ceil(STRIPE_WORDS).max(1);
        LiveBitmap {
            bits: (0..words).map(|_| AtomicU64::new(0)).collect(),
            stripes: (0..nstripes).map(|_| Stripe::default()).collect(),
            nblocks,
        }
    }

    /// Mark block `idx` live. Returns `true` if it was not marked before.
    /// Safe to call concurrently from any number of threads; a block raced
    /// by several markers reports `true` to exactly one of them.
    pub fn mark(&self, idx: u64) -> bool {
        assert!(idx < self.nblocks, "block {idx} out of bitmap range");
        let (w, b) = ((idx / 64) as usize, idx % 64);
        let prev = self.bits[w].fetch_or(1 << b, Ordering::Relaxed);
        let fresh = prev & (1 << b) == 0;
        if fresh {
            let stripe = &self.stripes[w / STRIPE_WORDS];
            stripe.marked.fetch_add(1, Ordering::Relaxed);
            stripe.highest_plus1.fetch_max(idx + 1, Ordering::Relaxed);
        }
        fresh
    }

    /// Whether block `idx` is marked.
    pub fn is_marked(&self, idx: u64) -> bool {
        assert!(idx < self.nblocks, "block {idx} out of bitmap range");
        self.bits[(idx / 64) as usize].load(Ordering::Relaxed) & (1 << (idx % 64)) != 0
    }

    /// Highest marked block index, if any block is marked (stripe merge).
    pub fn highest_marked(&self) -> Option<u64> {
        self.stripes
            .iter()
            .rev()
            .map(|s| s.highest_plus1.load(Ordering::Relaxed))
            .find(|h| *h > 0)
            .map(|h| h - 1)
    }

    /// Number of marked blocks (stripe merge).
    pub fn marked_count(&self) -> u64 {
        self.stripes.iter().map(|s| s.marked.load(Ordering::Relaxed)).sum()
    }

    /// Number of blocks covered.
    pub fn len(&self) -> u64 {
        self.nblocks
    }

    /// True when the bitmap covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.nblocks == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let bm = LiveBitmap::new(200);
        assert!(!bm.is_marked(0));
        assert!(bm.mark(0));
        assert!(!bm.mark(0), "second mark reports already-marked");
        assert!(bm.mark(63));
        assert!(bm.mark(64));
        assert!(bm.mark(199));
        assert!(bm.is_marked(63));
        assert!(bm.is_marked(64));
        assert!(bm.is_marked(199));
        assert!(!bm.is_marked(100));
        assert_eq!(bm.marked_count(), 4);
        assert_eq!(bm.highest_marked(), Some(199));
    }

    #[test]
    fn empty_bitmap() {
        let bm = LiveBitmap::new(10);
        assert_eq!(bm.highest_marked(), None);
        assert_eq!(bm.marked_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bitmap range")]
    fn out_of_range_panics() {
        let bm = LiveBitmap::new(10);
        bm.mark(10);
    }

    #[test]
    fn stripe_boundaries_merge() {
        // Span several stripes: STRIPE_WORDS * 64 blocks per stripe.
        let per_stripe = (STRIPE_WORDS * 64) as u64;
        let bm = LiveBitmap::new(3 * per_stripe);
        assert!(bm.mark(0));
        assert!(bm.mark(per_stripe)); // first block of stripe 1
        assert!(bm.mark(2 * per_stripe + 17));
        assert_eq!(bm.marked_count(), 3);
        assert_eq!(bm.highest_marked(), Some(2 * per_stripe + 17));
        assert!(bm.is_marked(per_stripe));
        assert!(!bm.is_marked(per_stripe - 1));
    }

    #[test]
    fn concurrent_marks_count_each_block_once() {
        let bm = LiveBitmap::new(4096);
        let fresh = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let bm = &bm;
                let fresh = &fresh;
                s.spawn(move || {
                    // Every thread marks every 4th block plus a shared
                    // contended range; freshness must sum to the distinct
                    // block count.
                    for i in (t..4096).step_by(4) {
                        if bm.mark(i as u64) {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    for i in 0..512u64 {
                        if bm.mark(i) {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(fresh.load(Ordering::Relaxed), 4096);
        assert_eq!(bm.marked_count(), 4096);
        assert_eq!(bm.highest_marked(), Some(4095));
    }
}
