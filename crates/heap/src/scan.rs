//! The volatile liveness bitmap used by the recovery procedure (§4.1.3).

/// One bit per block; built during the recovery traversal, consumed by
/// [`crate::BlockHeap::rebuild_free_queue`].
#[derive(Debug)]
pub struct LiveBitmap {
    bits: Vec<u64>,
    nblocks: u64,
    highest: Option<u64>,
    marked: u64,
}

impl LiveBitmap {
    /// Create an all-clear bitmap covering `nblocks` blocks.
    pub fn new(nblocks: u64) -> LiveBitmap {
        LiveBitmap {
            bits: vec![0; nblocks.div_ceil(64) as usize],
            nblocks,
            highest: None,
            marked: 0,
        }
    }

    /// Mark block `idx` live. Returns `true` if it was not marked before.
    pub fn mark(&mut self, idx: u64) -> bool {
        assert!(idx < self.nblocks, "block {idx} out of bitmap range");
        let (w, b) = ((idx / 64) as usize, idx % 64);
        let fresh = self.bits[w] & (1 << b) == 0;
        if fresh {
            self.bits[w] |= 1 << b;
            self.marked += 1;
            self.highest = Some(self.highest.map_or(idx, |h| h.max(idx)));
        }
        fresh
    }

    /// Whether block `idx` is marked.
    pub fn is_marked(&self, idx: u64) -> bool {
        assert!(idx < self.nblocks, "block {idx} out of bitmap range");
        self.bits[(idx / 64) as usize] & (1 << (idx % 64)) != 0
    }

    /// Highest marked block index, if any block is marked.
    pub fn highest_marked(&self) -> Option<u64> {
        self.highest
    }

    /// Number of marked blocks.
    pub fn marked_count(&self) -> u64 {
        self.marked
    }

    /// Number of blocks covered.
    pub fn len(&self) -> u64 {
        self.nblocks
    }

    /// True when the bitmap covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.nblocks == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut bm = LiveBitmap::new(200);
        assert!(!bm.is_marked(0));
        assert!(bm.mark(0));
        assert!(!bm.mark(0), "second mark reports already-marked");
        assert!(bm.mark(63));
        assert!(bm.mark(64));
        assert!(bm.mark(199));
        assert!(bm.is_marked(63));
        assert!(bm.is_marked(64));
        assert!(bm.is_marked(199));
        assert!(!bm.is_marked(100));
        assert_eq!(bm.marked_count(), 4);
        assert_eq!(bm.highest_marked(), Some(199));
    }

    #[test]
    fn empty_bitmap() {
        let bm = LiveBitmap::new(10);
        assert_eq!(bm.highest_marked(), None);
        assert_eq!(bm.marked_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bitmap range")]
    fn out_of_range_panics() {
        let mut bm = LiveBitmap::new(10);
        bm.mark(10);
    }
}
