//! # jnvm-heap — the J-NVM persistent block heap
//!
//! Implements §4.1 of the paper: the persistent heap is an array of
//! **fixed-size blocks** (256 B by default, matching Optane's internal
//! 256-B write unit). Fragmentation is eliminated by design — a large object
//! is a linked list of blocks — at the price of indirection, which the
//! volatile proxies of `jnvm` hide.
//!
//! Each block starts with a one-word header (Table 2 of the paper):
//!
//! ```text
//!   id (15 bits) | valid (1 bit) | next (48 bits)
//!   id != 0, valid = 1  ->  valid master block of class `id`
//!   id != 0, valid = 0  ->  invalid master block (freed at recovery)
//!   id == 0, valid = 0  ->  slave block or free block
//! ```
//!
//! Allocation uses a **volatile free queue** plus a **persistent bump
//! pointer** (§4.1.2): the allocator touches NVMM only when bumping. Small
//! immutable objects avoid internal fragmentation through per-size-class
//! [`pool`] allocators that pack several objects per block (§4.4).
//!
//! The recovery procedure of §4.1.3 is split between this crate (header
//! scanning, the live bitmap, free-queue reconstruction) and the `jnvm`
//! runtime (the object-graph traversal, which needs class information).

mod alloc;
mod error;
pub mod par;
#[cfg(test)]
mod proptests;
mod layout;
mod pool;
mod scan;

pub use alloc::{BlockHeap, HeapConfig, HeapStats};
pub use error::HeapError;
pub use layout::{
    BlockHeader, CLASS_ID_MAX, CLASS_ID_POOL, FIRST_USER_CLASS_ID, HEADER_BYTES, NULL_BLOCK,
    SUPERBLOCK_BYTES,
};
pub use pool::{PoolManager, POOL_SLOT_CLASSES};
pub use scan::LiveBitmap;
