//! Fork/join helpers shared by the parallel recovery passes (heap sweeps
//! here, log replay and the mark traversal in `jnvm`).
//!
//! The one delicate piece is crash propagation: a recovery worker that
//! races a crash-point injection ([`jnvm_pmem::FaultPlan`]) unwinds with a
//! [`CrashInjected`] panic — and `std::thread::scope` replaces a joined
//! panic payload with its own generic message, which would make the crash
//! uncatchable by [`jnvm_pmem::catch_crash`]. [`run_workers`] therefore
//! catches the crash *inside* each worker and re-throws it from the
//! calling thread after every worker has quiesced, preferring the primary
//! trigger over secondary unwinds so sweep reports name the real crash
//! point. Non-crash worker panics (real bugs) propagate unchanged.

use std::time::Duration;

use jnvm_pmem::{catch_crash, thread_charged_ns, CrashInjected};

/// Split `[lo, hi)` into at most `parts` contiguous non-empty chunks.
pub fn partition_range(lo: u64, hi: u64, parts: usize) -> Vec<(u64, u64)> {
    if lo >= hi {
        return Vec::new();
    }
    let len = hi - lo;
    let parts = (parts.max(1) as u64).min(len);
    let chunk = len.div_ceil(parts);
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = lo;
    while start < hi {
        let end = (start + chunk).min(hi);
        out.push((start, end));
        start = end;
    }
    out
}

/// Run `f` over `items`, one scoped thread per item, and join. An injected
/// crash in any worker is re-thrown on the calling thread (primary
/// preferred over secondary) once all workers have stopped, so the caller
/// unwinds with a payload [`jnvm_pmem::catch_crash`] understands.
pub fn run_workers<I, T>(items: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    run_workers_timed(items, f).into_iter().map(|(r, _)| r).collect()
}

/// [`run_workers`], but each result is paired with the worker's **modeled
/// device time**: the [`jnvm_pmem::thread_charged_ns`] delta across the
/// worker's run, i.e. the latency-model nanoseconds that worker paid. On a
/// host with a core per worker this tracks wall clock; on smaller hosts
/// the busy-wait latency model time-shares cores and wall clock flattens,
/// while the per-worker charged time still reflects how the work actually
/// divided. All-zero on devices without a latency model.
pub fn run_workers_timed<I, T>(items: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<(T, Duration)>
where
    I: Send,
    T: Send,
{
    let results: Vec<(Result<T, CrashInjected>, Duration)> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| {
                s.spawn(move || {
                    let before = thread_charged_ns();
                    let r = catch_crash(|| f(item));
                    (r, Duration::from_nanos(thread_charged_ns() - before))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // A non-crash panic is a real bug: propagate it unchanged.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(results.len());
    let mut crash: Option<CrashInjected> = None;
    for (r, dt) in results {
        match r {
            Ok(v) => out.push((v, dt)),
            Err(ci) => {
                let replace = match &crash {
                    None => true,
                    Some(held) => held.secondary && !ci.secondary,
                };
                if replace {
                    crash = Some(ci);
                }
            }
        }
    }
    if let Some(ci) = crash {
        std::panic::panic_any(ci);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_range_exactly() {
        assert_eq!(partition_range(5, 5, 4), Vec::<(u64, u64)>::new());
        assert_eq!(partition_range(0, 3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        let chunks = partition_range(16, 1016, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.first(), Some(&(16, 266)));
        assert_eq!(chunks.last().map(|c| c.1), Some(1016));
        let covered: u64 = chunks.iter().map(|(lo, hi)| hi - lo).sum();
        assert_eq!(covered, 1000);
    }

    #[test]
    fn run_workers_collects_in_order() {
        let out = run_workers(vec![1u64, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn run_workers_rethrows_injected_crash_catchably() {
        use jnvm_pmem::{silence_crash_panics, FaultPlan, Pmem, PmemConfig};
        silence_crash_panics();
        let pmem = Pmem::new(PmemConfig::crash_sim(4096));
        pmem.arm_faults(FaultPlan::crash_at(2));
        let outcome = catch_crash(|| {
            run_workers(vec![0u64, 1, 2, 3], |i| {
                pmem.write_u64(i * 64, 1);
                pmem.pwb(i * 64);
            })
        });
        pmem.disarm_faults();
        let crash = outcome.expect_err("crash must propagate out of the join");
        assert!(!crash.secondary, "primary trigger preferred over secondary unwinds");
    }
}
