//! On-media layout: superblock fields and the one-word block header of
//! Table 2.

use crate::error::HeapError;

/// Bytes reserved at the start of the pool for the superblock.
pub const SUPERBLOCK_BYTES: u64 = 4096;

/// Size in bytes of the per-block header word.
pub const HEADER_BYTES: u64 = 8;

/// The null block index. Block 0 lies inside the superblock region and is
/// never allocatable, so 0 doubles as "no next block" / "null reference".
pub const NULL_BLOCK: u64 = 0;

/// Maximum class id representable in the 15-bit header field.
pub const CLASS_ID_MAX: u16 = (1 << 15) - 1;

/// Reserved class id marking a pool block (§4.4 small-immutable-object
/// pools). Pool blocks are not ordinary masters: recovery treats them
/// specially, reclaiming individual slots.
pub const CLASS_ID_POOL: u16 = 1;

/// First class id handed out to user classes by the `jnvm` registry.
/// Ids below this are reserved for the heap/runtime.
pub const FIRST_USER_CLASS_ID: u16 = 16;

// Superblock field offsets (bytes from pool start).
pub(crate) const SB_MAGIC: u64 = 0;
pub(crate) const SB_VERSION: u64 = 8;
pub(crate) const SB_BLOCK_SIZE: u64 = 12;
pub(crate) const SB_NBLOCKS: u64 = 16;
pub(crate) const SB_BUMP: u64 = 24;
pub(crate) const SB_DATA_START: u64 = 32;
pub(crate) const SB_ROOT_SLOTS: u64 = 40;
pub(crate) const ROOT_SLOT_COUNT: u64 = 8;

pub(crate) const HEAP_MAGIC: u64 = 0x4a4e564d48454150; // "JNVMHEAP"
pub(crate) const HEAP_VERSION: u32 = 1;

/// Decoded block header (and pooled-object mini-header — same format).
///
/// Encoding: `id` in bits 49..64, `valid` in bit 48, `next` (block index) in
/// bits 0..48, exactly 15 + 1 + 48 bits as in Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Class id; 0 for slave and free blocks.
    pub id: u16,
    /// Validity bit (§3.2.3): an object is alive only if reachable *and*
    /// valid.
    pub valid: bool,
    /// Next block of the object's chain, or [`NULL_BLOCK`].
    pub next: u64,
}

impl BlockHeader {
    /// Header of a free block: all zeroes.
    pub const FREE: BlockHeader = BlockHeader {
        id: 0,
        valid: false,
        next: NULL_BLOCK,
    };

    /// Encode into the on-media word.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds 15 bits or `next` exceeds 48 bits (debug
    /// assertions; both are enforced by construction elsewhere).
    pub fn encode(&self) -> u64 {
        debug_assert!(self.id <= CLASS_ID_MAX);
        debug_assert!(self.next < (1u64 << 48));
        ((self.id as u64) << 49) | ((self.valid as u64) << 48) | (self.next & ((1u64 << 48) - 1))
    }

    /// Decode from the on-media word.
    pub fn decode(word: u64) -> BlockHeader {
        BlockHeader {
            id: (word >> 49) as u16,
            valid: (word >> 48) & 1 == 1,
            next: word & ((1u64 << 48) - 1),
        }
    }

    /// A slave block belonging to some object, pointing at the next one.
    pub fn slave(next: u64) -> BlockHeader {
        BlockHeader {
            id: 0,
            valid: false,
            next,
        }
    }

    /// A master block of class `id`, initially invalid (§4.1.4: "a master
    /// block is necessarily in the invalid state" right after allocation).
    pub fn master(id: u16, next: u64) -> Result<BlockHeader, HeapError> {
        if id == 0 || id > CLASS_ID_MAX {
            return Err(HeapError::BadClassId(id));
        }
        Ok(BlockHeader {
            id,
            valid: false,
            next,
        })
    }

    /// True for a valid master block (Table 2 row 1).
    pub fn is_valid_master(&self) -> bool {
        self.id != 0 && self.valid
    }

    /// True for an invalid master block (Table 2 row 2).
    pub fn is_invalid_master(&self) -> bool {
        self.id != 0 && !self.valid
    }

    /// True for a free-or-slave header (Table 2 row 3).
    pub fn is_free_or_slave(&self) -> bool {
        self.id == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let cases = [
            BlockHeader { id: 0, valid: false, next: 0 },
            BlockHeader { id: 1, valid: true, next: 0 },
            BlockHeader { id: CLASS_ID_MAX, valid: true, next: (1u64 << 48) - 1 },
            BlockHeader { id: 1234, valid: false, next: 99_999 },
        ];
        for h in cases {
            assert_eq!(BlockHeader::decode(h.encode()), h);
        }
    }

    #[test]
    fn table2_states() {
        let valid_master = BlockHeader { id: 7, valid: true, next: 3 };
        assert!(valid_master.is_valid_master());
        assert!(!valid_master.is_invalid_master());
        assert!(!valid_master.is_free_or_slave());

        let invalid_master = BlockHeader { id: 7, valid: false, next: 3 };
        assert!(invalid_master.is_invalid_master());
        assert!(!invalid_master.is_valid_master());

        let slave = BlockHeader::slave(5);
        assert!(slave.is_free_or_slave());
        assert_eq!(slave.next, 5);

        assert!(BlockHeader::FREE.is_free_or_slave());
        assert_eq!(BlockHeader::FREE.encode(), 0);
    }

    #[test]
    fn master_rejects_bad_ids() {
        assert!(BlockHeader::master(0, 0).is_err());
        assert!(BlockHeader::master(CLASS_ID_MAX, 0).is_ok());
    }

    #[test]
    fn valid_bit_is_bit_48() {
        let h = BlockHeader { id: 0x7fff, valid: true, next: 0 };
        assert_eq!(h.encode() >> 48 & 1, 1);
        let h2 = BlockHeader { id: 0x7fff, valid: false, next: 0 };
        assert_eq!(h2.encode() >> 48 & 1, 0);
    }
}
