//! The block heap: format/open, block and chain allocation, free, headers,
//! root slots and free-queue reconstruction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::queue::SegQueue;
use jnvm_pmem::Pmem;

use crate::error::HeapError;
use crate::layout::{
    BlockHeader, HEADER_BYTES, HEAP_MAGIC, HEAP_VERSION, NULL_BLOCK, ROOT_SLOT_COUNT,
    SB_BLOCK_SIZE, SB_BUMP, SB_DATA_START, SB_MAGIC, SB_NBLOCKS, SB_ROOT_SLOTS, SB_VERSION,
    SUPERBLOCK_BYTES,
};
use crate::par::partition_range;
use crate::scan::LiveBitmap;

/// Heap geometry parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeapConfig {
    /// Block size in bytes. Must be a power of two, at least 64. The paper
    /// measures 256 B (Optane's internal write unit) to be optimal (§5.3.5).
    pub block_size: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig { block_size: 256 }
    }
}

/// Volatile counters describing heap occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Blocks handed out since this handle was created.
    pub blocks_allocated: u64,
    /// Blocks returned since this handle was created.
    pub blocks_freed: u64,
    /// Current bump index (first never-allocated block).
    pub bump: u64,
    /// Blocks currently in the volatile free queue.
    pub free_queue_len: u64,
    /// Total allocatable blocks in the pool.
    pub capacity_blocks: u64,
}

/// The persistent block heap (§4.1).
///
/// A `BlockHeap` is a volatile *view* over a [`Pmem`] pool: the free queue
/// lives in volatile memory and is rebuilt by recovery, exactly as in the
/// paper. Dropping the view loses nothing.
pub struct BlockHeap {
    pmem: Arc<Pmem>,
    block_size: u64,
    nblocks: u64,
    data_start: u64,
    free: SegQueue<u64>,
    allocated: AtomicU64,
    freed: AtomicU64,
}

impl BlockHeap {
    /// Format a fresh heap over `pmem`, erasing any previous content of the
    /// superblock region.
    pub fn format(pmem: Arc<Pmem>, cfg: HeapConfig) -> Result<Arc<BlockHeap>, HeapError> {
        if !cfg.block_size.is_power_of_two() || cfg.block_size < 64 {
            return Err(HeapError::BadSuperblock(format!(
                "block size {} must be a power of two >= 64",
                cfg.block_size
            )));
        }
        let nblocks = pmem.len() / cfg.block_size;
        let data_start = SUPERBLOCK_BYTES.div_ceil(cfg.block_size);
        if nblocks <= data_start + 1 {
            return Err(HeapError::BadSuperblock(format!(
                "pool of {} bytes too small for block size {}",
                pmem.len(),
                cfg.block_size
            )));
        }
        pmem.zero_range(0, SUPERBLOCK_BYTES);
        pmem.write_u64(SB_MAGIC, HEAP_MAGIC);
        pmem.write_u32(SB_VERSION, HEAP_VERSION);
        pmem.write_u32(SB_BLOCK_SIZE, cfg.block_size as u32);
        pmem.write_u64(SB_NBLOCKS, nblocks);
        pmem.write_u64(SB_BUMP, data_start);
        pmem.write_u64(SB_DATA_START, data_start);
        pmem.pwb_range(0, SUPERBLOCK_BYTES);
        pmem.psync();
        Ok(Arc::new(BlockHeap {
            pmem,
            block_size: cfg.block_size,
            nblocks,
            data_start,
            free: SegQueue::new(),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }))
    }

    /// Attach to an existing heap. The free queue starts empty — run the
    /// `jnvm` recovery procedure (or [`BlockHeap::rebuild_free_queue`]) to
    /// repopulate it; until then, allocation falls back to the bump pointer.
    pub fn open(pmem: Arc<Pmem>) -> Result<Arc<BlockHeap>, HeapError> {
        if pmem.len() < SUPERBLOCK_BYTES {
            return Err(HeapError::BadSuperblock("pool smaller than superblock".into()));
        }
        if pmem.read_u64(SB_MAGIC) != HEAP_MAGIC {
            return Err(HeapError::BadSuperblock("bad magic".into()));
        }
        let version = pmem.read_u32(SB_VERSION);
        if version != HEAP_VERSION {
            return Err(HeapError::BadSuperblock(format!("unsupported version {version}")));
        }
        let block_size = pmem.read_u32(SB_BLOCK_SIZE) as u64;
        if !block_size.is_power_of_two() || block_size < 64 {
            return Err(HeapError::BadSuperblock(format!("corrupt block size {block_size}")));
        }
        let nblocks = pmem.read_u64(SB_NBLOCKS);
        if nblocks > pmem.len() / block_size {
            return Err(HeapError::BadSuperblock("block count exceeds pool".into()));
        }
        let data_start = pmem.read_u64(SB_DATA_START);
        Ok(Arc::new(BlockHeap {
            pmem,
            block_size,
            nblocks,
            data_start,
            free: SegQueue::new(),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }))
    }

    /// The underlying device.
    pub fn pmem(&self) -> &Arc<Pmem> {
        &self.pmem
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Usable payload bytes per block (block size minus the header word).
    pub fn payload_size(&self) -> u64 {
        self.block_size - HEADER_BYTES
    }

    /// Total number of blocks (including the superblock region).
    pub fn nblocks(&self) -> u64 {
        self.nblocks
    }

    /// First allocatable block index.
    pub fn data_start(&self) -> u64 {
        self.data_start
    }

    /// Byte address of block `idx`.
    pub fn block_addr(&self, idx: u64) -> u64 {
        idx * self.block_size
    }

    /// Byte address of the payload of block `idx` (just past the header).
    pub fn payload_addr(&self, idx: u64) -> u64 {
        idx * self.block_size + HEADER_BYTES
    }

    /// Block index containing byte address `addr`.
    pub fn block_of_addr(&self, addr: u64) -> u64 {
        addr / self.block_size
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            blocks_allocated: self.allocated.load(Ordering::Relaxed),
            blocks_freed: self.freed.load(Ordering::Relaxed),
            bump: self.bump(),
            free_queue_len: self.free.len() as u64,
            capacity_blocks: self.nblocks - self.data_start,
        }
    }

    // ------------------------------------------------------------------
    // Headers.
    // ------------------------------------------------------------------

    /// Read the header of block `idx`.
    pub fn read_header(&self, idx: u64) -> BlockHeader {
        debug_assert!(idx >= self.data_start && idx < self.nblocks, "block {idx}");
        BlockHeader::decode(self.pmem.read_u64(self.block_addr(idx)))
    }

    /// Write the header of block `idx` (no flush — callers decide when the
    /// header must persist, per the paper's fence-minimization discipline).
    pub fn write_header(&self, idx: u64, h: BlockHeader) {
        debug_assert!(idx >= self.data_start && idx < self.nblocks, "block {idx}");
        self.pmem.write_u64(self.block_addr(idx), h.encode());
    }

    /// Write the header of block `idx` and enqueue its line for write-back.
    pub fn write_header_pwb(&self, idx: u64, h: BlockHeader) {
        self.write_header(idx, h);
        self.pmem.pwb(self.block_addr(idx));
    }

    /// Set or clear the valid bit of a master block and `pwb` the header
    /// line. Does **not** fence (§3.2.3: validation is fence-free so several
    /// validations can share one fence).
    pub fn set_valid(&self, idx: u64, valid: bool) {
        let mut h = self.read_header(idx);
        h.valid = valid;
        self.write_header_pwb(idx, h);
    }

    // ------------------------------------------------------------------
    // Allocation (§4.1.2, §4.1.4).
    // ------------------------------------------------------------------

    fn bump(&self) -> u64 {
        self.pmem.read_u64(SB_BUMP)
    }

    /// Allocate one raw block. Tries the volatile free queue first, then the
    /// persistent bump pointer. The block's header is *not* initialized.
    pub fn alloc_block(&self) -> Result<u64, HeapError> {
        if let Some(idx) = self.free.pop() {
            self.allocated.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        let idx = self.pmem.fetch_add_u64(SB_BUMP, 1);
        if idx >= self.nblocks {
            // Undo is unnecessary: a bump past the end stays past the end.
            return Err(HeapError::OutOfMemory { requested: 1 });
        }
        // Persist the bump lazily (pwb, no fence): recovery recomputes the
        // effective bump as max(persisted, highest live block + 1).
        self.pmem.pwb(SB_BUMP);
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Ok(idx)
    }

    /// Number of blocks needed for an object with `payload_bytes` of fields.
    pub fn blocks_for(&self, payload_bytes: u64) -> u64 {
        payload_bytes.max(1).div_ceil(self.payload_size())
    }

    /// Allocate the chain of blocks for an object of class `class_id` with
    /// `payload_bytes` of field data (§4.1.4).
    ///
    /// The returned master block is in the **invalid** state; the object
    /// becomes alive only once reachable *and* validated. No fence is
    /// executed. Returns the master block index.
    pub fn alloc_chain(&self, class_id: u16, payload_bytes: u64) -> Result<u64, HeapError> {
        let n = self.blocks_for(payload_bytes);
        let mut blocks = Vec::with_capacity(n as usize);
        for i in 0..n {
            match self.alloc_block() {
                Ok(b) => blocks.push(b),
                Err(e) => {
                    // Return the partial chain to the free queue.
                    for b in blocks {
                        self.free.push(b);
                        self.freed.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = i;
                    return Err(e);
                }
            }
        }
        // Link slaves back-to-front, then the master.
        for w in (1..blocks.len()).rev() {
            let next = if w + 1 < blocks.len() { blocks[w + 1] } else { NULL_BLOCK };
            self.write_header(blocks[w], BlockHeader::slave(next));
        }
        let next = if blocks.len() > 1 { blocks[1] } else { NULL_BLOCK };
        self.write_header(blocks[0], BlockHeader::master(class_id, next)?);
        Ok(blocks[0])
    }

    /// Collect the block indexes of the object whose master block is
    /// `master` (the master itself first).
    pub fn chain_blocks(&self, master: u64) -> Vec<u64> {
        let mut out = vec![master];
        let mut cur = self.read_header(master).next;
        while cur != NULL_BLOCK {
            out.push(cur);
            cur = self.read_header(cur).next;
        }
        out
    }

    /// Grow the chain of `master` by `extra` blocks, returning the indexes
    /// of the new blocks. New blocks are appended at the tail; the tail link
    /// is published with a `pwb` but no fence.
    pub fn extend_chain(&self, master: u64, extra: u64) -> Result<Vec<u64>, HeapError> {
        let chain = self.chain_blocks(master);
        let mut tail = *chain.last().expect("chain contains at least the master");
        let mut added = Vec::with_capacity(extra as usize);
        for _ in 0..extra {
            let b = self.alloc_block()?;
            // The new tail's header must be written back, not just written:
            // the link publishing it is pwb'ed below, and a crash that
            // persists the link but not this header leaves `next` pointing
            // at a block whose media header is stale. For a recycled block
            // that stale header is the block's *previous* life — e.g. a
            // slave link into some other chain — and the chain walk wanders
            // into foreign blocks after recovery.
            self.write_header_pwb(b, BlockHeader::slave(NULL_BLOCK));
            let mut th = self.read_header(tail);
            th.next = b;
            self.write_header_pwb(tail, th);
            self.pmem.publish_point(
                "chain-extend",
                &[(self.block_addr(b), HEADER_BYTES), (self.block_addr(tail), HEADER_BYTES)],
            );
            added.push(b);
            tail = b;
        }
        Ok(added)
    }

    // ------------------------------------------------------------------
    // Deletion (§4.1.5).
    // ------------------------------------------------------------------

    /// Free the object rooted at master block `master`: invalidate the
    /// master (one header write + `pwb`, **no fence** — the paper lets the
    /// caller batch a single fence over a whole graph of frees) and recycle
    /// every block of the chain through the volatile free queue.
    pub fn free_object(&self, master: u64) {
        let blocks = self.chain_blocks(master);
        let mut h = self.read_header(master);
        h.valid = false;
        self.write_header_pwb(master, h);
        for b in blocks {
            self.free.push(b);
            self.freed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Push a block onto the volatile free queue without touching NVMM
    /// (recovery path).
    pub fn push_free(&self, idx: u64) {
        self.free.push(idx);
    }

    // ------------------------------------------------------------------
    // Root slots.
    // ------------------------------------------------------------------

    /// Read persistent root slot `slot` (0-based, 8 slots). Slots anchor the
    /// runtime's class table, root map and failure-atomic log directory.
    pub fn root_slot(&self, slot: u64) -> u64 {
        assert!(slot < ROOT_SLOT_COUNT, "root slot {slot} out of range");
        self.pmem.read_u64(SB_ROOT_SLOTS + slot * 8)
    }

    /// Write persistent root slot `slot`, with `pwb` + `pfence` (root slots
    /// are written once per pool lifetime; durability simplicity wins).
    pub fn set_root_slot(&self, slot: u64, value: u64) {
        assert!(slot < ROOT_SLOT_COUNT, "root slot {slot} out of range");
        self.pmem.write_u64(SB_ROOT_SLOTS + slot * 8, value);
        self.pmem.pwb(SB_ROOT_SLOTS + slot * 8);
        self.pmem.pfence();
        self.pmem.ordering_point("root-publish", &[(SB_ROOT_SLOTS + slot * 8, 8)]);
    }

    // ------------------------------------------------------------------
    // Recovery support (§4.1.3).
    // ------------------------------------------------------------------

    /// Rebuild the volatile free queue from a completed liveness bitmap:
    /// every unmarked block in `[data_start, effective_bump)` is zeroed
    /// (clearing its valid bit so a future allocation starts invalid) and
    /// queued. Also repairs the persistent bump pointer. Ends with `psync`,
    /// as the paper's recovery procedure does.
    ///
    /// Returns the number of free blocks found.
    pub fn rebuild_free_queue(&self, live: &LiveBitmap) -> u64 {
        self.rebuild_free_queue_parallel(live, 1).0
    }

    /// [`BlockHeap::rebuild_free_queue`] with the block range partitioned
    /// over `threads` sweep workers. Every header clear is idempotent, so a
    /// crash mid-sweep followed by a second recovery converges to the same
    /// heap. With `threads <= 1` the sweep runs inline on the caller (the
    /// sequential oracle path); workers issue their own `pfence` before
    /// exiting, since a persistence domain drains only its owner's
    /// write-backs. Free blocks enter the queue in ascending block order
    /// regardless of the thread count.
    ///
    /// Returns the free-block count plus each sweep worker's modeled
    /// device time (see [`crate::par::run_workers_timed`]).
    pub fn rebuild_free_queue_parallel(
        &self,
        live: &LiveBitmap,
        threads: usize,
    ) -> (u64, Vec<Duration>) {
        let persisted_bump = self.bump().min(self.nblocks);
        let effective_bump = persisted_bump.max(live.highest_marked().map_or(0, |b| b + 1));
        let sweep_chunk = |lo: u64, hi: u64| -> Vec<u64> {
            let mut freed = Vec::new();
            for idx in lo..hi {
                if !live.is_marked(idx) {
                    // Ensure a recycled block cannot resurrect as a stale
                    // valid master: persistently clear its header.
                    self.write_header_pwb(idx, BlockHeader::FREE);
                    freed.push(idx);
                }
            }
            freed
        };
        let chunks = partition_range(self.data_start, effective_bump, threads);
        let (freed_lists, worker_times): (Vec<Vec<u64>>, Vec<Duration>) = if chunks.len() <= 1 {
            let before = jnvm_pmem::thread_charged_ns();
            let lists: Vec<Vec<u64>> =
                chunks.into_iter().map(|(lo, hi)| sweep_chunk(lo, hi)).collect();
            let dt = Duration::from_nanos(jnvm_pmem::thread_charged_ns() - before);
            (lists, vec![dt])
        } else {
            crate::par::run_workers_timed(chunks, |(lo, hi)| {
                let freed = sweep_chunk(lo, hi);
                // Drain this worker's header-clear write-backs (a
                // persistence domain drains only its owner's queue).
                self.pmem.pfence();
                freed
            })
            .into_iter()
            .unzip()
        };
        let mut freed = 0;
        for list in freed_lists {
            for idx in list {
                self.free.push(idx);
                freed += 1;
            }
        }
        if effective_bump != persisted_bump {
            self.pmem.write_u64(SB_BUMP, effective_bump);
            self.pmem.pwb(SB_BUMP);
        }
        self.pmem.psync();
        (freed, worker_times)
    }

    /// Create a liveness bitmap sized for this heap.
    pub fn new_bitmap(&self) -> LiveBitmap {
        LiveBitmap::new(self.nblocks)
    }

    /// Iterate over every block header in `[data_start, bump)`, the
    /// header-inspection pass used by the fast `nogc` recovery variant
    /// (§5.3.3, J-PFA-nogc).
    pub fn for_each_header(&self, mut f: impl FnMut(u64, BlockHeader)) {
        for idx in self.data_start..self.scan_end() {
            f(idx, self.read_header(idx));
        }
    }

    /// One past the last block a header scan must visit (`min(bump,
    /// nblocks)`). Parallel recovery passes partition `[data_start,
    /// scan_end)` among their workers.
    pub fn scan_end(&self) -> u64 {
        self.bump().min(self.nblocks)
    }
}

impl std::fmt::Debug for BlockHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockHeap")
            .field("block_size", &self.block_size)
            .field("nblocks", &self.nblocks)
            .field("data_start", &self.data_start)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm_pmem::{CrashPolicy, PmemConfig};

    fn heap(bytes: u64) -> Arc<BlockHeap> {
        let pmem = Pmem::new(PmemConfig::crash_sim(bytes));
        BlockHeap::format(pmem, HeapConfig::default()).unwrap()
    }

    #[test]
    fn format_and_open() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let h = BlockHeap::format(Arc::clone(&pmem), HeapConfig::default()).unwrap();
        assert_eq!(h.block_size(), 256);
        assert_eq!(h.payload_size(), 248);
        assert_eq!(h.data_start(), 16); // 4096 / 256
        drop(h);
        let h2 = BlockHeap::open(pmem).unwrap();
        assert_eq!(h2.block_size(), 256);
        assert_eq!(h2.nblocks(), (1 << 20) / 256);
    }

    #[test]
    fn open_rejects_unformatted_pool() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        assert!(BlockHeap::open(pmem).is_err());
    }

    #[test]
    fn format_rejects_bad_block_size() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        assert!(BlockHeap::format(Arc::clone(&pmem), HeapConfig { block_size: 100 }).is_err());
        assert!(BlockHeap::format(pmem, HeapConfig { block_size: 32 }).is_err());
    }

    #[test]
    fn alloc_bumps_sequentially() {
        let h = heap(1 << 20);
        let a = h.alloc_block().unwrap();
        let b = h.alloc_block().unwrap();
        assert_eq!(a, h.data_start());
        assert_eq!(b, a + 1);
    }

    #[test]
    fn alloc_prefers_free_queue() {
        let h = heap(1 << 20);
        let a = h.alloc_block().unwrap();
        let _b = h.alloc_block().unwrap();
        h.push_free(a);
        assert_eq!(h.alloc_block().unwrap(), a);
    }

    #[test]
    fn oom_when_exhausted() {
        let h = heap(8 * 1024); // 32 blocks, 16 reserved
        let capacity = h.nblocks() - h.data_start();
        for _ in 0..capacity {
            h.alloc_block().unwrap();
        }
        assert!(matches!(h.alloc_block(), Err(HeapError::OutOfMemory { .. })));
    }

    #[test]
    fn chain_allocation_links_blocks() {
        let h = heap(1 << 20);
        // 3 blocks: 248 * 2 + 10 bytes.
        let master = h.alloc_chain(42, 248 * 2 + 10).unwrap();
        let chain = h.chain_blocks(master);
        assert_eq!(chain.len(), 3);
        let mh = h.read_header(master);
        assert_eq!(mh.id, 42);
        assert!(!mh.valid, "fresh master must be invalid");
        assert_eq!(mh.next, chain[1]);
        let s1 = h.read_header(chain[1]);
        assert!(s1.is_free_or_slave());
        assert_eq!(s1.next, chain[2]);
        assert_eq!(h.read_header(chain[2]).next, NULL_BLOCK);
    }

    #[test]
    fn blocks_for_rounding() {
        let h = heap(1 << 20);
        assert_eq!(h.blocks_for(0), 1);
        assert_eq!(h.blocks_for(1), 1);
        assert_eq!(h.blocks_for(248), 1);
        assert_eq!(h.blocks_for(249), 2);
        assert_eq!(h.blocks_for(248 * 5), 5);
    }

    #[test]
    fn free_object_invalidates_and_recycles() {
        let h = heap(1 << 20);
        let master = h.alloc_chain(7, 500).unwrap();
        let chain = h.chain_blocks(master);
        h.set_valid(master, true);
        h.free_object(master);
        assert!(h.read_header(master).is_invalid_master());
        // All chain blocks are reallocatable.
        let mut got = Vec::new();
        for _ in 0..chain.len() {
            got.push(h.alloc_block().unwrap());
        }
        got.sort_unstable();
        let mut want = chain.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn extend_chain_appends() {
        let h = heap(1 << 20);
        let master = h.alloc_chain(7, 100).unwrap();
        let added = h.extend_chain(master, 2).unwrap();
        assert_eq!(added.len(), 2);
        let chain = h.chain_blocks(master);
        assert_eq!(chain.len(), 3);
        assert_eq!(&chain[1..], &added[..]);
    }

    #[test]
    fn extend_chain_onto_recycled_block_survives_crash() {
        // Regression: extend_chain published the tail link with a pwb but
        // wrote the new tail's own header *without* one. For a fresh bump
        // block the lost header happens to equal slave(NULL) = 0 on media,
        // but a recycled block still carries its previous life's header —
        // here a slave link into the freed object's chain — and a crash
        // after the caller's batching fence left the extended chain
        // wandering into foreign blocks.
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let h = BlockHeap::format(Arc::clone(&pmem), HeapConfig::default()).unwrap();
        // A 3-block object whose slave links are durable on media.
        let victim = h.alloc_chain(7, 248 * 2 + 10).unwrap();
        for b in h.chain_blocks(victim) {
            let hd = h.read_header(b);
            h.write_header_pwb(b, hd);
        }
        pmem.pfence();
        // Free it: its blocks enter the free queue with their stale slave
        // links still on media (free_object touches only the master header).
        h.free_object(victim);
        pmem.pfence();
        // Reuse: a fresh single-block object out of the free queue...
        let master = h.alloc_chain(9, 10).unwrap();
        h.write_header_pwb(master, h.read_header(master));
        pmem.pfence();
        // ...extended by one recycled block, then the caller's batching
        // fence, then power failure.
        let added = h.extend_chain(master, 1).unwrap();
        pmem.pfence();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let h2 = BlockHeap::open(pmem).unwrap();
        let chain = h2.chain_blocks(master);
        assert_eq!(
            chain,
            vec![master, added[0]],
            "chain walk wandered into the recycled block's previous life"
        );
        assert_eq!(h2.read_header(added[0]).next, NULL_BLOCK);
    }

    #[test]
    fn root_slots_persist() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let h = BlockHeap::format(Arc::clone(&pmem), HeapConfig::default()).unwrap();
        h.set_root_slot(2, 0xabcd);
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let h2 = BlockHeap::open(pmem).unwrap();
        assert_eq!(h2.root_slot(2), 0xabcd);
        assert_eq!(h2.root_slot(3), 0);
    }

    #[test]
    fn set_valid_persists_with_fence() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let h = BlockHeap::format(Arc::clone(&pmem), HeapConfig::default()).unwrap();
        let m = h.alloc_chain(9, 8).unwrap();
        h.set_valid(m, true);
        pmem.pfence();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let h2 = BlockHeap::open(pmem).unwrap();
        assert!(h2.read_header(m).is_valid_master());
    }

    #[test]
    fn rebuild_free_queue_frees_unmarked() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let h = BlockHeap::format(Arc::clone(&pmem), HeapConfig::default()).unwrap();
        let live = h.alloc_chain(5, 400).unwrap(); // 2 blocks
        let dead = h.alloc_chain(5, 8).unwrap(); // 1 block
        h.set_valid(live, true);
        h.set_valid(dead, true);
        let bm = h.new_bitmap();
        for b in h.chain_blocks(live) {
            bm.mark(b);
        }
        let freed = h.rebuild_free_queue(&bm);
        assert_eq!(freed, 1);
        // The dead block's header is persistently cleared.
        assert_eq!(h.read_header(dead), BlockHeader::FREE);
        assert_eq!(h.alloc_block().unwrap(), dead);
    }

    #[test]
    fn rebuild_repairs_stale_bump() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let h = BlockHeap::format(Arc::clone(&pmem), HeapConfig::default()).unwrap();
        let a = h.alloc_chain(5, 8).unwrap();
        h.set_valid(a, true);
        // Pretend the bump never persisted: reset it to data_start.
        pmem.write_u64(super::SB_BUMP, h.data_start());
        let bm = h.new_bitmap();
        bm.mark(a);
        h.rebuild_free_queue(&bm);
        // Allocating must not hand out block `a` again.
        let b = h.alloc_block().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn stats_track_occupancy() {
        let h = heap(1 << 20);
        let m = h.alloc_chain(3, 600).unwrap(); // 3 blocks
        h.free_object(m);
        let s = h.stats();
        assert_eq!(s.blocks_allocated, 3);
        assert_eq!(s.blocks_freed, 3);
        assert_eq!(s.free_queue_len, 3);
    }
}
