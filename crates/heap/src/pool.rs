//! Memory-pool allocators for small immutable objects (§4.4).
//!
//! A whole 256-B block per 20-byte string wastes NVMM to internal
//! fragmentation. Pool allocators pack several *immutable* objects of the
//! same size class into one block. (Only immutable objects: the
//! failure-atomic algorithm of §4.2 copies whole blocks, and two mutable
//! objects sharing a block would make the in-flight replicas diverge.)
//!
//! Layout of a pool block:
//!
//! ```text
//! +0   block header   id = CLASS_ID_POOL, valid = 1, next = 0
//! +8   meta word      slot payload bytes (u32) | slot count (u32)
//! +16  slot[0]        mini-header (1 word, same encoding as Table 2,
//!                     next field unused) followed by the payload
//! ...  slot[i]        at +16 + i * (8 + payload)
//! ```
//!
//! A pooled object is addressed by the byte address of its mini-header,
//! which is never block-aligned — that is how the runtime tells pooled
//! references and block references apart.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::queue::SegQueue;

use crate::alloc::BlockHeap;
use crate::error::HeapError;
use crate::layout::{BlockHeader, CLASS_ID_POOL, HEADER_BYTES};
use crate::scan::LiveBitmap;

/// Slot payload sizes (bytes) of the pool size classes, ascending.
pub const POOL_SLOT_CLASSES: &[u64] = &[16, 32, 72, 112, 232];

/// Per-size-class pool allocators over a [`BlockHeap`].
pub struct PoolManager {
    heap: Arc<BlockHeap>,
    /// Payload size per active class (classes that fit the block size).
    classes: Vec<u64>,
    /// Volatile free-slot queues, one per class; rebuilt at recovery.
    queues: Vec<SegQueue<u64>>,
}

impl PoolManager {
    /// Create the pool manager for `heap`. Size classes whose slots do not
    /// fit the heap's block size are dropped.
    pub fn new(heap: Arc<BlockHeap>) -> PoolManager {
        let slots_area = heap.payload_size() - 8;
        let classes: Vec<u64> = POOL_SLOT_CLASSES
            .iter()
            .copied()
            .filter(|payload| payload + HEADER_BYTES <= slots_area)
            .collect();
        let queues = classes.iter().map(|_| SegQueue::new()).collect();
        PoolManager { heap, classes, queues }
    }

    /// The heap this manager allocates from.
    pub fn heap(&self) -> &Arc<BlockHeap> {
        &self.heap
    }

    /// Largest payload a pooled object may have on this heap.
    pub fn max_payload(&self) -> u64 {
        self.classes.last().copied().unwrap_or(0)
    }

    /// Whether `addr` refers to a pooled object (mini-header address) rather
    /// than a block object (block-aligned master address).
    pub fn is_pooled_addr(&self, addr: u64) -> bool {
        !addr.is_multiple_of(self.heap.block_size())
    }

    fn class_for(&self, payload: u64) -> Result<usize, HeapError> {
        self.classes
            .iter()
            .position(|c| *c >= payload)
            .ok_or(HeapError::ObjectTooLargeForPool(payload))
    }

    fn slot_total(payload: u64) -> u64 {
        payload + HEADER_BYTES
    }

    fn slots_per_block(&self, payload: u64) -> u64 {
        (self.heap.payload_size() - 8) / Self::slot_total(payload)
    }

    /// Allocate a pooled object of class `class_id` with at least `payload`
    /// bytes. Returns the mini-header address; the object starts **invalid**
    /// and un-flushed, like any fresh allocation (§4.1.4).
    pub fn alloc(&self, class_id: u16, payload: u64) -> Result<u64, HeapError> {
        let ci = self.class_for(payload)?;
        if let Some(addr) = self.queues[ci].pop() {
            self.write_mini(addr, BlockHeader { id: class_id, valid: false, next: 0 });
            return Ok(addr);
        }
        // Carve a new pool block.
        let slot_payload = self.classes[ci];
        let block = self.heap.alloc_block()?;
        let base = self.heap.block_addr(block);
        let pmem = self.heap.pmem();
        let nslots = self.slots_per_block(slot_payload);
        self.heap.write_header(
            block,
            BlockHeader { id: CLASS_ID_POOL, valid: true, next: 0 },
        );
        pmem.write_u32(base + 8, slot_payload as u32);
        pmem.write_u32(base + 12, nslots as u32);
        // The header/meta line must be durable before any slot inside this
        // block is validated; pwb now, the allocating thread's next pfence
        // (always executed before an object becomes reachable) orders it.
        pmem.pwb(base);
        pmem.publish_point("pool-carve", &[(base, 16)]);
        let first = base + 16;
        for i in 1..nslots {
            // Remaining slots join the free queue with a cleared mini-header.
            let slot = first + i * Self::slot_total(slot_payload);
            pmem.write_u64(slot, 0);
            self.queues[ci].push(slot);
        }
        self.write_mini(first, BlockHeader { id: class_id, valid: false, next: 0 });
        Ok(first)
    }

    /// Free a pooled object: persistently invalidate its mini-header (no
    /// fence, like [`BlockHeap::free_object`]) and recycle the slot.
    ///
    /// Fails with [`HeapError::UnknownPoolClass`] if `addr` lands in a pool
    /// block whose meta word is corrupt.
    pub fn free(&self, addr: u64) -> Result<(), HeapError> {
        let (ci, _) = self.locate(addr)?;
        let mut mh = self.read_mini(addr);
        mh.valid = false;
        self.write_mini_pwb(addr, mh);
        self.queues[ci].push(addr);
        Ok(())
    }

    /// Read the mini-header of the pooled object at `addr`.
    pub fn read_mini(&self, addr: u64) -> BlockHeader {
        BlockHeader::decode(self.heap.pmem().read_u64(addr))
    }

    fn write_mini(&self, addr: u64, h: BlockHeader) {
        self.heap.pmem().write_u64(addr, h.encode());
    }

    fn write_mini_pwb(&self, addr: u64, h: BlockHeader) {
        self.write_mini(addr, h);
        self.heap.pmem().pwb(addr);
    }

    /// Set the validity of a pooled object and `pwb` its line (fence-free,
    /// as with [`BlockHeap::set_valid`]).
    pub fn set_valid(&self, addr: u64, valid: bool) {
        let mut h = self.read_mini(addr);
        h.valid = valid;
        self.write_mini_pwb(addr, h);
    }

    /// Payload address of the pooled object at `addr`.
    pub fn payload_addr(&self, addr: u64) -> u64 {
        addr + HEADER_BYTES
    }

    /// Slot payload capacity of the pooled object at `addr` (from the pool
    /// block's meta word).
    pub fn slot_payload(&self, addr: u64) -> u64 {
        let block = self.heap.block_of_addr(addr);
        self.heap.pmem().read_u32(self.heap.block_addr(block) + 8) as u64
    }

    /// Locate `(size class index, slot index)` for a pooled address.
    ///
    /// Fails with [`HeapError::UnknownPoolClass`] if the pool block's meta
    /// word names a slot class the allocator was not configured with.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not lie on a slot boundary of a pool block —
    /// that indicates heap corruption or a non-pooled address.
    fn locate(&self, addr: u64) -> Result<(usize, u64), HeapError> {
        let block = self.heap.block_of_addr(addr);
        let base = self.heap.block_addr(block);
        let payload = self.heap.pmem().read_u32(base + 8) as u64;
        let ci = self
            .classes
            .iter()
            .position(|c| *c == payload)
            .ok_or(HeapError::UnknownPoolClass { block, payload })?;
        let off = addr - (base + 16);
        assert!(
            off.is_multiple_of(Self::slot_total(payload)),
            "address {addr:#x} is not on a slot boundary"
        );
        Ok((ci, off / Self::slot_total(payload)))
    }

    /// Recovery (§4.1.3 extension for pools): for every *marked* pool block,
    /// keep slots in `live_slots`, persistently clear the rest and rebuild
    /// the free-slot queues. Unmarked pool blocks are reclaimed wholesale by
    /// [`BlockHeap::rebuild_free_queue`]. Call this *before* that.
    pub fn rebuild(&self, bitmap: &LiveBitmap, live_slots: &HashSet<u64>) {
        let _ = self.rebuild_parallel(bitmap, live_slots, 1);
    }

    /// [`PoolManager::rebuild`] with the pool-block scan partitioned over
    /// `threads` sweep workers. Slot clears are idempotent (a crashed sweep
    /// redone from scratch converges), and each worker `pfence`s its own
    /// persistence domain before exiting. Free slots enter the queues in
    /// ascending block order regardless of the thread count, so the queue
    /// contents match the sequential pass exactly.
    ///
    /// Returns each sweep worker's modeled device time (see
    /// [`crate::par::run_workers_timed`]).
    pub fn rebuild_parallel(
        &self,
        bitmap: &LiveBitmap,
        live_slots: &HashSet<u64>,
        threads: usize,
    ) -> Vec<Duration> {
        let pmem = self.heap.pmem();
        // Sweep `[lo, hi)` of the block range, clearing dead slots in
        // marked pool blocks; returns (class index, slot addr) pairs to
        // queue, in block order.
        let sweep_chunk = |lo: u64, hi: u64| -> Vec<(usize, u64)> {
            let mut freed = Vec::new();
            for idx in lo..hi {
                let h = self.heap.read_header(idx);
                if h.id != CLASS_ID_POOL || !bitmap.is_marked(idx) {
                    continue;
                }
                let base = self.heap.block_addr(idx);
                let payload = pmem.read_u32(base + 8) as u64;
                let Some(ci) = self.classes.iter().position(|c| *c == payload) else {
                    continue;
                };
                let nslots = pmem.read_u32(base + 12) as u64;
                for i in 0..nslots {
                    let slot = base + 16 + i * Self::slot_total(payload);
                    if live_slots.contains(&slot) {
                        continue;
                    }
                    if pmem.read_u64(slot) != 0 {
                        pmem.write_u64(slot, 0);
                        pmem.pwb(slot);
                    }
                    freed.push((ci, slot));
                }
            }
            freed
        };
        let chunks =
            crate::par::partition_range(self.heap.data_start(), self.heap.scan_end(), threads);
        let (freed_lists, worker_times): (Vec<Vec<(usize, u64)>>, Vec<Duration>) =
            if chunks.len() <= 1 {
                let before = jnvm_pmem::thread_charged_ns();
                let lists: Vec<Vec<(usize, u64)>> =
                    chunks.into_iter().map(|(lo, hi)| sweep_chunk(lo, hi)).collect();
                let dt = Duration::from_nanos(jnvm_pmem::thread_charged_ns() - before);
                (lists, vec![dt])
            } else {
                crate::par::run_workers_timed(chunks, |(lo, hi)| {
                    let freed = sweep_chunk(lo, hi);
                    // Drain this worker's slot-clear write-backs (a persistence
                    // domain drains only its owner's queue).
                    pmem.pfence();
                    freed
                })
                .into_iter()
                .unzip()
            };
        for list in freed_lists {
            for (ci, slot) in list {
                self.queues[ci].push(slot);
            }
        }
        worker_times
    }

    /// Iterate the slots of the pool block `idx`, yielding each slot's
    /// mini-header address and decoded mini-header. Used by the header-scan
    /// recovery variant. No-op if `idx` is not a recognizable pool block.
    pub fn scan_block_slots(&self, idx: u64, mut f: impl FnMut(u64, BlockHeader)) {
        let base = self.heap.block_addr(idx);
        let pmem = self.heap.pmem();
        let payload = pmem.read_u32(base + 8) as u64;
        if !self.classes.contains(&payload) {
            return;
        }
        let nslots = pmem.read_u32(base + 12) as u64;
        let max_slots = (self.heap.payload_size() - 8) / Self::slot_total(payload);
        for i in 0..nslots.min(max_slots) {
            let slot = base + 16 + i * Self::slot_total(payload);
            f(slot, BlockHeader::decode(pmem.read_u64(slot)));
        }
    }

    /// Number of free slots currently queued (all classes).
    pub fn free_slots(&self) -> u64 {
        self.queues.iter().map(|q| q.len() as u64).sum()
    }
}

impl std::fmt::Debug for PoolManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolManager")
            .field("classes", &self.classes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::HeapConfig;
    use jnvm_pmem::{Pmem, PmemConfig};

    fn mk() -> (Arc<BlockHeap>, PoolManager) {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let heap = BlockHeap::format(pmem, HeapConfig::default()).unwrap();
        let pm = PoolManager::new(Arc::clone(&heap));
        (heap, pm)
    }

    #[test]
    fn classes_fit_block() {
        let (_h, pm) = mk();
        assert_eq!(pm.max_payload(), 232);
    }

    #[test]
    fn alloc_packs_many_objects_per_block() {
        let (heap, pm) = mk();
        let before = heap.stats().blocks_allocated;
        // 16-byte payloads: slot total 24, (248-8)/24 = 10 per block.
        let addrs: Vec<u64> = (0..10).map(|_| pm.alloc(20, 10).unwrap()).collect();
        assert_eq!(heap.stats().blocks_allocated - before, 1);
        let blocks: HashSet<u64> = addrs.iter().map(|a| heap.block_of_addr(*a)).collect();
        assert_eq!(blocks.len(), 1);
        // 11th allocation opens a second block.
        pm.alloc(20, 10).unwrap();
        assert_eq!(heap.stats().blocks_allocated - before, 2);
    }

    #[test]
    fn pooled_addresses_are_not_block_aligned() {
        let (_h, pm) = mk();
        let a = pm.alloc(20, 30).unwrap();
        assert!(pm.is_pooled_addr(a));
    }

    #[test]
    fn corrupt_pool_meta_reports_unknown_class() {
        let (heap, pm) = mk();
        let a = pm.alloc(20, 16).unwrap();
        // Scribble an impossible slot class into the block's meta word.
        let base = heap.block_addr(heap.block_of_addr(a));
        heap.pmem().write_u32(base + 8, 3);
        match pm.free(a) {
            Err(HeapError::UnknownPoolClass { payload: 3, .. }) => {}
            other => panic!("expected UnknownPoolClass, got {other:?}"),
        }
    }

    #[test]
    fn free_recycles_slot() {
        let (_h, pm) = mk();
        let a = pm.alloc(20, 16).unwrap();
        pm.set_valid(a, true);
        pm.free(a).unwrap();
        assert!(!pm.read_mini(a).valid);
        // Freed slot is preferred over the block's remaining fresh slots?
        // Not guaranteed (queue order), but the slot must eventually return.
        let mut seen = false;
        for _ in 0..20 {
            if pm.alloc(20, 16).unwrap() == a {
                seen = true;
                break;
            }
        }
        assert!(seen, "freed slot was never reallocated");
    }

    #[test]
    fn size_class_selection() {
        let (_h, pm) = mk();
        let a = pm.alloc(7, 16).unwrap();
        let b = pm.alloc(7, 17).unwrap();
        assert_eq!(pm.slot_payload(a), 16);
        assert_eq!(pm.slot_payload(b), 32);
        assert!(matches!(
            pm.alloc(7, 233),
            Err(HeapError::ObjectTooLargeForPool(233))
        ));
    }

    #[test]
    fn mini_header_carries_class() {
        let (_h, pm) = mk();
        let a = pm.alloc(321, 60).unwrap();
        let mh = pm.read_mini(a);
        assert_eq!(mh.id, 321);
        assert!(!mh.valid, "fresh pooled object must be invalid");
        pm.set_valid(a, true);
        assert!(pm.read_mini(a).valid);
    }

    #[test]
    fn rebuild_keeps_live_frees_dead() {
        let (heap, pm) = mk();
        let live = pm.alloc(9, 16).unwrap();
        let dead = pm.alloc(9, 16).unwrap();
        pm.set_valid(live, true);
        pm.set_valid(dead, true);
        heap.pmem().pfence();

        // Simulate restart: new manager with empty queues.
        let pm2 = PoolManager::new(Arc::clone(&heap));
        let bm = heap.new_bitmap();
        bm.mark(heap.block_of_addr(live));
        let mut live_slots = HashSet::new();
        live_slots.insert(live);
        pm2.rebuild(&bm, &live_slots);

        assert!(pm2.read_mini(live).valid);
        assert_eq!(heap.pmem().read_u64(dead), 0, "dead slot cleared");
        // 10 slots per block, one live -> 9 free.
        assert_eq!(pm2.free_slots(), 9);
    }

    #[test]
    fn pool_block_header_is_flushed_with_first_fence() {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let heap = BlockHeap::format(Arc::clone(&pmem), HeapConfig::default()).unwrap();
        let pm = PoolManager::new(Arc::clone(&heap));
        let a = pm.alloc(9, 16).unwrap();
        pm.set_valid(a, true);
        pmem.pfence();
        pmem.crash(&jnvm_pmem::CrashPolicy::strict()).unwrap();
        let heap2 = BlockHeap::open(Arc::clone(&pmem)).unwrap();
        let h = heap2.read_header(heap2.block_of_addr(a));
        assert_eq!(h.id, CLASS_ID_POOL);
        assert!(h.valid);
        let pm2 = PoolManager::new(heap2);
        assert!(pm2.read_mini(a).valid);
        assert_eq!(pm2.read_mini(a).id, 9);
    }
}
