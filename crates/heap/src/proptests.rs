//! Property tests over the allocator: random alloc/free interleavings
//! never double-allocate, chains stay intact, and recovery reconstruction
//! agrees with ground truth.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use crate::{BlockHeap, HeapConfig, LiveBitmap, PoolManager};
use jnvm_pmem::{Pmem, PmemConfig};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a chain with this payload size.
    Alloc(u64),
    /// Free the i-th (mod len) live object.
    Free(usize),
    /// Allocate a pooled object with this payload size.
    PoolAlloc(u64),
    /// Free the i-th (mod len) live pooled object.
    PoolFree(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..1200).prop_map(Op::Alloc),
            any::<usize>().prop_map(Op::Free),
            (1u64..232).prop_map(Op::PoolAlloc),
            any::<usize>().prop_map(Op::PoolFree),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Live objects never share blocks; chains match their requested
    /// sizes; frees return exactly the chain's blocks to circulation.
    #[test]
    fn alloc_free_interleavings_preserve_disjointness(ops in ops()) {
        let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
        let heap = BlockHeap::format(pmem, HeapConfig::default()).unwrap();
        let pools = PoolManager::new(Arc::clone(&heap));
        let mut live: Vec<(u64, u64)> = Vec::new(); // (master idx, payload)
        let mut live_pool: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(sz) => {
                    let m = heap.alloc_chain(42, sz).unwrap();
                    heap.set_valid(m, true);
                    live.push((m, sz));
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (m, _) = live.remove(i % live.len());
                        heap.free_object(m);
                    }
                }
                Op::PoolAlloc(sz) => {
                    let a = pools.alloc(43, sz).unwrap();
                    pools.set_valid(a, true);
                    live_pool.push(a);
                }
                Op::PoolFree(i) => {
                    if !live_pool.is_empty() {
                        let a = live_pool.remove(i % live_pool.len());
                        pools.free(a).unwrap();
                    }
                }
            }
            // Invariant: all live chains are pairwise disjoint and sized
            // correctly.
            let mut seen: HashSet<u64> = HashSet::new();
            for (m, sz) in &live {
                let chain = heap.chain_blocks(*m);
                prop_assert_eq!(chain.len() as u64, heap.blocks_for(*sz));
                for b in chain {
                    prop_assert!(seen.insert(b), "block {} in two live chains", b);
                }
            }
            // Pooled objects are disjoint slots with valid headers.
            let mut slots: HashSet<u64> = HashSet::new();
            for a in &live_pool {
                prop_assert!(slots.insert(*a));
                prop_assert!(pools.read_mini(*a).valid);
                // Pool blocks never collide with chain blocks.
                prop_assert!(
                    !seen.contains(&heap.block_of_addr(*a)),
                    "pool block shared with a chain"
                );
            }
        }
    }

    /// Header encode/decode is a bijection on the valid field domain.
    #[test]
    fn header_codec_bijective(id in 0u16..=0x7fff, valid in any::<bool>(), next in 0u64..(1 << 48)) {
        let h = crate::BlockHeader { id, valid, next };
        prop_assert_eq!(crate::BlockHeader::decode(h.encode()), h);
    }

    /// After marking exactly the live chains and rebuilding, the free
    /// queue hands out every dead block exactly once and no live block.
    #[test]
    fn rebuild_free_queue_is_exact(keep_mask in any::<u16>()) {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let heap = BlockHeap::format(pmem, HeapConfig::default()).unwrap();
        let mut masters = Vec::new();
        for i in 0..16u64 {
            let m = heap.alloc_chain(7, 100 + i * 120).unwrap();
            heap.set_valid(m, true);
            masters.push(m);
        }
        let bm = heap.new_bitmap();
        let mut live_blocks: HashSet<u64> = HashSet::new();
        let mut dead_blocks: HashSet<u64> = HashSet::new();
        for (i, m) in masters.iter().enumerate() {
            let chain = heap.chain_blocks(*m);
            if keep_mask & (1 << i) != 0 {
                for b in chain {
                    bm.mark(b);
                    live_blocks.insert(b);
                }
            } else {
                dead_blocks.extend(chain);
            }
        }
        let freed = heap.rebuild_free_queue(&bm);
        prop_assert_eq!(freed, dead_blocks.len() as u64);
        // Drain the queue: exactly the dead blocks, each once.
        let mut drained: HashMap<u64, u32> = HashMap::new();
        for _ in 0..freed {
            let b = heap.alloc_block().unwrap();
            *drained.entry(b).or_insert(0) += 1;
        }
        for (b, count) in &drained {
            prop_assert_eq!(*count, 1u32, "block {} handed out twice", b);
            prop_assert!(dead_blocks.contains(b), "live block {} freed", b);
            prop_assert!(!live_blocks.contains(b));
        }
        prop_assert_eq!(drained.len() as u64, freed);
    }

    /// Striped-bitmap equivalence: an arbitrary mark stream, split over 4
    /// concurrent markers, counts each block exactly once — the sum of
    /// fresh `mark` returns, `marked_count` and `highest_marked` all agree
    /// with a sequential replay of the same stream.
    #[test]
    fn concurrent_mark_stream_matches_sequential_replay(
        stream in proptest::collection::vec(0u64..2048, 1..400),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};

        let nblocks = 2048;
        // Sequential oracle.
        let seq = crate::LiveBitmap::new(nblocks);
        let mut seq_fresh = 0u64;
        for idx in &stream {
            if seq.mark(*idx) {
                seq_fresh += 1;
            }
        }

        // Concurrent run: the same stream dealt round-robin to 4 threads.
        let conc = crate::LiveBitmap::new(nblocks);
        let fresh = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let conc = &conc;
                let fresh = &fresh;
                let stream = &stream;
                s.spawn(move || {
                    for idx in stream.iter().skip(t).step_by(4) {
                        if conc.mark(*idx) {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });

        prop_assert_eq!(fresh.load(Ordering::Relaxed), seq_fresh);
        prop_assert_eq!(conc.marked_count(), seq.marked_count());
        prop_assert_eq!(conc.highest_marked(), seq.highest_marked());
        for idx in 0..nblocks {
            prop_assert_eq!(conc.is_marked(idx), seq.is_marked(idx));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Striped-bitmap property behind the parallel mark: marking a random
    /// stream from 4 threads counts each block exactly once (the sum of
    /// fresh `mark` returns equals the distinct-block count), and
    /// `marked_count`/`highest_marked` agree with a sequential replay of
    /// the same stream.
    #[test]
    fn concurrent_bitmap_marks_agree_with_sequential_replay(
        nblocks in 1u64..2048,
        raw in proptest::collection::vec(any::<u64>(), 0..600),
    ) {
        let stream: Vec<u64> = raw.into_iter().map(|i| i % nblocks).collect();
        let seq = LiveBitmap::new(nblocks);
        let mut seq_fresh = 0u64;
        for &i in &stream {
            if seq.mark(i) {
                seq_fresh += 1;
            }
        }

        let conc = LiveBitmap::new(nblocks);
        let fresh = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let conc = &conc;
                let fresh = &fresh;
                let stream = &stream;
                s.spawn(move || {
                    for &i in stream.iter().skip(t).step_by(4) {
                        if conc.mark(i) {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        prop_assert_eq!(fresh.load(Ordering::Relaxed), seq_fresh);
        prop_assert_eq!(conc.marked_count(), seq.marked_count());
        prop_assert_eq!(conc.highest_marked(), seq.highest_marked());
        for &i in &stream {
            prop_assert!(conc.is_marked(i));
        }
    }
}
