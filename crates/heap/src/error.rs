//! Heap error type.

use std::fmt;

/// Errors reported by the persistent block heap.
#[derive(Debug)]
pub enum HeapError {
    /// No free block and the bump pointer reached the end of the pool.
    OutOfMemory {
        /// Number of blocks requested by the failing allocation.
        requested: u64,
    },
    /// The pool does not contain a heap, or the superblock is corrupt.
    BadSuperblock(String),
    /// A block index outside the heap's data area.
    BadBlockIndex(u64),
    /// A class id outside the 15-bit header field.
    BadClassId(u16),
    /// Requested pooled-object size exceeds every pool slot class.
    ObjectTooLargeForPool(u64),
    /// A pool block's meta word names a slot class the allocator was not
    /// configured with — the block (or the address used to reach it) is
    /// corrupt. Reported instead of aborting so a reopen on a damaged pool
    /// can surface the failure to its operator.
    UnknownPoolClass {
        /// Index of the offending pool block.
        block: u64,
        /// The unrecognized slot-payload size found in its meta word.
        payload: u64,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "persistent heap out of memory ({requested} blocks requested)")
            }
            HeapError::BadSuperblock(msg) => write!(f, "bad heap superblock: {msg}"),
            HeapError::BadBlockIndex(idx) => write!(f, "bad block index {idx}"),
            HeapError::BadClassId(id) => write!(f, "class id {id} exceeds 15-bit header field"),
            HeapError::ObjectTooLargeForPool(sz) => {
                write!(f, "object of {sz} bytes too large for pool allocation")
            }
            HeapError::UnknownPoolClass { block, payload } => {
                write!(f, "pool block {block} has unknown class {payload}")
            }
        }
    }
}

impl std::error::Error for HeapError {}
