//! Tests for the low-level `recover()` hook (§3.2.1), root-map limits and
//! registry edge cases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jnvm_heap::HeapConfig;
use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};

use crate::{Jnvm, JnvmBuilder, JnvmError, PObject, Proxy};

/// How many times the recover hook ran (process-global, test-serialized by
/// using distinct pools and counting deltas).
static RECOVERED: AtomicU64 = AtomicU64::new(0);

/// A low-level class that maintains `b == a * 2` and repairs it in its
/// recover hook instead of using failure-atomic blocks.
struct Doubler {
    proxy: Proxy,
}

impl Doubler {
    fn create(rt: &Jnvm, a: i64) -> Doubler {
        let proxy = rt.alloc_proxy::<Doubler>(16).expect("alloc");
        let d = Doubler { proxy };
        d.set(a);
        d.proxy.pwb();
        d.proxy.validate();
        rt.pfence();
        d
    }

    fn set(&self, a: i64) {
        // Deliberately non-atomic: writes a, fences, then b. A crash
        // between the two leaves the invariant broken — which recover()
        // repairs from `a` (the paper's pattern for fence-frugal types).
        self.proxy.write_i64(0, a);
        self.proxy.pwb_field(0, 8);
        self.proxy.runtime().pfence();
        self.proxy.write_i64(8, a * 2);
        self.proxy.pwb_field(8, 8);
    }

    fn a(&self) -> i64 {
        self.proxy.read_i64(0)
    }

    fn b(&self) -> i64 {
        self.proxy.read_i64(8)
    }
}

impl PObject for Doubler {
    const CLASS_NAME: &'static str = "jnvm_tests.Doubler";

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        Doubler {
            proxy: Proxy::open(rt, addr),
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }

    fn recover(rt: &Jnvm, addr: u64) {
        RECOVERED.fetch_add(1, Ordering::Relaxed);
        let d = Doubler::resurrect(rt, addr);
        let a = d.a();
        if d.b() != a * 2 {
            d.proxy.write_i64(8, a * 2);
            d.proxy.pwb_field(8, 8);
        }
    }
}

fn build(pmem: &Arc<Pmem>) -> Jnvm {
    JnvmBuilder::new()
        .register::<Doubler>()
        .create(Arc::clone(pmem), HeapConfig::default())
        .expect("pool")
}

#[test]
fn recover_hook_runs_and_repairs_invariant() {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = build(&pmem);
    let d = Doubler::create(&rt, 5);
    rt.root_put("d", &d).unwrap();
    // Simulate the torn update: a written and fenced, b not yet.
    d.proxy.write_i64(0, 9);
    d.proxy.pwb_field(0, 8);
    rt.pfence();
    d.proxy.write_i64(8, 18); // never flushed
    let before = RECOVERED.load(Ordering::Relaxed);
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, _) = JnvmBuilder::new()
        .register::<Doubler>()
        .open(Arc::clone(&pmem))
        .unwrap();
    assert!(
        RECOVERED.load(Ordering::Relaxed) > before,
        "recover hook must run during the collection pass"
    );
    let d2 = rt2.root_get_as::<Doubler>("d").unwrap().unwrap();
    assert_eq!(d2.a(), 9);
    assert_eq!(d2.b(), 18, "invariant repaired from `a`");
}

#[test]
fn root_key_length_is_enforced() {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = build(&pmem);
    let d = Doubler::create(&rt, 1);
    let long = "k".repeat(200);
    assert!(matches!(
        rt.root_put(&long, &d),
        Err(JnvmError::RootKeyTooLong(200))
    ));
    // 184 is the maximum.
    let ok = "k".repeat(184);
    rt.root_put(&ok, &d).unwrap();
    assert!(rt.root_exists(&ok));
}

#[test]
fn root_map_handles_many_entries_and_reuses_slots() {
    let pmem = Pmem::new(PmemConfig::crash_sim(16 << 20));
    let rt = build(&pmem);
    let d = Doubler::create(&rt, 1);
    for i in 0..300 {
        rt.root_put(&format!("entry-{i}"), &d).unwrap();
    }
    assert_eq!(rt.root_len(), 300);
    for i in 0..150 {
        assert!(rt.root_remove(&format!("entry-{i}")).is_some());
    }
    assert_eq!(rt.root_len(), 150);
    // Freed slots are reused.
    for i in 0..150 {
        rt.root_put(&format!("again-{i}"), &d).unwrap();
    }
    assert_eq!(rt.root_len(), 300);
    // Durable across a crash.
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, _) = JnvmBuilder::new()
        .register::<Doubler>()
        .open(Arc::clone(&pmem))
        .unwrap();
    assert_eq!(rt2.root_len(), 300);
    assert!(rt2.root_exists("again-42"));
    assert!(!rt2.root_exists("entry-42"));
    let mut names = rt2.root_names();
    names.sort();
    assert_eq!(names.len(), 300);
}

#[test]
fn duplicate_registration_is_idempotent() {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = JnvmBuilder::new()
        .register::<Doubler>()
        .register::<Doubler>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    assert_eq!(rt.registry().len(), 1);
}

#[test]
fn class_mismatch_detected_on_read_pobject() {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = build(&pmem);
    let d = Doubler::create(&rt, 3);
    // Reading the Doubler as a different registered class must fail. (The
    // root-map internals use reserved ids, so grab the class table's
    // address via the heap root slot as the "wrong class" victim.)
    let table_addr = rt.heap().root_slot(0);
    assert!(matches!(
        rt.read_pobject::<Doubler>(table_addr),
        Err(JnvmError::ClassMismatch { .. })
    ));
    // And the right class succeeds.
    assert!(rt.read_pobject::<Doubler>(d.addr()).is_ok());
}
