//! # jnvm — the J-NVM runtime in Rust
//!
//! A reproduction of the J-NVM framework (Lefort et al., SOSP '21) for
//! accessing Non-Volatile Main Memory through **off-heap persistent
//! objects**. A persistent object is decoupled into:
//!
//! * a **persistent data structure** living in the simulated NVMM pool
//!   (`jnvm-pmem`), laid out in fixed-size blocks (`jnvm-heap`), and
//! * a **volatile proxy** — an ordinary Rust value — that carries the
//!   methods and caches the block addresses.
//!
//! Because the persistent structures live outside any managed heap, no
//! garbage collector ever traverses them at runtime. Liveness is *by
//! reachability from the persistent root map*, enforced by a
//! **recovery-time GC** that runs when a pool is re-opened after a crash
//! (§2.4, §4.1.3). Deletion is explicit ([`JnvmRuntime::free`]).
//!
//! Two programming levels are offered, as in the paper:
//!
//! * the **high-level interface**: wrap mutations in failure-atomic blocks
//!   ([`JnvmRuntime::fa`]) — they execute entirely or not at all;
//! * the **low-level interface**: raw mediated accessors plus `pwb` /
//!   `pfence` / `psync` and the validation protocol (§3.2), from which
//!   hand-crafted crash-consistent data types (the `jnvm-jpdt` crate) are
//!   built.
//!
//! ```
//! use jnvm::{persistent_class, JnvmBuilder};
//! use jnvm_heap::HeapConfig;
//! use jnvm_pmem::{Pmem, PmemConfig};
//!
//! persistent_class! {
//!     pub class Counter {
//!         val count, set_count: i64;
//!     }
//! }
//!
//! let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
//! let rt = JnvmBuilder::new()
//!     .register::<Counter>()
//!     .create(pmem, HeapConfig::default())
//!     .unwrap();
//! let c = rt.fa(|| {
//!     let c = Counter::alloc_uninit(&rt);
//!     c.set_count(41);
//!     rt.root_put("counter", &c).unwrap();
//!     c
//! });
//! c.set_count(c.count() + 1);
//! assert_eq!(c.count(), 42);
//! ```

mod error;
mod fa;
mod field;
mod object;
mod proxy;
mod recovery;
mod registry;
mod rootmap;
mod runtime;

#[macro_use]
mod macros;

mod replica;
mod sharded;

pub use error::JnvmError;
pub use fa::depth as fa_depth;
pub use fa::{commit_phase, CommitPhase, StagedTx};
pub use field::PVal;
pub use object::{PAny, PObject};
pub use proxy::{Proxy, RawChain};
pub use recovery::{RecoveryMode, RecoveryOptions, RecoveryReport};
pub use replica::{divergent_keys, ReplicaSet};
pub use registry::{ClassOps, ClassRegistry};
pub use runtime::{Jnvm, JnvmBuilder, JnvmRuntime};
pub use sharded::ShardedJnvm;

#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_recovery_hooks;
