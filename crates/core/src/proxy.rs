//! Volatile proxies over chained persistent data structures.
//!
//! A persistent object occupies one or more fixed-size blocks. Instead of a
//! single address, a proxy caches **the addresses of all its blocks**
//! (§4.1: "the proxy actually contains an array that holds the addresses of
//! all its blocks"), so locating the block of a field is a division.
//!
//! Field accessors are *mediated*: each load/store checks the per-thread
//! failure-atomic nesting counter (§3.2). Inside a failure-atomic block,
//! writes are redirected to in-flight block copies and reads observe them;
//! outside, accesses go straight to NVMM.

use jnvm_heap::HEADER_BYTES;

use crate::fa;
use crate::runtime::{Jnvm, JnvmRuntime};

/// Address computation over a chain of blocks, without transactional
/// mediation. Shared by proxies, the failure-atomic log and the recovery
/// code.
#[derive(Debug, Clone)]
pub struct RawChain {
    /// Byte addresses of the chain's blocks, master first.
    pub blocks: Vec<u64>,
    /// Usable payload bytes per block.
    pub payload: u64,
}

impl RawChain {
    /// Walk the chain headers starting at the master block address.
    pub fn open(rt: &JnvmRuntime, master_addr: u64) -> RawChain {
        let heap = rt.heap();
        let idx = heap.block_of_addr(master_addr);
        let blocks = heap
            .chain_blocks(idx)
            .into_iter()
            .map(|b| heap.block_addr(b))
            .collect();
        RawChain {
            blocks,
            payload: heap.payload_size(),
        }
    }

    /// Total payload capacity of the chain.
    pub fn capacity(&self) -> u64 {
        self.blocks.len() as u64 * self.payload
    }

    /// Map a logical payload offset to `(block index in chain, offset from
    /// block start)`.
    #[inline]
    pub fn locate(&self, logical: u64) -> (usize, u64) {
        let bi = (logical / self.payload) as usize;
        let off = HEADER_BYTES + logical % self.payload;
        (bi, off)
    }

    /// Physical byte address of a logical payload offset.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is beyond the chain's capacity.
    #[inline]
    pub fn phys(&self, logical: u64) -> u64 {
        let (bi, off) = self.locate(logical);
        self.blocks[bi] + off
    }

    /// Iterate the `(physical address, length)` segments covering the
    /// logical range `[logical, logical + len)`.
    pub fn segments(&self, mut logical: u64, mut len: u64, mut f: impl FnMut(u64, u64)) {
        while len > 0 {
            let (bi, off) = self.locate(logical);
            let in_block = (self.payload - (off - HEADER_BYTES)).min(len);
            f(self.blocks[bi] + off, in_block);
            logical += in_block;
            len -= in_block;
        }
    }

    /// Read bytes at a logical offset, block-segment safe. Unmediated
    /// (bypasses failure-atomic redirection) — low-level interface only.
    pub fn read_bytes(&self, pmem: &jnvm_pmem::Pmem, logical: u64, out: &mut [u8]) {
        let mut done = 0usize;
        self.segments(logical, out.len() as u64, |addr, len| {
            pmem.read_bytes(addr, &mut out[done..done + len as usize]);
            done += len as usize;
        });
    }

    /// Write bytes at a logical offset, block-segment safe, no flush.
    /// Unmediated — low-level interface only.
    pub fn write_bytes(&self, pmem: &jnvm_pmem::Pmem, logical: u64, data: &[u8]) {
        let mut done = 0usize;
        self.segments(logical, data.len() as u64, |addr, len| {
            pmem.write_bytes(addr, &data[done..done + len as usize]);
            done += len as usize;
        });
    }

    /// `pwb` every line covering the logical range.
    pub fn pwb_range(&self, pmem: &jnvm_pmem::Pmem, logical: u64, len: u64) {
        self.segments(logical, len.max(1), |addr, seg| {
            pmem.pwb_range(addr, seg);
        });
    }
}

/// A proxy to a block-allocated persistent object.
///
/// Cloning a proxy is cheap and yields another view of the same persistent
/// data structure — like copying a Java reference.
#[derive(Clone)]
pub struct Proxy {
    rt: Jnvm,
    chain: RawChain,
    class_id: u16,
}

impl Proxy {
    /// Allocate the persistent data structure for a new object of class
    /// `class_id` with `payload` bytes of fields, returning its proxy.
    ///
    /// The object starts **invalid** (§4.1.4); it becomes alive once
    /// flushed, validated and reachable. Inside a failure-atomic block the
    /// allocation is logged and validation happens at commit (§4.2).
    ///
    /// # Panics
    ///
    /// Panics on heap exhaustion. (Persistent-heap OOM is unrecoverable for
    /// the workloads this crate targets; a fallible variant is
    /// [`Proxy::try_alloc`].)
    pub fn alloc(rt: &Jnvm, class_id: u16, payload: u64) -> Proxy {
        Proxy::try_alloc(rt, class_id, payload).expect("persistent heap exhausted")
    }

    /// Fallible [`Proxy::alloc`].
    pub fn try_alloc(rt: &Jnvm, class_id: u16, payload: u64) -> Result<Proxy, crate::JnvmError> {
        let heap = rt.heap();
        let master_idx = heap.alloc_chain(class_id, payload)?;
        let master_addr = heap.block_addr(master_idx);
        fa::note_alloc(rt, master_addr);
        Ok(Proxy {
            rt: rt.clone(),
            chain: RawChain::open(rt, master_addr),
            class_id,
        })
    }

    /// Open a proxy over the existing object at `master_addr`.
    pub fn open(rt: &Jnvm, master_addr: u64) -> Proxy {
        let chain = RawChain::open(rt, master_addr);
        let class_id = rt.heap().read_header(rt.heap().block_of_addr(master_addr)).id;
        Proxy {
            rt: rt.clone(),
            chain,
            class_id,
        }
    }

    /// The runtime this proxy belongs to.
    pub fn runtime(&self) -> &Jnvm {
        &self.rt
    }

    /// Master-block byte address (the persistent identity of the object).
    pub fn addr(&self) -> u64 {
        self.chain.blocks[0]
    }

    /// Class id from allocation/open time.
    pub fn class_id(&self) -> u16 {
        self.class_id
    }

    /// Payload capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.chain.capacity()
    }

    /// Number of blocks in the chain.
    pub fn block_count(&self) -> usize {
        self.chain.blocks.len()
    }

    /// The underlying chain (low-level interface).
    pub fn chain(&self) -> &RawChain {
        &self.chain
    }

    /// Grow the object by `extra_blocks`, refreshing the cached block
    /// array. Fence-free append (§4.1.6 relies on this for extensible
    /// arrays).
    pub fn extend(&mut self, extra_blocks: u64) -> Result<(), crate::JnvmError> {
        let heap = self.rt.heap();
        let master_idx = heap.block_of_addr(self.addr());
        let added = heap.extend_chain(master_idx, extra_blocks)?;
        self.chain
            .blocks
            .extend(added.into_iter().map(|b| heap.block_addr(b)));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mediated field accessors.
    // ------------------------------------------------------------------

    /// Read a `u64` field at logical payload offset `off` (8-byte aligned).
    #[inline]
    pub fn read_u64(&self, off: u64) -> u64 {
        debug_assert!(off.is_multiple_of(8), "word fields must be 8-byte aligned");
        let (bi, boff) = self.chain.locate(off);
        let block = self.resolve_read(self.chain.blocks[bi]);
        self.rt.pmem().read_u64(block + boff)
    }

    /// Write a `u64` field at logical payload offset `off` (8-byte aligned).
    #[inline]
    pub fn write_u64(&self, off: u64, v: u64) {
        debug_assert!(off.is_multiple_of(8), "word fields must be 8-byte aligned");
        let (bi, boff) = self.chain.locate(off);
        let block = self.resolve_write(self.chain.blocks[bi]);
        self.rt.pmem().write_u64(block + boff, v);
    }

    /// Read an `i64` field.
    #[inline]
    pub fn read_i64(&self, off: u64) -> i64 {
        self.read_u64(off) as i64
    }

    /// Write an `i64` field.
    #[inline]
    pub fn write_i64(&self, off: u64, v: i64) {
        self.write_u64(off, v as u64)
    }

    /// Read an `i32` field (stored in a full word).
    #[inline]
    pub fn read_i32(&self, off: u64) -> i32 {
        self.read_u64(off) as u32 as i32
    }

    /// Write an `i32` field (stored in a full word).
    #[inline]
    pub fn write_i32(&self, off: u64, v: i32) {
        self.write_u64(off, v as u32 as u64)
    }

    /// Read an `f64` field.
    #[inline]
    pub fn read_f64(&self, off: u64) -> f64 {
        f64::from_bits(self.read_u64(off))
    }

    /// Write an `f64` field.
    #[inline]
    pub fn write_f64(&self, off: u64, v: f64) {
        self.write_u64(off, v.to_bits())
    }

    /// Read a `bool` field (stored in a full word).
    #[inline]
    pub fn read_bool(&self, off: u64) -> bool {
        self.read_u64(off) != 0
    }

    /// Write a `bool` field (stored in a full word).
    #[inline]
    pub fn write_bool(&self, off: u64, v: bool) {
        self.write_u64(off, v as u64)
    }

    /// Read raw bytes from the logical payload range starting at `off`.
    pub fn read_bytes(&self, off: u64, out: &mut [u8]) {
        let mut done = 0usize;
        self.chain.segments(off, out.len() as u64, |addr, len| {
            let block_base = addr - addr % self.rt.heap().block_size();
            let resolved = self.resolve_read(block_base);
            self.rt
                .pmem()
                .read_bytes(resolved + (addr - block_base), &mut out[done..done + len as usize]);
            done += len as usize;
        });
    }

    /// Write raw bytes into the logical payload range starting at `off`.
    pub fn write_bytes(&self, off: u64, data: &[u8]) {
        let mut done = 0usize;
        self.chain.segments(off, data.len() as u64, |addr, len| {
            let block_base = addr - addr % self.rt.heap().block_size();
            let resolved = self.resolve_write(block_base);
            self.rt
                .pmem()
                .write_bytes(resolved + (addr - block_base), &data[done..done + len as usize]);
            done += len as usize;
        });
    }

    /// Read a persistent reference field: the byte address of the referenced
    /// object's data structure, or `None` for null.
    #[inline]
    pub fn read_ref(&self, off: u64) -> Option<u64> {
        match self.read_u64(off) {
            0 => None,
            a => Some(a),
        }
    }

    /// Write a persistent reference field (`None` stores null). The Java
    /// type system of the paper guarantees NVMM never holds references to
    /// volatile objects; here the guarantee comes from `addr` always
    /// originating from a [`crate::PObject::addr`].
    #[inline]
    pub fn write_ref(&self, off: u64, addr: Option<u64>) {
        self.write_u64(off, addr.unwrap_or(0));
    }

    #[inline]
    fn resolve_read(&self, block_addr: u64) -> u64 {
        if fa::depth() > 0 {
            fa::redirect_read(block_addr)
        } else {
            block_addr
        }
    }

    #[inline]
    fn resolve_write(&self, block_addr: u64) -> u64 {
        if fa::depth() > 0 {
            fa::redirect_write(&self.rt, self.addr(), block_addr)
        } else {
            block_addr
        }
    }

    // ------------------------------------------------------------------
    // Persistence control (low-level interface, §3.2.2).
    // ------------------------------------------------------------------

    /// `pwb()` of the paper: enqueue every cache line of the object
    /// (headers included) for write-back. No-op inside a failure-atomic
    /// block, where the commit protocol owns flushing.
    pub fn pwb(&self) {
        if fa::depth() > 0 {
            return;
        }
        let bs = self.rt.heap().block_size();
        for b in &self.chain.blocks {
            self.rt.pmem().pwb_range(*b, bs);
        }
    }

    /// `pwbX()` of the paper: enqueue only the lines holding the field at
    /// logical offset `off` (length `len`). No-op inside a failure-atomic
    /// block.
    pub fn pwb_field(&self, off: u64, len: u64) {
        if fa::depth() > 0 {
            return;
        }
        self.chain.segments(off, len.max(1), |addr, seg| {
            self.rt.pmem().pwb_range(addr, seg);
        });
    }

    /// Declare a labeled persist-ordering point over the field at logical
    /// offset `off` (length `len`): execution passing here asserts the
    /// field's cache lines are persisted (see
    /// [`jnvm_pmem::Pmem::ordering_point`]). No-op inside a failure-atomic
    /// block, where the commit protocol owns durability and declares its
    /// own ordering points.
    pub fn ordering_point(&self, label: &'static str, off: u64, len: u64) {
        if fa::depth() > 0 {
            return;
        }
        let pmem = self.rt.pmem();
        if pmem.sanitizer_active() {
            let mut fp: Vec<(u64, u64)> = Vec::new();
            self.chain.segments(off, len.max(1), |addr, seg| fp.push((addr, seg)));
            pmem.ordering_point(label, &fp);
        } else {
            pmem.ordering_point(label, &[]);
        }
    }

    /// Whether the object is currently valid (§3.2.3).
    pub fn is_valid(&self) -> bool {
        let heap = self.rt.heap();
        heap.read_header(heap.block_of_addr(self.addr())).valid
    }

    /// Validate the object: set the header valid bit and enqueue its line.
    /// Deliberately fence-free so several validations can share one fence
    /// (Figure 5 of the paper).
    pub fn validate(&self) {
        let heap = self.rt.heap();
        heap.set_valid(heap.block_of_addr(self.addr()), true);
    }

    /// Atomic reference update (Figure 6): validate `new`, fence, then
    /// store the reference — guaranteeing the recovery pass can never find
    /// the slot pointing at an invalid object.
    pub fn update_ref(&self, off: u64, new: Option<&Proxy>) {
        if let Some(n) = new {
            n.validate();
        }
        self.rt.pfence();
        self.write_ref(off, new.map(|n| n.addr()));
        self.pwb_field(off, 8);
    }

    /// Atomic replace-and-free (§4.1.6 second helper): like
    /// [`Proxy::update_ref`], additionally freeing the previously referenced
    /// object, all under the same single fence.
    pub fn replace_ref_and_free(&self, off: u64, new: Option<&Proxy>) {
        let old = self.read_ref(off);
        self.update_ref(off, new);
        if let Some(old_addr) = old {
            self.rt.free_addr(old_addr);
        }
    }
}

impl std::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proxy")
            .field("addr", &self.addr())
            .field("class_id", &self.class_id)
            .field("blocks", &self.chain.blocks.len())
            .finish()
    }
}
