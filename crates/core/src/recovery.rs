//! The recovery procedure (§4.1.3): replay failure-atomic logs, then run a
//! recovery-time garbage collection that implements liveness by
//! reachability (§2.4) — the paper's replacement for a runtime GC.
//!
//! Two modes are provided, matching the paper's evaluation (§5.3.3):
//!
//! * [`RecoveryMode::Full`] — traverse the live object graph from the
//!   persistent roots, nullify references to invalid objects, call each
//!   class's `recover` hook, then reclaim every unreachable block.
//! * [`RecoveryMode::HeaderScanOnly`] — the *J-PFA-nogc* variant: inspect
//!   only block headers, keeping valid masters (and their chains) and
//!   freeing the rest. Correct only when the application cannot produce
//!   invalid-but-reachable objects (e.g. every allocation and its
//!   publication share one failure-atomic block).
//!
//! Both modes run on `RecoveryOptions::threads` worker threads and are
//! **restartable**: every persistent mutation recovery performs (replaying
//! a committed log, retiring its flag, nullifying a dangling reference,
//! clearing a dead header or pool slot) is idempotent, so a crash at any
//! point inside recovery followed by a second recovery converges to the
//! same heap — with any thread count. The parallel decomposition:
//!
//! 1. **Replay** — committed logs partition by footprint disjointness and
//!    replay concurrently (see `FaManager::recover_logs`).
//! 2. **Mark** — a work-stealing traversal: each worker runs DFS on a
//!    local stack, spilling half its stack to a shared overflow queue when
//!    it grows and stealing batches when starved. The unit of work is a
//!    **reference slot**, not an object: the worker that pops a slot reads
//!    it, validity-checks the target, and either nullifies the slot or
//!    claims and traces the target. (Were targets the work unit, a single
//!    wide parent — e.g. a million-element ref array — would serialize a
//!    million validity reads in the worker that traced it.) Visit-once is
//!    decided by the atomic [`jnvm_heap::LiveBitmap`] (chained objects) or
//!    a sharded claim table (pooled objects), so each object is traced and
//!    `recover`-hooked by exactly one worker; every reference slot is
//!    yielded by exactly one parent's single trace, hence nullifications
//!    never race.
//! 3. **Sweep** — pool-slot and free-queue rebuilds partition the block
//!    range per worker (see the `jnvm-heap` crate).
//!
//! Every worker ends with a `pfence` of its own persistence domain; the
//! caller closes recovery with `psync`.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use jnvm_heap::{LiveBitmap, CLASS_ID_POOL};
use parking_lot::Mutex;

use crate::error::JnvmError;
use crate::proxy::RawChain;
use crate::runtime::Jnvm;

/// Which recovery algorithm to run at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Graph traversal + reclamation (the default).
    #[default]
    Full,
    /// Header inspection only (J-PFA-nogc).
    HeaderScanOnly,
}

/// How to run recovery at open: the algorithm and its degree of
/// parallelism. `threads == 1` (the default) is the sequential pass the
/// equivalence suite uses as its oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Which recovery algorithm to run.
    pub mode: RecoveryMode,
    /// Worker threads for replay, mark and sweep (clamped to >= 1).
    pub threads: usize,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions { mode: RecoveryMode::Full, threads: 1 }
    }
}

impl RecoveryOptions {
    /// Sequential recovery in the given mode (what `open_with_mode` uses).
    pub fn with_mode(mode: RecoveryMode) -> RecoveryOptions {
        RecoveryOptions { mode, threads: 1 }
    }

    /// Full recovery on `threads` workers.
    pub fn parallel(threads: usize) -> RecoveryOptions {
        RecoveryOptions { mode: RecoveryMode::Full, threads }
    }
}

/// What recovery did, with timings — the quantities behind Figure 11.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Mode that ran.
    pub mode_full: bool,
    /// Worker threads recovery ran with.
    pub threads: usize,
    /// Committed failure-atomic logs replayed.
    pub replayed_logs: u64,
    /// Uncommitted logs abandoned.
    pub abandoned_logs: u64,
    /// Live objects visited (Full mode) or valid masters kept (HeaderScan).
    pub live_objects: u64,
    /// Blocks found live.
    pub live_blocks: u64,
    /// Blocks reclaimed into the free queue.
    pub freed_blocks: u64,
    /// Dangling references nullified (Full mode only).
    pub nullified_refs: u64,
    /// Wall time of log replay.
    pub log_time: Duration,
    /// Wall time of the collection pass (mark + sweep).
    pub gc_time: Duration,
    /// Wall time of the mark/traversal phase alone.
    pub mark_time: Duration,
    /// Wall time of the sweep phase (pool + free-queue rebuild) alone.
    pub sweep_time: Duration,
    /// Busy time of each replay worker (one entry per worker).
    pub replay_thread_times: Vec<Duration>,
    /// Busy time of each mark worker (one entry per worker).
    pub mark_thread_times: Vec<Duration>,
    /// Modeled device time of each mark worker: the latency-model
    /// nanoseconds that worker paid (all-zero on devices without a
    /// latency model).
    pub mark_thread_device_times: Vec<Duration>,
    /// Modeled critical-path duration of log replay: the slowest replay
    /// worker's device time.
    ///
    /// The busy-wait latency model charges each thread on its own core,
    /// so on a host with at least one core per worker these modeled
    /// figures track wall clock; on smaller hosts (a 1-CPU CI container)
    /// the spinning workers time-share and wall clock flattens while the
    /// modeled critical path still reflects how the work divided.
    pub modeled_log_time: Duration,
    /// Modeled critical-path duration of the mark/traversal phase.
    pub modeled_mark_time: Duration,
    /// Modeled critical-path duration of the sweep phase (slowest pool
    /// sweeper plus slowest free-queue sweeper; the two sub-passes are
    /// sequential).
    pub modeled_sweep_time: Duration,
}

impl RecoveryReport {
    /// Modeled critical-path duration of the whole collection pass
    /// (mark + sweep) — the recovery-GC cost a machine with one core per
    /// worker would observe. See [`RecoveryReport::modeled_log_time`].
    pub fn modeled_gc_time(&self) -> Duration {
        self.modeled_mark_time + self.modeled_sweep_time
    }
}

pub(crate) fn run(rt: &Jnvm, opts: RecoveryOptions) -> Result<RecoveryReport, JnvmError> {
    let threads = opts.threads.max(1);
    let mut report = RecoveryReport {
        mode_full: opts.mode == RecoveryMode::Full,
        threads,
        ..Default::default()
    };
    // 1. Failure-atomic logs first (§4.2).
    let t0 = Instant::now();
    let obs_replay = jnvm_obs::span_begin();
    let (replayed, abandoned, replay_times, replay_device) =
        rt.fa_manager().recover_logs(rt, threads)?;
    jnvm_obs::span_end(jnvm_obs::SpanKind::RecoveryReplay, obs_replay);
    report.replayed_logs = replayed;
    report.abandoned_logs = abandoned;
    report.replay_thread_times = replay_times;
    report.modeled_log_time = replay_device.iter().max().copied().unwrap_or_default();
    report.log_time = t0.elapsed();

    // 2. Collection pass.
    let t1 = Instant::now();
    let obs_mark = jnvm_obs::span_begin();
    match opts.mode {
        RecoveryMode::Full => full_gc(rt, threads, &mut report)?,
        RecoveryMode::HeaderScanOnly => header_scan(rt, threads, &mut report),
    }
    jnvm_obs::span_end(jnvm_obs::SpanKind::RecoveryMark, obs_mark);
    report.gc_time = t1.elapsed();
    rt.pmem().psync();
    Ok(report)
}

fn object_valid(rt: &Jnvm, addr: u64) -> bool {
    if rt.pools().is_pooled_addr(addr) {
        rt.pools().read_mini(addr).valid
    } else {
        let heap = rt.heap();
        let idx = heap.block_of_addr(addr);
        if idx < heap.data_start() || idx >= heap.nblocks() {
            return false;
        }
        heap.read_header(idx).is_valid_master()
    }
}

// ----------------------------------------------------------------------
// The work-stealing mark traversal.
// ----------------------------------------------------------------------

/// Shards of the pooled-object claim table. Pooled visit-once cannot use
/// the block bitmap (many pooled objects share one block), so claims go
/// through sharded hash sets keyed by slot address.
const CLAIM_SHARDS: usize = 64;
/// Local stack size beyond which a worker spills half to the overflow.
const SPILL_THRESHOLD: usize = 256;
/// Addresses a starved worker steals from the overflow at once.
const STEAL_BATCH: usize = 128;

struct MarkShared<'a> {
    rt: &'a Jnvm,
    bitmap: &'a LiveBitmap,
    /// Claimed pooled slots, sharded by address.
    pool_claims: Vec<Mutex<HashSet<u64>>>,
    /// Spilled work (reference-slot addresses) any starved worker may
    /// steal.
    overflow: Mutex<Vec<u64>>,
    /// Workers currently processing (not idle). Work only enters the
    /// overflow from an active worker, so `active == 0 && overflow empty`
    /// means the traversal is complete.
    active: AtomicUsize,
    /// Set on the first traversal error; workers drain and exit.
    aborted: AtomicBool,
    live_objects: AtomicU64,
    nullified_refs: AtomicU64,
}

impl MarkShared<'_> {
    fn claim(&self, addr: u64) -> bool {
        let heap = self.rt.heap();
        if self.rt.pools().is_pooled_addr(addr) {
            let shard = (addr as usize >> 3) % CLAIM_SHARDS;
            if !self.pool_claims[shard].lock().insert(addr) {
                return false;
            }
            self.bitmap.mark(heap.block_of_addr(addr));
            true
        } else {
            let idx = heap.block_of_addr(addr);
            if !self.bitmap.mark(idx) {
                return false;
            }
            for b in heap.chain_blocks(idx) {
                self.bitmap.mark(b);
            }
            true
        }
    }

    fn spill(&self, local: &mut Vec<u64>) {
        // Spill the *older* (bottom) half: breadth near the roots spreads
        // across workers while each keeps its recent, cache-warm tail.
        let keep = local.len() / 2;
        self.overflow.lock().extend(local.drain(..keep));
    }

    fn steal(&self, local: &mut Vec<u64>) -> bool {
        let mut q = self.overflow.lock();
        let take = q.len().min(STEAL_BATCH);
        if take == 0 {
            return false;
        }
        let at = q.len() - take;
        local.extend(q.drain(at..));
        true
    }

    /// Resolve one reference slot: read the stored reference,
    /// validity-check the target, and either nullify the slot (dangling)
    /// or visit the target. Each slot is yielded by exactly one parent's
    /// single trace, so this runs exactly once per slot and the nullify
    /// write never races another worker.
    fn resolve_slot(
        &self,
        slot: u64,
        local: &mut Vec<u64>,
        nullified: &mut Vec<(u64, u64)>,
    ) -> Result<(), JnvmError> {
        let pmem = self.rt.pmem();
        let r = pmem.read_u64(slot);
        if r == 0 {
            return Ok(());
        }
        if object_valid(self.rt, r) {
            self.visit(r, local)
        } else {
            // §2.4: a reference to a partially deleted (or never
            // validated) object is nullified.
            pmem.write_u64(slot, 0);
            pmem.pwb(slot);
            if pmem.sanitizer_active() {
                nullified.push((slot, 8));
            }
            self.nullified_refs.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    /// Visit one valid object: claim it, push every reference slot it
    /// holds as stealable work, and run the class's `recover` hook.
    fn visit(&self, addr: u64, local: &mut Vec<u64>) -> Result<(), JnvmError> {
        if !self.claim(addr) {
            return Ok(());
        }
        let rt = self.rt;
        self.live_objects.fetch_add(1, Ordering::Relaxed);

        let class_id = rt.class_id_of_addr(addr);
        let ops = *rt
            .registry()
            .ops_of_id(class_id)
            .ok_or_else(|| JnvmError::UnknownPersistedClass(format!("id {class_id}")))?;
        let push = |slot: u64, local: &mut Vec<u64>| {
            local.push(slot);
            if local.len() > SPILL_THRESHOLD {
                self.spill(local);
            }
        };
        if !ops.ref_offsets.is_empty() {
            if rt.pools().is_pooled_addr(addr) {
                for off in ops.ref_offsets {
                    push(addr + 8 + off, local);
                }
            } else {
                let chain = RawChain::open(rt, addr);
                for off in ops.ref_offsets {
                    push(chain.phys(*off), local);
                }
            }
        }
        (ops.trace_extra)(rt, addr, &mut |slot| push(slot, local));
        (ops.recover)(rt, addr);
        Ok(())
    }

    /// One mark worker: visit its share of the roots, then drain the local
    /// slot stack, steal when starved, and retire when every worker is
    /// idle and the overflow is empty. Returns this worker's busy time.
    fn worker(&self, roots: Vec<u64>) -> Result<Duration, JnvmError> {
        // An injected crash unwinds this worker as a panic, not an `Err` —
        // without raising `aborted` on the way out, workers idling in the
        // spin loop below (which touches no device line and thus never
        // feels the frozen device) would wait on `active` forever.
        struct AbortOnUnwind<'s, 'a>(&'s MarkShared<'a>);
        impl Drop for AbortOnUnwind<'_, '_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.aborted.store(true, Ordering::Relaxed);
                }
            }
        }
        let _guard = AbortOnUnwind(self);
        let start = Instant::now();
        let finish = |t: Instant, nullified: &mut Vec<(u64, u64)>| {
            // Drain this worker's nullification / recover-hook write-backs
            // (a persistence domain drains only its owner's queue).
            self.rt.pmem().pfence();
            // The slots this worker nullified are durable behind its own
            // closing fence.
            self.rt.pmem().ordering_point("recovery-nullify", nullified);
            t.elapsed()
        };
        let mut nullified: Vec<(u64, u64)> = Vec::new();
        let mut local: Vec<u64> = Vec::new();
        for root in roots {
            if self.aborted.load(Ordering::Relaxed) {
                return Ok(finish(start, &mut nullified));
            }
            if let Err(e) = self.visit(root, &mut local) {
                self.aborted.store(true, Ordering::Relaxed);
                let _ = finish(start, &mut nullified);
                return Err(e);
            }
        }
        loop {
            while let Some(slot) = local.pop() {
                if self.aborted.load(Ordering::Relaxed) {
                    return Ok(finish(start, &mut nullified));
                }
                if let Err(e) = self.resolve_slot(slot, &mut local, &mut nullified) {
                    self.aborted.store(true, Ordering::Relaxed);
                    let _ = finish(start, &mut nullified);
                    return Err(e);
                }
            }
            if self.steal(&mut local) {
                continue;
            }
            // Idle protocol: deregister, then wait for either completion
            // (no active workers, empty overflow) or stealable work.
            self.active.fetch_sub(1, Ordering::SeqCst);
            loop {
                if self.aborted.load(Ordering::Relaxed) {
                    return Ok(finish(start, &mut nullified));
                }
                if !self.overflow.lock().is_empty() {
                    self.active.fetch_add(1, Ordering::SeqCst);
                    if self.steal(&mut local) {
                        break;
                    }
                    self.active.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                if self.active.load(Ordering::SeqCst) == 0 {
                    return Ok(finish(start, &mut nullified));
                }
                std::thread::yield_now();
            }
        }
    }
}

fn full_gc(rt: &Jnvm, threads: usize, report: &mut RecoveryReport) -> Result<(), JnvmError> {
    let heap = rt.heap();
    let t_mark = Instant::now();
    let bitmap = heap.new_bitmap();

    // Roots: class table, root map, log directory (whose tracer yields the
    // logs). Root slots are written once at format time; all three exist.
    let roots: Vec<u64> = (0..3).map(|s| heap.root_slot(s)).filter(|a| *a != 0).collect();

    // Workers beyond the root count start with empty stacks and pick up
    // spilled work from the overflow as the traversal fans out.
    let nworkers = threads.max(1);
    let shared = MarkShared {
        rt,
        bitmap: &bitmap,
        pool_claims: (0..CLAIM_SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        overflow: Mutex::new(Vec::new()),
        active: AtomicUsize::new(nworkers),
        aborted: AtomicBool::new(false),
        live_objects: AtomicU64::new(0),
        nullified_refs: AtomicU64::new(0),
    };
    // Deal the roots round-robin among the workers.
    let mut stacks: Vec<Vec<u64>> = (0..nworkers).map(|_| Vec::new()).collect();
    for (i, root) in roots.into_iter().enumerate() {
        stacks[i % nworkers].push(root);
    }
    let (mark_times, mark_device) = if nworkers <= 1 {
        let before = jnvm_pmem::thread_charged_ns();
        let busy =
            stacks.into_iter().next().map_or(Ok(Duration::ZERO), |s| shared.worker(s))?;
        let dt = Duration::from_nanos(jnvm_pmem::thread_charged_ns() - before);
        (vec![busy], vec![dt])
    } else {
        let results = jnvm_heap::par::run_workers_timed(stacks, |s| shared.worker(s));
        let mut busy = Vec::with_capacity(results.len());
        let mut device = Vec::with_capacity(results.len());
        for (r, dt) in results {
            busy.push(r?);
            device.push(dt);
        }
        (busy, device)
    };
    report.live_objects = shared.live_objects.load(Ordering::Relaxed);
    report.nullified_refs = shared.nullified_refs.load(Ordering::Relaxed);
    report.mark_thread_times = mark_times;
    report.modeled_mark_time = mark_device.iter().max().copied().unwrap_or_default();
    report.mark_thread_device_times = mark_device;
    report.live_blocks = bitmap.marked_count();
    report.mark_time = t_mark.elapsed();

    let live_slots: HashSet<u64> = shared
        .pool_claims
        .iter()
        .flat_map(|s| s.lock().iter().copied().collect::<Vec<u64>>())
        .collect();

    let t_sweep = Instant::now();
    let pool_device = rt.pools().rebuild_parallel(&bitmap, &live_slots, threads);
    let (freed, queue_device) = heap.rebuild_free_queue_parallel(&bitmap, threads);
    report.freed_blocks = freed;
    report.modeled_sweep_time = pool_device.iter().max().copied().unwrap_or_default()
        + queue_device.iter().max().copied().unwrap_or_default();
    report.sweep_time = t_sweep.elapsed();
    Ok(())
}

fn header_scan(rt: &Jnvm, threads: usize, report: &mut RecoveryReport) {
    let heap = rt.heap();
    let t_mark = Instant::now();
    let bitmap = heap.new_bitmap();

    // Pass 1 (read-only, partitioned): find live pool slots and valid
    // masters; mark pool blocks with at least one live slot.
    let scan_chunk = |lo: u64, hi: u64| -> (HashSet<u64>, Vec<u64>) {
        let mut live_slots: HashSet<u64> = HashSet::new();
        let mut masters: Vec<u64> = Vec::new();
        for idx in lo..hi {
            let h = heap.read_header(idx);
            if h.id == CLASS_ID_POOL {
                let mut any_live = false;
                rt.pools().scan_block_slots(idx, |slot, mini| {
                    if mini.id != 0 && mini.valid {
                        live_slots.insert(slot);
                        any_live = true;
                    }
                });
                if any_live {
                    bitmap.mark(idx);
                }
            } else if h.is_valid_master() {
                masters.push(idx);
            }
        }
        (live_slots, masters)
    };
    let chunks = jnvm_heap::par::partition_range(heap.data_start(), heap.scan_end(), threads);
    type ScanOut = (Vec<(HashSet<u64>, Vec<u64>)>, Vec<Duration>);
    let (scanned, scan_device): ScanOut =
        if chunks.len() <= 1 {
            let before = jnvm_pmem::thread_charged_ns();
            let out: Vec<_> = chunks.into_iter().map(|(lo, hi)| scan_chunk(lo, hi)).collect();
            let dt = Duration::from_nanos(jnvm_pmem::thread_charged_ns() - before);
            (out, vec![dt])
        } else {
            // Read-only workers: no pfence needed.
            jnvm_heap::par::run_workers_timed(chunks, |(lo, hi)| scan_chunk(lo, hi))
                .into_iter()
                .unzip()
        };
    let mut live_slots: HashSet<u64> = HashSet::new();
    let mut master_lists: Vec<Vec<u64>> = Vec::new();
    for (slots, masters) in scanned {
        report.live_objects += masters.len() as u64;
        live_slots.extend(slots);
        master_lists.push(masters);
    }

    // Pass 2 (read-only, partitioned): mark every kept master's chain.
    let mut chain_device: Vec<Duration> = Vec::new();
    if master_lists.iter().map(|m| m.len()).sum::<usize>() > 0 {
        let mark_chunk = |masters: Vec<u64>| {
            for m in masters {
                for b in heap.chain_blocks(m) {
                    bitmap.mark(b);
                }
            }
        };
        if threads <= 1 {
            let before = jnvm_pmem::thread_charged_ns();
            master_lists.into_iter().for_each(mark_chunk);
            chain_device
                .push(Duration::from_nanos(jnvm_pmem::thread_charged_ns() - before));
        } else {
            chain_device = jnvm_heap::par::run_workers_timed(master_lists, mark_chunk)
                .into_iter()
                .map(|(_, dt)| dt)
                .collect();
        }
    }
    report.modeled_mark_time = scan_device.iter().max().copied().unwrap_or_default()
        + chain_device.iter().max().copied().unwrap_or_default();
    report.mark_thread_device_times = scan_device;
    report.live_blocks = bitmap.marked_count();
    report.mark_time = t_mark.elapsed();

    let t_sweep = Instant::now();
    let pool_device = rt.pools().rebuild_parallel(&bitmap, &live_slots, threads);
    let (freed, queue_device) = heap.rebuild_free_queue_parallel(&bitmap, threads);
    report.freed_blocks = freed;
    report.modeled_sweep_time = pool_device.iter().max().copied().unwrap_or_default()
        + queue_device.iter().max().copied().unwrap_or_default();
    report.sweep_time = t_sweep.elapsed();
}
