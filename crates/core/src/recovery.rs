//! The recovery procedure (§4.1.3): replay failure-atomic logs, then run a
//! recovery-time garbage collection that implements liveness by
//! reachability (§2.4) — the paper's replacement for a runtime GC.
//!
//! Two modes are provided, matching the paper's evaluation (§5.3.3):
//!
//! * [`RecoveryMode::Full`] — traverse the live object graph from the
//!   persistent roots, nullify references to invalid objects, call each
//!   class's `recover` hook, then reclaim every unreachable block.
//! * [`RecoveryMode::HeaderScanOnly`] — the *J-PFA-nogc* variant: inspect
//!   only block headers, keeping valid masters (and their chains) and
//!   freeing the rest. Correct only when the application cannot produce
//!   invalid-but-reachable objects (e.g. every allocation and its
//!   publication share one failure-atomic block).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use jnvm_heap::CLASS_ID_POOL;

use crate::error::JnvmError;
use crate::proxy::RawChain;
use crate::runtime::Jnvm;

/// Which recovery algorithm to run at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Graph traversal + reclamation (the default).
    #[default]
    Full,
    /// Header inspection only (J-PFA-nogc).
    HeaderScanOnly,
}

/// What recovery did, with timings — the quantities behind Figure 11.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Mode that ran.
    pub mode_full: bool,
    /// Committed failure-atomic logs replayed.
    pub replayed_logs: u64,
    /// Uncommitted logs abandoned.
    pub abandoned_logs: u64,
    /// Live objects visited (Full mode) or valid masters kept (HeaderScan).
    pub live_objects: u64,
    /// Blocks found live.
    pub live_blocks: u64,
    /// Blocks reclaimed into the free queue.
    pub freed_blocks: u64,
    /// Dangling references nullified (Full mode only).
    pub nullified_refs: u64,
    /// Wall time of log replay.
    pub log_time: Duration,
    /// Wall time of the collection pass.
    pub gc_time: Duration,
}

pub(crate) fn run(rt: &Jnvm, mode: RecoveryMode) -> Result<RecoveryReport, JnvmError> {
    let mut report = RecoveryReport {
        mode_full: mode == RecoveryMode::Full,
        ..Default::default()
    };
    // 1. Failure-atomic logs first (§4.2).
    let t0 = Instant::now();
    let (replayed, abandoned) = rt.fa_manager().recover_logs(rt)?;
    report.replayed_logs = replayed;
    report.abandoned_logs = abandoned;
    report.log_time = t0.elapsed();

    // 2. Collection pass.
    let t1 = Instant::now();
    match mode {
        RecoveryMode::Full => full_gc(rt, &mut report)?,
        RecoveryMode::HeaderScanOnly => header_scan(rt, &mut report),
    }
    report.gc_time = t1.elapsed();
    rt.pmem().psync();
    Ok(report)
}

fn object_valid(rt: &Jnvm, addr: u64) -> bool {
    if rt.pools().is_pooled_addr(addr) {
        rt.pools().read_mini(addr).valid
    } else {
        let heap = rt.heap();
        let idx = heap.block_of_addr(addr);
        if idx < heap.data_start() || idx >= heap.nblocks() {
            return false;
        }
        heap.read_header(idx).is_valid_master()
    }
}

fn full_gc(rt: &Jnvm, report: &mut RecoveryReport) -> Result<(), JnvmError> {
    let heap = rt.heap();
    let pmem = rt.pmem();
    let mut bitmap = heap.new_bitmap();
    let mut live_slots: HashSet<u64> = HashSet::new();
    let mut stack: Vec<u64> = Vec::new();

    // Roots: class table, root map, log directory (whose tracer yields the
    // logs). Root slots are written once at format time; all three exist.
    for slot in 0..3 {
        let addr = heap.root_slot(slot);
        if addr != 0 {
            stack.push(addr);
        }
    }

    while let Some(addr) = stack.pop() {
        // Mark.
        if rt.pools().is_pooled_addr(addr) {
            if !live_slots.insert(addr) {
                continue;
            }
            bitmap.mark(heap.block_of_addr(addr));
        } else {
            let idx = heap.block_of_addr(addr);
            if bitmap.is_marked(idx) {
                continue;
            }
            for b in heap.chain_blocks(idx) {
                bitmap.mark(b);
            }
        }
        report.live_objects += 1;

        // Trace.
        let class_id = rt.class_id_of_addr(addr);
        let ops = *rt
            .registry()
            .ops_of_id(class_id)
            .ok_or_else(|| JnvmError::UnknownPersistedClass(format!("id {class_id}")))?;
        let mut slots: Vec<u64> = Vec::new();
        if !ops.ref_offsets.is_empty() {
            if rt.pools().is_pooled_addr(addr) {
                for off in ops.ref_offsets {
                    slots.push(addr + 8 + off);
                }
            } else {
                let chain = RawChain::open(rt, addr);
                for off in ops.ref_offsets {
                    slots.push(chain.phys(*off));
                }
            }
        }
        (ops.trace_extra)(rt, addr, &mut |slot| slots.push(slot));

        for slot in slots {
            let r = pmem.read_u64(slot);
            if r == 0 {
                continue;
            }
            if object_valid(rt, r) {
                stack.push(r);
            } else {
                // §2.4: a reference to a partially deleted (or never
                // validated) object is nullified.
                pmem.write_u64(slot, 0);
                pmem.pwb(slot);
                report.nullified_refs += 1;
            }
        }
        (ops.recover)(rt, addr);
    }

    report.live_blocks = bitmap.marked_count();
    rt.pools().rebuild(&bitmap, &live_slots);
    report.freed_blocks = heap.rebuild_free_queue(&bitmap);
    Ok(())
}

fn header_scan(rt: &Jnvm, report: &mut RecoveryReport) {
    let heap = rt.heap();
    let mut bitmap = heap.new_bitmap();
    let mut live_slots: HashSet<u64> = HashSet::new();
    let mut masters: Vec<u64> = Vec::new();
    heap.for_each_header(|idx, h| {
        if h.id == CLASS_ID_POOL {
            let mut any_live = false;
            rt.pools().scan_block_slots(idx, |slot, mini| {
                if mini.id != 0 && mini.valid {
                    live_slots.insert(slot);
                    any_live = true;
                }
            });
            if any_live {
                bitmap.mark(idx);
            }
        } else if h.is_valid_master() {
            masters.push(idx);
        }
    });
    for m in masters {
        for b in heap.chain_blocks(m) {
            bitmap.mark(b);
        }
        report.live_objects += 1;
    }
    report.live_blocks = bitmap.marked_count();
    rt.pools().rebuild(&bitmap, &live_slots);
    report.freed_blocks = heap.rebuild_free_queue(&bitmap);
}
