//! The persistent root map (`JNVM.root` in the paper, §2.5): a persistent
//! name → object table anchoring liveness by reachability.
//!
//! Layout:
//!
//! * map object (class [`CLASS_ID_ROOTMAP`]): `[capacity u64][slot u64 × capacity]`
//!   where each slot references an entry object or is null;
//! * entry object (class [`CLASS_ID_ROOTENTRY`]):
//!   `[value ref u64][key length u64][key bytes ≤ 184]` — one block.
//!
//! A volatile mirror (name → slot/entry) is rebuilt lazily after open. Every
//! mutation of the persistent structure is a single reference write, so the
//! map is crash-consistent without failure-atomic blocks — the same pattern
//! J-PDT uses (§4.3.2).
//!
//! Both the fenced `put`/`remove` and the weak `wput` of Figure 5 are
//! provided.

use std::collections::HashMap;

use crate::error::JnvmError;
use crate::object::{PAny, PObject};
use crate::proxy::{Proxy, RawChain};
use crate::registry::{CLASS_ID_ROOTENTRY, CLASS_ID_ROOTMAP};
use crate::runtime::{Jnvm, JnvmRuntime};

/// Number of root slots.
const CAPACITY: u64 = 1024;
/// Maximum key length in bytes.
const KEY_MAX: usize = 184;

/// Volatile mirror of the root map.
#[derive(Default)]
pub(crate) struct RootState {
    loaded: bool,
    /// name -> (slot index, entry address).
    mirror: HashMap<String, (u64, u64)>,
    free_slots: Vec<u64>,
}

fn slot_off(slot: u64) -> u64 {
    8 + slot * 8
}

fn entry_key(rt: &JnvmRuntime, entry_addr: u64) -> String {
    let chain = RawChain::open(rt, entry_addr);
    let pmem = rt.pmem();
    let len = pmem.read_u64(chain.phys(8)) as usize;
    let mut buf = vec![0u8; len.min(KEY_MAX)];
    crate::registry::read_chain_bytes(&chain, pmem, 16, &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

impl JnvmRuntime {
    pub(crate) fn create_root_map(self: &Jnvm) {
        let map = Proxy::alloc(self, CLASS_ID_ROOTMAP, 8 + CAPACITY * 8);
        map.write_u64(0, CAPACITY);
        // Zero every slot (blocks may be recycled).
        map.chain().segments(8, CAPACITY * 8, |addr, len| {
            self.pmem().zero_range(addr, len);
        });
        map.pwb();
        map.validate();
        self.pmem().pfence();
        self.heap().set_root_slot(1, map.addr());
    }

    fn with_root<R>(
        self: &Jnvm,
        f: impl FnOnce(&Jnvm, &Proxy, &mut RootState) -> R,
    ) -> R {
        let map = Proxy::open(self, self.heap().root_slot(1));
        let mut state = self.root_state().lock();
        if !state.loaded {
            let cap = map.read_u64(0);
            let mut stale_entries = Vec::new();
            for slot in 0..cap {
                let entry = map.read_u64(slot_off(slot));
                if entry == 0 {
                    state.free_slots.push(slot);
                    continue;
                }
                let chain = RawChain::open(self, entry);
                let value = self.pmem().read_u64(chain.phys(0));
                if value == 0 {
                    // The recovery GC nullified this entry's value (the
                    // object was invalid at the crash): drop the husk.
                    map.write_u64(slot_off(slot), 0);
                    map.pwb_field(slot_off(slot), 8);
                    stale_entries.push(entry);
                    state.free_slots.push(slot);
                    continue;
                }
                let key = entry_key(self, entry);
                state.mirror.insert(key, (slot, entry));
            }
            if !stale_entries.is_empty() {
                self.pfence();
                for e in stale_entries {
                    self.free_addr(e);
                }
            }
            state.loaded = true;
        }
        f(self, &map, &mut state)
    }

    /// Associate `name` with a persistent object in the root map, durably
    /// (`JNVM.root.put`). Replaces any previous association (the previous
    /// *object* is not freed — deletion stays explicit, §2.6).
    ///
    /// # Errors
    ///
    /// [`JnvmError::RootKeyTooLong`] or [`JnvmError::RootMapFull`].
    pub fn root_put<T: PObject>(self: &Jnvm, name: &str, obj: &T) -> Result<(), JnvmError> {
        self.root_put_addr(name, obj.addr(), true)
    }

    /// Weak variant of [`JnvmRuntime::root_put`] (`wput` in Figure 5): no
    /// fence is executed and the value is not validated; the caller batches
    /// `validate` + a single `pfence` over several objects.
    pub fn root_wput<T: PObject>(self: &Jnvm, name: &str, obj: &T) -> Result<(), JnvmError> {
        self.root_put_addr(name, obj.addr(), false)
    }

    pub(crate) fn root_put_addr(
        self: &Jnvm,
        name: &str,
        value: u64,
        strong: bool,
    ) -> Result<(), JnvmError> {
        if name.len() > KEY_MAX {
            return Err(JnvmError::RootKeyTooLong(name.len()));
        }
        // Inside a failure-atomic block, commit owns validation and
        // ordering; the put degrades to the weak protocol.
        let strong = strong && !self.in_fa();
        self.with_root(|rt, map, state| {
            if strong {
                // The association must never expose an invalid object.
                rt.set_valid_addr(value, true);
                rt.pfence();
            }
            if let Some((_slot, entry)) = state.mirror.get(name).copied() {
                // Update the existing entry's value reference in place.
                let e = Proxy::open(rt, entry);
                e.write_u64(0, value);
                e.pwb_field(0, 8);
                if strong {
                    rt.pfence();
                }
                return Ok(());
            }
            let Some(slot) = state.free_slots.pop() else {
                return Err(JnvmError::RootMapFull);
            };
            let entry = Proxy::alloc(rt, CLASS_ID_ROOTENTRY, 16 + KEY_MAX as u64);
            entry.write_u64(0, value);
            entry.write_u64(8, name.len() as u64);
            entry.write_bytes(16, name.as_bytes());
            entry.pwb();
            entry.validate();
            if strong {
                rt.pfence();
            }
            map.write_u64(slot_off(slot), entry.addr());
            map.pwb_field(slot_off(slot), 8);
            if strong {
                rt.pfence();
            }
            state.mirror.insert(name.to_string(), (slot, entry.addr()));
            Ok(())
        })
    }

    /// Look up `name` in the root map.
    pub fn root_get(self: &Jnvm, name: &str) -> Option<PAny> {
        self.with_root(|rt, _map, state| {
            let (_slot, entry) = state.mirror.get(name).copied()?;
            let chain = RawChain::open(rt, entry);
            let value = rt.pmem().read_u64(chain.phys(0));
            if value == 0 {
                return None;
            }
            Some(PAny {
                addr: value,
                class_id: rt.class_id_of_addr(value),
            })
        })
    }

    /// Typed lookup: [`JnvmRuntime::root_get`] + checked downcast.
    pub fn root_get_as<T: PObject>(self: &Jnvm, name: &str) -> Result<Option<T>, JnvmError> {
        match self.root_get(name) {
            None => Ok(None),
            Some(any) => any.get_as::<T>(self).map(Some),
        }
    }

    /// Whether `name` is present in the root map.
    pub fn root_exists(self: &Jnvm, name: &str) -> bool {
        self.with_root(|_rt, _map, state| state.mirror.contains_key(name))
    }

    /// Remove the association for `name` durably. The referenced object is
    /// **not** freed (deletion is explicit in J-NVM). Returns the removed
    /// object's address, if any.
    pub fn root_remove(self: &Jnvm, name: &str) -> Option<u64> {
        self.with_root(|rt, map, state| {
            let (slot, entry) = state.mirror.remove(name)?;
            let chain = RawChain::open(rt, entry);
            let value = rt.pmem().read_u64(chain.phys(0));
            map.write_u64(slot_off(slot), 0);
            map.pwb_field(slot_off(slot), 8);
            rt.pfence();
            rt.free_addr(entry);
            state.free_slots.push(slot);
            if value == 0 {
                None
            } else {
                Some(value)
            }
        })
    }

    /// Names currently present in the root map.
    pub fn root_names(self: &Jnvm) -> Vec<String> {
        self.with_root(|_rt, _map, state| state.mirror.keys().cloned().collect())
    }

    /// Number of root associations.
    pub fn root_len(self: &Jnvm) -> usize {
        self.with_root(|_rt, _map, state| state.mirror.len())
    }
}

/// Tracer for the root map object: every non-null slot references an entry.
pub(crate) fn trace_root_map(rt: &Jnvm, addr: u64, visit: &mut dyn FnMut(u64)) {
    let chain = RawChain::open(rt, addr);
    let cap = rt.pmem().read_u64(chain.phys(0));
    for slot in 0..cap {
        visit(chain.phys(slot_off(slot)));
    }
}

/// Tracer for a root entry: the value reference at payload offset 0.
pub(crate) fn trace_root_entry(rt: &Jnvm, addr: u64, visit: &mut dyn FnMut(u64)) {
    let chain = RawChain::open(rt, addr);
    visit(chain.phys(0));
}
