//! Replica sets: the failover primitive under `jnvm-repl`.
//!
//! A [`ReplicaSet`] owns an ordered list of *independent* full stacks
//! (each its own device, heap, FA manager — whatever `T` is) and tracks
//! which one is **active**. The replication machinery itself (streaming
//! commit groups to the backup, waiting for its durability point) lives
//! with the committer that owns the set; this type only answers the two
//! questions failover asks:
//!
//! * *who serves right now?* — [`ReplicaSet::active`], and
//! * *who takes over when the active device dies?* — [`ReplicaSet::promote`],
//!   which re-points `active` at the backup, marks the set **degraded**
//!   (one survivor, no redundancy left) and counts the promotion.
//!
//! A backup-side crash instead calls [`ReplicaSet::degrade`]: the primary
//! keeps serving solo. Both transitions are one-way — re-attaching a
//! replica is re-creation, not state here.
//!
//! [`divergent_keys`] is the post-failover audit helper: it compares
//! per-key state between two recovered images through caller-supplied
//! read closures, returning the keys whose states differ. After a primary
//! crash the backup is always *ahead or equal* per key (ops stream to the
//! backup before the primary's commit), so every divergent key must sit
//! above that key's acked floor — the replicated torture asserts exactly
//! that.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// An ordered set of replicas with one active member. Index 0 starts
/// active (the primary); [`ReplicaSet::promote`] advances to the next
/// replica in order.
pub struct ReplicaSet<T> {
    replicas: Vec<T>,
    active: AtomicUsize,
    degraded: AtomicBool,
    promotions: AtomicU64,
}

impl<T> ReplicaSet<T> {
    /// Wrap `replicas`; index 0 is the initial primary. A singleton set is
    /// born degraded (it never had redundancy).
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn new(replicas: Vec<T>) -> ReplicaSet<T> {
        assert!(!replicas.is_empty(), "a replica set needs at least one member");
        let degraded = replicas.len() < 2;
        ReplicaSet {
            replicas,
            active: AtomicUsize::new(0),
            degraded: AtomicBool::new(degraded),
            promotions: AtomicU64::new(0),
        }
    }

    /// Number of replicas (including dead ones; the set never shrinks).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false — the constructor rejects empty sets.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Index of the replica currently serving.
    pub fn active_index(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The replica currently serving.
    pub fn active(&self) -> &T {
        &self.replicas[self.active_index()]
    }

    /// The next replica in promotion order, or `None` once the set is
    /// degraded (no redundancy left to fail over to).
    pub fn backup(&self) -> Option<&T> {
        if self.degraded.load(Ordering::Acquire) {
            return None;
        }
        let next = (self.active_index() + 1) % self.replicas.len();
        Some(&self.replicas[next])
    }

    /// Replica by index (promotion never removes members, so a harness can
    /// still inspect the crashed primary's stack after failover).
    pub fn get(&self, i: usize) -> &T {
        &self.replicas[i]
    }

    /// Fail over: re-point `active` at the backup and mark the set
    /// degraded. Returns the new active index, or `None` when there is no
    /// backup left (the caller's only move is to die, PR 6 style).
    pub fn promote(&self) -> Option<usize> {
        if self.degraded.swap(true, Ordering::AcqRel) {
            return None;
        }
        let next = (self.active_index() + 1) % self.replicas.len();
        self.active.store(next, Ordering::Release);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        Some(next)
    }

    /// Backup-side crash: the active replica keeps serving solo. Idempotent.
    pub fn degrade(&self) {
        self.degraded.store(true, Ordering::Release);
    }

    /// True once redundancy is gone (singleton set, promotion, or an
    /// explicit [`ReplicaSet::degrade`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }
}

/// Compare per-key state between two recovered images and return the keys
/// whose states differ. `read_a`/`read_b` abstract over whatever "state"
/// means for the caller (a record, an `Option<Record>`, a hash) so this
/// stays free of storage-layer dependencies.
pub fn divergent_keys<K, V, A, B>(
    keys: impl IntoIterator<Item = K>,
    mut read_a: A,
    mut read_b: B,
) -> Vec<K>
where
    V: PartialEq,
    A: FnMut(&K) -> V,
    B: FnMut(&K) -> V,
{
    keys.into_iter()
        .filter(|k| read_a(k) != read_b(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_advances_and_degrades() {
        let set = ReplicaSet::new(vec!["primary", "backup"]);
        assert_eq!(set.active_index(), 0);
        assert_eq!(set.backup(), Some(&"backup"));
        assert!(!set.is_degraded());

        assert_eq!(set.promote(), Some(1));
        assert_eq!(*set.active(), "backup");
        assert!(set.is_degraded());
        assert_eq!(set.promotions(), 1);
        // No redundancy left: a second failure has nowhere to go.
        assert_eq!(set.backup(), None);
        assert_eq!(set.promote(), None);
        assert_eq!(set.promotions(), 1);
        // The crashed primary stays inspectable by index.
        assert_eq!(*set.get(0), "primary");
    }

    #[test]
    fn singleton_set_is_born_degraded() {
        let set = ReplicaSet::new(vec![7u32]);
        assert!(set.is_degraded());
        assert_eq!(set.backup(), None);
        assert_eq!(set.promote(), None);
        assert_eq!(*set.active(), 7);
    }

    #[test]
    fn backup_crash_degrades_without_flipping_active() {
        let set = ReplicaSet::new(vec![0u8, 1u8]);
        set.degrade();
        assert_eq!(set.active_index(), 0, "degrade must not fail over");
        assert_eq!(set.backup(), None);
        assert_eq!(set.promotions(), 0);
    }

    #[test]
    fn divergent_keys_reports_exactly_the_differences() {
        let a = [(1, "x"), (2, "y"), (3, "z")];
        let b = [(1, "x"), (2, "Y"), (4, "w")];
        let read = |img: &[(i32, &'static str)]| {
            let img: Vec<_> = img.to_vec();
            move |k: &i32| img.iter().find(|(key, _)| key == k).map(|(_, v)| *v)
        };
        let div = divergent_keys(vec![1, 2, 3, 4], read(&a), read(&b));
        assert_eq!(div, vec![2, 3, 4]);
    }
}
