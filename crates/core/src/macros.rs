//! The `persistent_class!` macro — the Rust analogue of the paper's
//! bytecode generator (§2.5, §3).
//!
//! Given a class declaration, it emits exactly the artefacts the paper's
//! generator produces from a `@Persistent` Java class: a volatile proxy
//! struct holding the block-address array, typed getters/setters that
//! access NVMM through the mediated low-level interface, the resurrect
//! constructor, atomic reference-update helpers (§4.1.6), the layout
//! descriptor the recovery GC traces, and the class registration glue.
//!
//! # Syntax
//!
//! ```ignore
//! persistent_class! {
//!     /// A simple persistent object (Figure 3 of the paper).
//!     pub class Simple {
//!         val x, set_x: i32;
//!         ref msg, set_msg, update_msg: PString;
//!     }
//! }
//! ```
//!
//! * `val getter, setter: T;` — a primitive field (`T: PVal`), one word.
//! * `ref getter, setter, updater: T;` — a persistent reference field
//!   (`T: PObject`). The getter returns `Option<T>` (resurrecting a proxy
//!   on demand), the setter stores a raw reference, and the updater is the
//!   paper's atomic `validate → pfence → store` helper.
//!
//! Transient fields keep living in ordinary volatile Rust state — wrap the
//! generated struct if you need them, as `examples/quickstart.rs` shows.
//!
//! Like the Java original, constructors are user code: call
//! `Type::alloc_uninit(&rt)`, fill fields, then flush/validate (or do it
//! all inside [`crate::JnvmRuntime::fa`]).

/// Generate a persistent class. See the [module docs](crate::macros).
#[macro_export]
macro_rules! persistent_class {
    (
        $(#[$meta:meta])*
        $vis:vis class $name:ident { $($body:tt)* }
    ) => {
        $crate::persistent_class!(@munch
            meta = [$(#[$meta])*],
            vis = [$vis],
            name = $name,
            off = (0u64),
            fields = [],
            refs = [],
            rest = [$($body)*]
        );
    };

    // A primitive field.
    (@munch
        meta = [$($meta:tt)*],
        vis = [$vis:vis],
        name = $name:ident,
        off = ($off:expr),
        fields = [$($fields:tt)*],
        refs = [$($refs:tt)*],
        rest = [val $getter:ident, $setter:ident : $t:ty; $($rest:tt)*]
    ) => {
        $crate::persistent_class!(@munch
            meta = [$($meta)*],
            vis = [$vis],
            name = $name,
            off = ($off + 8),
            fields = [$($fields)* { val $getter $setter ($t) ($off) }],
            refs = [$($refs)*],
            rest = [$($rest)*]
        );
    };

    // A persistent reference field.
    (@munch
        meta = [$($meta:tt)*],
        vis = [$vis:vis],
        name = $name:ident,
        off = ($off:expr),
        fields = [$($fields:tt)*],
        refs = [$($refs:tt)*],
        rest = [ref $getter:ident, $setter:ident, $updater:ident : $t:ty; $($rest:tt)*]
    ) => {
        $crate::persistent_class!(@munch
            meta = [$($meta)*],
            vis = [$vis],
            name = $name,
            off = ($off + 8),
            fields = [$($fields)* { ref $getter $setter $updater ($t) ($off) }],
            refs = [$($refs)* ($off)],
            rest = [$($rest)*]
        );
    };

    // Done: emit.
    (@munch
        meta = [$($meta:tt)*],
        vis = [$vis:vis],
        name = $name:ident,
        off = ($total:expr),
        fields = [$($fields:tt)*],
        refs = [$($roff:tt)*],
        rest = []
    ) => {
        $($meta)*
        #[derive(Clone)]
        $vis struct $name {
            proxy: $crate::Proxy,
        }

        // Generated API: any given class uses a subset of it.
        #[allow(dead_code)]
        impl $name {
            /// Persistent payload size of this class in bytes.
            pub const PAYLOAD_BYTES: u64 = $total;

            /// Allocate the persistent data structure for a new instance.
            /// The object starts invalid; flush and validate it (or run
            /// inside a failure-atomic block) before publishing it.
            ///
            /// # Panics
            ///
            /// Panics if the class was not registered with the builder or
            /// the persistent heap is exhausted.
            pub fn alloc_uninit(rt: &$crate::Jnvm) -> Self {
                let proxy = rt
                    .alloc_proxy::<Self>(Self::PAYLOAD_BYTES.max(8))
                    .expect("allocation failed");
                $name { proxy }
            }

            /// The underlying proxy (low-level interface).
            pub fn proxy(&self) -> &$crate::Proxy {
                &self.proxy
            }

            /// `pwb()` over the whole object (§3.2.2).
            pub fn pwb(&self) {
                self.proxy.pwb();
            }

            /// Validate the object — fence-free (§3.2.3).
            pub fn validate(&self) {
                self.proxy.validate();
            }

            /// Whether the object is currently valid.
            pub fn is_valid(&self) -> bool {
                self.proxy.is_valid()
            }

            $crate::persistent_class!(@accessors $($fields)*);
        }

        impl $crate::PObject for $name {
            const CLASS_NAME: &'static str =
                concat!(module_path!(), "::", stringify!($name));
            const REF_OFFSETS: &'static [u64] = &[$($roff),*];

            fn resurrect(rt: &$crate::Jnvm, addr: u64) -> Self {
                $name { proxy: $crate::Proxy::open(rt, addr) }
            }

            fn addr(&self) -> u64 {
                self.proxy.addr()
            }
        }
    };

    // Accessor emission.
    (@accessors) => {};
    (@accessors { val $getter:ident $setter:ident ($t:ty) ($off:expr) } $($rest:tt)*) => {
        /// Generated persistent-field getter.
        pub fn $getter(&self) -> $t {
            <$t as $crate::PVal>::read(&self.proxy, $off)
        }
        /// Generated persistent-field setter.
        pub fn $setter(&self, v: $t) {
            <$t as $crate::PVal>::write(&self.proxy, $off, v)
        }
        $crate::persistent_class!(@accessors $($rest)*);
    };
    (@accessors { ref $getter:ident $setter:ident $updater:ident ($t:ty) ($off:expr) } $($rest:tt)*) => {
        /// Generated persistent-reference getter: resurrects a proxy for
        /// the referenced object on demand (§3.1).
        ///
        /// # Panics
        ///
        /// Panics if the stored reference has a different class than the
        /// field type — possible only through unchecked raw-address writes.
        pub fn $getter(&self) -> Option<$t> {
            self.proxy.read_ref($off).map(|a| {
                self.proxy
                    .runtime()
                    .read_pobject::<$t>(a)
                    .expect("reference field holds object of declared class")
            })
        }
        /// Generated persistent-reference setter (raw store, no fence).
        pub fn $setter(&self, v: Option<&$t>) {
            self.proxy
                .write_ref($off, v.map(|o| <$t as $crate::PObject>::addr(o)));
        }
        /// Generated atomic reference update (Figure 6): validate the new
        /// object, fence, store — the recovery pass can never catch the
        /// slot pointing at an invalid object.
        pub fn $updater(&self, v: Option<&$t>) {
            if let Some(o) = v {
                self.proxy
                    .runtime()
                    .set_valid_addr(<$t as $crate::PObject>::addr(o), true);
            }
            self.proxy.runtime().pfence();
            self.$setter(v);
            self.proxy.pwb_field($off, 8);
        }
        $crate::persistent_class!(@accessors $($rest)*);
    };
}
