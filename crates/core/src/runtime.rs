//! The J-NVM runtime: pool lifecycle (create / open with recovery), object
//! allocation and deletion, validation, and the mediated persistence
//! primitives.

use std::sync::{Arc, OnceLock};

use jnvm_heap::{BlockHeap, HeapConfig, PoolManager};
use jnvm_pmem::Pmem;
use parking_lot::Mutex;

use crate::error::JnvmError;
use crate::fa::{self, FaManager};
use crate::object::PObject;
use crate::recovery::{self, RecoveryMode, RecoveryOptions, RecoveryReport};
use crate::registry::{ClassOps, ClassRegistry};
use crate::rootmap::RootState;

/// Shared handle to a [`JnvmRuntime`]. Proxies clone this freely.
pub type Jnvm = Arc<JnvmRuntime>;

/// Builder collecting class registrations before a pool is created or
/// opened. Registration order determines class ids on a fresh pool; on an
/// existing pool, persisted names win.
#[derive(Default)]
pub struct JnvmBuilder {
    classes: Vec<ClassOps>,
}

impl JnvmBuilder {
    /// Start an empty builder.
    pub fn new() -> JnvmBuilder {
        JnvmBuilder::default()
    }

    /// Register persistent class `T`. Idempotent per class name.
    pub fn register<T: PObject>(mut self) -> JnvmBuilder {
        if !self.classes.iter().any(|c| c.name == T::CLASS_NAME) {
            self.classes.push(ClassOps::of::<T>());
        }
        self
    }

    /// Format a fresh persistent heap over `pmem` and bring up the runtime.
    pub fn create(self, pmem: Arc<Pmem>, cfg: HeapConfig) -> Result<Jnvm, JnvmError> {
        let heap = BlockHeap::format(pmem, cfg)?;
        let rt = JnvmRuntime::bare(heap);
        let registry = ClassRegistry::create(&rt, &self.classes)?;
        rt.registry
            .set(registry)
            .unwrap_or_else(|_| unreachable!("fresh runtime has no registry"));
        rt.create_root_map();
        FaManager::create_dir(&rt);
        rt.pmem().psync();
        Ok(rt)
    }

    /// Open an existing heap: replay failure-atomic logs and run the
    /// recovery procedure (default [`RecoveryMode::Full`]).
    pub fn open(self, pmem: Arc<Pmem>) -> Result<(Jnvm, RecoveryReport), JnvmError> {
        self.open_with_mode(pmem, RecoveryMode::Full)
    }

    /// Open with an explicit recovery mode (J-PFA-nogc uses
    /// [`RecoveryMode::HeaderScanOnly`]), recovering sequentially.
    pub fn open_with_mode(
        self,
        pmem: Arc<Pmem>,
        mode: RecoveryMode,
    ) -> Result<(Jnvm, RecoveryReport), JnvmError> {
        self.open_with_options(pmem, RecoveryOptions::with_mode(mode))
    }

    /// Open with full control over the recovery pass: its mode and the
    /// number of worker threads for replay, mark and sweep. Any thread
    /// count yields the same recovered heap (`threads: 1` is the
    /// sequential oracle the equivalence suite compares against).
    pub fn open_with_options(
        self,
        pmem: Arc<Pmem>,
        opts: RecoveryOptions,
    ) -> Result<(Jnvm, RecoveryReport), JnvmError> {
        let heap = BlockHeap::open(pmem)?;
        let rt = JnvmRuntime::bare(heap);
        let registry = ClassRegistry::open(&rt, &self.classes)?;
        rt.registry
            .set(registry)
            .unwrap_or_else(|_| unreachable!("fresh runtime has no registry"));
        let report = recovery::run(&rt, opts)?;
        Ok((rt, report))
    }
}

/// The runtime: every persistent-object operation flows through it.
pub struct JnvmRuntime {
    heap: Arc<BlockHeap>,
    pools: PoolManager,
    registry: OnceLock<ClassRegistry>,
    root: Mutex<RootState>,
    fa: FaManager,
}

impl JnvmRuntime {
    fn bare(heap: Arc<BlockHeap>) -> Jnvm {
        let pools = PoolManager::new(Arc::clone(&heap));
        Arc::new(JnvmRuntime {
            heap,
            pools,
            registry: OnceLock::new(),
            root: Mutex::new(RootState::default()),
            fa: FaManager::new(),
        })
    }

    /// The underlying device.
    pub fn pmem(&self) -> &Arc<Pmem> {
        self.heap.pmem()
    }

    /// The block heap.
    pub fn heap(&self) -> &Arc<BlockHeap> {
        &self.heap
    }

    /// The small-immutable-object pools.
    pub fn pools(&self) -> &PoolManager {
        &self.pools
    }

    /// The class registry.
    ///
    /// # Panics
    ///
    /// Panics if called on a runtime that failed mid-construction (never
    /// observable through the public API).
    pub fn registry(&self) -> &ClassRegistry {
        self.registry.get().expect("runtime fully constructed")
    }

    pub(crate) fn root_state(&self) -> &Mutex<RootState> {
        &self.root
    }

    pub(crate) fn fa_manager(&self) -> &FaManager {
        &self.fa
    }

    // ------------------------------------------------------------------
    // Allocation and deletion.
    // ------------------------------------------------------------------

    /// Allocate a pooled small-immutable object (§4.4) of class `T` with
    /// `payload` bytes. Returns the object's address; the object starts
    /// invalid. Failure-atomic-block aware.
    pub fn alloc_pooled<T: PObject>(self: &Jnvm, payload: u64) -> Result<u64, JnvmError> {
        let id = self.registry().id_of::<T>()?;
        let addr = self.pools.alloc(id, payload)?;
        fa::note_alloc(self, addr);
        Ok(addr)
    }

    /// Allocate a block-chained object of class `T` with `payload` bytes of
    /// fields, returning its proxy. Failure-atomic-block aware.
    pub fn alloc_proxy<T: PObject>(
        self: &Jnvm,
        payload: u64,
    ) -> Result<crate::Proxy, JnvmError> {
        let id = self.registry().id_of::<T>()?;
        crate::Proxy::try_alloc(self, id, payload)
    }

    /// `JNVM.free`: explicitly delete a persistent object (§4.1.5). Inside
    /// a failure-atomic block the free is logged and deferred to commit.
    pub fn free<T: PObject>(self: &Jnvm, obj: T) {
        self.free_addr(obj.addr());
    }

    /// [`JnvmRuntime::free`] by address.
    pub fn free_addr(self: &Jnvm, addr: u64) {
        if !fa::note_free(self, addr) {
            self.free_addr_now(addr);
        }
    }

    /// Immediate free, bypassing any failure-atomic block (used by commit
    /// and recovery).
    pub(crate) fn free_addr_now(&self, addr: u64) {
        if self.pools.is_pooled_addr(addr) {
            // A corrupt pool block makes the slot unfreeable; leak it rather
            // than abort — recovery-time GC reclaims whatever stays
            // unreachable.
            let _ = self.pools.free(addr);
        } else {
            self.heap.free_object(self.heap.block_of_addr(addr));
        }
    }

    /// Set the validity bit of the object at `addr` (pooled or chained) and
    /// enqueue the header line — fence-free (§3.2.3).
    pub fn set_valid_addr(&self, addr: u64, valid: bool) {
        if self.pools.is_pooled_addr(addr) {
            self.pools.set_valid(addr, valid);
        } else {
            self.heap.set_valid(self.heap.block_of_addr(addr), valid);
        }
    }

    /// Whether the object at `addr` is valid.
    pub fn is_valid_addr(&self, addr: u64) -> bool {
        if self.pools.is_pooled_addr(addr) {
            self.pools.read_mini(addr).valid
        } else {
            self.heap
                .read_header(self.heap.block_of_addr(addr))
                .is_valid_master()
        }
    }

    /// Class id of the object at `addr`.
    pub fn class_id_of_addr(&self, addr: u64) -> u16 {
        crate::registry::class_id_of_addr(self, addr)
    }

    /// `readPObject` (§3.1): resurrect the object at `addr` as `T`, with a
    /// class check against the header.
    pub fn read_pobject<T: PObject>(self: &Jnvm, addr: u64) -> Result<T, JnvmError> {
        let expected = self.registry().id_of::<T>()?;
        let found = self.class_id_of_addr(addr);
        if expected != found {
            return Err(JnvmError::ClassMismatch { expected, found });
        }
        Ok(T::resurrect(self, addr))
    }

    // ------------------------------------------------------------------
    // Persistence primitives (mediated).
    // ------------------------------------------------------------------

    /// `pfence` (§3.2.2). Inside a failure-atomic block this is a no-op:
    /// the commit protocol owns ordering, exactly as the paper's mediation
    /// makes low-level flushes transparent under `faStart`/`faEnd`.
    pub fn pfence(&self) {
        if fa::depth() == 0 {
            self.pmem().pfence();
        }
    }

    /// `psync` (§3.2.2). No-op inside a failure-atomic block.
    pub fn psync(&self) {
        if fa::depth() == 0 {
            self.pmem().psync();
        }
    }
}

impl std::fmt::Debug for JnvmRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JnvmRuntime")
            .field("heap", &self.heap)
            .finish()
    }
}
