//! Class registry and the persistent class table.
//!
//! The paper stores, for each master block, a 15-bit class id; a persistent
//! array maps ids to proxy class names so objects can be resurrected after a
//! restart (§4.1.1). This module implements that table plus the volatile
//! registry mapping ids to the per-class operations (trace / recover /
//! resurrect support) the recovery GC needs.

use std::collections::HashMap;

use jnvm_heap::FIRST_USER_CLASS_ID;

use crate::error::JnvmError;
use crate::object::PObject;
use crate::proxy::{Proxy, RawChain};
use crate::runtime::{Jnvm, JnvmRuntime};

/// Reserved class id of the class table itself.
pub const CLASS_ID_CLASSTABLE: u16 = 2;
/// Reserved class id of the root map.
pub const CLASS_ID_ROOTMAP: u16 = 3;
/// Reserved class id of a root map entry.
pub const CLASS_ID_ROOTENTRY: u16 = 4;
/// Reserved class id of a failure-atomic redo log.
pub const CLASS_ID_FALOG: u16 = 5;
/// Reserved class id of the failure-atomic log directory.
pub const CLASS_ID_FALOGDIR: u16 = 6;

/// Maximum classes the persistent table can hold.
const TABLE_CAPACITY: u64 = 512;
/// Bytes per table entry: id (2), name length (2), padding (4), name (56).
const ENTRY_BYTES: u64 = 64;
/// Maximum persisted class-name length.
const NAME_MAX: usize = 56;

/// Per-class operations used by the recovery GC.
#[derive(Clone, Copy)]
pub struct ClassOps {
    /// Fully-qualified class name.
    pub name: &'static str,
    /// Logical offsets of fixed reference fields.
    pub ref_offsets: &'static [u64],
    /// Tracer for dynamically-located reference slots (physical addresses).
    pub trace_extra: fn(&Jnvm, u64, &mut dyn FnMut(u64)),
    /// Consistency hook run on each live object at recovery.
    pub recover: fn(&Jnvm, u64),
}

impl ClassOps {
    /// Derive the operations of a [`PObject`] implementation.
    pub fn of<T: PObject>() -> ClassOps {
        ClassOps {
            name: T::CLASS_NAME,
            ref_offsets: T::REF_OFFSETS,
            trace_extra: T::trace_extra,
            recover: T::recover,
        }
    }

    fn internal(name: &'static str, trace_extra: fn(&Jnvm, u64, &mut dyn FnMut(u64))) -> ClassOps {
        ClassOps {
            name,
            ref_offsets: &[],
            trace_extra,
            recover: |_, _| {},
        }
    }
}

impl std::fmt::Debug for ClassOps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassOps").field("name", &self.name).finish()
    }
}

/// Volatile id/name/ops maps, frozen once the runtime is constructed.
pub struct ClassRegistry {
    by_id: HashMap<u16, ClassOps>,
    by_name: HashMap<&'static str, u16>,
    table_addr: u64,
}

impl ClassRegistry {
    /// Operations for class `id`, if registered.
    pub fn ops_of_id(&self, id: u16) -> Option<&ClassOps> {
        self.by_id.get(&id)
    }

    /// Id of the class named `name`, if registered.
    pub fn id_of_name(&self, name: &str) -> Option<u16> {
        self.by_name.get(name).copied()
    }

    /// Id registered for `T`.
    ///
    /// # Errors
    ///
    /// [`JnvmError::UnregisteredClass`] if `T` was not passed to the
    /// builder.
    pub fn id_of<T: PObject>(&self) -> Result<u16, JnvmError> {
        self.id_of_name(T::CLASS_NAME)
            .ok_or(JnvmError::UnregisteredClass(T::CLASS_NAME))
    }

    /// Address of the persistent class table object.
    pub fn table_addr(&self) -> u64 {
        self.table_addr
    }

    /// Number of registered classes (user classes only).
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when no user class is registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    fn internal_ops() -> Vec<(u16, ClassOps)> {
        vec![
            (
                CLASS_ID_CLASSTABLE,
                ClassOps::internal("jnvm.internal.ClassTable", |_, _, _| {}),
            ),
            (
                CLASS_ID_ROOTMAP,
                ClassOps::internal("jnvm.internal.RootMap", crate::rootmap::trace_root_map),
            ),
            (
                CLASS_ID_ROOTENTRY,
                ClassOps::internal("jnvm.internal.RootEntry", crate::rootmap::trace_root_entry),
            ),
            (
                CLASS_ID_FALOG,
                ClassOps::internal("jnvm.internal.FaLog", |_, _, _| {}),
            ),
            (
                CLASS_ID_FALOGDIR,
                ClassOps::internal("jnvm.internal.FaLogDir", crate::fa::trace_log_dir),
            ),
        ]
    }

    /// Create the persistent table on a fresh pool and assign ids to the
    /// builder's classes in registration order.
    pub(crate) fn create(rt: &Jnvm, classes: &[ClassOps]) -> Result<ClassRegistry, JnvmError> {
        let payload = 16 + TABLE_CAPACITY * ENTRY_BYTES;
        let table = Proxy::alloc(rt, CLASS_ID_CLASSTABLE, payload);
        table.write_u64(0, 0); // count
        table.pwb();
        table.validate();
        rt.pmem().pfence();
        rt.heap().set_root_slot(0, table.addr());

        let mut reg = ClassRegistry {
            by_id: ClassRegistry::internal_ops().into_iter().collect(),
            by_name: HashMap::new(),
            table_addr: table.addr(),
        };
        for (next_id, ops) in (FIRST_USER_CLASS_ID..).zip(classes.iter()) {
            reg.append_entry(rt, next_id, ops)?;
        }
        rt.pmem().psync();
        Ok(reg)
    }

    /// Load the persistent table from an existing pool, match persisted
    /// names to the builder's classes, and append entries for new classes.
    pub(crate) fn open(rt: &Jnvm, classes: &[ClassOps]) -> Result<ClassRegistry, JnvmError> {
        let table_addr = rt.heap().root_slot(0);
        let chain = RawChain::open(rt, table_addr);
        let pmem = rt.pmem();
        let count = pmem.read_u64(chain.phys(0));
        let mut persisted: HashMap<String, u16> = HashMap::new();
        for i in 0..count {
            let base = 16 + i * ENTRY_BYTES;
            let id = pmem.read_u16(chain.phys(base));
            let len = pmem.read_u16(chain.phys(base + 2)) as usize;
            let mut name = vec![0u8; len.min(NAME_MAX)];
            // Entries are 64-byte aligned within the payload and never
            // straddle a block (payload 248 is not a multiple of 64, so use
            // segment-safe reads).
            read_chain_bytes(&chain, pmem, base + 8, &mut name);
            let name = String::from_utf8_lossy(&name).into_owned();
            persisted.insert(name, id);
        }

        let mut reg = ClassRegistry {
            by_id: ClassRegistry::internal_ops().into_iter().collect(),
            by_name: HashMap::new(),
            table_addr,
        };
        let mut matched: HashMap<&'static str, ClassOps> = HashMap::new();
        for ops in classes {
            matched.insert(ops.name, *ops);
        }
        let mut max_id = FIRST_USER_CLASS_ID.saturating_sub(1);
        for (name, id) in &persisted {
            max_id = max_id.max(*id);
            match matched.remove(name.as_str()) {
                Some(ops) => {
                    reg.by_id.insert(*id, ops);
                    reg.by_name.insert(ops.name, *id);
                }
                None => return Err(JnvmError::UnknownPersistedClass(name.clone())),
            }
        }
        // Remaining classes are new: append them.
        let mut next_id = max_id + 1;
        for ops in classes {
            if reg.by_name.contains_key(ops.name) {
                continue;
            }
            reg.append_entry(rt, next_id, ops)?;
            next_id += 1;
        }
        rt.pmem().psync();
        Ok(reg)
    }

    fn append_entry(&mut self, rt: &Jnvm, id: u16, ops: &ClassOps) -> Result<(), JnvmError> {
        if ops.name.len() > NAME_MAX {
            return Err(JnvmError::ClassNameTooLong(ops.name.to_string()));
        }
        let chain = RawChain::open(rt, self.table_addr);
        let pmem = rt.pmem();
        let count = pmem.read_u64(chain.phys(0));
        if count >= TABLE_CAPACITY {
            return Err(JnvmError::ClassTableFull);
        }
        let base = 16 + count * ENTRY_BYTES;
        pmem.write_u16(chain.phys(base), id);
        pmem.write_u16(chain.phys(base + 2), ops.name.len() as u16);
        write_chain_bytes(&chain, pmem, base + 8, ops.name.as_bytes());
        chain.segments(base, ENTRY_BYTES, |addr, len| pmem.pwb_range(addr, len));
        // Entry persists before the count that publishes it.
        pmem.pfence();
        pmem.write_u64(chain.phys(0), count + 1);
        pmem.pwb(chain.phys(0));
        self.by_id.insert(id, *ops);
        self.by_name.insert(ops.name, id);
        Ok(())
    }
}

impl std::fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassRegistry")
            .field("classes", &self.by_name)
            .finish()
    }
}

/// Read bytes from a chain at a logical offset (segment-safe).
pub(crate) fn read_chain_bytes(
    chain: &RawChain,
    pmem: &jnvm_pmem::Pmem,
    logical: u64,
    out: &mut [u8],
) {
    let mut done = 0usize;
    chain.segments(logical, out.len() as u64, |addr, len| {
        pmem.read_bytes(addr, &mut out[done..done + len as usize]);
        done += len as usize;
    });
}

/// Write bytes to a chain at a logical offset (segment-safe, no flush).
pub(crate) fn write_chain_bytes(
    chain: &RawChain,
    pmem: &jnvm_pmem::Pmem,
    logical: u64,
    data: &[u8],
) {
    let mut done = 0usize;
    chain.segments(logical, data.len() as u64, |addr, len| {
        pmem.write_bytes(addr, &data[done..done + len as usize]);
        done += len as usize;
    });
}

/// Read the class id of the object at `addr` (pooled or block).
pub(crate) fn class_id_of_addr(rt: &JnvmRuntime, addr: u64) -> u16 {
    if rt.pools().is_pooled_addr(addr) {
        rt.pools().read_mini(addr).id
    } else {
        rt.heap().read_header(rt.heap().block_of_addr(addr)).id
    }
}
