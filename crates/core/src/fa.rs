//! Failure-atomic blocks (§4.2): a per-thread persistent redo log, inspired
//! by Romulus and adapted to the block heap.
//!
//! During a failure-atomic block every modification — allocation, payload
//! write, free — is recorded in a per-thread persistent log, leaving
//! original data intact. Payload writes are redirected to **in-flight block
//! copies**; reads observe them. Commit:
//!
//! 1. `pwb` all in-flight blocks and log entries (already queued), `pfence`,
//! 2. set the log's committed flag + entry count, `pwb`, `pfence`,
//! 3. apply: validate allocations, perform frees, copy in-flight payloads
//!    onto the originals (no fence needed — a crash replays the log),
//! 4. clear the committed flag, `pwb`, `pfence` (so the log is reusable).
//!
//! Updates to *invalid* objects — typically objects allocated inside the
//! same block — are applied in place: if the block aborts, recovery deletes
//! them anyway.
//!
//! After a failure, committed logs are replayed and uncommitted ones
//! abandoned **before** the recovery GC runs; the GC then reaps in-flight
//! blocks and invalid allocations.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

use crate::error::JnvmError;
use crate::proxy::{Proxy, RawChain};
use crate::registry::CLASS_ID_FALOG;
use crate::runtime::{Jnvm, JnvmRuntime};

/// Initial capacity of the log directory. The directory doubles on demand
/// (see `grow_dir`), so this no longer bounds how many threads may enter
/// failure-atomic blocks over the pool's lifetime.
const DIR_CAPACITY: u64 = 64;

/// Initial log capacity in entries; logs grow on demand.
const LOG_INIT_ENTRIES: u64 = 256;

/// Entry size: kind, a, b.
const ENTRY_BYTES: u64 = 24;

/// Logical offset of the committed flag within a log's payload.
const LOG_COMMITTED: u64 = 0;
/// Logical offset of the committed entry count.
const LOG_COUNT: u64 = 8;
/// Logical offset of the first entry.
const LOG_ENTRIES: u64 = 16;

const KIND_ALLOC: u64 = 1;
const KIND_FREE: u64 = 2;
const KIND_WRITE: u64 = 3;

/// A handle on one persistent redo log.
pub(crate) struct LogHandle {
    chain: RawChain,
}

impl LogHandle {
    fn addr(&self) -> u64 {
        self.chain.blocks[0]
    }
}

/// Pool of redo logs plus the persistent log directory.
pub(crate) struct FaManager {
    free_logs: SegQueue<LogHandle>,
    /// Guards directory appends; holds the next free directory slot.
    dir_cursor: Mutex<u64>,
}

impl FaManager {
    pub(crate) fn new() -> FaManager {
        FaManager {
            free_logs: SegQueue::new(),
            dir_cursor: Mutex::new(0),
        }
    }

    /// Create the persistent log directory on a fresh pool and anchor it in
    /// root slot 2.
    pub(crate) fn create_dir(rt: &Jnvm) {
        let dir = Proxy::alloc(rt, crate::registry::CLASS_ID_FALOGDIR, 8 + DIR_CAPACITY * 8);
        dir.write_u64(0, DIR_CAPACITY);
        dir.pwb();
        dir.validate();
        rt.pmem().pfence();
        rt.heap().set_root_slot(2, dir.addr());
    }

    fn acquire_log(&self, rt: &Jnvm) -> LogHandle {
        if let Some(log) = self.free_logs.pop() {
            return log;
        }
        // Create a new log and publish it in the directory.
        let payload = LOG_ENTRIES + LOG_INIT_ENTRIES * ENTRY_BYTES;
        let log = Proxy::alloc(rt, CLASS_ID_FALOG, payload);
        log.write_u64(LOG_COMMITTED, 0);
        log.write_u64(LOG_COUNT, 0);
        log.pwb();
        log.validate();
        rt.pmem().pfence();

        let mut cursor = self.dir_cursor.lock();
        let mut dir = Proxy::open(rt, rt.heap().root_slot(2));
        let cap = dir.read_u64(0);
        if *cursor >= cap {
            grow_dir(rt, &mut dir, cap);
        }
        dir.write_u64(8 + *cursor * 8, log.addr());
        dir.pwb_field(8 + *cursor * 8, 8);
        rt.pmem().pfence();
        *cursor += 1;
        let chain = RawChain::open(rt, log.addr());
        // The directory now durably references the log; its initialized
        // committed-flag/count words must be persisted with it, or recovery
        // could chase the slot into an uninitialized log.
        rt.pmem()
            .ordering_point("log-publish", &[(chain.phys(LOG_COMMITTED), 16)]);
        LogHandle { chain }
    }

    fn release_log(&self, log: LogHandle) {
        self.free_logs.push(log);
    }

    /// After restart: replay committed logs, abandon uncommitted ones, and
    /// repopulate the volatile log pool. Returns `(replayed, abandoned)`.
    /// Must run before the recovery GC. A damaged log (unknown entry kind)
    /// surfaces as [`JnvmError::CorruptLog`] rather than aborting, so a
    /// server re-open on a damaged pool can report the failure.
    ///
    /// With `threads > 1` the committed logs are partitioned by **footprint
    /// disjointness** — the same invariant `fa_commit_group` demands of
    /// staged siblings — and independent logs replay concurrently. Logs
    /// whose entry footprints share a block form one replay unit and apply
    /// sequentially in directory-slot order inside it, so the last-writer
    /// order of the sequential pass is preserved; every replay worker
    /// `pfence`s its own persistence domain before exiting. `threads <= 1`
    /// replays inline in slot order (the sequential oracle).
    ///
    /// The third return component is the busy wall time of each replay
    /// worker (one entry when the replay ran inline); the fourth is each
    /// worker's modeled device time (latency-model nanoseconds charged —
    /// see [`jnvm_heap::par::run_workers_timed`]).
    pub(crate) fn recover_logs(
        &self,
        rt: &Jnvm,
        threads: usize,
    ) -> Result<(u64, u64, Vec<Duration>, Vec<Duration>), JnvmError> {
        let dir_addr = rt.heap().root_slot(2);
        let dir = RawChain::open(rt, dir_addr);
        let pmem = rt.pmem();
        let heap = rt.heap();
        let cap = pmem.read_u64(dir.phys(0));
        let mut cursor = self.dir_cursor.lock();

        struct LogInfo {
            slot: u64,
            chain: RawChain,
            committed: bool,
            count: u64,
        }
        let mut infos: Vec<LogInfo> = Vec::new();
        for slot in 0..cap {
            let log_addr = pmem.read_u64(dir.phys(8 + slot * 8));
            if log_addr == 0 {
                continue;
            }
            let chain = RawChain::open(rt, log_addr);
            let committed = pmem.read_u64(chain.phys(LOG_COMMITTED)) == 1;
            let count = pmem.read_u64(chain.phys(LOG_COUNT));
            infos.push(LogInfo { slot, chain, committed, count });
        }

        // Replay one committed log: apply, then persistently retire the
        // committed flag. Both steps are idempotent, so a crash anywhere in
        // here re-replays on the next recovery and converges — but only if
        // the applies are durable before the retire: under partial line
        // eviction a crash could otherwise persist the flag-clear while
        // losing applied data, and the next recovery would skip the torn
        // log. Hence the fence between the two steps.
        let replay_one =
            |info: &LogInfo, mut fp: Option<&mut Vec<(u64, u64)>>| -> Result<(), JnvmError> {
                apply_entries(rt, &info.chain, info.count, false, fp.as_deref_mut())?;
                pmem.pfence();
                pmem.write_u64(info.chain.phys(LOG_COMMITTED), 0);
                pmem.pwb(info.chain.phys(LOG_COMMITTED));
                if let Some(fp) = fp {
                    fp.push((info.chain.phys(LOG_COMMITTED), 8));
                }
                Ok(())
            };

        let committed_idx: Vec<usize> = infos
            .iter()
            .enumerate()
            .filter(|(_, i)| i.committed)
            .map(|(i, _)| i)
            .collect();
        let collect = pmem.sanitizer_active();
        let mut thread_times: Vec<Duration> = Vec::new();
        let mut device_times: Vec<Duration> = Vec::new();
        // Retire footprint of the inline replay path, validated behind the
        // closing fence (parallel workers validate their own domains).
        let mut inline_fp: Vec<(u64, u64)> = Vec::new();
        let replayed = if threads <= 1 || committed_idx.len() <= 1 {
            let t = Instant::now();
            let before = jnvm_pmem::thread_charged_ns();
            for &li in &committed_idx {
                replay_one(&infos[li], if collect { Some(&mut inline_fp) } else { None })?;
            }
            device_times.push(Duration::from_nanos(jnvm_pmem::thread_charged_ns() - before));
            thread_times.push(t.elapsed());
            committed_idx.len() as u64
        } else {
            // Block-index footprint of a committed log: every block an
            // entry reads or writes during replay.
            let footprint = |info: &LogInfo| -> HashSet<u64> {
                let mut fp = HashSet::new();
                for i in 0..info.count {
                    let (kind, a, b) = read_entry(rt, &info.chain, i);
                    match kind {
                        KIND_ALLOC | KIND_FREE => {
                            fp.insert(heap.block_of_addr(a));
                        }
                        KIND_WRITE => {
                            fp.insert(heap.block_of_addr(a));
                            fp.insert(heap.block_of_addr(b));
                        }
                        // Unknown kinds surface as CorruptLog at replay.
                        _ => {}
                    }
                }
                fp
            };
            // Union conflicting logs into replay units (members kept in
            // directory-slot order).
            let mut units: Vec<(Vec<usize>, HashSet<u64>)> = Vec::new();
            for &li in &committed_idx {
                let fp = footprint(&infos[li]);
                let overlapping: Vec<usize> = units
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, ufp))| !ufp.is_disjoint(&fp))
                    .map(|(ui, _)| ui)
                    .collect();
                match overlapping.split_first() {
                    None => units.push((vec![li], fp)),
                    Some((&first, rest)) => {
                        for &ui in rest.iter().rev() {
                            let (members, ufp) = units.remove(ui);
                            units[first].0.extend(members);
                            units[first].1.extend(ufp);
                        }
                        units[first].0.push(li);
                        units[first].1.extend(fp);
                        units[first].0.sort_unstable();
                    }
                }
            }
            let nworkers = threads.min(units.len()).max(1);
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nworkers];
            for ui in 0..units.len() {
                buckets[ui % nworkers].push(ui);
            }
            type WorkerOut = (Result<(u64, Duration), JnvmError>, Duration);
            let results: Vec<WorkerOut> =
                jnvm_heap::par::run_workers_timed(buckets, |bucket| {
                    let t = Instant::now();
                    let mut n = 0;
                    let mut wfp: Vec<(u64, u64)> = Vec::new();
                    for ui in bucket {
                        for &li in &units[ui].0 {
                            replay_one(&infos[li], if collect { Some(&mut wfp) } else { None })?;
                            n += 1;
                        }
                    }
                    // Drain this worker's retire write-backs (a persistence
                    // domain drains only its owner's queue).
                    pmem.pfence();
                    // Everything this worker replayed is durable in its own
                    // domain behind its own fence.
                    pmem.ordering_point("recovery-retire", &wfp);
                    Ok((n, t.elapsed()))
                });
            let mut n = 0;
            for (r, dt) in results {
                let (nr, t) = r?;
                n += nr;
                thread_times.push(t);
                device_times.push(dt);
            }
            n
        };

        let abandoned = infos.iter().filter(|i| !i.committed && i.count != 0).count() as u64;
        for info in infos {
            *cursor = info.slot + 1;
            self.free_logs.push(LogHandle { chain: info.chain });
        }
        pmem.pfence();
        if !inline_fp.is_empty() {
            // The inline replay's applied ranges and cleared flags are
            // durable behind the closing fence.
            pmem.ordering_point("recovery-retire", &inline_fp);
        }
        Ok((replayed, abandoned, thread_times, device_times))
    }
}

/// Double the log directory's slot count (caller holds the `dir_cursor`
/// lock). Used to be a hard panic — "directory full: too many threads" —
/// which a long-lived pool with thread churn eventually hit, since
/// directory slots are never reclaimed while their log lives.
///
/// Crash-safe ordering: the extension blocks are linked and the fresh
/// slot range is zeroed and **fenced before** the enlarged capacity is
/// published at offset 0. A crash mid-growth therefore leaves either the
/// old capacity (extension invisible to recovery) or the new capacity
/// over all-null slots — never uninitialized slots that `recover_logs`
/// would chase as log addresses.
fn grow_dir(rt: &Jnvm, dir: &mut Proxy, cap: u64) {
    let heap = rt.heap();
    let new_cap = cap * 2;
    let need = heap.blocks_for(8 + new_cap * 8);
    let have = dir.block_count() as u64;
    if need > have {
        dir.extend(need - have)
            .expect("persistent heap exhausted growing the fa log directory");
    }
    let zeros = vec![0u8; ((new_cap - cap) * 8) as usize];
    dir.write_bytes(8 + cap * 8, &zeros);
    dir.pwb_field(8 + cap * 8, zeros.len() as u64);
    rt.pmem().pfence();
    dir.write_u64(0, new_cap);
    dir.pwb_field(0, 8);
    rt.pmem().pfence();
}

/// Tracer for the log directory: every non-null slot references a log.
pub(crate) fn trace_log_dir(rt: &Jnvm, addr: u64, visit: &mut dyn FnMut(u64)) {
    let chain = RawChain::open(rt, addr);
    let cap = rt.pmem().read_u64(chain.phys(0));
    for slot in 0..cap {
        visit(chain.phys(8 + slot * 8));
    }
}

// ----------------------------------------------------------------------
// Thread-local transaction state.
// ----------------------------------------------------------------------

struct TxState {
    rt: Jnvm,
    log: LogHandle,
    count: u64,
    /// orig block byte address -> in-flight block byte address.
    redirects: HashMap<u64, u64>,
    /// Master addresses allocated inside this block (written in place).
    allocated: HashSet<u64>,
}

thread_local! {
    static TX_DEPTH: Cell<u32> = const { Cell::new(0) };
    static TX: RefCell<Option<TxState>> = const { RefCell::new(None) };
    static PHASE: Cell<CommitPhase> = const { Cell::new(CommitPhase::Idle) };
}

/// Where this thread's most recent failure-atomic block is (or was) in the
/// §4.2 commit protocol. Diagnostic only: crash-point sweeps read it after
/// an injected crash to label the point and to select interesting pool
/// states (e.g. "committed but not yet applied"). The marker is *not*
/// reset when a block unwinds — it keeps the phase the crash interrupted —
/// and is overwritten when the next outermost block starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitPhase {
    /// No commit activity since the last completed block.
    #[default]
    Idle,
    /// Inside the user closure: mutations are being redirected and logged.
    Mutate,
    /// Step 1: flushing in-flight blocks and fresh allocations.
    FlushInflight,
    /// Step 2: writing + flushing the committed flag and entry count.
    CommitPoint,
    /// Step 3: copying in-flight payloads onto the originals.
    Apply,
    /// Step 4: clearing the committed flag so the log can be reused.
    Retire,
}

impl CommitPhase {
    /// Short label for sweep tables.
    pub fn name(self) -> &'static str {
        match self {
            CommitPhase::Idle => "idle",
            CommitPhase::Mutate => "mutate",
            CommitPhase::FlushInflight => "flush-inflight",
            CommitPhase::CommitPoint => "commit-point",
            CommitPhase::Apply => "apply",
            CommitPhase::Retire => "retire",
        }
    }

    /// True once the log is durably committed: a crash here must replay
    /// the block to completion, never roll it back.
    pub fn is_committed(self) -> bool {
        matches!(self, CommitPhase::Apply | CommitPhase::Retire)
    }
}

/// This thread's current [`CommitPhase`].
pub fn commit_phase() -> CommitPhase {
    PHASE.with(|p| p.get())
}

fn set_phase(p: CommitPhase) {
    PHASE.with(|c| c.set(p));
}

/// Current failure-atomic nesting depth of this thread. This is the paper's
/// per-thread counter that every mediated accessor checks (§3.2).
#[inline]
pub fn depth() -> u32 {
    TX_DEPTH.with(|d| d.get())
}

/// Resolve a block address for a read inside a failure-atomic block.
#[inline]
pub(crate) fn redirect_read(block_addr: u64) -> u64 {
    TX.with(|tx| {
        let tx = tx.borrow();
        match tx.as_ref() {
            Some(tx) => *tx.redirects.get(&block_addr).unwrap_or(&block_addr),
            None => block_addr,
        }
    })
}

/// Resolve a block address for a write inside a failure-atomic block,
/// creating the in-flight copy and log entry on first touch.
pub(crate) fn redirect_write(rt: &Jnvm, master_addr: u64, block_addr: u64) -> u64 {
    TX.with(|tx| {
        let mut tx = tx.borrow_mut();
        let tx = tx.as_mut().expect("depth > 0 implies an active transaction");
        assert!(
            Arc::ptr_eq(&tx.rt, rt),
            "failure-atomic block active on a different runtime"
        );
        if tx.allocated.contains(&master_addr) {
            // Fresh (invalid) object: write in place (§4.2).
            return block_addr;
        }
        if let Some(inflight) = tx.redirects.get(&block_addr) {
            return *inflight;
        }
        let heap = rt.heap();
        let inflight_idx = heap.alloc_block().expect("persistent heap exhausted (in-flight block)");
        let inflight = heap.block_addr(inflight_idx);
        let pmem = rt.pmem();
        // Clear any stale header so recovery sees the copy as a free block.
        pmem.write_u64(inflight, 0);
        // Copy the original payload.
        let mut buf = vec![0u8; heap.payload_size() as usize];
        pmem.read_bytes(block_addr + 8, &mut buf);
        pmem.write_bytes(inflight + 8, &buf);
        append_entry(rt, tx, KIND_WRITE, block_addr, inflight);
        tx.redirects.insert(block_addr, inflight);
        inflight
    })
}

/// Record an allocation performed inside the active failure-atomic block
/// (no-op outside one). The object will be validated at commit.
pub(crate) fn note_alloc(rt: &Jnvm, master_addr: u64) {
    if depth() == 0 {
        return;
    }
    TX.with(|tx| {
        let mut tx = tx.borrow_mut();
        let tx = tx.as_mut().expect("depth > 0 implies an active transaction");
        append_entry(rt, tx, KIND_ALLOC, master_addr, 0);
        tx.allocated.insert(master_addr);
    });
}

/// Record a free inside the active failure-atomic block. Returns `true` if
/// the free was deferred to commit, `false` if no block is active and the
/// caller must free immediately.
pub(crate) fn note_free(rt: &Jnvm, addr: u64) -> bool {
    if depth() == 0 {
        return false;
    }
    TX.with(|tx| {
        let mut tx = tx.borrow_mut();
        let tx = tx.as_mut().expect("depth > 0 implies an active transaction");
        append_entry(rt, tx, KIND_FREE, addr, 0);
    });
    true
}

fn append_entry(rt: &Jnvm, tx: &mut TxState, kind: u64, a: u64, b: u64) {
    let logical = LOG_ENTRIES + tx.count * ENTRY_BYTES;
    // Grow the log if needed.
    while logical + ENTRY_BYTES > tx.log.chain.capacity() {
        let heap = rt.heap();
        let master_idx = heap.block_of_addr(tx.log.addr());
        let added = heap.extend_chain(master_idx, 4).expect("heap exhausted growing redo log");
        tx.log
            .chain
            .blocks
            .extend(added.into_iter().map(|bk| heap.block_addr(bk)));
    }
    let pmem = rt.pmem();
    let c = &tx.log.chain;
    // Entries are 24 bytes in a 248-byte payload: a word may straddle
    // blocks, so use segment-safe writes.
    let mut bytes = [0u8; 24];
    bytes[0..8].copy_from_slice(&kind.to_le_bytes());
    bytes[8..16].copy_from_slice(&a.to_le_bytes());
    bytes[16..24].copy_from_slice(&b.to_le_bytes());
    crate::registry::write_chain_bytes(c, pmem, logical, &bytes);
    c.segments(logical, ENTRY_BYTES, |addr, len| pmem.pwb_range(addr, len));
    tx.count += 1;
}

fn read_entry(rt: &JnvmRuntime, chain: &RawChain, i: u64) -> (u64, u64, u64) {
    let mut bytes = [0u8; 24];
    crate::registry::read_chain_bytes(chain, rt.pmem(), LOG_ENTRIES + i * ENTRY_BYTES, &mut bytes);
    (
        u64::from_le_bytes(bytes[0..8].try_into().expect("slice of 8")),
        u64::from_le_bytes(bytes[8..16].try_into().expect("slice of 8")),
        u64::from_le_bytes(bytes[16..24].try_into().expect("slice of 8")),
    )
}

/// Blocks a commit may hand back to the shared allocator only once its log
/// is durably retired (see `apply_entries`).
#[derive(Default)]
struct DeferredReclaim {
    /// Master addresses the block freed (`KIND_FREE`).
    frees: Vec<u64>,
    /// In-flight copy blocks (`KIND_WRITE` sources), by block index.
    inflight: Vec<u64>,
}

/// Apply the first `count` entries of a log. `runtime_commit` is true when
/// called from a live commit; false during post-crash replay (the recovery
/// GC reclaims in-flight copies and freed masters there).
///
/// On a live commit the in-flight copies and the freed masters are **not**
/// released here but returned for the caller to release *after* the log's
/// committed flag is durably cleared. Releasing them earlier is a race:
/// another thread can pop such a block from the volatile free queue and
/// scribble on it while the log is still committed on media — a crash in
/// that window replays the log and copies the scribbles (or re-invalidates
/// the other thread's allocation) onto committed state.
fn apply_entries(
    rt: &Jnvm,
    chain: &RawChain,
    count: u64,
    runtime_commit: bool,
    mut footprint: Option<&mut Vec<(u64, u64)>>,
) -> Result<DeferredReclaim, JnvmError> {
    let pmem = rt.pmem();
    let heap = rt.heap();
    let psize = heap.payload_size() as usize;
    let mut buf = vec![0u8; psize];
    let mut deferred = DeferredReclaim::default();
    for i in 0..count {
        let (kind, a, b) = read_entry(rt, chain, i);
        match kind {
            KIND_ALLOC => {
                rt.set_valid_addr(a, true);
                if let Some(fp) = footprint.as_deref_mut() {
                    fp.push((a, 8));
                }
            }
            KIND_FREE => deferred.frees.push(a),
            KIND_WRITE => {
                pmem.read_bytes(b + 8, &mut buf);
                pmem.write_bytes(a + 8, &buf);
                pmem.pwb_range(a + 8, psize as u64);
                if runtime_commit {
                    deferred.inflight.push(heap.block_of_addr(b));
                }
                if let Some(fp) = footprint.as_deref_mut() {
                    fp.push((a + 8, psize as u64));
                }
            }
            other => return Err(JnvmError::CorruptLog { kind: other }),
        }
    }
    if !runtime_commit {
        // During replay only invalidate persistently; the GC rebuilds the
        // free queue afterwards.
        for a in deferred.frees.drain(..) {
            rt.set_valid_addr(a, false);
            if let Some(fp) = footprint.as_deref_mut() {
                fp.push((a, 8));
            }
        }
    }
    Ok(deferred)
}

impl JnvmRuntime {
    /// Execute `f` as a failure-atomic block (§4.2): it runs entirely or —
    /// if a crash intervenes — not at all. Nested calls fold into the
    /// outermost block. If `f` panics, the block aborts: in-place state is
    /// untouched, allocations are released.
    ///
    /// # Panics
    ///
    /// Panics if a block from *another* runtime is active on this thread,
    /// or on persistent-heap exhaustion.
    pub fn fa<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        let outermost = depth() == 0;
        // A solo block is a stage plus a group-of-one commit: span its
        // mutate phase as `fa_stage` and its commit as `fa_commit_group`
        // so staged and direct commits render alike on a timeline.
        let obs_begin = if outermost {
            jnvm_obs::span_begin()
        } else {
            jnvm_obs::NOT_TRACING
        };
        if outermost {
            set_phase(CommitPhase::Mutate);
            let log = self.fa_manager().acquire_log(self);
            TX.with(|tx| {
                *tx.borrow_mut() = Some(TxState {
                    rt: Arc::clone(self),
                    log,
                    count: 0,
                    redirects: HashMap::new(),
                    allocated: HashSet::new(),
                });
            });
        } else {
            TX.with(|tx| {
                let tx = tx.borrow();
                let tx = tx.as_ref().expect("depth > 0 implies an active transaction");
                assert!(
                    Arc::ptr_eq(&tx.rt, self),
                    "failure-atomic block active on a different runtime"
                );
            });
        }
        TX_DEPTH.with(|d| d.set(d.get() + 1));
        // Abort on unwind.
        struct Guard<'a> {
            rt: &'a Arc<JnvmRuntime>,
            outermost: bool,
            committed: bool,
        }
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                TX_DEPTH.with(|d| d.set(d.get() - 1));
                if self.outermost && !self.committed {
                    abort_tx(self.rt);
                }
            }
        }
        let mut guard = Guard {
            rt: self,
            outermost,
            committed: false,
        };
        let r = f();
        if guard.outermost {
            jnvm_obs::span_end(jnvm_obs::SpanKind::FaStage, obs_begin);
            let obs_commit = jnvm_obs::span_begin();
            commit_tx(self);
            jnvm_obs::span_end(jnvm_obs::SpanKind::FaCommitGroup, obs_commit);
            guard.committed = true;
        }
        drop(guard);
        r
    }

    /// Explicit `faStart()`/`faEnd()` pairs are not exposed; use
    /// [`JnvmRuntime::fa`]. This reports whether the calling thread is
    /// currently inside a failure-atomic block.
    pub fn in_fa(&self) -> bool {
        depth() > 0
    }

    /// Execute `f` as a failure-atomic block whose mutations are **staged**
    /// rather than committed: every modification is logged and redirected
    /// exactly as in [`JnvmRuntime::fa`], and the in-flight payloads are
    /// queued for write-back, but no fence is issued and the log is not
    /// committed. The returned [`StagedTx`] must be handed to
    /// [`JnvmRuntime::fa_commit_group`] (with any number of siblings) to
    /// make the block durable behind a *shared* pair of fences — the group
    /// commit of the server write path. Dropping the handle aborts the
    /// block as if `f` had panicked.
    ///
    /// # Footprint discipline
    ///
    /// Staged blocks in one group redirect writes independently: two blocks
    /// touching the **same master block** each copy the pre-group payload
    /// and the last apply wins (lost update). The caller must guarantee
    /// pairwise-disjoint write footprints within a group (the kvstore
    /// committer derives this from shard/stripe disjointness);
    /// `fa_commit_group` debug-asserts it.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread is already inside a failure-atomic
    /// block: staging cannot nest.
    pub fn fa_stage<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> (StagedTx, R) {
        assert_eq!(depth(), 0, "fa_stage cannot nest inside an active failure-atomic block");
        let obs_begin = jnvm_obs::span_begin();
        set_phase(CommitPhase::Mutate);
        let log = self.fa_manager().acquire_log(self);
        TX.with(|tx| {
            *tx.borrow_mut() = Some(TxState {
                rt: Arc::clone(self),
                log,
                count: 0,
                redirects: HashMap::new(),
                allocated: HashSet::new(),
            });
        });
        TX_DEPTH.with(|d| d.set(1));
        struct Guard<'a> {
            rt: &'a Arc<JnvmRuntime>,
            done: bool,
        }
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                TX_DEPTH.with(|d| d.set(0));
                if !self.done {
                    abort_tx(self.rt);
                }
            }
        }
        let mut guard = Guard { rt: self, done: false };
        let r = f();
        guard.done = true;
        drop(guard);
        let state = TX.with(|tx| tx.borrow_mut().take().expect("stage without transaction"));
        // Step 1 of the commit protocol, minus its fence: queue the
        // write-back of in-flight copies and fresh allocations now, on the
        // staging thread, so the group's single step-1 fence covers them
        // (per-thread persistence domains drain only the caller's queue).
        set_phase(CommitPhase::FlushInflight);
        flush_staged(self, &state);
        jnvm_obs::span_end(jnvm_obs::SpanKind::FaStage, obs_begin);
        (
            StagedTx {
                state: Some(state),
                thread: std::thread::current().id(),
            },
            r,
        )
    }

    /// Commit a group of [staged](JnvmRuntime::fa_stage) failure-atomic
    /// blocks behind **one** shared pass of the §4.2 protocol: a single
    /// step-1 fence covers every block's in-flight payloads, a single
    /// commit-point fence makes the whole group durable (this is the
    /// group's *durability point* — an acknowledgement released after this
    /// call covers every block in the group), the blocks are applied, and
    /// a single retire fence closes the pass. `K` independent commits thus
    /// cost 3 fences instead of `3K`.
    ///
    /// Blocks that staged no mutations are released for free. The order of
    /// `group` is the apply order; footprints must be pairwise disjoint
    /// (see [`JnvmRuntime::fa_stage`]).
    ///
    /// # Panics
    ///
    /// Panics if a staged block came from another thread (its queued
    /// write-backs would not be covered by this thread's fences) or from
    /// another runtime.
    pub fn fa_commit_group(self: &Arc<Self>, group: Vec<StagedTx>) {
        let me = std::thread::current().id();
        let mut states: Vec<TxState> = Vec::new();
        for mut tx in group {
            assert_eq!(
                tx.thread, me,
                "staged block committed from a different thread than staged it \
                 (per-thread persistence domains: its write-backs are not in \
                 this thread's queue)"
            );
            let state = tx.state.take().expect("staged state present until commit or drop");
            assert!(
                Arc::ptr_eq(&state.rt, self),
                "staged block belongs to a different runtime"
            );
            if state.count == 0 {
                self.fa_manager().release_log(state.log);
            } else {
                states.push(state);
            }
        }
        if states.is_empty() {
            set_phase(CommitPhase::Idle);
            return;
        }
        #[cfg(debug_assertions)]
        {
            let mut seen: HashSet<u64> = HashSet::new();
            for st in &states {
                for master in st.redirects.keys() {
                    assert!(
                        seen.insert(*master),
                        "group contains two staged blocks redirecting master block \
                         {master:#x}: footprints must be pairwise disjoint"
                    );
                }
            }
        }
        let obs_begin = jnvm_obs::span_begin();
        let pmem = self.pmem();
        let heap = self.heap();
        // 1. One fence covers every staged block's queued write-backs.
        set_phase(CommitPhase::FlushInflight);
        pmem.pfence();
        // 2. Commit point of the whole group.
        set_phase(CommitPhase::CommitPoint);
        for st in &states {
            pmem.write_u64(st.log.chain.phys(LOG_COUNT), st.count);
            pmem.write_u64(st.log.chain.phys(LOG_COMMITTED), 1);
            pmem.pwb(st.log.chain.phys(LOG_COMMITTED));
            pmem.pwb(st.log.chain.phys(LOG_COUNT));
        }
        pmem.pfence(); // ---- the group's durability point ----
        // The whole group is durably committed behind the one fence.
        let collect = pmem.sanitizer_active();
        let mut commit_fp: Vec<(u64, u64)> = Vec::new();
        if collect {
            for st in &states {
                staged_footprint(self, st, &mut commit_fp);
            }
        }
        pmem.ordering_point("fa-commit", &commit_fp);
        // 3. Apply every block (fence-free: a crash replays the logs).
        set_phase(CommitPhase::Apply);
        let mut retire_fp: Vec<(u64, u64)> = Vec::new();
        let deferred: Vec<DeferredReclaim> = states
            .iter()
            .map(|st| {
                apply_entries(
                    self,
                    &st.log.chain,
                    st.count,
                    true,
                    if collect { Some(&mut retire_fp) } else { None },
                )
                .expect("entries written by this commit are well-formed")
            })
            .collect();
        // 4. Retire all logs behind one fence.
        set_phase(CommitPhase::Retire);
        for st in &states {
            pmem.write_u64(st.log.chain.phys(LOG_COMMITTED), 0);
            pmem.pwb(st.log.chain.phys(LOG_COMMITTED));
            if collect {
                retire_fp.push((st.log.chain.phys(LOG_COMMITTED), 8));
            }
        }
        pmem.pfence();
        // Every applied range and cleared flag is durable behind the one
        // retire fence.
        pmem.ordering_point("fa-retire", &retire_fp);
        // Only now — no log can replay again — may released blocks re-enter
        // the shared allocator (same rule as the single-block commit).
        for d in deferred {
            for a in d.frees {
                self.free_addr_now(a);
            }
            for b in d.inflight {
                heap.push_free(b);
            }
        }
        for st in states {
            self.fa_manager().release_log(st.log);
        }
        jnvm_obs::span_end(jnvm_obs::SpanKind::FaCommitGroup, obs_begin);
        set_phase(CommitPhase::Idle);
    }
}

/// A staged failure-atomic block: mutations logged, redirected and queued
/// for write-back, but not yet durable. Produced by
/// [`JnvmRuntime::fa_stage`]; consumed by [`JnvmRuntime::fa_commit_group`].
/// Dropping an uncommitted handle aborts the block.
pub struct StagedTx {
    state: Option<TxState>,
    thread: ThreadId,
}

impl StagedTx {
    /// Number of log entries the block staged (0 = read-only block).
    pub fn op_count(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.count)
    }
}

impl Drop for StagedTx {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            abort_state(state);
        }
    }
}

impl std::fmt::Debug for StagedTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedTx")
            .field("ops", &self.op_count())
            .finish()
    }
}

/// Step 1 of the commit protocol without its fence: queue the write-back
/// of the block's in-flight copies and fresh allocations.
fn flush_staged(rt: &Jnvm, state: &TxState) {
    let pmem = rt.pmem();
    let heap = rt.heap();
    for inflight in state.redirects.values() {
        // Invariant: the in-flight header was zeroed by `redirect_write`
        // but never flushed there. It must be durable by the commit point
        // — recovery identifies in-flight copies as reclaimable precisely
        // by their zero header — and that must hold even if the header
        // ever stops sharing a cache line with the payload's first bytes,
        // so flush it explicitly rather than relying on the range below.
        pmem.pwb(*inflight);
        pmem.pwb_range(inflight + 8, heap.payload_size());
    }
    for master in &state.allocated {
        if rt.pools().is_pooled_addr(*master) {
            pmem.pwb_range(*master, 8 + rt.pools().slot_payload(*master));
        } else {
            for b in heap.chain_blocks(heap.block_of_addr(*master)) {
                pmem.pwb_range(heap.block_addr(b), heap.block_size());
            }
        }
    }
}

/// The durable footprint a staged block's commit point is responsible
/// for, declared to the persist-ordering sanitizer: in-flight copies,
/// fresh allocations, the log entries and the committed-flag/count words.
/// Only built when the sanitizer is on (see [`jnvm_pmem::Pmem::sanitizer_active`]).
fn staged_footprint(rt: &Jnvm, state: &TxState, fp: &mut Vec<(u64, u64)>) {
    let heap = rt.heap();
    for inflight in state.redirects.values() {
        fp.push((*inflight, 8));
        fp.push((inflight + 8, heap.payload_size()));
    }
    for master in &state.allocated {
        if rt.pools().is_pooled_addr(*master) {
            fp.push((*master, 8 + rt.pools().slot_payload(*master)));
        } else {
            for b in heap.chain_blocks(heap.block_of_addr(*master)) {
                fp.push((heap.block_addr(b), heap.block_size()));
            }
        }
    }
    let c = &state.log.chain;
    c.segments(LOG_ENTRIES, state.count * ENTRY_BYTES, |addr, len| fp.push((addr, len)));
    fp.push((c.phys(LOG_COMMITTED), 8));
    fp.push((c.phys(LOG_COUNT), 8));
}

fn commit_tx(rt: &Jnvm) {
    let state = TX.with(|tx| tx.borrow_mut().take().expect("commit without transaction"));
    let pmem = rt.pmem();
    let heap = rt.heap();
    if state.count == 0 {
        rt.fa_manager().release_log(state.log);
        set_phase(CommitPhase::Idle);
        return;
    }
    set_phase(CommitPhase::FlushInflight);
    // 1. In-flight payloads reach the write-pending queue (entries already
    //    have). Objects *allocated* in this block were written in place
    //    with their explicit flushes suppressed by the mediation — the
    //    commit owns their write-back ("all the persistent stores of a
    //    block are propagated to NVMM at the end of the block", §3.2.2).
    //    Then everything is fenced.
    flush_staged(rt, &state);
    pmem.pfence();
    // 2. Commit point.
    set_phase(CommitPhase::CommitPoint);
    pmem.write_u64(state.log.chain.phys(LOG_COUNT), state.count);
    pmem.write_u64(state.log.chain.phys(LOG_COMMITTED), 1);
    pmem.pwb(state.log.chain.phys(LOG_COMMITTED));
    pmem.pwb(state.log.chain.phys(LOG_COUNT));
    pmem.pfence();
    // The block is durably committed: everything it staged, its log
    // entries and the committed flag must all be persisted here.
    let collect = pmem.sanitizer_active();
    let mut commit_fp: Vec<(u64, u64)> = Vec::new();
    if collect {
        staged_footprint(rt, &state, &mut commit_fp);
    }
    pmem.ordering_point("fa-commit", &commit_fp);
    // 3. Apply (fence-free: a crash replays the committed log).
    set_phase(CommitPhase::Apply);
    let mut retire_fp: Vec<(u64, u64)> = Vec::new();
    let deferred = apply_entries(
        rt,
        &state.log.chain,
        state.count,
        true,
        if collect { Some(&mut retire_fp) } else { None },
    )
    .expect("entries written by this commit are well-formed");
    // 4. Retire the log before reuse.
    set_phase(CommitPhase::Retire);
    pmem.write_u64(state.log.chain.phys(LOG_COMMITTED), 0);
    pmem.pwb(state.log.chain.phys(LOG_COMMITTED));
    pmem.pfence();
    // The retire is durable: the applied state and the cleared flag must
    // be persisted before any released block re-enters the allocator.
    if collect {
        retire_fp.push((state.log.chain.phys(LOG_COMMITTED), 8));
    }
    pmem.ordering_point("fa-retire", &retire_fp);
    // Only now — the retire is durable, the log can never replay again —
    // may the blocks this commit released re-enter the shared allocator.
    for a in deferred.frees {
        rt.free_addr_now(a);
    }
    for b in deferred.inflight {
        heap.push_free(b);
    }
    rt.fa_manager().release_log(state.log);
    set_phase(CommitPhase::Idle);
}

fn abort_tx(rt: &Jnvm) {
    // `commit_tx` takes the state before its first step, so an unwind out
    // of the commit sequence itself (e.g. an injected crash between two
    // `pwb`s) reaches the guard with no transaction left. There is nothing
    // to abort then: depending on where the crash hit, either recovery
    // abandons the uncommitted log or replays the committed one.
    let Some(state) = TX.with(|tx| tx.borrow_mut().take()) else {
        return;
    };
    debug_assert!(Arc::ptr_eq(&state.rt, rt));
    abort_state(state);
}

/// Abort a block from its captured state (shared by the in-TLS abort path
/// and [`StagedTx`]'s drop).
fn abort_state(state: TxState) {
    let TxState { rt, log, redirects, allocated, .. } = state;
    let heap = rt.heap();
    // Release in-flight copies (contents irrelevant, headers already 0).
    for inflight in redirects.values() {
        heap.push_free(heap.block_of_addr(*inflight));
    }
    // Release objects allocated inside the aborted block.
    for master in &allocated {
        rt.free_addr_now(*master);
    }
    // The log was never committed; its entries are dead.
    rt.fa_manager().release_log(log);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};

    fn used_slots(rt: &Jnvm) -> u64 {
        let dir = RawChain::open(rt, rt.heap().root_slot(2));
        let cap = rt.pmem().read_u64(dir.phys(0));
        (0..cap)
            .filter(|s| rt.pmem().read_u64(dir.phys(8 + s * 8)) != 0)
            .count() as u64
    }

    /// Regression: `commit_tx` used to hand in-flight copies and freed
    /// masters back to the volatile allocator during apply, *before* the
    /// log's committed flag was durably cleared. Another thread could then
    /// allocate such a block and scribble on it; a crash in that window
    /// replays the still-committed log and copies the scribbles onto
    /// committed state (observed in the concurrent torture harness as torn
    /// record fields and off-by-a-few block accounting).
    ///
    /// Single-threaded, deterministic form of the invariant: at **every**
    /// crash point of a commit, any block referenced by a log that is
    /// still committed on media must be unavailable to the allocator.
    #[test]
    fn commit_never_recycles_blocks_while_log_is_committed_on_media() {
        use jnvm_pmem::{catch_crash, silence_crash_panics, FaultPlan};
        silence_crash_panics();
        let setup = || {
            let pmem = Pmem::new(PmemConfig::crash_sim(2 << 20));
            let rt = JnvmBuilder::new()
                .create(Arc::clone(&pmem), HeapConfig::default())
                .unwrap();
            let x = Proxy::alloc(&rt, CLASS_ID_FALOG, 16);
            x.write_u64(0, 7);
            x.pwb();
            x.validate();
            let y = Proxy::alloc(&rt, CLASS_ID_FALOG, 16);
            y.pwb();
            y.validate();
            pmem.psync();
            (pmem, rt, x, y)
        };
        let workload = |rt: &Jnvm, x: &Proxy, y: &Proxy| {
            rt.fa(|| {
                x.write_u64(0, 99); // KIND_WRITE via an in-flight copy
                rt.free_addr(y.addr()); // KIND_FREE, deferred to commit
            });
        };
        let total = {
            let (pmem, rt, x, y) = setup();
            pmem.arm_faults(FaultPlan::count());
            workload(&rt, &x, &y);
            pmem.disarm_faults()
        };
        assert!(total > 0);
        for point in 0..total {
            let (pmem, rt, x, y) = setup();
            pmem.arm_faults(FaultPlan::crash_at(point));
            let outcome = catch_crash(|| workload(&rt, &x, &y));
            pmem.disarm_faults();
            if outcome.is_ok() {
                continue;
            }
            pmem.resync_cache();
            // Every block the volatile allocator would hand out right now.
            let heap = rt.heap();
            let mut allocatable = HashSet::new();
            while let Ok(b) = heap.alloc_block() {
                allocatable.insert(b);
            }
            // Blocks referenced by logs still committed on the media image.
            let dir = RawChain::open(&rt, rt.heap().root_slot(2));
            let cap = pmem.read_u64(dir.phys(0));
            for slot in 0..cap {
                let log_addr = pmem.read_u64(dir.phys(8 + slot * 8));
                if log_addr == 0 {
                    continue;
                }
                let chain = RawChain::open(&rt, log_addr);
                if pmem.read_u64(chain.phys(LOG_COMMITTED)) != 1 {
                    continue;
                }
                let count = pmem.read_u64(chain.phys(LOG_COUNT));
                for i in 0..count {
                    let (kind, a, b) = read_entry(&rt, &chain, i);
                    if kind == KIND_WRITE {
                        assert!(
                            !allocatable.contains(&heap.block_of_addr(b)),
                            "crash point {point}: in-flight block recycled \
                             while its log is still committed on media"
                        );
                    }
                    if kind == KIND_FREE {
                        assert!(
                            !allocatable.contains(&heap.block_of_addr(a)),
                            "crash point {point}: freed master recycled \
                             while its log is still committed on media"
                        );
                    }
                }
            }
        }
    }

    fn stage_setup() -> (Arc<jnvm_pmem::Pmem>, Jnvm, Vec<Proxy>) {
        let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
        let rt = JnvmBuilder::new()
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        let objs: Vec<Proxy> = (0..4)
            .map(|i| {
                let p = Proxy::alloc(&rt, CLASS_ID_FALOG, 16);
                p.write_u64(0, i);
                p.pwb();
                p.validate();
                p
            })
            .collect();
        pmem.psync();
        (pmem, rt, objs)
    }

    /// A group of K staged blocks commits behind 3 fences total, not 3K,
    /// and every block's effect lands.
    #[test]
    fn group_commit_amortizes_fences() {
        let (pmem, rt, objs) = stage_setup();
        // Pre-warm the log pool: fresh-log creation pays its own fences,
        // which would obscure the steady-state count under test.
        let fam = rt.fa_manager();
        let warm: Vec<LogHandle> = (0..objs.len()).map(|_| fam.acquire_log(&rt)).collect();
        for log in warm {
            fam.release_log(log);
        }
        let before = pmem.stats();
        let mut group = Vec::new();
        for (i, obj) in objs.iter().enumerate() {
            let (tx, ()) = rt.fa_stage(|| obj.write_u64(0, 100 + i as u64));
            assert!(tx.op_count() > 0);
            group.push(tx);
        }
        rt.fa_commit_group(group);
        let d = pmem.stats().delta(&before);
        assert_eq!(d.pfences, 3, "K staged blocks share one 3-fence pass");
        for (i, obj) in objs.iter().enumerate() {
            assert_eq!(obj.read_u64(0), 100 + i as u64);
        }
        // The logs were retired and released: a fresh block reuses them.
        rt.fa(|| objs[0].write_u64(0, 7));
        assert_eq!(objs[0].read_u64(0), 7);
    }

    /// Dropping a staged handle aborts the block: masters untouched,
    /// in-flight copies and fresh allocations released.
    #[test]
    fn dropped_stage_aborts() {
        let (_pmem, rt, objs) = stage_setup();
        let free_before = rt.heap().stats().blocks_freed;
        {
            let (_tx, _) = rt.fa_stage(|| {
                objs[0].write_u64(0, 999);
                Proxy::alloc(&rt, CLASS_ID_FALOG, 16)
            });
            // _tx dropped here, uncommitted
        }
        assert_eq!(objs[0].read_u64(0), 0, "aborted stage must not apply");
        assert!(
            rt.heap().stats().blocks_freed > free_before,
            "abort releases the in-flight copy and the fresh allocation"
        );
        // Read-only (empty) stages commit for free.
        let (tx, v) = rt.fa_stage(|| objs[1].read_u64(0));
        assert_eq!(v, 1);
        assert_eq!(tx.op_count(), 0);
        rt.fa_commit_group(vec![tx]);
    }

    /// Crash-point sweep over an entire staged group commit: at every
    /// injected crash point the group must be all-or-nothing per block —
    /// after replay each object holds either its old or its new value, and
    /// once the group's commit point is durable, *all* blocks replay.
    #[test]
    fn group_commit_crash_sweep_is_atomic_per_block() {
        use jnvm_pmem::{catch_crash, silence_crash_panics, FaultPlan};
        silence_crash_panics();
        let workload = |rt: &Jnvm, objs: &[Proxy]| {
            let mut group = Vec::new();
            for (i, obj) in objs.iter().enumerate() {
                let (tx, ()) = rt.fa_stage(|| obj.write_u64(0, 100 + i as u64));
                group.push(tx);
            }
            rt.fa_commit_group(group);
        };
        let total = {
            let (pmem, rt, objs) = stage_setup();
            pmem.arm_faults(FaultPlan::count());
            workload(&rt, &objs);
            pmem.disarm_faults()
        };
        assert!(total > 0);
        for point in 0..total {
            let (pmem, rt, objs) = stage_setup();
            let addrs: Vec<u64> = objs.iter().map(|o| o.addr()).collect();
            pmem.arm_faults(FaultPlan::crash_at(point));
            let outcome = catch_crash(|| workload(&rt, &objs));
            drop(objs);
            drop(rt);
            pmem.disarm_faults();
            if outcome.is_ok() {
                continue;
            }
            let (rt2, _report) = JnvmBuilder::new().open(Arc::clone(&pmem)).unwrap();
            let values: Vec<u64> = addrs
                .iter()
                .map(|a| Proxy::open(&rt2, *a).read_u64(0))
                .collect();
            let mut news = 0;
            for (i, v) in values.iter().enumerate() {
                let old = i as u64;
                let new = 100 + i as u64;
                assert!(
                    *v == old || *v == new,
                    "crash point {point}: object {i} torn ({v})"
                );
                if *v == new {
                    news += 1;
                }
            }
            // The group shares one commit point: after it, every block
            // replays; before it, none do.
            assert!(
                news == 0 || news == values.len(),
                "crash point {point}: group split {news}/{} — the shared \
                 durability point must make the group all-or-nothing",
                values.len()
            );
        }
    }

    #[test]
    fn log_directory_grows_past_initial_capacity() {
        let pmem = Pmem::new(PmemConfig::crash_sim(16 << 20));
        let rt = JnvmBuilder::new()
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        let fam = rt.fa_manager();
        let want = DIR_CAPACITY + 8;
        // Acquire more logs than the directory's initial capacity without
        // releasing any — the 65th acquisition used to panic ("directory
        // full: too many threads").
        let logs: Vec<LogHandle> = (0..want).map(|_| fam.acquire_log(&rt)).collect();
        let addrs: HashSet<u64> = logs.iter().map(|l| l.addr()).collect();
        assert_eq!(addrs.len() as u64, want, "every log published at a distinct address");
        let dir = RawChain::open(&rt, rt.heap().root_slot(2));
        assert_eq!(pmem.read_u64(dir.phys(0)), DIR_CAPACITY * 2, "capacity doubled");
        assert_eq!(used_slots(&rt), want);
        for log in logs {
            fam.release_log(log);
        }
        // The grown directory survives recovery: every published log is
        // found and pooled again.
        pmem.drain_all();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        drop(rt);
        let (rt2, _report) = JnvmBuilder::new().open(Arc::clone(&pmem)).unwrap();
        let fam2 = rt2.fa_manager();
        assert_eq!(used_slots(&rt2), want);
        // Acquiring that many again drains the recovered pool: no new
        // logs are created, no directory slots consumed.
        let logs2: Vec<LogHandle> = (0..want).map(|_| fam2.acquire_log(&rt2)).collect();
        assert_eq!(used_slots(&rt2), want, "recovery must repopulate the log pool");
        for log in logs2 {
            fam2.release_log(log);
        }
    }
}
