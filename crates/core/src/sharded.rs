//! Sharded multi-pool runtime: N independent [`Jnvm`] runtimes over N
//! independent devices, opened and recovered as one unit.
//!
//! J-NVM's decoupling principle makes persistent state naturally
//! partitionable — a proxy caches block addresses *within one pool*, the
//! recovery GC walks reachability *from one pool's root map*, and the FA
//! log manager allocates log slots *in one pool*. Nothing ties two pools
//! together, so a sharded engine is simply N complete stacks side by
//! side: each shard keeps its own FA manager, its own per-thread
//! persistence domains, and its own recovery state. This type packages
//! the plumbing and enforces the one global invariant the composition
//! rests on: **the shards' devices are pairwise distinct**, so replay,
//! mark and sweep on different shards touch disjoint heaps and compose
//! without any new synchronization.
//!
//! Recovery fans the parallel engine out across shards: every shard runs
//! its own [`JnvmBuilder::open_with_options`] pass on its own thread
//! (each of which may itself use N recovery workers), and the reports
//! come back per shard.

use std::sync::Arc;

use jnvm_heap::HeapConfig;
use jnvm_pmem::Pmem;

use crate::error::JnvmError;
use crate::recovery::{RecoveryOptions, RecoveryReport};
use crate::runtime::{Jnvm, JnvmBuilder};

/// N independent [`Jnvm`] runtimes, one per device shard.
pub struct ShardedJnvm {
    shards: Vec<Jnvm>,
}

/// Panic unless every device is distinct from every other. Two shards on
/// one device would alias heaps and break every disjointness argument the
/// concurrent recovery (and the per-shard committers above us) rely on.
fn assert_disjoint_devices(pmems: &[Arc<Pmem>]) {
    for i in 0..pmems.len() {
        for j in i + 1..pmems.len() {
            assert!(
                !Arc::ptr_eq(&pmems[i], &pmems[j]),
                "shards {i} and {j} share one device — shard heaps must be disjoint"
            );
        }
    }
}

impl ShardedJnvm {
    /// Format one fresh pool per device and build its runtime. `register`
    /// is called once per shard to produce an identically-configured
    /// builder (the class registry must be the same on every shard — keys
    /// hash to shards, so any object may land on any of them).
    pub fn create(
        pmems: &[Arc<Pmem>],
        cfg: HeapConfig,
        register: fn(JnvmBuilder) -> JnvmBuilder,
    ) -> Result<ShardedJnvm, JnvmError> {
        assert!(!pmems.is_empty(), "a sharded runtime needs at least one device");
        assert_disjoint_devices(pmems);
        let shards = pmems
            .iter()
            .map(|p| register(JnvmBuilder::new()).create(Arc::clone(p), cfg))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedJnvm { shards })
    }

    /// Reopen every shard, running the recovery passes **concurrently** —
    /// one `open_with_options` per shard on its own thread. Shard heaps
    /// are disjoint (asserted), so the per-shard replay/mark/sweep passes
    /// compose without cross-shard synchronization; the result is
    /// bit-identical to recovering the shards one after another (pinned
    /// by `tests/sharded_recovery.rs`).
    ///
    /// Returns the runtimes plus one [`RecoveryReport`] per shard, in
    /// shard order. The first shard error aborts the whole open.
    pub fn open_with_options(
        pmems: &[Arc<Pmem>],
        opts: RecoveryOptions,
        register: fn(JnvmBuilder) -> JnvmBuilder,
    ) -> Result<(ShardedJnvm, Vec<RecoveryReport>), JnvmError> {
        assert!(!pmems.is_empty(), "a sharded runtime needs at least one device");
        assert_disjoint_devices(pmems);
        let results: Vec<Result<(Jnvm, RecoveryReport), JnvmError>> = std::thread::scope(|s| {
            let handles: Vec<_> = pmems
                .iter()
                .map(|p| {
                    let p = Arc::clone(p);
                    s.spawn(move || register(JnvmBuilder::new()).open_with_options(p, opts))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard recovery thread"))
                .collect()
        });
        let mut shards = Vec::with_capacity(results.len());
        let mut reports = Vec::with_capacity(results.len());
        for r in results {
            let (rt, report) = r?;
            shards.push(rt);
            reports.push(report);
        }
        Ok((ShardedJnvm { shards }, reports))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's runtime.
    pub fn shard(&self, i: usize) -> &Jnvm {
        &self.shards[i]
    }

    /// All shard runtimes, in shard order.
    pub fn shards(&self) -> &[Jnvm] {
        &self.shards
    }

    /// Consume into the per-shard runtimes (for layers that wrap each
    /// shard in further per-shard state, e.g. the kvstore's backends).
    pub fn into_shards(self) -> Vec<Jnvm> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm_pmem::PmemConfig;

    persistent_class! {
        pub class Cell {
            val value, set_value: i64;
        }
    }

    fn register(b: JnvmBuilder) -> JnvmBuilder {
        b.register::<Cell>()
    }

    fn devices(n: usize) -> Vec<Arc<Pmem>> {
        (0..n)
            .map(|_| Pmem::new(PmemConfig::crash_sim(4 << 20)))
            .collect()
    }

    #[test]
    fn shards_are_independent_heaps() {
        let pmems = devices(3);
        let sharded = ShardedJnvm::create(&pmems, HeapConfig::default(), register).unwrap();
        for (i, rt) in sharded.shards().iter().enumerate() {
            let c = rt.fa(|| {
                let c = Cell::alloc_uninit(rt);
                c.set_value(100 + i as i64);
                rt.root_put("cell", &c).unwrap();
                c
            });
            assert_eq!(c.value(), 100 + i as i64);
        }
        drop(sharded);
        for p in &pmems {
            p.crash(&jnvm_pmem::CrashPolicy::strict()).expect("crash");
        }
        let (reopened, reports) =
            ShardedJnvm::open_with_options(&pmems, RecoveryOptions::parallel(2), register)
                .unwrap();
        assert_eq!(reports.len(), 3);
        for (i, rt) in reopened.shards().iter().enumerate() {
            let c = rt.root_get_as::<Cell>("cell").unwrap().expect("root survives");
            assert_eq!(c.value(), 100 + i as i64, "shard {i} recovered the wrong heap");
        }
    }

    #[test]
    #[should_panic(expected = "share one device")]
    fn aliased_devices_are_rejected() {
        let p = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let pmems = vec![Arc::clone(&p), p];
        let _ = ShardedJnvm::create(&pmems, HeapConfig::default(), register);
    }
}
