//! Core runtime tests: object lifecycle, root map, failure-atomic blocks,
//! crash injection and the recovery GC.

use std::sync::Arc;

use jnvm_heap::HeapConfig;
use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};

use crate::{JnvmBuilder, JnvmError, PObject, RecoveryMode};

persistent_class! {
    /// Figure 3's `Simple`, minus the PString (tested with `Node` below).
    pub class Simple {
        val x, set_x: i32;
        val flag, set_flag: bool;
        val weight, set_weight: f64;
    }
}

persistent_class! {
    /// A linked-list node with a persistent reference.
    pub class Node {
        val value, set_value: i64;
        ref next, set_next, update_next: Node;
    }
}

fn fresh(size: u64) -> (Arc<Pmem>, crate::Jnvm) {
    let pmem = Pmem::new(PmemConfig::crash_sim(size));
    let rt = JnvmBuilder::new()
        .register::<Simple>()
        .register::<Node>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    (pmem, rt)
}

fn reopen(pmem: &Arc<Pmem>) -> (crate::Jnvm, crate::RecoveryReport) {
    JnvmBuilder::new()
        .register::<Simple>()
        .register::<Node>()
        .open(Arc::clone(pmem))
        .unwrap()
}

#[test]
fn fields_round_trip() {
    let (_p, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(-42);
    s.set_flag(true);
    s.set_weight(2.75);
    assert_eq!(s.x(), -42);
    assert!(s.flag());
    assert_eq!(s.weight(), 2.75);
}

#[test]
fn payload_layout() {
    assert_eq!(Simple::PAYLOAD_BYTES, 24);
    assert_eq!(Node::PAYLOAD_BYTES, 16);
    assert_eq!(<Node as PObject>::REF_OFFSETS, &[8]);
    assert!(<Simple as PObject>::REF_OFFSETS.is_empty());
}

#[test]
fn reference_fields_resurrect() {
    let (_p, rt) = fresh(1 << 20);
    let a = Node::alloc_uninit(&rt);
    let b = Node::alloc_uninit(&rt);
    b.set_value(7);
    a.set_next(Some(&b));
    let got = a.next().expect("next set");
    assert_eq!(got.value(), 7);
    assert_eq!(got.addr(), b.addr());
    a.set_next(None);
    assert!(a.next().is_none());
}

#[test]
fn root_map_basics() {
    let (_p, rt) = fresh(1 << 20);
    assert!(!rt.root_exists("simple"));
    let s = Simple::alloc_uninit(&rt);
    s.set_x(1);
    s.pwb();
    rt.root_put("simple", &s).unwrap();
    assert!(rt.root_exists("simple"));
    assert_eq!(rt.root_len(), 1);
    let got = rt.root_get_as::<Simple>("simple").unwrap().unwrap();
    assert_eq!(got.x(), 1);
    // Wrong type is rejected.
    assert!(matches!(
        rt.root_get_as::<Node>("simple"),
        Err(JnvmError::ClassMismatch { .. })
    ));
    let removed = rt.root_remove("simple");
    assert_eq!(removed, Some(s.addr()));
    assert!(!rt.root_exists("simple"));
}

#[test]
fn root_map_replaces_existing() {
    let (_p, rt) = fresh(1 << 20);
    let a = Simple::alloc_uninit(&rt);
    a.set_x(1);
    a.pwb();
    let b = Simple::alloc_uninit(&rt);
    b.set_x(2);
    b.pwb();
    rt.root_put("k", &a).unwrap();
    rt.root_put("k", &b).unwrap();
    assert_eq!(rt.root_len(), 1);
    assert_eq!(rt.root_get_as::<Simple>("k").unwrap().unwrap().x(), 2);
}

#[test]
fn durable_across_clean_crash() {
    let (pmem, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(123);
    s.pwb();
    rt.root_put("simple", &s).unwrap();
    drop(rt);
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, report) = reopen(&pmem);
    assert!(report.mode_full);
    let got = rt2.root_get_as::<Simple>("simple").unwrap().unwrap();
    assert_eq!(got.x(), 123);
}

#[test]
fn unreachable_objects_are_collected_at_recovery() {
    let (pmem, rt) = fresh(1 << 20);
    let kept = Simple::alloc_uninit(&rt);
    kept.set_x(1);
    kept.pwb();
    rt.root_put("kept", &kept).unwrap();
    // Leak: allocated, validated, flushed... but never reachable.
    let leaked = Simple::alloc_uninit(&rt);
    leaked.set_x(2);
    leaked.pwb();
    leaked.validate();
    rt.pfence();
    let leaked_block = rt.heap().block_of_addr(leaked.addr());
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, report) = reopen(&pmem);
    assert!(report.freed_blocks > 0);
    // The leaked block is back in the free queue: its header is cleared.
    assert!(rt2.heap().read_header(leaked_block).is_free_or_slave());
    assert!(rt2.root_exists("kept"));
}

#[test]
fn invalid_reachable_references_are_nullified() {
    let (pmem, rt) = fresh(1 << 20);
    let a = Node::alloc_uninit(&rt);
    a.set_value(1);
    let b = Node::alloc_uninit(&rt);
    b.set_value(2);
    // a -> b, but b is never validated.
    a.set_next(Some(&b));
    a.pwb();
    b.pwb();
    rt.root_put("a", &a).unwrap(); // validates a, fences
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, report) = reopen(&pmem);
    assert!(report.nullified_refs >= 1, "dangling ref must be nullified");
    let a2 = rt2.root_get_as::<Node>("a").unwrap().unwrap();
    assert!(a2.next().is_none(), "reference to invalid object nullified");
}

#[test]
fn update_ref_survives_crash_with_target() {
    let (pmem, rt) = fresh(1 << 20);
    let a = Node::alloc_uninit(&rt);
    a.set_value(1);
    a.pwb();
    rt.root_put("a", &a).unwrap();
    let b = Node::alloc_uninit(&rt);
    b.set_value(2);
    b.pwb();
    // Atomic update: validate(b), fence, store, pwb.
    a.update_next(Some(&b));
    rt.pfence();
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, _) = reopen(&pmem);
    let a2 = rt2.root_get_as::<Node>("a").unwrap().unwrap();
    let b2 = a2.next().expect("b survived with the reference");
    assert_eq!(b2.value(), 2);
}

#[test]
fn figure5_batched_validation_single_fence() {
    let (pmem, rt) = fresh(1 << 20);
    let before = pmem.stats();
    // Two objects + sub-objects with wput, batched validations, one fence.
    let a = Node::alloc_uninit(&rt);
    a.set_value(10);
    let ao = Node::alloc_uninit(&rt);
    ao.set_value(11);
    ao.pwb();
    ao.validate();
    a.set_next(Some(&ao));
    a.pwb();
    rt.root_wput("a", &a).unwrap();
    let b = Node::alloc_uninit(&rt);
    b.set_value(20);
    b.pwb();
    rt.root_wput("b", &b).unwrap();
    pmem.pfence();
    a.validate();
    b.validate();
    pmem.pfence();
    let delta = pmem.stats().delta(&before);
    assert!(
        delta.pfences <= 3,
        "weak puts must not fence (saw {} fences)",
        delta.pfences
    );
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, _) = reopen(&pmem);
    let a2 = rt2.root_get_as::<Node>("a").unwrap().unwrap();
    assert_eq!(a2.value(), 10);
    assert_eq!(a2.next().unwrap().value(), 11);
    assert_eq!(rt2.root_get_as::<Node>("b").unwrap().unwrap().value(), 20);
}

#[test]
fn figure5_crash_before_fence_discards_everything() {
    let (pmem, rt) = fresh(1 << 20);
    let a = Node::alloc_uninit(&rt);
    a.set_value(10);
    a.pwb();
    rt.root_wput("a", &a).unwrap();
    // No validation, no fence: crash.
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, _) = reopen(&pmem);
    assert!(rt2.root_get("a").is_none(), "invalid object must not surface");
}

#[test]
fn explicit_free_recycles_blocks() {
    let (_p, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    let addr = s.addr();
    let before = rt.heap().stats();
    rt.free(s);
    let after = rt.heap().stats();
    assert_eq!(after.blocks_freed - before.blocks_freed, 1);
    assert!(!rt.is_valid_addr(addr));
}

// ----------------------------------------------------------------------
// Failure-atomic blocks.
// ----------------------------------------------------------------------

#[test]
fn fa_commit_applies_writes() {
    let (_p, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(1);
    s.pwb();
    s.validate();
    rt.pfence();
    rt.fa(|| {
        s.set_x(2);
        assert_eq!(s.x(), 2, "reads observe own writes inside the block");
    });
    assert_eq!(s.x(), 2);
}

#[test]
fn fa_alloc_validates_at_commit() {
    let (_p, rt) = fresh(1 << 20);
    let s = rt.fa(|| {
        let s = Simple::alloc_uninit(&rt);
        s.set_x(5);
        rt.root_put("s", &s).unwrap();
        assert!(!s.is_valid(), "not valid before commit");
        s
    });
    assert!(s.is_valid(), "commit validates allocations");
    assert_eq!(s.x(), 5);
}

#[test]
fn fa_abort_on_panic_rolls_back() {
    let (_p, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(1);
    s.pwb();
    s.validate();
    rt.pfence();
    let rt2 = Arc::clone(&rt);
    let s2 = s.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        rt2.fa(|| {
            s2.set_x(99);
            panic!("boom");
        })
    }));
    assert!(result.is_err());
    assert_eq!(s.x(), 1, "aborted block leaves state untouched");
    assert_eq!(crate::fa_depth(), 0, "depth restored after abort");
}

#[test]
fn fa_crash_before_commit_discards_block() {
    let (pmem, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(1);
    s.pwb();
    rt.root_put("s", &s).unwrap();
    // A power failure in the middle of the block is modelled by
    // snapshotting the *media* content mid-closure: exactly what a fresh
    // boot would find.
    let img = std::env::temp_dir().join(format!(
        "jnvm-fa-crash-{}-{:?}.img",
        std::process::id(),
        std::thread::current().id()
    ));
    rt.fa(|| {
        s.set_x(2);
        rt.pmem().save(&img).unwrap();
    });
    assert_eq!(s.x(), 2, "the live pool committed normally");
    let pmem2 = Pmem::load(&img, PmemConfig::crash_sim(0)).unwrap();
    std::fs::remove_file(&img).ok();
    drop(pmem);
    let (rt2, report) = reopen(&pmem2);
    assert_eq!(report.replayed_logs, 0, "nothing committed at crash time");
    let s2 = rt2.root_get_as::<Simple>("s").unwrap().unwrap();
    assert_eq!(s2.x(), 1, "uncommitted block must not be visible");
}

#[test]
fn fa_committed_log_replays_after_crash() {
    let (pmem, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(1);
    s.pwb();
    rt.root_put("s", &s).unwrap();
    rt.fa(|| {
        s.set_x(2);
    });
    // Crash after commit (apply already ran; replay must be idempotent).
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, _) = reopen(&pmem);
    let s2 = rt2.root_get_as::<Simple>("s").unwrap().unwrap();
    assert_eq!(s2.x(), 2);
}

#[test]
fn fa_nested_blocks_fold() {
    let (_p, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(0);
    s.pwb();
    s.validate();
    rt.pfence();
    rt.fa(|| {
        s.set_x(1);
        rt.fa(|| {
            s.set_x(2);
        });
        assert_eq!(crate::fa_depth(), 1);
        s.set_x(3);
    });
    assert_eq!(s.x(), 3);
    assert_eq!(crate::fa_depth(), 0);
}

#[test]
fn fa_free_is_deferred_to_commit() {
    let (_p, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(1);
    s.pwb();
    s.validate();
    rt.pfence();
    let addr = s.addr();
    rt.fa(|| {
        rt.free_addr(addr);
        assert!(rt.is_valid_addr(addr), "free deferred until commit");
    });
    assert!(!rt.is_valid_addr(addr));
}

#[test]
fn fa_many_writes_grow_log() {
    let (_p, rt) = fresh(4 << 20);
    // One object per write so each write touches a distinct block and
    // produces a distinct log entry; 600 > LOG_INIT_ENTRIES (256).
    let objs: Vec<Simple> = (0..600)
        .map(|i| {
            let s = Simple::alloc_uninit(&rt);
            s.set_x(i);
            s.pwb();
            s.validate();
            s
        })
        .collect();
    rt.pfence();
    rt.fa(|| {
        for (i, s) in objs.iter().enumerate() {
            s.set_x(i as i32 + 1000);
        }
    });
    for (i, s) in objs.iter().enumerate() {
        assert_eq!(s.x(), i as i32 + 1000);
    }
}

#[test]
fn fa_concurrent_threads_use_distinct_logs() {
    let (_p, rt) = fresh(8 << 20);
    let objs: Vec<Simple> = (0..8)
        .map(|_| {
            let s = Simple::alloc_uninit(&rt);
            s.set_x(0);
            s.pwb();
            s.validate();
            s
        })
        .collect();
    rt.pfence();
    let threads: Vec<_> = objs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let rt = Arc::clone(&rt);
            let s = s.clone();
            std::thread::spawn(move || {
                for n in 0..50 {
                    rt.fa(|| s.set_x((i * 1000 + n) as i32));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    for (i, s) in objs.iter().enumerate() {
        assert_eq!(s.x(), (i * 1000 + 49) as i32);
    }
}

// ----------------------------------------------------------------------
// Recovery modes and registry.
// ----------------------------------------------------------------------

#[test]
fn nogc_recovery_keeps_valid_masters() {
    let (pmem, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(9);
    s.pwb();
    rt.root_put("s", &s).unwrap();
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, report) = JnvmBuilder::new()
        .register::<Simple>()
        .register::<Node>()
        .open_with_mode(Arc::clone(&pmem), RecoveryMode::HeaderScanOnly)
        .unwrap();
    assert!(!report.mode_full);
    assert_eq!(rt2.root_get_as::<Simple>("s").unwrap().unwrap().x(), 9);
}

#[test]
fn class_ids_stable_across_reopen() {
    let (pmem, rt) = fresh(1 << 20);
    let id_simple = rt.registry().id_of::<Simple>().unwrap();
    let id_node = rt.registry().id_of::<Node>().unwrap();
    drop(rt);
    pmem.drain_all();
    // Re-open with classes registered in the opposite order.
    let (rt2, _) = JnvmBuilder::new()
        .register::<Node>()
        .register::<Simple>()
        .open(Arc::clone(&pmem))
        .unwrap();
    assert_eq!(rt2.registry().id_of::<Simple>().unwrap(), id_simple);
    assert_eq!(rt2.registry().id_of::<Node>().unwrap(), id_node);
}

#[test]
fn open_rejects_missing_class() {
    let (pmem, rt) = fresh(1 << 20);
    drop(rt);
    pmem.drain_all();
    let err = JnvmBuilder::new()
        .register::<Simple>() // Node missing
        .open(Arc::clone(&pmem))
        .expect_err("must refuse to open without Node registered");
    assert!(matches!(err, JnvmError::UnknownPersistedClass(_)));
}

#[test]
fn unregistered_class_alloc_fails() {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = JnvmBuilder::new()
        .register::<Simple>()
        .create(pmem, HeapConfig::default())
        .unwrap();
    assert!(matches!(
        rt.alloc_proxy::<Node>(16),
        Err(JnvmError::UnregisteredClass(_))
    ));
}

#[test]
fn adversarial_crash_storm_preserves_atomicity() {
    // Repeated adversarial crashes mid-workload: every committed transfer
    // must be all-or-nothing on a pair of counters whose sum is invariant.
    for seed in 0..10u64 {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let rt = JnvmBuilder::new()
            .register::<Simple>()
            .register::<Node>()
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        let (a, b) = rt.fa(|| {
            let a = Simple::alloc_uninit(&rt);
            a.set_x(500);
            let b = Simple::alloc_uninit(&rt);
            b.set_x(500);
            rt.root_put("a", &a).unwrap();
            rt.root_put("b", &b).unwrap();
            (a, b)
        });
        for i in 0..20 {
            rt.fa(|| {
                a.set_x(a.x() - 1);
                b.set_x(b.x() + 1);
            });
            if i == 10 {
                pmem.crash(&CrashPolicy::adversarial(seed)).unwrap();
                break;
            }
        }
        let (rt2, _) = reopen(&pmem);
        let a2 = rt2.root_get_as::<Simple>("a").unwrap().unwrap();
        let b2 = rt2.root_get_as::<Simple>("b").unwrap().unwrap();
        assert_eq!(
            a2.x() + b2.x(),
            1000,
            "seed {seed}: transfer atomicity violated: {} + {}",
            a2.x(),
            b2.x()
        );
    }
}

#[test]
fn deep_list_survives_crash() {
    let (pmem, rt) = fresh(4 << 20);
    // Build a 200-node list inside one failure-atomic block.
    rt.fa(|| {
        let head = Node::alloc_uninit(&rt);
        head.set_value(0);
        rt.root_put("head", &head).unwrap();
        let mut cur = head;
        for i in 1..200 {
            let n = Node::alloc_uninit(&rt);
            n.set_value(i);
            cur.set_next(Some(&n));
            cur = n;
        }
    });
    pmem.crash(&CrashPolicy::strict()).unwrap();
    let (rt2, report) = reopen(&pmem);
    assert!(report.live_objects >= 200);
    let mut cur = rt2.root_get_as::<Node>("head").unwrap().unwrap();
    let mut count = 1;
    while let Some(next) = cur.next() {
        assert_eq!(next.value(), cur.value() + 1);
        cur = next;
        count += 1;
    }
    assert_eq!(count, 200);
}

#[test]
fn persistent_oom_is_reported_not_fatal() {
    // A small pool (most of it goes to the class table / root map /
    // log directory): exhaust it and verify the error path, then free
    // and allocate again.
    let pmem = Pmem::new(PmemConfig::crash_sim(256 * 1024));
    let rt = JnvmBuilder::new()
        .register::<Simple>()
        .register::<Node>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    let mut held = Vec::new();
    loop {
        match rt.alloc_proxy::<Simple>(Simple::PAYLOAD_BYTES) {
            Ok(p) => held.push(p),
            Err(JnvmError::Heap(jnvm_heap::HeapError::OutOfMemory { .. })) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
        assert!(held.len() < 10_000, "pool never filled up");
    }
    assert!(!held.is_empty());
    // Free one object: allocation works again.
    let p = held.pop().unwrap();
    rt.free_addr(p.addr());
    assert!(rt.alloc_proxy::<Simple>(Simple::PAYLOAD_BYTES).is_ok());
}

#[test]
fn pany_roundtrip() {
    let (_p, rt) = fresh(1 << 20);
    let s = Simple::alloc_uninit(&rt);
    s.set_x(3);
    s.pwb();
    rt.root_put("s", &s).unwrap();
    let any = rt.root_get("s").unwrap();
    assert_eq!(any.addr(), s.addr());
    assert_eq!(any.class_id(), rt.registry().id_of::<Simple>().unwrap());
    let back = any.get_as::<Simple>(&rt).unwrap();
    assert_eq!(back.x(), 3);
}

#[test]
fn large_object_spans_blocks() {
    let (pmem, rt) = fresh(1 << 20);
    let id = rt.registry().id_of::<Simple>().unwrap();
    let p = crate::Proxy::alloc(&rt, id, 1000); // 5 blocks
    assert_eq!(p.block_count(), 5);
    let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    p.write_bytes(0, &data);
    let mut out = vec![0u8; 1000];
    p.read_bytes(0, &mut out);
    assert_eq!(out, data);
    p.pwb();
    p.validate();
    pmem.pfence();
    // Word access at every aligned offset, including block straddles.
    for off in (0..992).step_by(8) {
        let v = p.read_u64(off as u64);
        p.write_u64(off as u64, v ^ 0xffff);
        assert_eq!(p.read_u64(off as u64), v ^ 0xffff);
    }
}
