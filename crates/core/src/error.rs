//! Runtime error type.

use std::fmt;

use jnvm_heap::HeapError;
use jnvm_pmem::PmemError;

/// Errors reported by the J-NVM runtime.
#[derive(Debug)]
pub enum JnvmError {
    /// Underlying heap failure (allocation, superblock...).
    Heap(HeapError),
    /// Underlying device failure.
    Pmem(PmemError),
    /// A class was found in the persistent class table but was not
    /// registered with the [`crate::JnvmBuilder`]; recovery cannot trace it.
    UnknownPersistedClass(String),
    /// A class was used before being registered.
    UnregisteredClass(&'static str),
    /// The persistent class table is full.
    ClassTableFull,
    /// A class name exceeds the persistent table's field width.
    ClassNameTooLong(String),
    /// Typed dereference found an object of a different class.
    ClassMismatch {
        /// Class id expected by the caller.
        expected: u16,
        /// Class id found in the object header.
        found: u16,
    },
    /// Dereference of a freed or never-valid proxy.
    StaleProxy,
    /// The root map has no free slot left.
    RootMapFull,
    /// A root key exceeds the maximum persisted length.
    RootKeyTooLong(usize),
    /// The failure-atomic log directory is full (too many concurrent
    /// threads in failure-atomic blocks).
    TooManyFaThreads,
    /// A failure-atomic block was started on a different runtime than the
    /// one already active on this thread.
    ForeignTransaction,
    /// A redo-log entry with an unknown kind was found during replay — the
    /// log (or the directory pointing at it) is damaged. Reported instead
    /// of aborting so a server re-open on a damaged pool can surface the
    /// failure to its operator.
    CorruptLog {
        /// The unrecognized entry-kind word.
        kind: u64,
    },
}

impl fmt::Display for JnvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JnvmError::Heap(e) => write!(f, "heap error: {e}"),
            JnvmError::Pmem(e) => write!(f, "pmem error: {e}"),
            JnvmError::UnknownPersistedClass(n) => {
                write!(f, "class `{n}` persisted in pool but not registered")
            }
            JnvmError::UnregisteredClass(n) => write!(f, "class `{n}` not registered"),
            JnvmError::ClassTableFull => write!(f, "persistent class table full"),
            JnvmError::ClassNameTooLong(n) => write!(f, "class name too long: `{n}`"),
            JnvmError::ClassMismatch { expected, found } => {
                write!(f, "class mismatch: expected id {expected}, found {found}")
            }
            JnvmError::StaleProxy => write!(f, "access through a freed proxy"),
            JnvmError::RootMapFull => write!(f, "root map full"),
            JnvmError::RootKeyTooLong(n) => write!(f, "root key too long ({n} bytes)"),
            JnvmError::TooManyFaThreads => write!(f, "failure-atomic log directory full"),
            JnvmError::ForeignTransaction => {
                write!(f, "failure-atomic block already active on another runtime")
            }
            JnvmError::CorruptLog { kind } => {
                write!(f, "corrupt redo log: entry kind {kind}")
            }
        }
    }
}

impl std::error::Error for JnvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JnvmError::Heap(e) => Some(e),
            JnvmError::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for JnvmError {
    fn from(e: HeapError) -> Self {
        JnvmError::Heap(e)
    }
}

impl From<PmemError> for JnvmError {
    fn from(e: PmemError) -> Self {
        JnvmError::Pmem(e)
    }
}
