//! Typed field storage for generated persistent classes.
//!
//! Every primitive field of a generated class occupies one 8-byte word of
//! the persistent payload (the paper packs `int`s at 4 bytes; we trade a
//! little NVMM for uniform one-word fields, which keeps generated offsets
//! trivially correct — the asymmetries the evaluation measures are
//! unaffected).

use crate::proxy::Proxy;

/// A primitive value storable in a one-word persistent field.
pub trait PVal: Copy {
    /// Read the field at logical payload offset `off`.
    fn read(p: &Proxy, off: u64) -> Self;
    /// Write the field at logical payload offset `off`.
    fn write(p: &Proxy, off: u64, v: Self);
}

macro_rules! impl_pval_int {
    ($($t:ty),*) => {
        $(impl PVal for $t {
            #[inline]
            fn read(p: &Proxy, off: u64) -> Self {
                p.read_u64(off) as $t
            }
            #[inline]
            fn write(p: &Proxy, off: u64, v: Self) {
                // Sign-extend / zero-extend through the natural cast.
                p.write_u64(off, v as u64);
            }
        })*
    };
}

impl_pval_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PVal for bool {
    #[inline]
    fn read(p: &Proxy, off: u64) -> Self {
        p.read_u64(off) != 0
    }
    #[inline]
    fn write(p: &Proxy, off: u64, v: Self) {
        p.write_u64(off, v as u64);
    }
}

impl PVal for f64 {
    #[inline]
    fn read(p: &Proxy, off: u64) -> Self {
        f64::from_bits(p.read_u64(off))
    }
    #[inline]
    fn write(p: &Proxy, off: u64, v: Self) {
        p.write_u64(off, v.to_bits());
    }
}

impl PVal for f32 {
    #[inline]
    fn read(p: &Proxy, off: u64) -> Self {
        f32::from_bits(p.read_u64(off) as u32)
    }
    #[inline]
    fn write(p: &Proxy, off: u64, v: Self) {
        p.write_u64(off, v.to_bits() as u64);
    }
}

#[cfg(test)]
mod tests {
    // PVal round-trips are exercised through the `persistent_class!` tests
    // in `macros.rs` and the integration tests; sign-extension corner cases
    // are covered here via the public Proxy API in lib-level tests.
}
