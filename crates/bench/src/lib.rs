//! # jnvm-bench — regenerators for every table and figure of the paper
//!
//! One binary per experiment (see DESIGN.md §4 for the full index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig1_gc_cache_ratio` | Figure 1 (G1 cache-ratio study) |
//! | `fig2_gopmem_scaling` | Figure 2 (go-pmem dataset scaling) |
//! | `table1_deletion_sites` | Table 1 (deletion-site counts) |
//! | `fig7_ycsb_backends` | Figure 7 (YCSB across backends) |
//! | `fig8_record_size` | Figure 8 (marshalling cost vs record size) |
//! | `fig9_sensitivity` | Figure 9 a–d (workload sensitivity) |
//! | `fig10_multithreading` | Figure 10 (thread scaling) |
//! | `fig11_recovery` | Figure 11 (crash/recovery timeline) |
//! | `fig11_crash_point_sweep` | Figure 11 companion: exhaustive crash-point sweep of the §4.2 commit sequence |
//! | `fig12_pdt_vs_volatile` | Figure 12 (persistent vs volatile types) |
//! | `table3_block_access` | Table 3 (raw block access throughput) |
//! | `run_all` | everything above, default scaled parameters |
//!
//! All binaries accept `--key value` flags (`--records`, `--ops`,
//! `--scale`, `--out` ...) and write CSV series into `results/` in addition
//! to printing paper-style tables. Criterion micro-benchmarks live in
//! `benches/`.

pub mod adapter;
pub mod args;
pub mod output;
pub mod setup;

pub use adapter::GridClient;
pub use args::Args;
pub use output::{write_csv, Table};
pub use setup::{make_grid, BackendKind, GridSetup};
