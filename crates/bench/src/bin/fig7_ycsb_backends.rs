//! Figure 7 regenerator: YCSB throughput (workloads A, B, C, D, F) across
//! the four persistent backends (J-PDT, J-PFA, FS, PCJ).
//!
//! Paper result (§5.2): J-PDT ≥ 10.5x FS (3.6x on D), 13.8–22.7x PCJ;
//! J-PFA between J-PDT and FS (J-PDT up to 65 % faster than J-PFA).
//!
//! Flags: `--records` (default 30000 = paper 3M / 100), `--ops` (default
//! 50000), `--out results`.

use std::path::PathBuf;
use std::sync::Arc;

use jnvm_bench::{make_grid, write_csv, Args, BackendKind, GridClient, Table};
use jnvm_ycsb::{run_load, run_workload, Workload};

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 30_000);
    let ops: u64 = args.get_or("ops", 50_000);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let optane = !args.has("no-latency");

    println!("Figure 7: YCSB across backends ({records} records, {ops} ops/workload)");
    let mut table = Table::new(&["workload", "J-PDT", "J-PFA", "FS", "PCJ", "J-PDT/FS", "J-PDT/PCJ"]);
    let mut rows = Vec::new();
    for w in Workload::ALL {
        let mut tputs = Vec::new();
        for kind in BackendKind::FIGURE7 {
            // Paper: J-NVM backends run with caching disabled; the external
            // designs cache 10 %.
            let ratio = match kind {
                BackendKind::Jpdt | BackendKind::Jpfa | BackendKind::Pcj => 0.0,
                _ => 0.1,
            };
            let setup = make_grid(kind, records * 2, 10, 100, ratio, optane);
            let spec = w.spec(records, ops);
            run_load(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
            let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
            tputs.push(report.throughput);
        }
        let fmt = |x: f64| format!("{:.1} Kops/s", x / 1e3);
        table.row(&[
            format!("YCSB-{}", w.label()),
            fmt(tputs[0]),
            fmt(tputs[1]),
            fmt(tputs[2]),
            fmt(tputs[3]),
            format!("{:.1}x", tputs[0] / tputs[2]),
            format!("{:.1}x", tputs[0] / tputs[3]),
        ]);
        rows.push(format!(
            "{},{:.0},{:.0},{:.0},{:.0}",
            w.label(),
            tputs[0],
            tputs[1],
            tputs[2],
            tputs[3]
        ));
    }
    table.print();
    let path = write_csv(&out, "fig7_ycsb_backends", "workload,jpdt,jpfa,fs,pcj", &rows);
    println!("wrote {}", path.display());
}
