//! Client-scaling harness for `jnvm-server`: throughput, ack latency and
//! ordering fences per acked write as concurrent pipelined connections
//! grow.
//!
//! The point under test is the group-commit amortization claim: with more
//! pipelined clients the committer forms bigger groups, so fences per
//! acked write should *fall* as connections rise while throughput climbs
//! until the single committer saturates.
//!
//! Flags: `--conns 1,2,4,8` (connection counts), `--ops` (requests per
//! connection, default 500), `--pipeline` (default 16), `--out results`.

use std::path::PathBuf;
use std::sync::Arc;

use jnvm::JnvmBuilder;
use jnvm_bench::{write_csv, Args, Table};
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend};
use jnvm_pmem::{Pmem, PmemConfig};
use jnvm_server::{run_loadgen, LoadgenConfig, Server, ServerConfig};

struct Point {
    conns: usize,
    rate: f64,
    p50_us: f64,
    p99_us: f64,
    acked: u64,
    groups: u64,
    fences_per_write: f64,
}

fn run_point(conns: usize, ops: usize, pipeline: usize) -> Point {
    let pmem = Pmem::new(PmemConfig::crash_sim(512 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool creation");
    let be = Arc::new(JnvmBackend::create(&rt, 32, true).expect("backend"));
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let server = Server::start(
        Arc::clone(&grid),
        Arc::clone(&be),
        Arc::clone(&pmem),
        ServerConfig::default(),
    )
    .expect("bind server");
    let before = pmem.stats();
    let load = run_loadgen(
        server.addr(),
        &LoadgenConfig {
            conns,
            ops_per_conn: ops,
            pipeline,
            ..LoadgenConfig::default()
        },
    );
    let stats = server.stats();
    server.shutdown();
    let d = pmem.stats().delta(&before);
    let replied: usize = load.per_conn.iter().map(|c| c.replied()).sum();
    drop(grid);
    drop(be);
    drop(rt);
    Point {
        conns,
        rate: replied as f64 / load.elapsed.as_secs_f64().max(1e-9),
        p50_us: load.hist.quantile(0.5) as f64 / 1000.0,
        p99_us: load.hist.quantile(0.99) as f64 / 1000.0,
        acked: load.acked_writes,
        groups: stats.groups,
        fences_per_write: d.ordering_points() as f64 / load.acked_writes.max(1) as f64,
    }
}

fn main() {
    let args = Args::parse();
    let ops: usize = args.get_or("ops", 500);
    let pipeline: usize = args.get_or("pipeline", 16);
    let conns: Vec<usize> = args
        .get("conns")
        .unwrap_or("1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_dir = PathBuf::from(args.get("out").unwrap_or("results"));

    println!("server scaling: {ops} ops/conn, pipeline {pipeline}");
    let mut table = Table::new(&[
        "conns",
        "op/s",
        "p50 us",
        "p99 us",
        "acked",
        "groups",
        "fences/write",
    ]);
    let mut rows = Vec::new();
    for &c in &conns {
        let p = run_point(c, ops, pipeline);
        table.row(&[
            p.conns.to_string(),
            format!("{:.0}", p.rate),
            format!("{:.1}", p.p50_us),
            format!("{:.1}", p.p99_us),
            p.acked.to_string(),
            p.groups.to_string(),
            format!("{:.4}", p.fences_per_write),
        ]);
        rows.push(format!(
            "{},{:.0},{:.1},{:.1},{},{},{:.4}",
            p.conns, p.rate, p.p50_us, p.p99_us, p.acked, p.groups, p.fences_per_write
        ));
    }
    table.print();
    let path = write_csv(
        &out_dir,
        "server_scaling",
        "conns,rate,p50_us,p99_us,acked,groups,fences_per_write",
        &rows,
    );
    println!("wrote {}", path.display());
}
