//! Figure 12 regenerator: persistent J-PDT maps vs their volatile
//! counterparts under YCSB-A, run directly on the data types (no grid).
//!
//! Paper result: J-PDT is 45–50 % slower than volatile `java.util` maps —
//! the price of pfences in the critical path, NVMM latency and proxy
//! indirection. The "Blackhole" row measures pure workload-injection cost.
//! (The volatile Java baseline also pays GC time; Rust's baseline does not,
//! which EXPERIMENTS.md accounts for when comparing.)
//!
//! Flags: `--records` (default 20000), `--ops` (default 100000),
//! `--value-bytes 1000`, `--out results`.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::Instant;

use jnvm::{JnvmBuilder, PObject};
use jnvm_bench::{write_csv, Args, Table};
use jnvm_heap::HeapConfig;
use jnvm_jpdt::{
    register_jpdt, PBytes, PStringHashMap, PStringSkipMap, PStringTreeMap, SkipListMap,
};
use jnvm_pmem::{Pmem, PmemConfig};
use jnvm_ycsb::{record_key, Generator, ScrambledZipfianGenerator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One YCSB-A pass over a map-like store. Returns
/// `(total, read_time, update_time)` in seconds.
fn drive(
    records: u64,
    ops: u64,
    value_bytes: usize,
    mut read: impl FnMut(&str),
    mut update: impl FnMut(&str, &[u8]),
) -> (f64, f64, f64) {
    let mut gen = ScrambledZipfianGenerator::new(records, 11);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut value = vec![0u8; value_bytes];
    let (mut t_read, mut t_update) = (0.0, 0.0);
    let start = Instant::now();
    for _ in 0..ops {
        let key = record_key(gen.next());
        if rng.random::<bool>() {
            let t = Instant::now();
            read(&key);
            t_read += t.elapsed().as_secs_f64();
        } else {
            rng.fill_bytes(&mut value);
            let t = Instant::now();
            update(&key, &value);
            t_update += t.elapsed().as_secs_f64();
        }
    }
    (start.elapsed().as_secs_f64(), t_read, t_update)
}

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 20_000);
    let ops: u64 = args.get_or("ops", 100_000);
    let value_bytes: usize = args.get_or("value-bytes", 1000);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let optane = !args.has("no-latency");

    let pool = (records * 4 + 4096) * (value_bytes as u64 + 600) + (64 << 20);
    let pmem = Pmem::new(if optane {
        PmemConfig::optane(pool)
    } else {
        PmemConfig::perf(pool)
    });
    let rt = register_jpdt(JnvmBuilder::new())
        .create(pmem, HeapConfig::default())
        .expect("pool");

    println!("Figure 12: YCSB-A directly on data types ({records} records, {ops} ops)");
    let mut table = Table::new(&["data type", "completion", "read", "update", "vs volatile"]);
    let mut rows: Vec<String> = Vec::new();

    // Blackhole: workload injection only.
    let (bh, _, _) = drive(records, ops, value_bytes, |_k| {}, |_k, _v| {});
    table.row(&[
        "Blackhole".into(),
        format!("{bh:.2} s"),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    rows.push(format!("blackhole,{bh:.4},0,0"));

    let mut emit = |name: &str, (total, r, u): (f64, f64, f64), volatile_total: Option<f64>| {
        let rel = volatile_total
            .map(|v| format!("{:+.0}%", (total / v - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".to_string());
        table.row(&[
            name.to_string(),
            format!("{total:.2} s"),
            format!("{r:.2} s"),
            format!("{u:.2} s"),
            rel,
        ]);
        rows.push(format!("{name},{total:.4},{r:.4},{u:.4}"));
        total
    };

    // Hash maps.
    let vm = std::cell::RefCell::new(HashMap::<String, Vec<u8>>::new());
    for i in 0..records {
        vm.borrow_mut().insert(record_key(i), vec![0u8; value_bytes]);
    }
    let v_hash = drive(
        records,
        ops,
        value_bytes,
        |k| {
            if let Some(v) = vm.borrow().get(k) {
                std::hint::black_box(v.len());
            }
        },
        |k, v| {
            vm.borrow_mut().insert(k.to_string(), v.to_vec());
        },
    );
    let v_hash_total = emit("HashMap (volatile)", v_hash, None);

    let pm = PStringHashMap::new(&rt).expect("map");
    for i in 0..records {
        let b = PBytes::new(&rt, &vec![0u8; value_bytes]).expect("blob");
        pm.put(record_key(i), b.addr()).expect("put");
    }
    let p_hash = drive(
        records,
        ops,
        value_bytes,
        |k| {
            if let Some(v) = pm.get_value(&k.to_string()) {
                let blob = PBytes::resurrect(&rt, v.addr());
                std::hint::black_box(blob.to_vec().len());
            }
        },
        |k, v| {
            let b = PBytes::new(&rt, v).expect("blob");
            if let Ok(Some(old)) = pm.put(k.to_string(), b.addr()) {
                rt.free_addr(old);
            }
        },
    );
    emit("PStringHashMap (J-PDT)", p_hash, Some(v_hash_total));

    // Tree maps.
    let bt = std::cell::RefCell::new(BTreeMap::<String, Vec<u8>>::new());
    for i in 0..records {
        bt.borrow_mut().insert(record_key(i), vec![0u8; value_bytes]);
    }
    let v_tree = drive(
        records,
        ops,
        value_bytes,
        |k| {
            if let Some(v) = bt.borrow().get(k) {
                std::hint::black_box(v.len());
            }
        },
        |k, v| {
            bt.borrow_mut().insert(k.to_string(), v.to_vec());
        },
    );
    let v_tree_total = emit("TreeMap (volatile)", v_tree, None);

    let pt = PStringTreeMap::new(&rt).expect("map");
    for i in 0..records {
        let b = PBytes::new(&rt, &vec![0u8; value_bytes]).expect("blob");
        pt.put(record_key(i), b.addr()).expect("put");
    }
    let p_tree = drive(
        records,
        ops,
        value_bytes,
        |k| {
            if let Some(v) = pt.get_value(&k.to_string()) {
                std::hint::black_box(PBytes::resurrect(&rt, v.addr()).to_vec().len());
            }
        },
        |k, v| {
            let b = PBytes::new(&rt, v).expect("blob");
            if let Ok(Some(old)) = pt.put(k.to_string(), b.addr()) {
                rt.free_addr(old);
            }
        },
    );
    emit("PStringTreeMap (J-PDT)", p_tree, Some(v_tree_total));

    // Skip-list maps.
    let sl = std::cell::RefCell::new(SkipListMap::<String, Vec<u8>>::new());
    for i in 0..records {
        sl.borrow_mut().insert(record_key(i), vec![0u8; value_bytes]);
    }
    let v_skip = drive(
        records,
        ops,
        value_bytes,
        |k| {
            if let Some(v) = sl.borrow().get(&k.to_string()) {
                std::hint::black_box(v.len());
            }
        },
        |k, v| {
            sl.borrow_mut().insert(k.to_string(), v.to_vec());
        },
    );
    let v_skip_total = emit("SkipListMap (volatile)", v_skip, None);

    let ps = PStringSkipMap::new(&rt).expect("map");
    for i in 0..records {
        let b = PBytes::new(&rt, &vec![0u8; value_bytes]).expect("blob");
        ps.put(record_key(i), b.addr()).expect("put");
    }
    let p_skip = drive(
        records,
        ops,
        value_bytes,
        |k| {
            if let Some(v) = ps.get_value(&k.to_string()) {
                std::hint::black_box(PBytes::resurrect(&rt, v.addr()).to_vec().len());
            }
        },
        |k, v| {
            let b = PBytes::new(&rt, v).expect("blob");
            if let Ok(Some(old)) = ps.put(k.to_string(), b.addr()) {
                rt.free_addr(old);
            }
        },
    );
    emit("PStringSkipMap (J-PDT)", p_skip, Some(v_skip_total));

    table.print();
    let path = write_csv(
        &out,
        "fig12_pdt_vs_volatile",
        "type,completion_s,read_s,update_s",
        &rows,
    );
    println!("wrote {}", path.display());
}
