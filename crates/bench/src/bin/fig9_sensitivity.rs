//! Figure 9 regenerator: sensitivity of J-PDT vs FS to (a) cache ratio,
//! (b) record count, (c) field count and (d) record size — mean YCSB-A
//! read and update latencies.
//!
//! Paper result: J-PDT is nearly flat everywhere; FS reads improve sharply
//! with cache ratio (32.5 µs → 0.8 µs) and degrade by orders of magnitude
//! with record composition/size.
//!
//! Flags: `--part a|b|c|d|all` (default all), `--ops` (default 20000),
//! `--out results`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use jnvm_bench::{make_grid, write_csv, Args, BackendKind, GridClient, Table};
use jnvm_ycsb::{run_load, run_workload, Workload};

struct Point {
    label: String,
    jpdt_read_us: f64,
    jpdt_update_us: f64,
    fs_read_us: f64,
    fs_update_us: f64,
}

fn run_point(
    label: &str,
    records: u64,
    field_count: usize,
    field_len: usize,
    cache_ratio: f64,
    ops: u64,
    optane: bool,
) -> Point {
    let mut vals = Vec::new();
    for kind in [BackendKind::Jpdt, BackendKind::Fs] {
        let ratio = if kind == BackendKind::Jpdt { 0.0 } else { cache_ratio };
        let setup = make_grid(kind, records, field_count, field_len, ratio, optane);
        let mut spec = Workload::A.spec(records, ops);
        spec.field_count = field_count;
        spec.field_len = field_len;
        run_load(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
        let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
        vals.push((
            report.reads.mean() / 1e3,
            report.updates.mean() / 1e3,
        ));
    }
    Point {
        label: label.to_string(),
        jpdt_read_us: vals[0].0,
        jpdt_update_us: vals[0].1,
        fs_read_us: vals[1].0,
        fs_update_us: vals[1].1,
    }
}

fn emit(part: &str, title: &str, points: Vec<Point>, out: &Path) {
    println!("\nFigure 9{part}: {title}");
    let mut table = Table::new(&[
        "point",
        "read J-PDT",
        "read FS",
        "update J-PDT",
        "update FS",
    ]);
    let mut rows = Vec::new();
    for p in &points {
        let us = |x: f64| format!("{x:.1} us");
        table.row(&[
            p.label.clone(),
            us(p.jpdt_read_us),
            us(p.fs_read_us),
            us(p.jpdt_update_us),
            us(p.fs_update_us),
        ]);
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.2}",
            p.label, p.jpdt_read_us, p.fs_read_us, p.jpdt_update_us, p.fs_update_us
        ));
    }
    table.print();
    let path = write_csv(
        out,
        &format!("fig9{part}_sensitivity"),
        "point,jpdt_read_us,fs_read_us,jpdt_update_us,fs_update_us",
        &rows,
    );
    println!("wrote {}", path.display());
}

fn main() {
    let args = Args::parse();
    let part = args.get_or("part", "all".to_string());
    let ops: u64 = args.get_or("ops", 20_000);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let optane = !args.has("no-latency");

    if part == "a" || part == "all" {
        // (a) cache ratio sweep, fixed 10x100B records.
        let records = args.get_or("records", 20_000u64);
        let points = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
            .iter()
            .map(|r| {
                run_point(
                    &format!("{:.0}%", r * 100.0),
                    records,
                    10,
                    100,
                    *r,
                    ops,
                    optane,
                )
            })
            .collect();
        emit("a", "cache ratio", points, &out);
    }
    if part == "b" || part == "all" {
        // (b) record count sweep (paper: 1e4..1e7, scaled /100).
        let points = [100u64, 1_000, 10_000, 100_000]
            .iter()
            .map(|n| run_point(&format!("{n}"), *n, 10, 100, 0.1, ops, optane))
            .collect();
        emit("b", "number of records", points, &out);
    }
    if part == "c" || part == "all" {
        // (c) field count sweep at constant dataset size.
        let dataset = args.get_or("dataset-bytes", 10_000_000u64);
        let points = [10usize, 100, 1000]
            .iter()
            .map(|fc| {
                let records = (dataset / (*fc as u64 * 100)).max(10);
                run_point(&format!("{fc}"), records, *fc, 100, 0.1, ops, optane)
            })
            .collect();
        emit("c", "fields per record", points, &out);
    }
    if part == "d" || part == "all" {
        // (d) record size sweep at constant dataset size (1KB..1MB).
        let dataset = args.get_or("dataset-bytes", 10_000_000u64);
        let points = [(1u64, "1KB"), (10, "10KB"), (100, "100KB"), (1000, "1MB")]
            .iter()
            .map(|(kb, label)| {
                let field_len = (*kb as usize) * 100;
                let records = (dataset / (kb * 1000)).max(4);
                run_point(label, records, 10, field_len, 0.1, ops.min(4000), optane)
            })
            .collect();
        emit("d", "record size", points, &out);
    }
}
