//! Figure 10 regenerator: multi-threaded YCSB-A and YCSB-C throughput for
//! J-PDT, FS and Volatile as client threads grow.
//!
//! Paper result: J-PDT's peak at least matches Volatile (proxies introduce
//! no scalability bottleneck); FS saturates > 5x lower.
//!
//! Flags: `--records` (default 10000 = paper 1M / 100), `--ops` (default
//! 200000), `--threads 1,2,4,8,12,16,20`, `--out results`.
//!
//! `--crashsim` runs a small multi-threaded sanity pass on a CrashSim pool
//! instead: the YCSB-A mix over J-PDT, a simulated power failure, and a
//! recovery check. Throughput numbers from that mode are meaningless (the
//! crash simulator tracks per-line persistence state); it exists so the
//! bench workload itself is exercised under the durability checker.

use std::path::PathBuf;
use std::sync::Arc;

use jnvm_bench::{make_grid, write_csv, Args, BackendKind, GridClient, Table};
use jnvm_ycsb::{run_load, run_workload, Workload};

/// `--crashsim`: drive the multi-threaded YCSB-A mix against a J-PDT grid
/// on a crash-simulating device, pull the plug, and recover.
fn crashsim_sanity(records: u64, ops: u64, threads: usize) {
    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_kvstore::{register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend};
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};

    println!(
        "crashsim sanity: {records} records, {ops} YCSB-A ops, {threads} thread(s) \
         on a crash-simulating pool"
    );
    let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool creation");
    let be = Arc::new(JnvmBackend::create(&rt, 64, false).expect("backend"));
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let mut spec = Workload::A.spec(records, ops);
    spec.threads = threads;
    run_load(&spec, |_| GridClient::new(Arc::clone(&grid)));
    let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&grid)));
    println!(
        "workload done ({} ops; throughput under the checker is not meaningful)",
        report.total.count()
    );
    pmem.psync();
    drop(grid);
    drop(be);
    drop(rt);
    pmem.crash(&CrashPolicy::strict()).expect("simulated power failure");
    let (rt2, recovery) = register_kvstore(JnvmBuilder::new())
        .open(Arc::clone(&pmem))
        .expect("recovery");
    let be2 = JnvmBackend::open(&rt2, false).expect("backend reopen");
    assert_eq!(
        be2.len() as u64,
        records,
        "record count changed across the crash (YCSB-A never inserts or removes)"
    );
    println!(
        "recovered: {} records, {} live blocks, {} nullified refs — OK",
        be2.len(),
        recovery.live_blocks,
        recovery.nullified_refs
    );
}

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 10_000);
    let ops: u64 = args.get_or("ops", 200_000);
    let threads: Vec<usize> = args
        .get_or("threads", "1,2,4,8,12,16,20".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let optane = !args.has("no-latency");
    if args.has("crashsim") {
        let t = threads.iter().copied().max().unwrap_or(4).min(8);
        crashsim_sanity(records.min(2_000), ops.min(20_000), t);
        return;
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Figure 10 (host has {cpus} CPU(s); the paper's testbed has 80 cores — \
         absolute scaling requires cores, the J-PDT-vs-FS gap does not)"
    );
    for w in [Workload::A, Workload::C] {
        println!("\nFigure 10 / YCSB-{}:", w.label());
        let mut table = Table::new(&["threads", "J-PDT", "FS", "Volatile"]);
        let mut rows = Vec::new();
        for t in &threads {
            let mut tputs = Vec::new();
            for kind in [BackendKind::Jpdt, BackendKind::Fs, BackendKind::Volatile] {
                let ratio = if kind == BackendKind::Fs { 0.1 } else { 0.0 };
                let setup = make_grid(kind, records, 10, 100, ratio, optane);
                let mut spec = w.spec(records, ops);
                spec.threads = *t;
                run_load(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
                let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
                tputs.push(report.throughput);
            }
            let fmt = |x: f64| format!("{:.2} Mops/s", x / 1e6);
            table.row(&[
                t.to_string(),
                fmt(tputs[0]),
                fmt(tputs[1]),
                fmt(tputs[2]),
            ]);
            rows.push(format!("{},{:.0},{:.0},{:.0}", t, tputs[0], tputs[1], tputs[2]));
        }
        table.print();
        let path = write_csv(
            &out,
            &format!("fig10_ycsb_{}", w.label().to_lowercase()),
            "threads,jpdt,fs,volatile",
            &rows,
        );
        println!("wrote {}", path.display());
    }
}
