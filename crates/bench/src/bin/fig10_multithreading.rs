//! Figure 10 regenerator: multi-threaded YCSB-A and YCSB-C throughput for
//! J-PDT, FS and Volatile as client threads grow.
//!
//! Paper result: J-PDT's peak at least matches Volatile (proxies introduce
//! no scalability bottleneck); FS saturates > 5x lower.
//!
//! Flags: `--records` (default 10000 = paper 1M / 100), `--ops` (default
//! 200000), `--threads 1,2,4,8,12,16,20`, `--out results`.

use std::path::PathBuf;
use std::sync::Arc;

use jnvm_bench::{make_grid, write_csv, Args, BackendKind, GridClient, Table};
use jnvm_ycsb::{run_load, run_workload, Workload};

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 10_000);
    let ops: u64 = args.get_or("ops", 200_000);
    let threads: Vec<usize> = args
        .get_or("threads", "1,2,4,8,12,16,20".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let optane = !args.has("no-latency");

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Figure 10 (host has {cpus} CPU(s); the paper's testbed has 80 cores — \
         absolute scaling requires cores, the J-PDT-vs-FS gap does not)"
    );
    for w in [Workload::A, Workload::C] {
        println!("\nFigure 10 / YCSB-{}:", w.label());
        let mut table = Table::new(&["threads", "J-PDT", "FS", "Volatile"]);
        let mut rows = Vec::new();
        for t in &threads {
            let mut tputs = Vec::new();
            for kind in [BackendKind::Jpdt, BackendKind::Fs, BackendKind::Volatile] {
                let ratio = if kind == BackendKind::Fs { 0.1 } else { 0.0 };
                let setup = make_grid(kind, records, 10, 100, ratio, optane);
                let mut spec = w.spec(records, ops);
                spec.threads = *t;
                run_load(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
                let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
                tputs.push(report.throughput);
            }
            let fmt = |x: f64| format!("{:.2} Mops/s", x / 1e6);
            table.row(&[
                t.to_string(),
                fmt(tputs[0]),
                fmt(tputs[1]),
                fmt(tputs[2]),
            ]);
            rows.push(format!("{},{:.0},{:.0},{:.0}", t, tputs[0], tputs[1], tputs[2]));
        }
        table.print();
        let path = write_csv(
            &out,
            &format!("fig10_ycsb_{}", w.label().to_lowercase()),
            "threads,jpdt,fs,volatile",
            &rows,
        );
        println!("wrote {}", path.display());
    }
}
