//! Table 1 regenerator: NVMM-ready data stores rarely delete persistent
//! objects.
//!
//! The paper's table is a static count over seven external code bases; it
//! cannot be re-measured without those trees, so this binary (a) reprints
//! the paper's numbers and (b) runs the same measurement on *this*
//! repository's data-store code (the kvstore backends and the TPC-B bank),
//! counting explicit persistent-deletion call sites.
//!
//! Flags: `--root <workspace root>` (default: auto-detected).

use std::path::{Path, PathBuf};

use jnvm_bench::{Args, Table};

/// Patterns that mark an explicit persistent-object deletion site in this
/// code base (`JNVM.free` analogues).
const DELETE_PATTERNS: [&str; 4] = [".free_addr(", "free_deep(", ".free()", ".delete_file("];

fn count_sites(dir: &Path) -> (u64, u64) {
    let mut sites = 0;
    let mut sloc = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            let (s, l) = count_sites(&p);
            sites += s;
            sloc += l;
        } else if p.extension().is_some_and(|x| x == "rs") {
            let Ok(content) = std::fs::read_to_string(&p) else {
                continue;
            };
            let mut in_tests = false;
            for line in content.lines() {
                let t = line.trim();
                if t.starts_with("#[cfg(test)]") {
                    in_tests = true;
                }
                if t.is_empty() || t.starts_with("//") || in_tests {
                    continue;
                }
                sloc += 1;
                if DELETE_PATTERNS.iter().any(|pat| t.contains(pat)) {
                    sites += 1;
                }
            }
        }
    }
    (sites, sloc)
}

fn main() {
    let args = Args::parse();
    let root: PathBuf = args
        .get("root")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Walk up from the executable/cwd until Cargo.toml + crates/.
            let mut d = std::env::current_dir().expect("cwd");
            loop {
                if d.join("crates").is_dir() && d.join("Cargo.toml").is_file() {
                    break d;
                }
                if !d.pop() {
                    break std::env::current_dir().expect("cwd");
                }
            }
        });

    println!("Table 1: deletion sites in NVMM-ready data stores\n");
    println!("(a) Paper's measurements (static counts over external trees):");
    let mut paper = Table::new(&["data store", "SLOC", "# deletion sites"]);
    for (store, sloc, sites) in [
        ("infinispan (paper)", "603,800", "4"),
        ("cassandra-pmem", "334,300", "1"),
        ("pmem-rocksdb", "314,900", "4"),
        ("pmem-redis", "55,900", "1"),
        ("pmemkv", "25,600", "2"),
        ("go-redis-pmem", "8,400", "2"),
        ("pmse (MongoDB)", "4,800", "3"),
    ] {
        paper.row(&[store.into(), sloc.into(), sites.into()]);
    }
    paper.print();

    println!("\n(b) The same measurement over this reproduction's stores:");
    let mut ours = Table::new(&["component", "SLOC", "# deletion sites"]);
    for (label, rel) in [
        ("kvstore backends (grid)", "crates/kvstore/src"),
        ("TPC-B bank", "crates/tpcb/src"),
        ("J-PDT library", "crates/jpdt/src"),
    ] {
        let (sites, sloc) = count_sites(&root.join(rel));
        ours.row(&[label.into(), sloc.to_string(), sites.to_string()]);
    }
    ours.print();
    println!(
        "\nConclusion under test: explicit deletion is rare and concentrated\n\
         in a handful of well-defined paths, so a runtime GC for persistent\n\
         objects buys little (§2.2.2)."
    );
}
