//! Figure 8 regenerator: the price of accessing NVMM through a file
//! system — YCSB-A completion time vs record size for Volatile, NullFS,
//! TmpFS and FS.
//!
//! Paper result: the three file backends cluster together at 2.11–6.26x
//! the Volatile baseline, NullFS barely faster than FS — marshalling, not
//! the file system, is the cost.
//!
//! Flags: `--records` (default 4000), `--ops` (default 20000),
//! `--sizes 1,2,4,6,8,10` (record KB), `--out results`.

use std::path::PathBuf;
use std::sync::Arc;

use jnvm_bench::{make_grid, write_csv, Args, BackendKind, GridClient, Table};
use jnvm_ycsb::{run_load, run_workload, Workload};

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 4_000);
    let ops: u64 = args.get_or("ops", 20_000);
    let sizes: Vec<u64> = args
        .get_or("sizes", "1,2,4,6,8,10".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let optane = !args.has("no-latency");

    println!("Figure 8: marshalling cost vs record size ({records} records, {ops} ops)");
    let mut table = Table::new(&["record", "Volatile", "NullFS", "TmpFS", "FS", "FS/Volatile"]);
    let mut rows = Vec::new();
    for kb in &sizes {
        // 10 fields, each kb*100 bytes => kb KB records, as in the paper.
        let field_len = (*kb as usize) * 100;
        let mut times = Vec::new();
        for kind in BackendKind::FIGURE8 {
            let setup = make_grid(kind, records, 10, field_len, 0.1, optane);
            let spec = {
                let mut s = Workload::A.spec(records, ops);
                s.field_len = field_len;
                s
            };
            run_load(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
            let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
            times.push(report.completion.as_secs_f64());
        }
        let fmt = |x: f64| format!("{x:.2} s");
        table.row(&[
            format!("{kb} KB"),
            fmt(times[0]),
            fmt(times[1]),
            fmt(times[2]),
            fmt(times[3]),
            format!("{:.2}x", times[3] / times[0]),
        ]);
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            kb, times[0], times[1], times[2], times[3]
        ));
    }
    table.print();
    let path = write_csv(
        &out,
        "fig8_record_size",
        "record_kb,volatile,nullfs,tmpfs,fs",
        &rows,
    );
    println!("wrote {}", path.display());
}
