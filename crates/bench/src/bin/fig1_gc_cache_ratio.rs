//! Figure 1 regenerator: the cost of G1-style garbage collection as the
//! Infinispan cache ratio grows, under YCSB-F (the motivation experiment
//! of §2.2.1).
//!
//! Paper result: a 100 % cache roughly doubles completion time — 69 % of
//! the time goes to GC — and the 0.9999-percentile latency is up to 50x
//! worse than with a 1 % cache.
//!
//! Runs on the managed-heap simulator (`jnvm-gcsim`): GC work is real
//! graph traversal; FS work is a modeled constant. Scaled 1/100 by
//! default (paper: 15 M objects).
//!
//! Flags: `--records` (default 150000), `--ops` (default 600000),
//! `--out results`.

use std::path::PathBuf;
use std::time::Instant;

use jnvm_bench::{write_csv, Args, Table};
use jnvm_gcsim::{CachedFsStore, FsCost, GenConfig};
use jnvm_ycsb::{record_key, Generator, Histogram, ScrambledZipfianGenerator};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 150_000);
    let ops: u64 = args.get_or("ops", 600_000);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));

    println!("Figure 1: G1-style GC vs Infinispan cache ratio ({records} records, {ops} YCSB-F ops)");
    let mut table = Table::new(&[
        "cache",
        "completion",
        "gc time",
        "gc share",
        "p50",
        "p99.99",
        "max pause",
    ]);
    let mut rows = Vec::new();
    // The paper tunes the Java heap per configuration: 20, 30, 100 GB for
    // 1 %, 10 %, 100 % cache. Scaled 1/100 and converted into G1's IHOP
    // (45 % of heap) as the old-collection trigger.
    for (ratio, heap_gb) in [(0.01, 20.0), (0.10, 30.0), (1.00, 100.0)] {
        let heap_bytes = (heap_gb / 100.0 * 1e9) as u64;
        let mut store = CachedFsStore::new(
            (records as f64 * ratio) as usize,
            10,
            100,
            GenConfig {
                eden_bytes: 8 << 20,
                old_trigger_factor: 1.4,
                min_old_bytes: 8 << 20,
                old_trigger_bytes: (heap_bytes as f64 * 0.45) as u64,
                evac_ns_per_obj: 300,
            },
            FsCost {
                read_ns: 4_000,
                write_ns: 5_000,
            },
        );
        store.temps_per_op = 4;
        store.survivor_window = 4_000;
        // Load: touch every record once so the cache warms to capacity.
        for i in 0..records {
            store.read(&record_key(i));
        }
        let mut gen = ScrambledZipfianGenerator::new(records, 3);
        let mut rng = SmallRng::seed_from_u64(17);
        let gc_before = store.gc_time();
        let mut hist = Histogram::new();
        let start = Instant::now();
        for _ in 0..ops {
            let key = record_key(gen.next());
            let t = Instant::now();
            if rng.random::<bool>() {
                store.read(&key);
            } else {
                store.rmw(&key);
            }
            hist.record(t.elapsed().as_nanos() as u64);
        }
        let completion = start.elapsed().as_secs_f64();
        let gc = (store.gc_time() - gc_before).as_secs_f64();
        let max_pause = store
            .gc()
            .pauses
            .iter()
            .map(|(_, d)| d.as_secs_f64())
            .fold(0.0f64, f64::max);
        let s = hist.summary();
        table.row(&[
            format!("{:.0}%", ratio * 100.0),
            format!("{completion:.2} s"),
            format!("{gc:.2} s"),
            format!("{:.0}%", gc / completion * 100.0),
            format!("{:.1} us", s.p50_ns as f64 / 1e3),
            format!("{:.1} us", s.p9999_ns as f64 / 1e3),
            format!("{:.1} ms", max_pause * 1e3),
        ]);
        rows.push(format!(
            "{},{:.4},{:.4},{},{},{:.6}",
            ratio, completion, gc, s.p50_ns, s.p9999_ns, max_pause
        ));
    }
    table.print();
    let path = write_csv(
        &out,
        "fig1_gc_cache_ratio",
        "cache_ratio,completion_s,gc_s,p50_ns,p9999_ns,max_pause_s",
        &rows,
    );
    println!("wrote {}", path.display());
}
