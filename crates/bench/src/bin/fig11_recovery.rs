//! Figure 11 regenerator: crash/recovery throughput timeline of the
//! TPC-B-like bank for Volatile, FS, J-PFA and J-PFA-nogc.
//!
//! Paper result: Volatile restarts first (2.4 s, losing everything), then
//! J-PFA-nogc, then J-PFA (the gap is the recovery-GC graph traversal),
//! and FS last (28.8 s, cache reload). The reproduction preserves the
//! ordering and attributes the J-PFA/nogc gap to the measured recovery
//! pass.
//!
//! Flags: `--accounts` (default 100000 = paper 10M / 100), `--threads`,
//! `--before-secs`, `--after-secs`, `--out results`.

use std::path::PathBuf;
use std::time::Duration;

use jnvm_bench::{write_csv, Args, Table};
use jnvm_tpcb::{run_timeline, BankKind, TimelineConfig};

fn main() {
    let args = Args::parse();
    let cfg = TimelineConfig {
        accounts: args.get_or("accounts", 100_000),
        threads: args.get_or("threads", 4),
        run_before: Duration::from_secs_f64(args.get_or("before-secs", 3.0)),
        run_after: Duration::from_secs_f64(args.get_or("after-secs", 3.0)),
        pool_bytes: args.get_or("pool-bytes", 2u64 << 30),
        ..TimelineConfig::default()
    };
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));

    println!(
        "Figure 11: recovery timeline ({} accounts, {} threads)",
        cfg.accounts, cfg.threads
    );
    let mut table = Table::new(&[
        "design",
        "restart",
        "tput before",
        "tput after",
        "money conserved",
        "gc pass",
    ]);
    let mut rows = Vec::new();
    for kind in [
        BankKind::Volatile,
        BankKind::JpfaNogc,
        BankKind::Jpfa,
        BankKind::Fs,
    ] {
        let r = run_timeline(kind, &cfg);
        let gc = r
            .recovery
            .map(|rec| format!("{:.3} s ({} live objs)", rec.gc_time.as_secs_f64(), rec.live_objects))
            .unwrap_or_else(|| "-".to_string());
        table.row(&[
            kind.label().to_string(),
            format!("{:.3} s", r.restart_duration),
            format!("{:.1} Kops/s", r.nominal_before / 1e3),
            format!("{:.1} Kops/s", r.nominal_after / 1e3),
            r.money_conserved.to_string(),
            gc,
        ]);
        // Per-design timeline series.
        let series: Vec<String> = r
            .buckets
            .iter()
            .map(|(t, n)| format!("{t:.2},{n}"))
            .collect();
        write_csv(
            &out,
            &format!("fig11_timeline_{}", kind.label()),
            "t_sec,ops",
            &series,
        );
        rows.push(format!(
            "{},{:.4},{:.0},{:.0}",
            kind.label(),
            r.restart_duration,
            r.nominal_before,
            r.nominal_after
        ));
    }
    table.print();
    let path = write_csv(
        &out,
        "fig11_recovery_summary",
        "design,restart_s,tput_before,tput_after",
        &rows,
    );
    println!("wrote {}", path.display());
}
