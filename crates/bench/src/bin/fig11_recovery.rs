//! Figure 11 regenerator: crash/recovery throughput timeline of the
//! TPC-B-like bank for Volatile, FS, J-PFA and J-PFA-nogc — plus the
//! recovery-GC thread-scaling section for the parallel recovery engine.
//!
//! Paper result: Volatile restarts first (2.4 s, losing everything), then
//! J-PFA-nogc, then J-PFA (the gap is the recovery-GC graph traversal),
//! and FS last (28.8 s, cache reload). The reproduction preserves the
//! ordering and attributes the J-PFA/nogc gap to the measured recovery
//! pass.
//!
//! The scaling section goes beyond the paper (which recovers on one
//! thread): it builds a >= 1M-object bank heap under Optane-like latency
//! and recovers it with 1, 2, 4 and 8 worker threads. Replay, mark and
//! sweep all parallelize, so the recovery-GC pass is expected to reach
//! at least 2x at 4 threads; every thread count produces the same
//! recovered heap (see `tests/recovery_equivalence.rs`).
//!
//! Flags: `--accounts` (default 100000 = paper 10M / 100), `--threads`,
//! `--recovery-threads` (restart recovery workers for the timeline,
//! default 1), `--before-secs`, `--after-secs`, `--scale-objects`
//! (default 1000000; the scaling heap), `--no-scale` (skip the scaling
//! section), `--out results`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use jnvm_bench::{write_csv, Args, Table};
use jnvm_heap::HeapConfig;
use jnvm_pmem::{Pmem, PmemConfig};
use jnvm_tpcb::{register_tpcb, run_timeline, BankKind, JnvmBank, TimelineConfig};
use jnvm::{JnvmBuilder, RecoveryOptions};

fn timeline_section(args: &Args, out: &Path) {
    let cfg = TimelineConfig {
        accounts: args.get_or("accounts", 100_000),
        threads: args.get_or("threads", 4),
        recovery_threads: args.get_or("recovery-threads", 1),
        run_before: Duration::from_secs_f64(args.get_or("before-secs", 3.0)),
        run_after: Duration::from_secs_f64(args.get_or("after-secs", 3.0)),
        pool_bytes: args.get_or("pool-bytes", 2u64 << 30),
        ..TimelineConfig::default()
    };

    println!(
        "Figure 11: recovery timeline ({} accounts, {} threads, {} recovery threads)",
        cfg.accounts, cfg.threads, cfg.recovery_threads
    );
    let mut table = Table::new(&[
        "design",
        "restart",
        "tput before",
        "tput after",
        "money conserved",
        "gc pass",
    ]);
    let mut rows = Vec::new();
    for kind in [
        BankKind::Volatile,
        BankKind::JpfaNogc,
        BankKind::Jpfa,
        BankKind::Fs,
    ] {
        let r = run_timeline(kind, &cfg);
        let gc = r
            .recovery
            .map(|rec| format!("{:.3} s ({} live objs)", rec.gc_time.as_secs_f64(), rec.live_objects))
            .unwrap_or_else(|| "-".to_string());
        table.row(&[
            kind.label().to_string(),
            format!("{:.3} s", r.restart_duration),
            format!("{:.1} Kops/s", r.nominal_before / 1e3),
            format!("{:.1} Kops/s", r.nominal_after / 1e3),
            r.money_conserved.to_string(),
            gc,
        ]);
        // Per-design timeline series.
        let series: Vec<String> = r
            .buckets
            .iter()
            .map(|(t, n)| format!("{t:.2},{n}"))
            .collect();
        write_csv(
            out,
            &format!("fig11_timeline_{}", kind.label()),
            "t_sec,ops",
            &series,
        );
        rows.push(format!(
            "{},{:.4},{:.0},{:.0}",
            kind.label(),
            r.restart_duration,
            r.nominal_before,
            r.nominal_after
        ));
    }
    table.print();
    let path = write_csv(
        out,
        "fig11_recovery_summary",
        "design,restart_s,tput_before,tput_after",
        &rows,
    );
    println!("wrote {}", path.display());
}

/// Recovery-GC thread scaling on a large heap: one object per account, an
/// Optane-latency device, full recovery at 1/2/4/8 workers.
fn scaling_section(args: &Args, out: &Path) {
    let objects: u64 = args.get_or("scale-objects", 1_000_000);
    let pool_bytes: u64 = args.get_or("scale-pool-bytes", 2u64 << 30);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nRecovery-GC thread scaling ({objects} objects, Optane-like latency, {cores} host cores)");
    println!(
        "speedup is on the modeled critical path (slowest worker's charged device time):\n\
         the busy-wait latency model time-shares host cores, so wall clock only shows\n\
         parallel speedup when the host has a core per recovery worker"
    );

    let pmem = Pmem::new(PmemConfig::optane(pool_bytes));
    {
        let rt = register_tpcb(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .expect("pool creation");
        let bank = JnvmBank::create(&rt, objects, 100).expect("bank");
        rt.psync();
        drop(bank);
    }

    let mut table = Table::new(&[
        "threads",
        "mark model",
        "sweep model",
        "gc model",
        "speedup",
        "gc wall",
        "mark worker device ms",
    ]);
    let mut rows = Vec::new();
    let mut gc_base = None;
    for threads in [1usize, 2, 4, 8] {
        let (rt, rep) = register_tpcb(JnvmBuilder::new())
            .open_with_options(Arc::clone(&pmem), RecoveryOptions::parallel(threads))
            .expect("recovery");
        let gc_wall = rep.gc_time.as_secs_f64();
        let gc_model = rep.modeled_gc_time().as_secs_f64();
        let base = *gc_base.get_or_insert(gc_model);
        let speedup = base / gc_model;
        table.row(&[
            threads.to_string(),
            format!("{:.1} ms", rep.modeled_mark_time.as_secs_f64() * 1e3),
            format!("{:.1} ms", rep.modeled_sweep_time.as_secs_f64() * 1e3),
            format!("{:.1} ms", gc_model * 1e3),
            format!("{speedup:.2}x"),
            format!("{:.1} ms", gc_wall * 1e3),
            rep.mark_thread_device_times
                .iter()
                .map(|t| format!("{:.0}", t.as_secs_f64() * 1e3))
                .collect::<Vec<_>>()
                .join("/"),
        ]);
        rows.push(format!(
            "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3}",
            threads,
            rep.modeled_log_time.as_secs_f64(),
            rep.modeled_mark_time.as_secs_f64(),
            rep.modeled_sweep_time.as_secs_f64(),
            gc_model,
            gc_wall,
            speedup
        ));
        drop(rt);
    }
    table.print();
    let path = write_csv(
        out,
        "fig11_recovery_scaling",
        "threads,replay_model_s,mark_model_s,sweep_model_s,gc_model_s,gc_wall_s,speedup",
        &rows,
    );
    println!("wrote {}", path.display());
}

fn main() {
    let args = Args::parse();
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    timeline_section(&args, &out);
    if !args.has("no-scale") {
        scaling_section(&args, &out);
    }
}
