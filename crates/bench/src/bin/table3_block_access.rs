//! Table 3 regenerator: throughput of sequential/random reads/writes of
//! persistent 256-B blocks, J-NVM (proxy path) vs C (raw device access).
//!
//! Paper result: J-NVM reaches near-native speed — at most 24 % slower
//! than C, except random reads (2.8x slower: proxy resurrection is in the
//! random-access path).
//!
//! With `--sweep`, additionally runs the §5.3.5 block-size ablation
//! (64 B – 1 KB blocks).
//!
//! Flags: `--blocks` (default 100000), `--out results`, `--sweep`.

use std::path::PathBuf;
use std::time::Instant;

use jnvm::{JnvmBuilder, Proxy};
use jnvm_bench::{write_csv, Args, Table};
use jnvm_heap::HeapConfig;
use jnvm_jpdt::{register_jpdt, PLongArray};
use jnvm_pmem::{Pmem, PmemConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

struct Bench {
    rt: jnvm::Jnvm,
    addrs: Vec<u64>,
    payload: u64,
}

fn setup(blocks: u64, block_size: u64, optane: bool) -> Bench {
    let pool = blocks * block_size * 3 + (64 << 20);
    let pmem = Pmem::new(if optane {
        PmemConfig::optane(pool)
    } else {
        PmemConfig::perf(pool)
    });
    let rt = register_jpdt(JnvmBuilder::new())
        .create(pmem, HeapConfig { block_size })
        .expect("pool");
    let payload = rt.heap().payload_size();
    let id = rt.registry().id_of::<PLongArray>().expect("registered");
    let addrs: Vec<u64> = (0..blocks)
        .map(|_| {
            let p = Proxy::alloc(&rt, id, payload);
            p.write_u64(0, (payload - 8) / 8);
            p.pwb();
            p.validate();
            p.addr()
        })
        .collect();
    rt.pmem().pfence();
    Bench { rt, addrs, payload }
}

/// GB/s over `bytes` in `secs`.
fn gbps(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / secs / 1e9
}

fn run_case(b: &Bench, order: &[u64], write: bool, jnvm_path: bool) -> f64 {
    let pmem = b.rt.pmem();
    let payload = b.payload;
    let mut buf = vec![0u8; payload as usize];
    let start = Instant::now();
    if jnvm_path {
        for addr in order {
            let p = Proxy::open(&b.rt, *addr);
            if write {
                p.write_bytes(0, &buf);
                p.pwb();
                pmem.pfence();
            } else {
                p.read_bytes(0, &mut buf);
            }
            std::hint::black_box(&buf);
        }
    } else {
        // "C": raw device access, no proxy, no mediation.
        for addr in order {
            if write {
                pmem.write_bytes(addr + 8, &buf);
                pmem.pwb_range(addr + 8, payload);
                pmem.pfence();
            } else {
                pmem.read_bytes(addr + 8, &mut buf);
            }
            std::hint::black_box(&buf);
        }
    }
    gbps(order.len() as u64 * payload, start.elapsed().as_secs_f64())
}

fn measure(blocks: u64, block_size: u64, optane: bool) -> [f64; 8] {
    let b = setup(blocks, block_size, optane);
    let seq = b.addrs.clone();
    let mut random = b.addrs.clone();
    random.shuffle(&mut SmallRng::seed_from_u64(42));
    [
        run_case(&b, &seq, false, true),    // jnvm seq read
        run_case(&b, &seq, true, true),     // jnvm seq write
        run_case(&b, &random, false, true), // jnvm rand read
        run_case(&b, &random, true, true),  // jnvm rand write
        run_case(&b, &seq, false, false),   // C seq read
        run_case(&b, &seq, true, false),    // C seq write
        run_case(&b, &random, false, false),
        run_case(&b, &random, true, false),
    ]
}

fn main() {
    let args = Args::parse();
    let blocks: u64 = args.get_or("blocks", 100_000);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let optane = !args.has("no-latency");

    println!("Table 3: access to a persistent 256 B block ({blocks} blocks)");
    let m = measure(blocks, 256, optane);
    let mut table = Table::new(&["", "Seq Read", "Seq Write", "Rand Read", "Rand Write"]);
    let f = |x: f64| format!("{x:.2} GB/s");
    table.row(&["J-NVM".into(), f(m[0]), f(m[1]), f(m[2]), f(m[3])]);
    table.row(&["C".into(), f(m[4]), f(m[5]), f(m[6]), f(m[7])]);
    table.row(&[
        "C/J-NVM".into(),
        format!("{:.2}x", m[4] / m[0]),
        format!("{:.2}x", m[5] / m[1]),
        format!("{:.2}x", m[6] / m[2]),
        format!("{:.2}x", m[7] / m[3]),
    ]);
    table.print();
    let rows = vec![
        format!("jnvm,{:.4},{:.4},{:.4},{:.4}", m[0], m[1], m[2], m[3]),
        format!("c,{:.4},{:.4},{:.4},{:.4}", m[4], m[5], m[6], m[7]),
    ];
    let path = write_csv(
        &out,
        "table3_block_access",
        "path,seq_read_gbps,seq_write_gbps,rand_read_gbps,rand_write_gbps",
        &rows,
    );
    println!("wrote {}", path.display());

    if args.has("sweep") {
        println!("\nBlock-size ablation (§5.3.5):");
        let mut t = Table::new(&["block", "J-NVM seq read", "J-NVM rand write"]);
        let mut rows = Vec::new();
        for bs in [64u64, 128, 256, 512, 1024] {
            let m = measure(blocks.min(50_000), bs, optane);
            t.row(&[format!("{bs} B"), f(m[0]), f(m[3])]);
            rows.push(format!("{bs},{:.4},{:.4}", m[0], m[3]));
        }
        t.print();
        write_csv(&out, "table3_block_size_sweep", "block_bytes,seq_read_gbps,rand_write_gbps", &rows);
    }
}
