//! Run every table/figure regenerator at (scaled-down) default
//! parameters, writing all CSVs into `results/`.
//!
//! `--quick` shrinks every experiment further for a smoke pass.

use std::process::Command;

use jnvm_bench::Args;

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let experiments: Vec<(&str, Vec<String>)> = vec![
        (
            "fig1_gc_cache_ratio",
            if quick {
                vec!["--records", "20000", "--ops", "60000"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig2_gopmem_scaling",
            if quick {
                vec!["--ops", "60000", "--scale-records-per-gb", "2000"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        ("table1_deletion_sites", vec![]),
        (
            "fig7_ycsb_backends",
            if quick {
                vec!["--records", "4000", "--ops", "8000"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig8_record_size",
            if quick {
                vec!["--records", "1000", "--ops", "3000", "--sizes", "1,4,10"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig9_sensitivity",
            if quick {
                vec!["--ops", "4000"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig10_multithreading",
            if quick {
                vec!["--records", "4000", "--ops", "30000", "--threads", "1,4,8"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig11_recovery",
            if quick {
                vec![
                    "--accounts",
                    "20000",
                    "--before-secs",
                    "1",
                    "--after-secs",
                    "1",
                ]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "fig12_pdt_vs_volatile",
            if quick {
                vec!["--records", "4000", "--ops", "20000"]
            } else {
                vec![]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "table3_block_access",
            if quick {
                vec!["--blocks", "20000"]
            } else {
                vec!["--sweep"]
            }
            .into_iter()
            .map(String::from)
            .collect(),
        ),
    ];

    for (name, extra) in experiments {
        println!("\n=== {name} ===");
        let status = Command::new(exe_dir.join(name))
            .args(&extra)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
    println!("\nAll experiments completed; CSVs are under results/.");
}
