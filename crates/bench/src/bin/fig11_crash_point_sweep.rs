//! Figure 11 companion: exhaustive crash-point sweep of the failure-atomic
//! commit sequence (§4.2).
//!
//! Where `fig11_recovery` crashes the TPC-B bank once and times the
//! restart, this binary crashes a failure-atomic transfer at **every**
//! persistence-relevant operation (store / `pwb` / `pfence` / `psync`) via
//! the `jnvm-pmem` injection engine, re-opens the pool after each injected
//! power failure, and prints one row per crash point: which op the failure
//! replaced, which commit phase it landed in, what state recovery produced,
//! and whether any block leaked. The table makes the §4.2 protocol's
//! all-or-nothing boundary visible: every point before the commit record is
//! durable recovers the old state, every point after it the new one.
//!
//! Flags: `--transfers` (fa blocks in the workload, default 1),
//! `--out results`.

use std::path::PathBuf;
use std::sync::Arc;

use jnvm::{commit_phase, persistent_class, Jnvm, JnvmBuilder};
use jnvm_bench::{write_csv, Args, Table};
use jnvm_faultsim as faultsim;
use jnvm_heap::HeapConfig;
use jnvm_jpdt::register_jpdt;
use jnvm_pmem::{silence_crash_panics, CrashPolicy, FaultPlan, Pmem, PmemConfig};

persistent_class! {
    pub class Pair {
        val left, set_left: i64;
        val right, set_right: i64;
    }
}

struct Ctx {
    rt: Jnvm,
    p: Pair,
    transfers: usize,
}

fn setup(transfers: usize) -> (Arc<Pmem>, Ctx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let p = rt.fa(|| {
        let p = Pair::alloc_uninit(&rt);
        p.set_left(1600);
        p.set_right(400);
        rt.root_put("pair", &p).expect("root");
        p
    });
    // Warm-up transfer so the redo log is in steady state and every sweep
    // instance performs the identical op stream.
    rt.fa(|| {
        p.set_left(p.left() - 100);
        p.set_right(p.right() + 100);
    });
    pmem.psync();
    (pmem, Ctx { rt, p, transfers })
}

fn workload(ctx: &Ctx) {
    for _ in 0..ctx.transfers {
        ctx.rt.fa(|| {
            ctx.p.set_left(ctx.p.left() - 100);
            ctx.p.set_right(ctx.p.right() + 100);
        });
    }
}

fn recover(pmem: &Arc<Pmem>) -> (i64, i64, u64, u64) {
    let (rt, report) = register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .open(Arc::clone(pmem))
        .expect("recovery");
    let p = rt
        .root_get_as::<Pair>("pair")
        .expect("typed")
        .expect("pair survived");
    (p.left(), p.right(), report.replayed_logs, report.live_blocks)
}

fn main() {
    silence_crash_panics();
    let args = Args::parse();
    let transfers: usize = args.get_or("transfers", 1);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));

    let (total, trace) = faultsim::trace_ops(|| setup(transfers), workload);
    println!(
        "Crash-point sweep: {transfers} failure-atomic transfer(s), \
         {total} persistence-relevant ops"
    );

    let mut table = Table::new(&[
        "point",
        "op",
        "phase",
        "recovered",
        "replayed logs",
        "live blocks",
        "verdict",
    ]);
    let mut rows = Vec::new();
    let mut old_state = 0u64;
    let mut new_state = 0u64;
    let mut torn = 0u64;
    let summary = faultsim::sweep_all(
        FaultPlan::count().with_policy(CrashPolicy::strict()),
        || setup(transfers),
        workload,
        |pmem, report| {
            let phase = commit_phase();
            let (l, r, replayed, live) = recover(pmem);
            let verdict = if l + r != 2000 {
                torn += 1;
                "TORN"
            } else if (l, r) == (1500, 500) {
                old_state += 1;
                "old state"
            } else if (l, r) == (1500 - 100 * transfers as i64, 500 + 100 * transfers as i64) {
                new_state += 1;
                "new state"
            } else {
                // Multi-transfer sweeps recover intermediate prefixes.
                new_state += 1;
                "prefix state"
            };
            let op = trace
                .get(report.point as usize)
                .map(|t| t.op.name())
                .unwrap_or("?");
            table.row(&[
                report.point.to_string(),
                op.to_string(),
                phase.name().to_string(),
                format!("({l}, {r})"),
                replayed.to_string(),
                live.to_string(),
                verdict.to_string(),
            ]);
            rows.push(format!(
                "{},{},{},{},{},{},{}",
                report.point,
                op,
                phase.name(),
                l,
                r,
                replayed,
                live
            ));
        },
    );
    table.print();
    println!(
        "{} crash points: {} recover the old state, {} the new/prefix state, {} torn",
        summary.points_crashed, old_state, new_state, torn
    );
    if torn > 0 {
        println!("FAILURE: the commit sequence is not failure-atomic");
        std::process::exit(1);
    }
    let path = write_csv(
        &out,
        "fig11_crash_point_sweep",
        "point,op,phase,left,right,replayed_logs,live_blocks",
        &rows,
    );
    println!("wrote {}", path.display());
}
