//! Sanitizer overhead: YCSB-A throughput on the CrashSim device with the
//! persist-ordering sanitizer Off, in Log mode, and in Strict mode, plus
//! the redundant-flush report the sanitizer produces as a side effect.
//!
//! Off must be free (the sanitizer state machine is never consulted); Log
//! and Strict pay a per-pwb/per-fence bookkeeping cost that this bin
//! quantifies. Numbers are CrashSim-relative — the device already models
//! flush latency — so only the *relative* spread matters.
//!
//! Flags: `--records` (default 2000), `--ops` (default 20000),
//! `--threads` (default 4), `--out results`, `--report` (emit a markdown
//! table for a CI step summary instead of the plain table).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use jnvm::JnvmBuilder;
use jnvm_bench::{write_csv, Args, GridClient, Table};
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend};
use jnvm_pmem::{Pmem, PmemConfig, SanitizeMode};
use jnvm_ycsb::{run_load, run_workload, Workload};

struct ModeRow {
    mode: SanitizeMode,
    throughput: f64,
    ordering_points: u64,
    redundant_pwbs: u64,
    redundant_fences: u64,
    san_violations: u64,
}

fn run_mode(mode: SanitizeMode, records: u64, ops: u64, threads: usize) -> ModeRow {
    let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20).with_sanitize(mode));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool creation");
    let be = Arc::new(JnvmBackend::create(&rt, 64, false).expect("backend"));
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let mut spec = Workload::A.spec(records, ops);
    spec.threads = threads;
    run_load(&spec, |_| GridClient::new(Arc::clone(&grid)));
    let before = pmem.stats();
    let start = Instant::now();
    let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&grid)));
    let elapsed = start.elapsed().as_secs_f64();
    let d = pmem.stats().delta(&before);
    ModeRow {
        mode,
        throughput: report.total.count() as f64 / elapsed.max(1e-9),
        ordering_points: d.ordering_points(),
        redundant_pwbs: d.redundant_pwbs,
        redundant_fences: d.redundant_fences,
        san_violations: d.san_violations,
    }
}

fn mode_label(mode: SanitizeMode) -> &'static str {
    match mode {
        SanitizeMode::Off => "off",
        SanitizeMode::Log => "log",
        SanitizeMode::Strict => "strict",
    }
}

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 2_000);
    let ops: u64 = args.get_or("ops", 20_000);
    let threads: usize = args.get_or("threads", 4);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let markdown = args.has("report");

    if !markdown {
        println!(
            "sanitizer overhead: {records} records, {ops} YCSB-A ops, {threads} thread(s) \
             on a crash-simulating pool"
        );
    }
    let rows: Vec<ModeRow> = [SanitizeMode::Off, SanitizeMode::Log, SanitizeMode::Strict]
        .into_iter()
        .map(|m| run_mode(m, records, ops, threads))
        .collect();
    let base = rows[0].throughput.max(1e-9);

    if markdown {
        println!("### Sanitizer overhead (YCSB-A, {ops} ops, {threads} threads, CrashSim)\n");
        println!("| mode | throughput | vs off | ordering points | redundant pwbs | redundant fences | violations |");
        println!("|------|-----------:|-------:|----------------:|---------------:|-----------------:|-----------:|");
        for r in &rows {
            println!(
                "| {} | {:.0} ops/s | {:.2}x | {} | {} | {} | {} |",
                mode_label(r.mode),
                r.throughput,
                r.throughput / base,
                r.ordering_points,
                r.redundant_pwbs,
                r.redundant_fences,
                r.san_violations,
            );
        }
    } else {
        let mut table = Table::new(&[
            "mode",
            "throughput",
            "vs off",
            "ordering pts",
            "redundant pwbs",
            "redundant fences",
            "violations",
        ]);
        let mut csv = Vec::new();
        for r in &rows {
            table.row(&[
                mode_label(r.mode).to_string(),
                format!("{:.0} ops/s", r.throughput),
                format!("{:.2}x", r.throughput / base),
                r.ordering_points.to_string(),
                r.redundant_pwbs.to_string(),
                r.redundant_fences.to_string(),
                r.san_violations.to_string(),
            ]);
            csv.push(format!(
                "{},{:.0},{},{},{},{}",
                mode_label(r.mode),
                r.throughput,
                r.ordering_points,
                r.redundant_pwbs,
                r.redundant_fences,
                r.san_violations
            ));
        }
        table.print();
        let path = write_csv(
            &out,
            "fig12_sanitizer_overhead",
            "mode,throughput,ordering_points,redundant_pwbs,redundant_fences,violations",
            &csv,
        );
        println!("wrote {}", path.display());
    }
    assert_eq!(
        rows.iter().map(|r| r.san_violations).sum::<u64>(),
        0,
        "sanitizer flagged violations during the bench workload"
    );
}
