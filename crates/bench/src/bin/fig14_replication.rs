//! Replication-cost harness for `jnvm-repl`: the same write stream
//! committed solo, replicated (primary + backup), and replicated over
//! two shards.
//!
//! The claim under test: replicating at **group granularity** keeps the
//! acked ⇒ durable-on-both-replicas guarantee close to free in *latency*
//! even though it doubles total fence work. Each commit group runs one
//! §4.2 3-fence pass per device; the server streams the group to the
//! backup *before* committing the primary, so the two passes overlap and
//! a client waits for `max(backup, primary)` — not their sum. Sharding
//! then divides the replicated critical path exactly as in fig13.
//!
//! Committers are modeled at saturation, as in `fig13_shard_scaling`:
//! one thread per shard drains its routed stream in `batch_max`-sized
//! chunks through [`commit_writes`] — backup first, then primary, the
//! wire path's ordering — against Optane-like device latency. Per chunk
//! the thread records the charged time of each side; the **serial**
//! column is their sum (a naive synchronous implementation), the
//! **overlap** column is `Σ max(backup, primary)` (the pipelined wire
//! path), and `modeled op/s` uses the overlapped critical path of the
//! busiest shard.
//!
//! Reported per row:
//! * `total f/w` — ordering points over ALL devices (primaries and
//!   backups) per acked write: replication pays ~2× here, by design,
//! * `serial ms` / `overlap ms` — busiest shard's charged device time,
//! * `modeled op/s` and `vs solo` — the end-to-end replication cost,
//! * `groups` / `lag` — the [`ReplLag`] watermark: groups shipped to the
//!   backup, and the in-flight count at the end (0 = caught up).
//!
//! Flags: `--ops` (total writes, default 4096), `--batch` (group bound,
//! default 64), `--fields`/`--vsize` (record shape), `--out results`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use jnvm_bench::{write_csv, Args, Table};
use jnvm_kvstore::{commit_writes, GridConfig, Record, ReplLag, ShardedKv, WriteOp};
use jnvm_pmem::{thread_charged_ns, LatencyProfile, Pmem, PmemConfig, StatsSnapshot};

struct Point {
    name: &'static str,
    shards: usize,
    replicas: usize,
    rate: f64,
    acked: u64,
    total_fences_per_write: f64,
    serial_ms: f64,
    overlap_ms: f64,
    modeled_rate: f64,
    groups: u64,
    lag: u64,
}

fn run_point(
    name: &'static str,
    shards: usize,
    replicas: usize,
    total_ops: usize,
    batch: usize,
    fields: usize,
    vsize: usize,
) -> Point {
    // Constant total media per replica role across rows, as in fig13.
    let pmems: Vec<Vec<Arc<Pmem>>> = (0..replicas)
        .map(|_| {
            (0..shards)
                .map(|_| {
                    let mut cfg = PmemConfig::crash_sim((512 << 20) / shards as u64);
                    cfg.latency = LatencyProfile::optane_like();
                    Pmem::new(cfg)
                })
                .collect()
        })
        .collect();
    let kvs: Vec<ShardedKv> = pmems
        .iter()
        .map(|ps| {
            ShardedKv::create(
                ps,
                32,
                true,
                GridConfig {
                    cache_capacity: 0,
                    ..GridConfig::default()
                },
            )
            .expect("pool creation")
        })
        .collect();

    // The identical write stream every row sees, routed by key hash
    // (identical shard counts on both replicas ⇒ identical routing).
    let mut per_shard: Vec<Vec<WriteOp>> = vec![Vec::new(); shards];
    for i in 0..total_ops {
        let key = format!("user{i:07}");
        let values: Vec<Vec<u8>> = (0..fields)
            .map(|f| vec![b'a' + (f as u8 % 26); vsize])
            .collect();
        per_shard[kvs[0].route(&key)].push(WriteOp::Set(Record::ycsb(&key, &values)));
    }

    let lags: Vec<ReplLag> = (0..shards).map(|_| ReplLag::new()).collect();
    let before: Vec<StatsSnapshot> = pmems.iter().flatten().map(|p| p.stats()).collect();
    let start = Instant::now();
    let mut acked = 0u64;
    // Per shard: (ok, serial charged ns, overlapped charged ns).
    let timings: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
        let kvs = &kvs;
        let lags = &lags;
        let handles: Vec<_> = per_shard
            .iter()
            .enumerate()
            .map(|(si, ops)| {
                s.spawn(move || {
                    let primary = &kvs[0].shards()[si];
                    let backup = kvs.get(1).map(|kv| &kv.shards()[si]);
                    let (mut ok, mut serial, mut overlap) = (0u64, 0u64, 0u64);
                    for chunk in ops.chunks(batch.max(1)) {
                        let t0 = thread_charged_ns();
                        if let Some(b) = backup {
                            let seq = lags[si].next_seq();
                            commit_writes(&b.grid, &b.be, chunk);
                            lags[si].record_acked(seq);
                        }
                        let t1 = thread_charged_ns();
                        let out = commit_writes(&primary.grid, &primary.be, chunk);
                        let t2 = thread_charged_ns();
                        ok += out.results.iter().filter(|&&r| r).count() as u64;
                        serial += t2 - t0;
                        overlap += (t1 - t0).max(t2 - t1);
                    }
                    (ok, serial, overlap)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("committer thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let deltas: Vec<StatsSnapshot> = pmems
        .iter()
        .flatten()
        .zip(&before)
        .map(|(p, b)| p.stats().delta(b))
        .collect();
    drop(kvs);

    for (ok, _, _) in &timings {
        acked += ok;
    }
    assert_eq!(acked, total_ops as u64, "every modeled write must commit");
    let total_fences: u64 = deltas.iter().map(|d| d.ordering_points()).sum();
    let crit_serial = timings.iter().map(|t| t.1).max().unwrap_or(0).max(1);
    let crit_overlap = timings.iter().map(|t| t.2).max().unwrap_or(0).max(1);
    Point {
        name,
        shards,
        replicas,
        rate: acked as f64 / elapsed.as_secs_f64().max(1e-9),
        acked,
        total_fences_per_write: total_fences as f64 / acked.max(1) as f64,
        serial_ms: crit_serial as f64 / 1e6,
        overlap_ms: crit_overlap as f64 / 1e6,
        modeled_rate: acked as f64 / (crit_overlap as f64 / 1e9),
        groups: lags.iter().map(|l| l.sent()).sum(),
        lag: lags.iter().map(|l| l.lag()).sum(),
    }
}

fn main() {
    let args = Args::parse();
    let total_ops: usize = args.get_or("ops", 4096);
    let batch: usize = args.get_or("batch", 64);
    let fields: usize = args.get_or("fields", 4);
    let vsize: usize = args.get_or("vsize", 64);
    let out_dir = PathBuf::from(args.get("out").unwrap_or("results"));

    println!(
        "replication cost: {total_ops} writes, batch {batch}, {fields}x{vsize} B records"
    );
    let rows_spec: [(&'static str, usize, usize); 3] = [
        ("solo", 1, 1),
        ("replicated", 1, 2),
        ("replicated-2-shards", 2, 2),
    ];
    let mut table = Table::new(&[
        "config",
        "op/s",
        "acked",
        "total f/w",
        "serial ms",
        "overlap ms",
        "modeled op/s",
        "vs solo",
        "groups",
        "lag",
    ]);
    let mut rows = Vec::new();
    let mut solo_rate = 0.0f64;
    for (name, shards, replicas) in rows_spec {
        let p = run_point(name, shards, replicas, total_ops, batch, fields, vsize);
        if solo_rate == 0.0 {
            solo_rate = p.modeled_rate;
        }
        let vs_solo = p.modeled_rate / solo_rate.max(1e-9);
        assert_eq!(p.lag, 0, "the backup must be caught up after a full drain");
        table.row(&[
            p.name.to_string(),
            format!("{:.0}", p.rate),
            p.acked.to_string(),
            format!("{:.4}", p.total_fences_per_write),
            format!("{:.2}", p.serial_ms),
            format!("{:.2}", p.overlap_ms),
            format!("{:.0}", p.modeled_rate),
            format!("{:.2}x", vs_solo),
            p.groups.to_string(),
            p.lag.to_string(),
        ]);
        rows.push(format!(
            "{},{},{},{:.0},{},{:.4},{:.2},{:.2},{:.0},{:.2},{},{}",
            p.name,
            p.shards,
            p.replicas,
            p.rate,
            p.acked,
            p.total_fences_per_write,
            p.serial_ms,
            p.overlap_ms,
            p.modeled_rate,
            vs_solo,
            p.groups,
            p.lag
        ));
    }
    table.print();
    let path = write_csv(
        &out_dir,
        "fig14_replication",
        "config,shards,replicas,rate,acked,total_fences_per_write,serial_ms,overlap_ms,modeled_rate,vs_solo,groups,lag",
        &rows,
    );
    println!("wrote {}", path.display());
}
