//! Observability overhead: what the `jnvm-obs` layer costs when it is off
//! (the contract: one predictable branch per span site) and when it is in
//! `log` mode, measured on the YCSB-A CrashSim path the torture suites
//! run.
//!
//! Three measurements:
//!
//! 1. **site cost** — a tight loop over a disabled span site
//!    (`span_begin`/`span_end`) and a disabled fence hook, giving the
//!    per-site nanosecond cost of off mode;
//! 2. **off mode** — YCSB-A throughput with `JNVM_OBS=off`. The *derived*
//!    overhead is `sites_per_op x site_ns / t_op`: deterministic, immune
//!    to run-to-run throughput noise that dwarfs a branch;
//! 3. **log mode** — the same workload with spans and fence accounting
//!    live. The *derived* overhead prices the run's actual site counts
//!    (ordering-point spans, plain span pairs, fence hooks) at
//!    tight-loop-measured per-site costs; the measured wall-clock
//!    slowdown versus the off run is reported alongside but run-to-run
//!    scheduler noise on the ms-scale rounds swamps a single-digit
//!    percentage, so the gate uses the derived number.
//!
//! `--assert` gates the acceptance bounds: off ≤ 1%, log ≤ 5%
//! (both derived).
//!
//! Flags: `--records` (default 2000), `--ops` (default 20000),
//! `--threads` (default 4), `--repeat` (default 3), `--assert`,
//! `--out results`, `--report` (markdown for a CI step summary).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use jnvm::JnvmBuilder;
use jnvm_bench::{write_csv, Args, GridClient, Table};
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend};
use jnvm_obs::ObsMode;
use jnvm_pmem::{Pmem, PmemConfig};
use jnvm_ycsb::{run_load, run_workload, Workload};

/// Best-of-3 tight-loop cost of one call to `f`, in nanoseconds. Tight
/// loops amortize scheduler bursts over millions of iterations, so these
/// per-site numbers are stable where ms-scale wall-clock A/B is not.
fn ns_per_call(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Nanoseconds one *disabled* span site costs: span begin/end pair plus a
/// fence hook, amortized over a tight loop. This is the "one branch per
/// site" number the off-mode contract promises.
fn site_cost_ns() -> f64 {
    assert!(matches!(jnvm_obs::mode(), ObsMode::Off));
    // 3 sites per iteration: begin+end is one span site, note_pwb one
    // hook site, and the pair's two branches average out as one more.
    ns_per_call(4_000_000, || {
        let b = jnvm_obs::span_begin();
        jnvm_obs::span_end(jnvm_obs::SpanKind::FaStage, b);
        jnvm_obs::note_pwb();
    }) / 3.0
}

/// Per-site log-mode costs: a recorded span pair, an ordering point
/// (point span + pending-count claim), and a plain fence hook.
struct LogSiteCosts {
    span_ns: f64,
    point_ns: f64,
    hook_ns: f64,
}

fn log_site_costs() -> LogSiteCosts {
    assert!(matches!(jnvm_obs::mode(), ObsMode::Log));
    let costs = LogSiteCosts {
        span_ns: ns_per_call(500_000, || {
            let b = jnvm_obs::span_begin();
            jnvm_obs::span_end(jnvm_obs::SpanKind::FaStage, b);
        }),
        point_ns: ns_per_call(500_000, || {
            jnvm_obs::note_ordering_point("fig15-point");
        }),
        hook_ns: ns_per_call(2_000_000, jnvm_obs::note_pwb),
    };
    jnvm_obs::flush_thread_pending();
    costs
}

struct ModeRun {
    /// Best-of-N seconds per op.
    sec_per_op: f64,
    /// Device persistence ops (pwb+pfence+psync+ordering points) per op.
    sites_per_op: f64,
    /// Ordering points per op (priced as point spans in log mode).
    points_per_op: f64,
    /// Plain pwb/pfence/psync hooks per op.
    hooks_per_op: f64,
    /// Non-point spans per op (fa stage/commit pairs etc.).
    plain_spans_per_op: f64,
    /// Spans recorded during the measured runs.
    spans: u64,
}

fn run_mode(mode: ObsMode, records: u64, ops: u64, threads: usize, repeat: usize) -> ModeRun {
    jnvm_obs::set_mode(mode);
    let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool creation");
    let be = Arc::new(JnvmBackend::create(&rt, 64, false).expect("backend"));
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let mut spec = Workload::A.spec(records, ops);
    spec.threads = threads;
    run_load(&spec, |_| GridClient::new(Arc::clone(&grid)));
    let before = pmem.stats();
    let spans_before: u64 = jnvm_obs::span_totals().iter().sum();
    let mut best = f64::INFINITY;
    let mut total_ops = 0u64;
    for _ in 0..repeat.max(1) {
        let start = Instant::now();
        let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&grid)));
        let n = report.total.count().max(1);
        total_ops += n;
        best = best.min(start.elapsed().as_secs_f64() / n as f64);
    }
    let d = pmem.stats().delta(&before);
    let sites = d.pwbs + d.pfences + d.psyncs + d.ordering_points();
    let spans = jnvm_obs::span_totals().iter().sum::<u64>() - spans_before;
    let ops = total_ops.max(1) as f64;
    ModeRun {
        sec_per_op: best,
        sites_per_op: sites as f64 / ops,
        points_per_op: d.ordering_points() as f64 / ops,
        hooks_per_op: (d.pwbs + d.pfences + d.psyncs) as f64 / ops,
        plain_spans_per_op: spans.saturating_sub(d.ordering_points()) as f64 / ops,
        spans,
    }
}

fn main() {
    let args = Args::parse();
    let records: u64 = args.get_or("records", 2_000);
    let ops: u64 = args.get_or("ops", 20_000);
    let threads: usize = args.get_or("threads", 4);
    let repeat: usize = args.get_or("repeat", 3);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));
    let markdown = args.has("report");
    let gate = args.has("assert");

    jnvm_obs::set_mode(ObsMode::Off);
    let site_ns = site_cost_ns();
    jnvm_obs::set_mode(ObsMode::Log);
    let log_costs = log_site_costs();
    jnvm_obs::set_mode(ObsMode::Off);
    let off = run_mode(ObsMode::Off, records, ops, threads, repeat);
    let log = run_mode(ObsMode::Log, records, ops, threads, repeat);
    jnvm_obs::set_mode(ObsMode::from_env());

    assert_eq!(off.spans, 0, "off mode recorded {} spans", off.spans);
    assert!(log.spans > 0, "log mode recorded no spans");

    // Off-mode overhead, derived: sites/op x ns/site over the op time.
    let off_pct = off.sites_per_op * site_ns / (off.sec_per_op * 1e9) * 100.0;
    // Log-mode overhead, derived: the run's actual site counts priced at
    // tight-loop per-site costs, over the *off* op time (the smaller
    // denominator — the conservative direction).
    let log_ns_per_op = log.plain_spans_per_op * log_costs.span_ns
        + log.points_per_op * log_costs.point_ns
        + log.hooks_per_op * log_costs.hook_ns;
    let log_pct = log_ns_per_op / (off.sec_per_op * 1e9) * 100.0;
    // Measured wall-clock slowdown, best-of-N (reported, not gated:
    // ms-scale round noise swamps single-digit percentages).
    let log_measured_pct =
        ((log.sec_per_op - off.sec_per_op) / off.sec_per_op * 100.0).max(0.0);

    if markdown {
        println!("### Observability overhead (YCSB-A, {ops} ops, {threads} threads, CrashSim)\n");
        println!("| mode | ns/op | sites/op | spans | overhead |");
        println!("|------|------:|---------:|------:|---------:|");
        println!(
            "| off | {:.0} | {:.1} | 0 | {off_pct:.3}% (derived, {site_ns:.2} ns/site) |",
            off.sec_per_op * 1e9,
            off.sites_per_op
        );
        println!(
            "| log | {:.0} | {:.1} | {} | {log_pct:.2}% (derived, {log_ns_per_op:.0} ns/op; \
             measured {log_measured_pct:.2}%) |",
            log.sec_per_op * 1e9,
            log.sites_per_op,
            log.spans
        );
    } else {
        println!(
            "obs overhead: {records} records, {ops} YCSB-A ops, {threads} thread(s), \
             best of {repeat}; disabled site costs {site_ns:.2} ns"
        );
        let mut table = Table::new(&["mode", "ns/op", "sites/op", "spans", "overhead"]);
        table.row(&[
            "off".into(),
            format!("{:.0}", off.sec_per_op * 1e9),
            format!("{:.1}", off.sites_per_op),
            "0".into(),
            format!("{off_pct:.3}% (derived)"),
        ]);
        table.row(&[
            "log".into(),
            format!("{:.0}", log.sec_per_op * 1e9),
            format!("{:.1}", log.sites_per_op),
            log.spans.to_string(),
            format!("{log_pct:.2}% (derived; measured {log_measured_pct:.2}%)"),
        ]);
        table.print();
        let path = write_csv(
            &out,
            "fig15_obs_overhead",
            "mode,ns_per_op,sites_per_op,spans,overhead_pct",
            &[
                format!(
                    "off,{:.0},{:.2},0,{off_pct:.4}",
                    off.sec_per_op * 1e9,
                    off.sites_per_op
                ),
                format!(
                    "log,{:.0},{:.2},{},{log_pct:.4}",
                    log.sec_per_op * 1e9,
                    log.sites_per_op,
                    log.spans
                ),
            ],
        );
        println!("wrote {}", path.display());
    }

    if gate {
        assert!(
            off_pct <= 1.0,
            "off-mode span sites cost {off_pct:.3}% of the CrashSim op path (bound: 1%)"
        );
        assert!(
            log_pct <= 5.0,
            "log mode slows the CrashSim op path by {log_pct:.2}% (bound: 5%)"
        );
        println!("asserted: off {off_pct:.3}% <= 1%, log {log_pct:.2}% <= 5%");
    }
}
