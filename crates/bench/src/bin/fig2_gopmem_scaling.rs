//! Figure 2 regenerator: YCSB-F on the go-pmem-like store as the
//! persistent dataset grows (the motivation experiment of §2.2.1).
//!
//! Paper result: from 0.3 GB to 151.68 GB, completion time multiplies by
//! ~3.4x while compute time stays flat — the growth is entirely GC, which
//! reaches ~67 % of CPU time because every pass marks the whole dataset.
//!
//! Scaled 1/100: one paper "GB" = 10000 records here (paper: 1M records
//! per GB); the forced-GC budget ("every 10 GB of allocation") scales the
//! same way. The scaling law under test is invariant to the factor.
//!
//! Flags: `--ops` (default 400000), `--scale-records-per-gb 10000`,
//! `--out results`.

use std::path::PathBuf;
use std::time::Instant;

use jnvm_bench::{write_csv, Args, Table};
use jnvm_gcsim::RedisLikeStore;
use jnvm_ycsb::{record_key, Generator, ScrambledZipfianGenerator};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The paper's x axis (GB).
const SIZES_GB: [f64; 10] = [0.30, 0.59, 1.18, 2.37, 4.74, 9.48, 18.96, 37.92, 75.84, 151.68];

fn main() {
    let args = Args::parse();
    let ops: u64 = args.get_or("ops", 400_000);
    let per_gb: u64 = args.get_or("scale-records-per-gb", 10_000);
    let out: PathBuf = PathBuf::from(args.get_or("out", "results".to_string()));

    // go-pmem: records of 10 x 100 B fields; a rmw allocates a replacement
    // field; the client allocates a small temporary per op. The forced GC
    // budget is "10 GB", scaled like the dataset (10 GB -> per_gb * 10
    // records' worth of allocation).
    let gc_budget = per_gb * 10 * 150; // bytes: ~150 B garbage per op

    println!("Figure 2: go-pmem GC vs dataset size ({ops} YCSB-F ops per point)");
    let mut table = Table::new(&[
        "dataset",
        "records",
        "completion",
        "compute",
        "gc",
        "gc share",
        "gc passes",
    ]);
    let mut rows = Vec::new();
    let mut first_completion = None;
    for gb in SIZES_GB {
        let records = ((gb * per_gb as f64) as u64).max(100);
        let mut store = RedisLikeStore::new(10, 100, gc_budget);
        for i in 0..records {
            store.insert(&record_key(i));
        }
        let gc_before = store.gc_time();
        let (passes_before, _) = store.gc_stats();
        let mut gen = ScrambledZipfianGenerator::new(records, 3);
        let mut rng = SmallRng::seed_from_u64(29);
        let start = Instant::now();
        for i in 0..ops {
            let key = record_key(gen.next());
            if rng.random::<bool>() {
                store.read(&key);
                store.alloc_temp(64);
            } else {
                store.rmw(&key, i as usize);
            }
        }
        let completion = start.elapsed().as_secs_f64();
        let gc = (store.gc_time() - gc_before).as_secs_f64();
        let (passes, _) = store.gc_stats();
        first_completion.get_or_insert(completion);
        table.row(&[
            format!("{gb:.2} GB*"),
            records.to_string(),
            format!("{completion:.2} s"),
            format!("{:.2} s", completion - gc),
            format!("{gc:.2} s"),
            format!("{:.0}%", gc / completion * 100.0),
            (passes - passes_before).to_string(),
        ]);
        rows.push(format!(
            "{},{},{:.4},{:.4},{:.4}",
            gb,
            records,
            completion,
            completion - gc,
            gc
        ));
    }
    table.print();
    println!("(* paper-scale GB; {per_gb} records per GB at 1/100 scale)");
    if let Some(first) = first_completion {
        let last: f64 = rows
            .last()
            .and_then(|r| r.split(',').nth(2))
            .and_then(|s| s.parse().ok())
            .unwrap_or(first);
        println!(
            "largest/smallest completion ratio: {:.1}x (paper: 3.4x)",
            last / first
        );
    }
    let path = write_csv(
        &out,
        "fig2_gopmem_scaling",
        "dataset_gb,records,completion_s,compute_s,gc_s",
        &rows,
    );
    println!("wrote {}", path.display());
}
