//! Shard-scaling harness for the multi-pool engine: one group committer
//! per pmem pool, keys routed by hash, the identical write stream at
//! every pool-shard count.
//!
//! The claim under test: the single-pool server serializes every write
//! behind ONE committer's 3-fence commit passes, so commit throughput is
//! bounded by one device's fence latency. With N pools the same K writes
//! split into N disjoint streams whose fence passes run concurrently —
//! the *critical path* (the busiest committer's device) shrinks toward
//! 1/N of the single-pool cost while total fences stay put.
//!
//! To keep group formation deterministic (and the fences-per-write curve
//! free of socket-scheduling noise), each shard's committer is modeled
//! at saturation: one thread per shard drains that shard's routed stream
//! through [`commit_writes`] in `batch_max`-sized batches — exactly the
//! code path and batch bound `jnvm-server`'s per-shard committers use
//! when their queues stay full. Device latency follows the Optane-like
//! profile, so charged nanoseconds are meaningful modeled time.
//!
//! Reported per shard count:
//! * `total f/w` — ordering points summed over all devices per acked
//!   write (the amortization level; roughly flat),
//! * `crit f/w` — ordering points on the *busiest* device per acked
//!   write (what a write waits behind; falls ~1/N),
//! * `crit ms` — modeled device time charged to the busiest committer,
//! * `modeled op/s` — acked writes over that critical-path time, and
//!   `speedup` relative to the 1-shard row.
//!
//! Flags: `--shards 1,2,4,8` (pool counts), `--ops` (total writes,
//! default 4096), `--batch` (committer batch bound, default 64),
//! `--fields`/`--vsize` (record shape), `--out results`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use jnvm_bench::{write_csv, Args, Table};
use jnvm_kvstore::{commit_writes, GridConfig, Record, ShardedKv, WriteOp};
use jnvm_pmem::{thread_charged_ns, LatencyProfile, Pmem, PmemConfig, StatsSnapshot};

struct Point {
    shards: usize,
    rate: f64,
    acked: u64,
    total_fences_per_write: f64,
    crit_fences_per_write: f64,
    crit_ms: f64,
    modeled_rate: f64,
}

fn run_point(shards: usize, total_ops: usize, batch: usize, fields: usize, vsize: usize) -> Point {
    // One pool's worth of media split over however many pools this row
    // uses, so total capacity is constant across rows.
    let pmems: Vec<Arc<Pmem>> = (0..shards)
        .map(|_| {
            let mut cfg = PmemConfig::crash_sim((512 << 20) / shards as u64);
            cfg.latency = LatencyProfile::optane_like();
            Pmem::new(cfg)
        })
        .collect();
    let kv = ShardedKv::create(
        &pmems,
        32,
        true,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    )
    .expect("pool creation");

    // The identical write stream every row sees, routed by key hash.
    let mut per_shard: Vec<Vec<WriteOp>> = vec![Vec::new(); shards];
    for i in 0..total_ops {
        let key = format!("user{i:07}");
        let values: Vec<Vec<u8>> = (0..fields)
            .map(|f| vec![b'a' + (f as u8 % 26); vsize])
            .collect();
        per_shard[kv.route(&key)].push(WriteOp::Set(Record::ycsb(&key, &values)));
    }

    let before: Vec<StatsSnapshot> = pmems.iter().map(|p| p.stats()).collect();
    let start = Instant::now();
    let mut acked = 0u64;
    let charged: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = kv
            .shards()
            .iter()
            .zip(&per_shard)
            .map(|(shard, ops)| {
                s.spawn(move || {
                    let mut ok = 0u64;
                    for chunk in ops.chunks(batch.max(1)) {
                        let out = commit_writes(&shard.grid, &shard.be, chunk);
                        ok += out.results.iter().filter(|&&r| r).count() as u64;
                    }
                    (ok, thread_charged_ns())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (ok, ns) = h.join().expect("committer thread");
                acked += ok;
                ns
            })
            .collect()
    });
    let elapsed = start.elapsed();
    let deltas: Vec<StatsSnapshot> = pmems
        .iter()
        .zip(&before)
        .map(|(p, b)| p.stats().delta(b))
        .collect();
    drop(kv);

    assert_eq!(acked, total_ops as u64, "every modeled write must commit");
    let total_fences: u64 = deltas.iter().map(|d| d.ordering_points()).sum();
    let crit_fences = deltas.iter().map(|d| d.ordering_points()).max().unwrap_or(0);
    let crit_ns = charged.iter().copied().max().unwrap_or(0).max(1);
    Point {
        shards,
        rate: acked as f64 / elapsed.as_secs_f64().max(1e-9),
        acked,
        total_fences_per_write: total_fences as f64 / acked.max(1) as f64,
        crit_fences_per_write: crit_fences as f64 / acked.max(1) as f64,
        crit_ms: crit_ns as f64 / 1e6,
        modeled_rate: acked as f64 / (crit_ns as f64 / 1e9),
    }
}

fn main() {
    let args = Args::parse();
    let total_ops: usize = args.get_or("ops", 4096);
    let batch: usize = args.get_or("batch", 64);
    let fields: usize = args.get_or("fields", 4);
    let vsize: usize = args.get_or("vsize", 64);
    let shard_counts: Vec<usize> = args
        .get("shards")
        .unwrap_or("1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    let out_dir = PathBuf::from(args.get("out").unwrap_or("results"));

    println!(
        "shard scaling: {total_ops} writes, batch {batch}, {fields}x{vsize} B records"
    );
    let mut table = Table::new(&[
        "shards",
        "op/s",
        "acked",
        "total f/w",
        "crit f/w",
        "crit ms",
        "modeled op/s",
        "speedup",
    ]);
    let mut rows = Vec::new();
    let mut base_modeled = 0.0f64;
    for &n in &shard_counts {
        let p = run_point(n, total_ops, batch, fields, vsize);
        if base_modeled == 0.0 {
            base_modeled = p.modeled_rate;
        }
        let speedup = p.modeled_rate / base_modeled.max(1e-9);
        table.row(&[
            p.shards.to_string(),
            format!("{:.0}", p.rate),
            p.acked.to_string(),
            format!("{:.4}", p.total_fences_per_write),
            format!("{:.4}", p.crit_fences_per_write),
            format!("{:.2}", p.crit_ms),
            format!("{:.0}", p.modeled_rate),
            format!("{:.2}x", speedup),
        ]);
        rows.push(format!(
            "{},{:.0},{},{:.4},{:.4},{:.2},{:.0},{:.2}",
            p.shards,
            p.rate,
            p.acked,
            p.total_fences_per_write,
            p.crit_fences_per_write,
            p.crit_ms,
            p.modeled_rate,
            speedup
        ));
    }
    table.print();
    let path = write_csv(
        &out_dir,
        "fig13_shard_scaling",
        "shards,rate,acked,total_fences_per_write,crit_fences_per_write,crit_ms,modeled_rate,speedup",
        &rows,
    );
    println!("wrote {}", path.display());
}
