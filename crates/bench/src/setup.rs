//! Construction of grids over each of the paper's backends.

use std::sync::Arc;

use jnvm::{Jnvm, JnvmBuilder};
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{
    register_kvstore, Backend, CostModel, DataGrid, FsBackend, GridConfig, JnvmBackend,
    NullFsBackend, PcjBackend, TmpfsBackend, VolatileBackend,
};
use jnvm_pmem::{LatencyProfile, Pmem, PmemConfig, SanitizeMode, SimMode};

/// The persistent backends of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// J-PDT (low-level interface).
    Jpdt,
    /// J-PFA (failure-atomic blocks).
    Jpfa,
    /// File system over NVMM.
    Fs,
    /// File system over DRAM.
    Tmpfs,
    /// Black-hole file system.
    Nullfs,
    /// PCJ over a simulated JNI bridge.
    Pcj,
    /// Persistence disabled.
    Volatile,
}

impl BackendKind {
    /// The four persistent backends of Figure 7.
    pub const FIGURE7: [BackendKind; 4] = [
        BackendKind::Jpdt,
        BackendKind::Jpfa,
        BackendKind::Fs,
        BackendKind::Pcj,
    ];

    /// The four backends of Figure 8.
    pub const FIGURE8: [BackendKind; 4] = [
        BackendKind::Volatile,
        BackendKind::Nullfs,
        BackendKind::Tmpfs,
        BackendKind::Fs,
    ];

    /// Short name.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Jpdt => "J-PDT",
            BackendKind::Jpfa => "J-PFA",
            BackendKind::Fs => "FS",
            BackendKind::Tmpfs => "TmpFS",
            BackendKind::Nullfs => "NullFS",
            BackendKind::Pcj => "PCJ",
            BackendKind::Volatile => "Volatile",
        }
    }

    /// Parse a label (case-insensitive, dashes optional).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().replace('-', "").as_str() {
            "jpdt" => Some(BackendKind::Jpdt),
            "jpfa" => Some(BackendKind::Jpfa),
            "fs" => Some(BackendKind::Fs),
            "tmpfs" => Some(BackendKind::Tmpfs),
            "nullfs" => Some(BackendKind::Nullfs),
            "pcj" => Some(BackendKind::Pcj),
            "volatile" => Some(BackendKind::Volatile),
            _ => None,
        }
    }
}

/// A constructed grid plus the handles the harness may need afterwards.
pub struct GridSetup {
    /// The grid.
    pub grid: Arc<DataGrid>,
    /// The device (persistent backends).
    pub pmem: Option<Arc<Pmem>>,
    /// The J-NVM runtime (J-NVM backends).
    pub rt: Option<Jnvm>,
}

fn record_footprint(field_count: usize, field_len: usize) -> u64 {
    // Generous per-record NVMM footprint estimate: field blobs (+ headers
    // and pool slack), record object, map entry, key string, array cell.
    let blob = |len: u64| {
        if len + 8 <= 232 {
            ((len + 16).next_multiple_of(24)).max(24)
        } else {
            (len + 8).div_ceil(248) * 256
        }
    };
    field_count as u64 * blob(field_len as u64) + 3 * 256 + 64
}

/// Build a grid over `kind` sized for `records` YCSB records.
///
/// `cache_ratio` is Infinispan's volatile-cache ratio; the paper runs the
/// J-NVM backends with caching disabled (§5.3.1), so callers pass 0 for
/// them. `optane` selects Optane-like device latency (off = unit tests).
pub fn make_grid(
    kind: BackendKind,
    records: u64,
    field_count: usize,
    field_len: usize,
    cache_ratio: f64,
    optane: bool,
) -> GridSetup {
    let cache_capacity = (records as f64 * cache_ratio) as usize;
    let grid_cfg = GridConfig {
        cache_capacity,
        ..GridConfig::default()
    };
    let lat = |on: bool| {
        if on {
            LatencyProfile::optane_like()
        } else {
            LatencyProfile::off()
        }
    };
    let costs = if optane {
        CostModel::default_model()
    } else {
        CostModel::free()
    };
    let encoded_max = 32 + 64 + field_count as u64 * (16 + field_len as u64) + 256;
    match kind {
        BackendKind::Volatile => GridSetup {
            grid: Arc::new(DataGrid::new(Arc::new(VolatileBackend::new()), grid_cfg)),
            pmem: None,
            rt: None,
        },
        BackendKind::Nullfs => GridSetup {
            grid: Arc::new(DataGrid::new(Arc::new(NullFsBackend::new()), grid_cfg)),
            pmem: None,
            rt: None,
        },
        BackendKind::Tmpfs => {
            let pool = (records * 2 + 64) * encoded_max.next_multiple_of(64);
            let pmem = Pmem::new(PmemConfig {
                size: pool,
                mode: SimMode::Performance,
                latency: LatencyProfile::dram(),
                sanitize: SanitizeMode::from_env(),
                label: String::new(),
            });
            let be: Arc<dyn Backend> =
                Arc::new(TmpfsBackend::new(Arc::clone(&pmem), encoded_max, costs));
            GridSetup {
                grid: Arc::new(DataGrid::new(be, grid_cfg)),
                pmem: Some(pmem),
                rt: None,
            }
        }
        BackendKind::Fs => {
            let pool = (records * 2 + 64) * encoded_max.next_multiple_of(64);
            let pmem = Pmem::new(PmemConfig {
                size: pool,
                mode: SimMode::Performance,
                latency: lat(optane),
                sanitize: SanitizeMode::from_env(),
                label: String::new(),
            });
            let be: Arc<dyn Backend> =
                Arc::new(FsBackend::new(Arc::clone(&pmem), encoded_max, costs));
            GridSetup {
                grid: Arc::new(DataGrid::new(be, grid_cfg)),
                pmem: Some(pmem),
                rt: None,
            }
        }
        BackendKind::Jpdt | BackendKind::Jpfa => {
            let pool =
                (records * 3 / 2 + 1024) * record_footprint(field_count, field_len) + (64 << 20);
            let pmem = Pmem::new(PmemConfig {
                size: pool,
                mode: SimMode::Performance,
                latency: lat(optane),
                sanitize: SanitizeMode::from_env(),
                label: String::new(),
            });
            let rt = register_kvstore(JnvmBuilder::new())
                .create(Arc::clone(&pmem), HeapConfig::default())
                .expect("pool creation");
            let be: Arc<dyn Backend> = Arc::new(
                JnvmBackend::create(&rt, 64, kind == BackendKind::Jpfa).expect("backend"),
            );
            GridSetup {
                grid: Arc::new(DataGrid::new(be, grid_cfg)),
                pmem: Some(pmem),
                rt: Some(rt),
            }
        }
        BackendKind::Pcj => {
            // PCJ stores one marshalled blob per record.
            let blob = encoded_max.div_ceil(248) * 256 + 512;
            let pool = (records * 2 + 1024) * blob + (64 << 20);
            let pmem = Pmem::new(PmemConfig {
                size: pool,
                mode: SimMode::Performance,
                latency: lat(optane),
                sanitize: SanitizeMode::from_env(),
                label: String::new(),
            });
            let rt = register_kvstore(JnvmBuilder::new())
                .create(Arc::clone(&pmem), HeapConfig::default())
                .expect("pool creation");
            let be: Arc<dyn Backend> =
                Arc::new(PcjBackend::create(&rt, 64, costs).expect("backend"));
            GridSetup {
                grid: Arc::new(DataGrid::new(be, grid_cfg)),
                pmem: Some(pmem),
                rt: Some(rt),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm_kvstore::Record;

    #[test]
    fn every_backend_round_trips() {
        for kind in [
            BackendKind::Jpdt,
            BackendKind::Jpfa,
            BackendKind::Fs,
            BackendKind::Tmpfs,
            BackendKind::Pcj,
            BackendKind::Volatile,
        ] {
            let setup = make_grid(kind, 100, 4, 32, 0.1, false);
            let rec = Record::ycsb("user000000000001", &vec![vec![7u8; 32]; 4]);
            assert!(setup.grid.insert(&rec), "{kind:?} insert");
            assert_eq!(setup.grid.read(&rec.key).unwrap(), rec, "{kind:?} read");
            assert!(
                setup.grid.update_field(&rec.key, 2, &[9u8; 32]),
                "{kind:?} update"
            );
            assert_eq!(
                setup.grid.read(&rec.key).unwrap().fields[2].1,
                vec![9u8; 32],
                "{kind:?} after update"
            );
        }
    }

    #[test]
    fn nullfs_grid_swallows() {
        let setup = make_grid(BackendKind::Nullfs, 10, 2, 8, 0.0, false);
        let rec = Record::ycsb("k", &vec![vec![1u8; 8]; 2]);
        assert!(setup.grid.insert(&rec));
        assert!(setup.grid.read("k").is_none());
    }

    #[test]
    fn labels_parse() {
        for k in BackendKind::FIGURE7.iter().chain(BackendKind::FIGURE8.iter()) {
            assert_eq!(BackendKind::parse(k.label()), Some(*k));
        }
    }
}
