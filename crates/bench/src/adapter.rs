//! YCSB client adapter over the data grid.

use std::sync::Arc;

use jnvm_kvstore::{DataGrid, Record};
use jnvm_ycsb::KvClient;

/// One YCSB client connection to an embedded [`DataGrid`] (the paper runs
/// Infinispan embedded: "a YCSB thread is also an Infinispan thread").
#[derive(Clone)]
pub struct GridClient {
    grid: Arc<DataGrid>,
}

impl GridClient {
    /// Wrap a grid.
    pub fn new(grid: Arc<DataGrid>) -> GridClient {
        GridClient { grid }
    }
}

impl KvClient for GridClient {
    fn read(&mut self, key: &str) -> bool {
        // J-NVM backends serve the read through persistent value proxies;
        // external backends materialize (grid::read_touch dispatches).
        self.grid.read_touch(key);
        true // missing key still counts as a completed op
    }

    fn update(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
        self.grid.update_field(key, field, value)
    }

    fn insert(&mut self, key: &str, fields: &[Vec<u8>]) -> bool {
        self.grid.insert(&Record::ycsb(key, fields))
    }

    fn rmw(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
        self.grid.rmw(key, field, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{make_grid, BackendKind};
    use jnvm_ycsb::{run_load, run_workload, Workload};

    #[test]
    fn ycsb_smoke_over_jpdt_grid() {
        let setup = make_grid(BackendKind::Jpdt, 200, 4, 16, 0.0, false);
        let spec = Workload::A.spec(200, 500);
        run_load(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
        assert_eq!(setup.grid.len(), 200);
        let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
        assert_eq!(report.ops, 500);
        assert!(report.reads.count() > 0);
        assert!(report.updates.count() > 0);
    }

    #[test]
    fn ycsb_smoke_over_fs_grid() {
        let setup = make_grid(BackendKind::Fs, 100, 4, 16, 0.1, false);
        let spec = Workload::F.spec(100, 300);
        run_load(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
        let report = run_workload(&spec, |_| GridClient::new(Arc::clone(&setup.grid)));
        assert_eq!(report.ops, 300);
        assert!(report.rmws.count() > 0);
    }
}
