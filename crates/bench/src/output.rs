//! CSV series and console tables for the harness binaries.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Write a CSV file under the results directory. Returns the path.
///
/// # Panics
///
/// Panics on I/O failure (a harness binary cannot proceed without its
/// output directory).
pub fn write_csv(out_dir: &Path, name: &str, header: &str, rows: &[String]) -> PathBuf {
    std::fs::create_dir_all(out_dir).expect("create results directory");
    let path = out_dir.join(format!("{name}.csv"));
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    path
}

/// A fixed-width console table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column names.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join(format!("jnvm-bench-csv-{}", std::process::id()));
        let p = write_csv(&dir, "t", "a,b", &["1,2".into(), "3,4".into()]);
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
