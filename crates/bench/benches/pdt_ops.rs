//! J-PDT operation costs vs the volatile `std` counterparts — the
//! microscopic view of Figure 12's 45-50 % slowdown.

use criterion::{criterion_group, criterion_main, Criterion};
use jnvm::{JnvmBuilder, PObject};
use jnvm_heap::HeapConfig;
use jnvm_jpdt::{register_jpdt, PBytes, PString, PStringHashMap};
use jnvm_pmem::{Pmem, PmemConfig};
use std::collections::HashMap;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pmem = Pmem::new(PmemConfig::perf(512 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .create(pmem, HeapConfig::default())
        .unwrap();

    let mut g = c.benchmark_group("pdt");

    // Map get: persistent vs volatile.
    let pm = PStringHashMap::new(&rt).unwrap();
    let mut vm: HashMap<String, Vec<u8>> = HashMap::new();
    for i in 0..10_000 {
        let v = PBytes::new(&rt, &[7u8; 100]).unwrap();
        pm.put(format!("key-{i}"), v.addr()).unwrap();
        vm.insert(format!("key-{i}"), vec![7u8; 100]);
    }
    g.bench_function("phashmap_get", |b| {
        let k = "key-5000".to_string();
        b.iter(|| black_box(pm.get(black_box(&k))))
    });
    g.bench_function("std_hashmap_get", |b| {
        let k = "key-5000".to_string();
        b.iter(|| black_box(vm.get(black_box(&k))))
    });
    g.bench_function("phashmap_get_value_and_copy", |b| {
        let k = "key-5000".to_string();
        b.iter(|| {
            let v = pm.get_value(&k).unwrap();
            black_box(PBytes::resurrect(&rt, v.addr()).to_vec())
        })
    });
    g.bench_function("phashmap_put_replace", |b| {
        let k = "key-1".to_string();
        b.iter(|| {
            let v = PBytes::new(&rt, &[9u8; 100]).unwrap();
            if let Some(old) = pm.put(k.clone(), v.addr()).unwrap() {
                rt.free_addr(old);
            }
        })
    });
    g.bench_function("pstring_create_free_pooled", |b| {
        b.iter(|| {
            let s = PString::from_str_in(&rt, black_box("a short string")).unwrap();
            s.free();
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
