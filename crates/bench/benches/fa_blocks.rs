//! Failure-atomic block overhead (§4.2): the cost of the redo log versus
//! direct low-level writes — the J-PFA/J-PDT gap of Figure 7.

use criterion::{criterion_group, criterion_main, Criterion};
use jnvm::{persistent_class, JnvmBuilder};
use jnvm_heap::HeapConfig;
use jnvm_pmem::{Pmem, PmemConfig};
use std::hint::black_box;

persistent_class! {
    pub class Cell {
        val value, set_value: i64;
    }
}

fn bench(c: &mut Criterion) {
    let pmem = Pmem::new(PmemConfig::perf(256 << 20));
    let rt = JnvmBuilder::new()
        .register::<Cell>()
        .create(pmem, HeapConfig::default())
        .unwrap();
    let cell = Cell::alloc_uninit(&rt);
    cell.set_value(0);
    cell.pwb();
    cell.validate();
    rt.pfence();

    let mut g = c.benchmark_group("fa");
    g.bench_function("direct_write_pwb_pfence", |b| {
        b.iter(|| {
            cell.set_value(black_box(1));
            cell.pwb();
            rt.pfence();
        })
    });
    g.bench_function("fa_block_single_write", |b| {
        b.iter(|| rt.fa(|| cell.set_value(black_box(2))))
    });
    g.bench_function("fa_block_ten_writes_one_object", |b| {
        b.iter(|| {
            rt.fa(|| {
                for i in 0..10 {
                    cell.set_value(black_box(i));
                }
            })
        })
    });
    g.bench_function("fa_block_alloc_and_free", |b| {
        b.iter(|| {
            rt.fa(|| {
                let c2 = Cell::alloc_uninit(&rt);
                c2.set_value(black_box(5));
                rt.free(c2);
            })
        })
    });
    g.bench_function("empty_fa_block", |b| b.iter(|| rt.fa(|| black_box(0))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
