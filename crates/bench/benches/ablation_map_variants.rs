//! Ablation (§4.3.2): base vs cached vs eager map variants — proxy-cache
//! hit cost and resurrection cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jnvm::{JnvmBuilder, PObject};
use jnvm_heap::HeapConfig;
use jnvm_jpdt::{register_jpdt, CacheMode, PBytes, PStringHashMap};
use jnvm_pmem::{Pmem, PmemConfig};
use std::hint::black_box;

const N: usize = 5000;

fn bench(c: &mut Criterion) {
    let pmem = Pmem::new(PmemConfig::perf(512 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .create(pmem, HeapConfig::default())
        .unwrap();

    // One populated map per mode (values are chained, not pooled, so the
    // proxy cache has real work to save).
    let mut maps = Vec::new();
    for mode in [CacheMode::Base, CacheMode::Cached, CacheMode::Eager] {
        let m = PStringHashMap::with_mode(&rt, mode).unwrap();
        for i in 0..N {
            let v = PBytes::new(&rt, &vec![1u8; 500]).unwrap();
            m.put(format!("key-{i}"), v.addr()).unwrap();
        }
        maps.push((mode, m));
    }

    let mut g = c.benchmark_group("map_variants");
    for (mode, m) in &maps {
        g.bench_with_input(
            BenchmarkId::new("get_value", format!("{mode:?}")),
            m,
            |b, m| {
                let k = "key-2500".to_string();
                b.iter(|| black_box(m.get_value(black_box(&k))))
            },
        );
    }
    // Resurrection cost: Base defers value-proxy creation, Eager pays it
    // upfront.
    let addr = maps[0].1.addr();
    for mode in [CacheMode::Base, CacheMode::Eager] {
        g.bench_with_input(
            BenchmarkId::new("resurrect", format!("{mode:?}")),
            &mode,
            |b, mode| {
                b.iter(|| black_box(PStringHashMap::open_with_mode(&rt, addr, *mode)))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
