//! Micro-costs of the simulated device: reads, writes, `pwb`, `pfence` —
//! the primitives behind every number in the paper's Table 3.

use criterion::{criterion_group, criterion_main, Criterion};
use jnvm_pmem::{Pmem, PmemConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pmem = Pmem::new(PmemConfig::perf(16 << 20));
    let crash = Pmem::new(PmemConfig::crash_sim(16 << 20));

    let mut g = c.benchmark_group("pmem");
    g.bench_function("read_u64_aligned", |b| {
        b.iter(|| black_box(pmem.read_u64(black_box(1024))))
    });
    g.bench_function("write_u64_aligned", |b| {
        b.iter(|| pmem.write_u64(black_box(1024), black_box(7)))
    });
    g.bench_function("read_u64_unaligned", |b| {
        b.iter(|| black_box(pmem.read_u64(black_box(1027))))
    });
    g.bench_function("read_bytes_256", |b| {
        let mut buf = [0u8; 256];
        b.iter(|| pmem.read_bytes(black_box(4096), &mut buf))
    });
    g.bench_function("write_bytes_256", |b| {
        let buf = [7u8; 256];
        b.iter(|| pmem.write_bytes(black_box(4096), &buf))
    });
    g.bench_function("pwb_pfence_perf_mode", |b| {
        b.iter(|| {
            pmem.write_u64(black_box(8192), 1);
            pmem.pwb(8192);
            pmem.pfence();
        })
    });
    g.bench_function("pwb_pfence_crashsim_mode", |b| {
        b.iter(|| {
            crash.write_u64(black_box(8192), 1);
            crash.pwb(8192);
            crash.pfence();
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
