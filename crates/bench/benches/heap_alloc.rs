//! Block-heap allocation costs: bump path, free-queue path, chains and
//! pooled small objects (§4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use jnvm_heap::{BlockHeap, HeapConfig, PoolManager};
use jnvm_pmem::{Pmem, PmemConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap");
    g.bench_function("alloc_free_single_block", |b| {
        let pmem = Pmem::new(PmemConfig::perf(256 << 20));
        let heap = BlockHeap::format(pmem, HeapConfig::default()).unwrap();
        b.iter(|| {
            let m = heap.alloc_chain(17, 100).unwrap();
            heap.free_object(m);
        })
    });
    g.bench_function("alloc_free_chain_4_blocks", |b| {
        let pmem = Pmem::new(PmemConfig::perf(256 << 20));
        let heap = BlockHeap::format(pmem, HeapConfig::default()).unwrap();
        b.iter(|| {
            let m = heap.alloc_chain(17, 900).unwrap();
            heap.free_object(m);
        })
    });
    g.bench_function("pooled_alloc_free_16b", |b| {
        let pmem = Pmem::new(PmemConfig::perf(256 << 20));
        let heap = BlockHeap::format(pmem, HeapConfig::default()).unwrap();
        let pools = PoolManager::new(Arc::clone(&heap));
        b.iter(|| {
            let a = pools.alloc(17, 16).unwrap();
            pools.free(a).unwrap();
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
