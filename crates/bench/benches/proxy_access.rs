//! Proxy mediation overhead: field access through a proxy vs raw device
//! access — the indirection the decoupling principle pays for (Table 3's
//! J-NVM-vs-C gap).

use criterion::{criterion_group, criterion_main, Criterion};
use jnvm::{JnvmBuilder, Proxy};
use jnvm_heap::HeapConfig;
use jnvm_jpdt::{register_jpdt, PLongArray};
use jnvm_pmem::{Pmem, PmemConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let pmem = Pmem::new(PmemConfig::perf(64 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    let id = rt.registry().id_of::<PLongArray>().unwrap();
    let p = Proxy::alloc(&rt, id, 1000); // 5 blocks
    p.pwb();
    p.validate();
    rt.pfence();

    let mut g = c.benchmark_group("proxy");
    g.bench_function("read_u64_first_block", |b| {
        b.iter(|| black_box(p.read_u64(black_box(8))))
    });
    g.bench_function("read_u64_last_block", |b| {
        b.iter(|| black_box(p.read_u64(black_box(992))))
    });
    g.bench_function("write_u64", |b| {
        b.iter(|| p.write_u64(black_box(8), black_box(9)))
    });
    g.bench_function("raw_read_u64_baseline", |b| {
        let addr = p.addr() + 16;
        b.iter(|| black_box(pmem.read_u64(black_box(addr))))
    });
    g.bench_function("proxy_open_5_blocks", |b| {
        let addr = p.addr();
        b.iter(|| black_box(Proxy::open(&rt, black_box(addr))))
    });
    g.bench_function("update_ref_figure6", |b| {
        let target = Proxy::alloc(&rt, id, 16);
        target.pwb();
        b.iter(|| p.update_ref(black_box(0), Some(&target)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
