//! Marshalling codec costs — the CPU work behind the FS/PCJ slowdown
//! (Figure 8's central claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jnvm_kvstore::{decode_record, encode_record, Record};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for field_len in [100usize, 1000, 10_000] {
        let rec = Record::ycsb(
            "user000000001234",
            &(0..10).map(|_| vec![0xabu8; field_len]).collect::<Vec<_>>(),
        );
        let bytes = encode_record(&rec);
        g.bench_with_input(
            BenchmarkId::new("encode", field_len * 10),
            &rec,
            |b, rec| b.iter(|| black_box(encode_record(black_box(rec)))),
        );
        g.bench_with_input(
            BenchmarkId::new("decode", field_len * 10),
            &bytes,
            |b, bytes| b.iter(|| black_box(decode_record(black_box(bytes)))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
