//! Ablation (§3.2.3 / Figure 5): batched validation with a single
//! `pfence` vs the naive fence-per-object protocol. The point of the
//! validity bit is to amortize fences across object graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jnvm::{persistent_class, JnvmBuilder};
use jnvm_heap::HeapConfig;
use jnvm_pmem::{Pmem, PmemConfig, LatencyProfile, SanitizeMode, SimMode};

persistent_class! {
    pub class Item {
        val value, set_value: i64;
        ref next, set_next, update_next: Item;
    }
}

fn bench(c: &mut Criterion) {
    // Optane-like fences: this ablation is about fence counts, so fence
    // latency must be realistic.
    let pmem = Pmem::new(PmemConfig {
        size: 1 << 30,
        mode: SimMode::Performance,
        latency: LatencyProfile::optane_like(),
        sanitize: SanitizeMode::from_env(),
        label: String::new(),
    });
    let rt = JnvmBuilder::new()
        .register::<Item>()
        .create(pmem, HeapConfig::default())
        .unwrap();

    let mut g = c.benchmark_group("validate_ablation");
    for n in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("fence_per_object", n), &n, |b, n| {
            b.iter(|| {
                let items: Vec<Item> = (0..*n)
                    .map(|i| {
                        let it = Item::alloc_uninit(&rt);
                        it.set_value(i as i64);
                        it.pwb();
                        it.validate();
                        rt.pfence(); // naive: one fence per object
                        it
                    })
                    .collect();
                for it in items {
                    rt.free(it);
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("batched_single_fence", n), &n, |b, n| {
            b.iter(|| {
                let items: Vec<Item> = (0..*n)
                    .map(|i| {
                        let it = Item::alloc_uninit(&rt);
                        it.set_value(i as i64);
                        it.pwb();
                        it.validate(); // fence-free
                        it
                    })
                    .collect();
                rt.pfence(); // Figure 5: one fence for the whole batch
                for it in items {
                    rt.free(it);
                }
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
