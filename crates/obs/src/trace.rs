//! Per-thread structured span tracer.
//!
//! Each thread that records a span owns a fixed-capacity ring
//! ([`RING_CAP`] slots). The owner writes slots without any lock — plain
//! atomic stores into its own slots, then a `Release` bump of the head —
//! and dump readers ([`recent_spans`]) take `Acquire` loads, so a dump
//! sees a prefix-consistent view of each ring. A reader racing the owner
//! on the *oldest* slot of a full ring may observe a half-overwritten
//! span; dumps are best-effort by design (they feed debugging output,
//! never invariants).
//!
//! Invariants are instead carried by **counters** that never wrap:
//! each ring's head is the thread's monotonic span total, each ring keeps
//! per-kind totals, and a process-global per-kind total is bumped on
//! every record. `sum over rings == global total` per kind is the
//! span-conservation invariant the obs test suite checks across
//! promotion/degrade transitions — rings are registered once and kept
//! alive after their thread exits, so a dying committer loses no spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{enabled, now};

/// Slots per thread ring.
pub const RING_CAP: usize = 1024;

/// Number of span kinds (array sizing for per-kind totals).
pub const SPAN_KINDS: usize = 7;

/// Sentinel returned by [`span_begin`] while observability is off.
pub const NOT_TRACING: u64 = u64::MAX;

/// The typed span vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// One failure-atomic stage call (redo-log build, no fences).
    FaStage = 0,
    /// One group commit: 3 fences amortized over the whole group.
    FaCommitGroup = 1,
    /// Streaming a write group to the backup replica.
    ReplSend = 2,
    /// Waiting for the backup's durability ack.
    ReplAck = 3,
    /// Recovery mark phase (parallel GC mark + nullify).
    RecoveryMark = 4,
    /// Recovery log-replay phase.
    RecoveryReplay = 5,
    /// A persist-ordering point (instant span; label = the point's label).
    OrderingPoint = 6,
}

impl SpanKind {
    /// All kinds, in discriminant order.
    pub fn all() -> [SpanKind; SPAN_KINDS] {
        [
            SpanKind::FaStage,
            SpanKind::FaCommitGroup,
            SpanKind::ReplSend,
            SpanKind::ReplAck,
            SpanKind::RecoveryMark,
            SpanKind::RecoveryReplay,
            SpanKind::OrderingPoint,
        ]
    }

    /// Stable wire/dump name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::FaStage => "fa_stage",
            SpanKind::FaCommitGroup => "fa_commit_group",
            SpanKind::ReplSend => "repl_send",
            SpanKind::ReplAck => "repl_ack",
            SpanKind::RecoveryMark => "recovery_mark",
            SpanKind::RecoveryReplay => "recovery_replay",
            SpanKind::OrderingPoint => "ordering_point",
        }
    }

    fn from_u8(v: u8) -> SpanKind {
        SpanKind::all()[(v as usize).min(SPAN_KINDS - 1)]
    }
}

/// Labels are interned to a `u32` so a ring slot is three plain words.
static LABELS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn intern(label: &'static str) -> u32 {
    thread_local! {
        // Tiny per-thread cache keyed by the &'static str's address — the
        // label vocabulary is ~a dozen literals, so a linear scan wins.
        static CACHE: std::cell::RefCell<Vec<(usize, u32)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let ptr = label.as_ptr() as usize;
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some((_, id)) = c.iter().find(|(p, _)| *p == ptr) {
            return *id;
        }
        let mut table = LABELS.lock().unwrap_or_else(|e| e.into_inner());
        let id = match table.iter().position(|l| *l == label) {
            Some(i) => i as u32,
            None => {
                table.push(label);
                (table.len() - 1) as u32
            }
        };
        drop(table);
        c.push((ptr, id));
        id
    })
}

fn label_name(id: u32) -> &'static str {
    let table = LABELS.lock().unwrap_or_else(|e| e.into_inner());
    table.get(id as usize).copied().unwrap_or("?")
}

struct Slot {
    /// kind in the high 32 bits, interned label id in the low 32.
    kind_label: AtomicU64,
    begin: AtomicU64,
    end: AtomicU64,
}

struct ThreadRing {
    name: String,
    slots: Vec<Slot>,
    /// Monotonic span total of this thread; slot index = head % RING_CAP.
    head: AtomicU64,
    kind_counts: [AtomicU64; SPAN_KINDS],
}

impl ThreadRing {
    fn new(name: String) -> ThreadRing {
        ThreadRing {
            name,
            slots: (0..RING_CAP)
                .map(|_| Slot {
                    kind_label: AtomicU64::new(0),
                    begin: AtomicU64::new(0),
                    end: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            kind_counts: [const { AtomicU64::new(0) }; SPAN_KINDS],
        }
    }

    /// Owner-thread only.
    fn push(&self, kind: SpanKind, label_id: u32, begin: u64, end: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) % RING_CAP];
        slot.kind_label
            .store(((kind as u64) << 32) | label_id as u64, Ordering::Relaxed);
        slot.begin.store(begin, Ordering::Relaxed);
        slot.end.store(end, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
        self.kind_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Rings are registered once per thread and never unregistered — a thread
/// that exits (a degraded committer, a finished recovery worker) leaves
/// its spans and totals behind for conservation checks and dumps.
static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

static GLOBAL_KIND_TOTALS: [AtomicU64; SPAN_KINDS] = [const { AtomicU64::new(0) }; SPAN_KINDS];

fn my_ring() -> Arc<ThreadRing> {
    thread_local! {
        static RING: std::cell::OnceCell<Arc<ThreadRing>> = const { std::cell::OnceCell::new() };
    }
    RING.with(|r| {
        Arc::clone(r.get_or_init(|| {
            let cur = std::thread::current();
            let name = match cur.name() {
                Some(n) => format!("{n}#{:?}", cur.id()),
                None => format!("{:?}", cur.id()),
            };
            let ring = Arc::new(ThreadRing::new(name));
            RINGS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        }))
    })
}

pub(crate) fn record_span(kind: SpanKind, label: &'static str, begin: u64, end: u64) {
    let id = intern(label);
    my_ring().push(kind, id, begin, end);
    GLOBAL_KIND_TOTALS[kind as usize].fetch_add(1, Ordering::Relaxed);
}

/// Open a span: the begin timestamp while tracing, [`NOT_TRACING`]
/// otherwise. Pass the result to [`span_end`] / [`span_end_labeled`].
#[inline]
pub fn span_begin() -> u64 {
    if enabled() {
        now()
    } else {
        NOT_TRACING
    }
}

/// Close an unlabeled span opened by [`span_begin`].
#[inline]
pub fn span_end(kind: SpanKind, begin: u64) {
    if begin != NOT_TRACING {
        record_span(kind, "", begin, now());
    }
}

/// Close a labeled span opened by [`span_begin`].
#[inline]
pub fn span_end_labeled(kind: SpanKind, label: &'static str, begin: u64) {
    if begin != NOT_TRACING {
        record_span(kind, label, begin, now());
    }
}

/// Record an instant (zero-width) span, e.g. an ordering point.
#[inline]
pub fn point_span(kind: SpanKind, label: &'static str) {
    if enabled() {
        let t = now();
        record_span(kind, label, t, t);
    }
}

/// One span as read back from a ring.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Kind of the span.
    pub kind: SpanKind,
    /// Ordering-point label, `""` for unlabeled kinds.
    pub label: &'static str,
    /// Begin timestamp (installed clock; modeled device ns).
    pub begin_ns: u64,
    /// End timestamp; equals `begin_ns` for instant spans.
    pub end_ns: u64,
    /// The thread-local monotonic sequence number of this span.
    pub seq: u64,
}

/// Best-effort dump: for every ring, its thread name, total spans ever
/// recorded, and up to `max_per_thread` most recent spans (oldest first).
pub fn recent_spans(max_per_thread: usize) -> Vec<(String, u64, Vec<SpanRecord>)> {
    let rings: Vec<Arc<ThreadRing>> = RINGS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    rings
        .iter()
        .map(|ring| {
            let head = ring.head.load(Ordering::Acquire);
            let n = head.min(RING_CAP as u64).min(max_per_thread as u64);
            let spans = (head - n..head)
                .map(|seq| {
                    let slot = &ring.slots[(seq as usize) % RING_CAP];
                    let kl = slot.kind_label.load(Ordering::Relaxed);
                    SpanRecord {
                        kind: SpanKind::from_u8((kl >> 32) as u8),
                        label: label_name(kl as u32),
                        begin_ns: slot.begin.load(Ordering::Relaxed),
                        end_ns: slot.end.load(Ordering::Relaxed),
                        seq,
                    }
                })
                .collect();
            (ring.name.clone(), head, spans)
        })
        .collect()
}

/// Process-global per-kind span totals (indexed by `SpanKind as usize`).
pub fn span_totals() -> [u64; SPAN_KINDS] {
    std::array::from_fn(|i| GLOBAL_KIND_TOTALS[i].load(Ordering::Relaxed))
}

/// Per-kind totals summed over every registered ring. Equals
/// [`span_totals`] whenever the process is quiescent — the conservation
/// invariant (no span lost when a thread dies, none double-counted).
pub fn ring_totals() -> [u64; SPAN_KINDS] {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = [0u64; SPAN_KINDS];
    for ring in rings.iter() {
        for (o, c) in out.iter_mut().zip(ring.kind_counts.iter()) {
            *o += c.load(Ordering::Relaxed);
        }
    }
    out
}

/// Number of registered thread rings (allocation witness for the
/// off-mode guard: recording while off must not create a ring).
pub fn ring_count() -> usize {
    RINGS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Render the recent spans of every thread as indented text — the `TRACE`
/// server reply and the faultsim timeline body.
pub fn trace_text(max_per_thread: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let totals = span_totals();
    let _ = write!(out, "spans");
    for k in SpanKind::all() {
        let _ = write!(out, " {}={}", k.name(), totals[k as usize]);
    }
    let _ = writeln!(out);
    for (thread, total, spans) in recent_spans(max_per_thread) {
        let _ = writeln!(out, "thread {thread} total={total} shown={}", spans.len());
        for s in spans {
            let label = if s.label.is_empty() {
                String::new()
            } else {
                format!(" {}", s.label)
            };
            let _ = writeln!(
                out,
                "  #{} [{}..{}] +{}ns {}{label}",
                s.seq,
                s.begin_ns,
                s.end_ns,
                s.end_ns.saturating_sub(s.begin_ns),
                s.kind.name(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, test_lock, ObsMode};

    #[test]
    fn spans_record_and_conserve() {
        let _g = test_lock();
        set_mode(ObsMode::Log);
        let before = span_totals();
        let t0 = span_begin();
        assert_ne!(t0, NOT_TRACING);
        span_end(SpanKind::FaStage, t0);
        point_span(SpanKind::OrderingPoint, "test-point");
        let after = span_totals();
        assert_eq!(
            after[SpanKind::FaStage as usize] - before[SpanKind::FaStage as usize],
            1
        );
        assert_eq!(
            after[SpanKind::OrderingPoint as usize] - before[SpanKind::OrderingPoint as usize],
            1
        );
        assert_eq!(ring_totals(), span_totals());
        let dumped = recent_spans(8);
        let mine = dumped
            .iter()
            .flat_map(|(_, _, spans)| spans.iter())
            .any(|s| s.kind == SpanKind::OrderingPoint && s.label == "test-point");
        assert!(mine, "recorded span must appear in the dump");
        set_mode(ObsMode::Off);
    }

    #[test]
    fn off_mode_records_nothing() {
        let _g = test_lock();
        set_mode(ObsMode::Off);
        let before = span_totals();
        let t0 = span_begin();
        assert_eq!(t0, NOT_TRACING);
        span_end(SpanKind::FaCommitGroup, t0);
        point_span(SpanKind::OrderingPoint, "never");
        assert_eq!(span_totals(), before);
    }

    #[test]
    fn ring_wraps_without_losing_counts() {
        let _g = test_lock();
        set_mode(ObsMode::Log);
        let before = span_totals()[SpanKind::ReplSend as usize];
        for _ in 0..RING_CAP + 10 {
            let t0 = span_begin();
            span_end(SpanKind::ReplSend, t0);
        }
        let after = span_totals()[SpanKind::ReplSend as usize];
        assert_eq!(after - before, (RING_CAP + 10) as u64);
        assert_eq!(ring_totals(), span_totals());
        // The dump holds at most RING_CAP of them.
        let shown: usize = recent_spans(RING_CAP * 2)
            .iter()
            .map(|(_, _, s)| s.len())
            .sum();
        assert!(shown > 0);
        set_mode(ObsMode::Off);
    }

    #[test]
    fn trace_text_mentions_threads_and_kinds() {
        let _g = test_lock();
        set_mode(ObsMode::Log);
        let t0 = span_begin();
        span_end(SpanKind::RecoveryReplay, t0);
        let text = trace_text(4);
        assert!(text.contains("recovery_replay"));
        assert!(text.contains("thread "));
        set_mode(ObsMode::Off);
    }
}
