//! Metrics registry: per-label fence/pwb accounting and named latency
//! histograms.
//!
//! ## The span/label contract
//!
//! Every persist-ordering-point label (`"fa-commit"`, `"kv-batch-ack"`,
//! …) is a metrics key. The device calls [`note_pwb`] / [`note_fence`] /
//! [`note_psync`] next to its own stats counters; the counts accumulate
//! in thread-local *pending* cells and are attributed to the **next**
//! ordering point the thread reaches ([`note_ordering_point`]) — an
//! ordering point asserts "everything I did up to here is persistent",
//! so the fences issued since the previous point are exactly the fences
//! that point paid for. A thread that exits (or a caller that wants the
//! books closed) flushes its leftover pending counts to the [`UNATTRIBUTED`]
//! label, so
//!
//! ```text
//! device pwbs   == Σ label.pwbs      (over all labels, incl. unattributed)
//! device fences == Σ label.pfences + label.psyncs
//! ```
//!
//! holds exactly at quiescence — the fence-conservation invariant checked
//! by `tests/obs_invariants.rs` across shards and replicas.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSummary};
use crate::trace::{point_span, SpanKind};
use crate::{enabled, mode, span_totals, ObsMode};

/// Label that absorbs fence/pwb counts never claimed by an ordering point
/// (e.g. pool-format fences on a thread that exits without reaching one).
pub const UNATTRIBUTED: &str = "(unattributed)";

struct LabelCell {
    name: &'static str,
    points: AtomicU64,
    pwbs: AtomicU64,
    pfences: AtomicU64,
    psyncs: AtomicU64,
}

static LABEL_CELLS: Mutex<Vec<Arc<LabelCell>>> = Mutex::new(Vec::new());

fn label_cell(name: &'static str) -> Arc<LabelCell> {
    let mut table = LABEL_CELLS.lock().unwrap_or_else(|e| e.into_inner());
    match table.iter().find(|c| c.name == name) {
        Some(c) => Arc::clone(c),
        None => {
            let cell = Arc::new(LabelCell {
                name,
                points: AtomicU64::new(0),
                pwbs: AtomicU64::new(0),
                pfences: AtomicU64::new(0),
                psyncs: AtomicU64::new(0),
            });
            table.push(Arc::clone(&cell));
            cell
        }
    }
}

fn cached_label_cell(name: &'static str) -> Arc<LabelCell> {
    thread_local! {
        static CACHE: std::cell::RefCell<Vec<(usize, Arc<LabelCell>)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let ptr = name.as_ptr() as usize;
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some((_, cell)) = c.iter().find(|(p, _)| *p == ptr) {
            return Arc::clone(cell);
        }
        let cell = label_cell(name);
        c.push((ptr, Arc::clone(&cell)));
        cell
    })
}

/// Thread-local fence/pwb counts not yet claimed by an ordering point.
struct Pending {
    pwbs: Cell<u64>,
    pfences: Cell<u64>,
    psyncs: Cell<u64>,
}

impl Pending {
    fn flush_into(&self, name: &'static str, count_point: bool) {
        let (w, f, s) = (self.pwbs.take(), self.pfences.take(), self.psyncs.take());
        if !count_point && w == 0 && f == 0 && s == 0 {
            return;
        }
        // Deliberately NOT the thread-local cache: this also runs from the
        // TLS destructor, when sibling thread-locals may be gone already.
        let cell = label_cell(name);
        if count_point {
            cell.points.fetch_add(1, Ordering::Relaxed);
        }
        cell.pwbs.fetch_add(w, Ordering::Relaxed);
        cell.pfences.fetch_add(f, Ordering::Relaxed);
        cell.psyncs.fetch_add(s, Ordering::Relaxed);
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        self.flush_into(UNATTRIBUTED, false);
    }
}

thread_local! {
    static PENDING: Pending = const {
        Pending { pwbs: Cell::new(0), pfences: Cell::new(0), psyncs: Cell::new(0) }
    };
}

/// Device hook: one `pwb` issued by this thread.
#[inline]
pub fn note_pwb() {
    if enabled() {
        let _ = PENDING.try_with(|p| p.pwbs.set(p.pwbs.get() + 1));
    }
}

/// Device hook: one `pfence` issued by this thread.
#[inline]
pub fn note_fence() {
    if enabled() {
        let _ = PENDING.try_with(|p| p.pfences.set(p.pfences.get() + 1));
    }
}

/// Device hook: one `psync` issued by this thread.
#[inline]
pub fn note_psync() {
    if enabled() {
        let _ = PENDING.try_with(|p| p.psyncs.set(p.psyncs.get() + 1));
    }
}

/// Device hook: this thread reached the ordering point `label`. Claims the
/// thread's pending fence/pwb counts for the label and records an instant
/// `ordering_point` span.
#[inline]
pub fn note_ordering_point(label: &'static str) {
    if enabled() {
        let cell = cached_label_cell(label);
        let _ = PENDING.try_with(|p| {
            let (w, f, s) = (p.pwbs.take(), p.pfences.take(), p.psyncs.take());
            cell.pwbs.fetch_add(w, Ordering::Relaxed);
            cell.pfences.fetch_add(f, Ordering::Relaxed);
            cell.psyncs.fetch_add(s, Ordering::Relaxed);
        });
        cell.points.fetch_add(1, Ordering::Relaxed);
        point_span(SpanKind::OrderingPoint, label);
    }
}

/// Close this thread's books: flush pending counts to [`UNATTRIBUTED`]
/// without waiting for thread exit. Call at a quiescent point before
/// asserting fence conservation.
pub fn flush_thread_pending() {
    let _ = PENDING.try_with(|p| p.flush_into(UNATTRIBUTED, false));
}

// ---------------------------------------------------------------------------
// Named latency histograms.

type HistHandle = Arc<Mutex<Histogram>>;

static HISTS: Mutex<Vec<(&'static str, HistHandle)>> = Mutex::new(Vec::new());

fn hist_handle(name: &'static str) -> HistHandle {
    let mut table = HISTS.lock().unwrap_or_else(|e| e.into_inner());
    match table.iter().find(|(n, _)| *n == name) {
        Some((_, h)) => Arc::clone(h),
        None => {
            let h = Arc::new(Mutex::new(Histogram::new()));
            table.push((name, Arc::clone(&h)));
            h
        }
    }
}

/// Record one latency sample (ns) into the named registry histogram.
/// No-op (and no allocation) while observability is off.
#[inline]
pub fn record_latency(name: &'static str, ns: u64) {
    if enabled() {
        thread_local! {
            static CACHE: std::cell::RefCell<Vec<(usize, Arc<Mutex<Histogram>>)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let ptr = name.as_ptr() as usize;
        let handle = CACHE.with(|c| {
            let mut c = c.borrow_mut();
            if let Some((_, h)) = c.iter().find(|(p, _)| *p == ptr) {
                return Arc::clone(h);
            }
            let h = hist_handle(name);
            c.push((ptr, Arc::clone(&h)));
            h
        });
        handle.lock().unwrap_or_else(|e| e.into_inner()).record(ns);
    }
}

// ---------------------------------------------------------------------------
// Snapshots.

/// One label's counters as of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelCounts {
    /// The ordering-point label (or [`UNATTRIBUTED`]).
    pub name: &'static str,
    /// Ordering points reached under this label.
    pub points: u64,
    /// `pwb`s attributed to this label.
    pub pwbs: u64,
    /// `pfence`s attributed to this label.
    pub pfences: u64,
    /// `psync`s attributed to this label.
    pub psyncs: u64,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-label fence/pwb accounting, in registration order.
    pub labels: Vec<LabelCounts>,
    /// Named latency histograms (full sketches, not just summaries, so
    /// callers can merge or re-quantile).
    pub hists: Vec<(&'static str, Histogram)>,
}

impl MetricsSnapshot {
    /// The counts for one label, if it has been seen.
    pub fn label(&self, name: &str) -> Option<&LabelCounts> {
        self.labels.iter().find(|l| l.name == name)
    }

    /// Total pwbs attributed across all labels.
    pub fn pwbs(&self) -> u64 {
        self.labels.iter().map(|l| l.pwbs).sum()
    }

    /// Total fences (`pfence` + `psync`) attributed across all labels.
    pub fn fences(&self) -> u64 {
        self.labels.iter().map(|l| l.pfences + l.psyncs).sum()
    }

    /// Sample count of the named histogram (0 if absent).
    pub fn hist_count(&self, name: &str) -> u64 {
        self.hists
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, h)| h.count())
    }

    /// Summary of the named histogram, if present.
    pub fn hist_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.hists
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h.summary())
    }
}

/// Copy the registry. Counters are read `Relaxed`, so concurrent writers
/// may be mid-flight — exact equalities only hold at quiescence.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let labels = LABEL_CELLS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|c| LabelCounts {
            name: c.name,
            points: c.points.load(Ordering::Relaxed),
            pwbs: c.pwbs.load(Ordering::Relaxed),
            pfences: c.pfences.load(Ordering::Relaxed),
            psyncs: c.psyncs.load(Ordering::Relaxed),
        })
        .collect();
    let hists = HISTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(n, h)| (*n, h.lock().unwrap_or_else(|e| e.into_inner()).clone()))
        .collect();
    MetricsSnapshot { labels, hists }
}

/// Render the registry as the `METRICS` wire/text report.
pub fn metrics_text() -> String {
    use std::fmt::Write;
    let snap = metrics_snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "obs_mode={}",
        match mode() {
            ObsMode::Off => "off",
            ObsMode::Log => "log",
        }
    );
    let totals = span_totals();
    let _ = write!(out, "spans");
    for k in crate::SpanKind::all() {
        let _ = write!(out, " {}={}", k.name(), totals[k as usize]);
    }
    let _ = writeln!(out);
    for l in &snap.labels {
        let _ = writeln!(
            out,
            "label {} points={} pwbs={} pfences={} psyncs={}",
            l.name, l.points, l.pwbs, l.pfences, l.psyncs
        );
    }
    for (name, h) in &snap.hists {
        let _ = writeln!(out, "hist {} count={} {}", name, h.count(), h.summary().display_us());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, test_lock, ObsMode};

    #[test]
    fn pending_counts_attribute_to_the_next_ordering_point() {
        let _g = test_lock();
        set_mode(ObsMode::Log);
        let before = metrics_snapshot();
        let b = |s: &MetricsSnapshot, n: &str| s.label(n).cloned().unwrap_or(LabelCounts {
            name: "",
            points: 0,
            pwbs: 0,
            pfences: 0,
            psyncs: 0,
        });
        note_pwb();
        note_pwb();
        note_fence();
        note_ordering_point("obs-metrics-test-a");
        note_psync();
        note_ordering_point("obs-metrics-test-b");
        let after = metrics_snapshot();
        let (a0, a1) = (
            b(&before, "obs-metrics-test-a"),
            b(&after, "obs-metrics-test-a"),
        );
        assert_eq!(a1.points - a0.points, 1);
        assert_eq!(a1.pwbs - a0.pwbs, 2);
        assert_eq!(a1.pfences - a0.pfences, 1);
        assert_eq!(a1.psyncs - a0.psyncs, 0);
        let (b0, b1) = (
            b(&before, "obs-metrics-test-b"),
            b(&after, "obs-metrics-test-b"),
        );
        assert_eq!(b1.points - b0.points, 1);
        assert_eq!(b1.psyncs - b0.psyncs, 1);
        assert_eq!(b1.pwbs - b0.pwbs, 0);
        set_mode(ObsMode::Off);
    }

    #[test]
    fn leftover_counts_flush_to_unattributed() {
        let _g = test_lock();
        set_mode(ObsMode::Log);
        let before = metrics_snapshot().label(UNATTRIBUTED).map_or(0, |l| l.pwbs);
        std::thread::spawn(|| {
            note_pwb();
            note_pwb();
            // Thread exits without reaching an ordering point: the TLS
            // destructor must flush both pwbs to the unattributed label.
        })
        .join()
        .unwrap();
        let after = metrics_snapshot().label(UNATTRIBUTED).map_or(0, |l| l.pwbs);
        assert_eq!(after - before, 2);
        // And an explicit flush does the same for the calling thread.
        note_fence();
        let f0 = metrics_snapshot()
            .label(UNATTRIBUTED)
            .map_or(0, |l| l.pfences);
        flush_thread_pending();
        let f1 = metrics_snapshot()
            .label(UNATTRIBUTED)
            .map_or(0, |l| l.pfences);
        assert_eq!(f1 - f0, 1);
        set_mode(ObsMode::Off);
    }

    #[test]
    fn off_mode_moves_no_counters() {
        let _g = test_lock();
        set_mode(ObsMode::Off);
        let before = metrics_snapshot();
        note_pwb();
        note_fence();
        note_psync();
        note_ordering_point("off-mode-label-never-created");
        record_latency("off-mode-hist-never-created", 123);
        flush_thread_pending();
        let after = metrics_snapshot();
        assert_eq!(after.labels, before.labels);
        assert_eq!(after.hists.len(), before.hists.len());
        assert!(after.label("off-mode-label-never-created").is_none());
        assert_eq!(after.hist_count("off-mode-hist-never-created"), 0);
    }

    #[test]
    fn latency_histograms_register_and_record() {
        let _g = test_lock();
        set_mode(ObsMode::Log);
        let before = metrics_snapshot().hist_count("obs-metrics-test-lat");
        record_latency("obs-metrics-test-lat", 1_000);
        record_latency("obs-metrics-test-lat", 2_000);
        let snap = metrics_snapshot();
        assert_eq!(snap.hist_count("obs-metrics-test-lat") - before, 2);
        assert!(snap.hist_summary("obs-metrics-test-lat").is_some());
        let text = metrics_text();
        assert!(text.contains("hist obs-metrics-test-lat"));
        assert!(text.contains("obs_mode=log"));
        set_mode(ObsMode::Off);
    }
}
