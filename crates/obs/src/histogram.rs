//! Log-bucketed latency histograms (an HdrHistogram-like sketch).

/// Nanosecond latency histogram with logarithmic major buckets and linear
/// sub-buckets — constant memory, ~3 % relative error, cheap record path.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// buckets[major][sub]: major = floor(log2(v)) clamped, 32 sub-buckets.
    buckets: Vec<[u64; Histogram::SUBS]>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    const MAJORS: usize = 44; // up to ~17.6 s in ns
    const SUBS: usize = 32;

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![[0; Histogram::SUBS]; Histogram::MAJORS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn slot(v: u64) -> (usize, usize) {
        let v = v.max(1);
        let major = (63 - v.leading_zeros() as usize).min(Histogram::MAJORS - 1);
        let sub = if major < 5 {
            0
        } else {
            ((v >> (major - 5)) & 0x1f) as usize
        };
        (major, sub)
    }

    /// Record one latency value (nanoseconds).
    pub fn record(&mut self, v: u64) {
        let (major, sub) = Histogram::slot(v);
        self.buckets[major][sub] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (m, subs) in other.buckets.iter().enumerate() {
            for (s, c) in subs.iter().enumerate() {
                self.buckets[m][s] += c;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (ns).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]` (ns).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // q = 0 would give target 0, which the leading *empty* buckets
        // satisfy (0 >= 0) — selecting a bucket below every sample. The
        // smallest meaningful rank is the first sample.
        let target = (((q.clamp(0.0, 1.0)) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (m, subs) in self.buckets.iter().enumerate() {
            for (s, c) in subs.iter().enumerate() {
                seen += c;
                if seen >= target {
                    // Representative value of the bucket: its lower bound,
                    // clamped to the observed range — the lower bound of a
                    // sample's bucket can sit below the sample itself (e.g.
                    // a single 1000 lands in the bucket starting at 992),
                    // and a quantile below the minimum is nonsense.
                    let base = 1u64 << m;
                    let width = if m < 5 { 1 } else { 1u64 << (m - 5) };
                    return (base + s as u64 * width).clamp(self.min, self.max);
                }
            }
        }
        self.max
    }

    /// Condensed summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_ns: self.mean(),
            min_ns: if self.count == 0 { 0 } else { self.min },
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            p9999_ns: self.quantile(0.9999),
            max_ns: self.max,
        }
    }
}

/// Percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Minimum (ns).
    pub min_ns: u64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// 99.9th percentile (ns).
    pub p999_ns: u64,
    /// 99.99th percentile (ns).
    pub p9999_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl HistogramSummary {
    /// Render as `mean/p50/p99/p9999/max` in microseconds.
    pub fn display_us(&self) -> String {
        format!(
            "mean {:.1}us p50 {:.1}us p99 {:.1}us p99.99 {:.1}us max {:.1}us",
            self.mean_ns / 1e3,
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.p9999_ns as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1..1000 us
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.mean_ns - 500_500.0).abs() < 1000.0);
        // ~3% bucket error, allow 10%.
        let p50 = s.p50_ns as f64;
        assert!((450_000.0..=550_000.0).contains(&p50), "p50 {p50}");
        let p99 = s.p99_ns as f64;
        assert!((900_000.0..=1_010_000.0).contains(&p99), "p99 {p99}");
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(s.min_ns, 1000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.summary().max_ns, 1_000_000);
        assert_eq!(a.summary().min_ns, 100);
    }

    #[test]
    fn merged_percentiles_match_single_combined_histogram() {
        // Three per-worker histograms vs one histogram fed every sample:
        // merge must be lossless, so every percentile matches exactly.
        let mut combined = Histogram::new();
        let mut merged = Histogram::new();
        let mut x = 7u64;
        for w in 0..3u64 {
            let mut part = Histogram::new();
            for i in 0..5_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(w * 1_000 + i);
                let v = x % 5_000_000 + 1;
                part.record(v);
                combined.record(v);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), combined.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0] {
            assert_eq!(
                merged.quantile(q),
                combined.quantile(q),
                "quantile {q} diverged after merge"
            );
        }
        assert_eq!(merged.summary(), combined.summary());
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(s.mean_ns, 0.0);
    }

    #[test]
    fn extreme_values_clamp() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn quantile_zero_is_the_minimum() {
        // Regression: target rank 0 used to match the leading empty
        // bucket and return 1, below every recorded sample.
        let mut h = Histogram::new();
        for v in [5_000u64, 9_000, 123_456] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
        assert!(h.quantile(0.0) >= 4_800, "q=0 must sit at the min bucket");
        assert!(h.quantile(0.0) <= 5_000);
    }

    #[test]
    fn single_sample_quantiles_never_undercut_the_sample() {
        // Regression: the bucket lower bound for 1000 is 992; every
        // quantile of a single-sample histogram must be exactly it.
        let mut h = Histogram::new();
        h.record(1000);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1000, "q={q}");
        }
        let s = h.summary();
        assert_eq!(s.min_ns, 1000);
        assert_eq!(s.p50_ns, 1000);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut h = Histogram::new();
        for v in [1_000u64, 2_000, 3_000] {
            h.record(v);
        }
        let before = h.summary();
        h.merge(&Histogram::new());
        assert_eq!(h.summary(), before, "merging an empty histogram in");
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty.summary(), before, "merging into an empty histogram");
        // And empty-into-empty stays a well-formed empty histogram.
        let mut e2 = Histogram::new();
        e2.merge(&Histogram::new());
        assert_eq!(e2.count(), 0);
        assert_eq!(e2.quantile(0.5), 0);
        assert_eq!(e2.summary().min_ns, 0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record(x % 10_000_000 + 1);
        }
        let qs: Vec<u64> = [0.1, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|q| h.quantile(*q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "{qs:?}");
        }
    }
}
