//! # jnvm-obs — zero-cost-when-off observability for the J-NVM stack
//!
//! Three pieces, all process-global and all gated behind a single mode
//! branch per call site:
//!
//! * a **structured span tracer** ([`trace`]): each thread owns a
//!   fixed-capacity ring of typed spans (`fa_stage`, `fa_commit_group`,
//!   `repl_send`/`repl_ack`, `recovery_mark`/`recovery_replay`,
//!   `ordering_point`), written lock-free by the owner and readable
//!   best-effort by anyone (the `TRACE` server command, the faultsim
//!   timeline dump). Timestamps come from the installed clock — the
//!   device's `thread_charged_ns` modeled-time counter — so traces show
//!   simulated device time, which is meaningful even on a 1-CPU container
//!   where wall clock cannot exhibit parallelism.
//! * a **metrics registry** ([`metrics`]): per-label fence/pwb counters
//!   keyed by the persist-ordering-point labels (every `ordering_point`
//!   label is a metrics key — see DESIGN.md), plus named latency
//!   histograms ([`Histogram`]) for per-op latency (the server's
//!   commit-ack path records here).
//! * the **mode switch** (this module): `JNVM_OBS=off|log`, overridable
//!   in-process via [`set_mode`] for tests and benches. While the mode is
//!   `Off`, every entry point reduces to one never-taken branch — no
//!   allocation, no TLS ring creation, no counter movement
//!   (`fig15_obs_overhead` and the off-mode guard test hold it to that).
//!
//! ## Why a clock *installation* instead of a clock dependency
//!
//! The natural clock is `jnvm_pmem::thread_charged_ns`, but `jnvm-pmem`
//! depends on this crate (the device is the biggest span producer), so
//! the clock arrives at runtime: `Pmem::new` calls [`install_clock`] with
//! the charged-time function. Before any device exists, [`now`] returns 0
//! — spans recorded that early are still counted, just timeless.

mod histogram;
pub mod metrics;
pub mod trace;

pub use histogram::{Histogram, HistogramSummary};
pub use metrics::{
    flush_thread_pending, metrics_snapshot, metrics_text, note_fence, note_ordering_point,
    note_psync, note_pwb, record_latency, LabelCounts, MetricsSnapshot, UNATTRIBUTED,
};
pub use trace::{
    point_span, recent_spans, ring_count, ring_totals, span_begin, span_end, span_end_labeled,
    span_totals, trace_text, SpanKind, SpanRecord, NOT_TRACING, SPAN_KINDS,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Observability mode, resolved from `JNVM_OBS` on first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// All entry points are one never-taken branch.
    Off,
    /// Spans, per-label fence accounting and histograms are live.
    Log,
}

impl ObsMode {
    /// Parse `JNVM_OBS`. Unset, empty, `off` and `0` mean [`ObsMode::Off`];
    /// `log` (or `on`/`1`) means [`ObsMode::Log`]. Anything else panics —
    /// a typo must not silently disable observability (same contract as
    /// `JNVM_SANITIZE`).
    pub fn from_env() -> ObsMode {
        match std::env::var("JNVM_OBS").as_deref() {
            Err(_) | Ok("") | Ok("off") | Ok("0") => ObsMode::Off,
            Ok("log") | Ok("on") | Ok("1") => ObsMode::Log,
            Ok(other) => panic!("JNVM_OBS={other:?}: expected off|log"),
        }
    }
}

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_LOG: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// The one branch every span/counter site pays while observability is off.
#[inline]
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_LOG => true,
        MODE_OFF => false,
        _ => init_mode(),
    }
}

#[cold]
fn init_mode() -> bool {
    let m = ObsMode::from_env();
    set_mode(m);
    m == ObsMode::Log
}

/// Current mode (resolving the environment if not yet resolved).
pub fn mode() -> ObsMode {
    if enabled() {
        ObsMode::Log
    } else {
        ObsMode::Off
    }
}

/// Override the mode in-process (tests, benches, `--trace`). Wins over the
/// environment; safe to flip repeatedly.
pub fn set_mode(m: ObsMode) {
    let v = match m {
        ObsMode::Off => MODE_OFF,
        ObsMode::Log => MODE_LOG,
    };
    MODE.store(v, Ordering::Relaxed);
}

static CLOCK: OnceLock<fn() -> u64> = OnceLock::new();

/// Install the span timestamp source (first installation wins; later calls
/// are no-ops, so every `Pmem::new` may call this unconditionally).
pub fn install_clock(f: fn() -> u64) {
    let _ = CLOCK.set(f);
}

/// Current timestamp from the installed clock, 0 if none is installed.
#[inline]
pub fn now() -> u64 {
    CLOCK.get().map_or(0, |f| f())
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // Mode, rings and registry are process-global; tests that flip the
    // mode or assert on totals serialize here.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_override_flips_enabled() {
        let _g = test_lock();
        set_mode(ObsMode::Off);
        assert!(!enabled());
        assert_eq!(mode(), ObsMode::Off);
        set_mode(ObsMode::Log);
        assert!(enabled());
        assert_eq!(mode(), ObsMode::Log);
        set_mode(ObsMode::Off);
    }

    #[test]
    fn clock_installation_is_first_wins() {
        fn fixed() -> u64 {
            42
        }
        fn other() -> u64 {
            7
        }
        install_clock(fixed);
        install_clock(other);
        assert_eq!(now(), 42);
    }
}
