//! # jnvm-lincheck — durable linearizability for the KV torture suites
//!
//! Every torture so far verifies *per-key* safety: acked ⇒ durable,
//! untorn records, allowed-states windows. None of them verifies that the
//! concurrent client histories are actually **linearizable** — that there
//! exists one sequential order of all operations, consistent with
//! real-time order and with every observed result. This crate closes that
//! gap with two pieces:
//!
//! 1. **History capture** ([`Clock`], [`ClientRecorder`], [`History`]):
//!    invocation/response-timestamped op events, recorded lock-free per
//!    client thread (each client owns its event vector; the only shared
//!    state is one atomic counter whose `fetch_add` stamps define a total
//!    order consistent with real time).
//! 2. **Checking** ([`check`]): a Wing–Gong linearizability search with
//!    P-compositionality — the history is partitioned per key and each
//!    partition is checked independently against the KV sequential
//!    specification. Single-key operations make a KV history linearizable
//!    iff every per-key subhistory is (Herlihy–Wing locality), and the
//!    partition is what keeps torture-scale histories tractable: the
//!    search is exponential in ops-per-*key*, not ops-per-run.
//!
//! ## Durable linearizability across a crash
//!
//! The tortures inject a power failure mid-traffic, recover the surviving
//! replica(s), and want the *combined* history — pre-crash traffic plus
//! the recovered state — to linearize. Two pieces of crash semantics:
//!
//! * An operation in flight at the crash (no reply, or an error reply)
//!   is [`Outcome::Indeterminate`]: it **may linearize or may vanish**.
//!   The search explores both branches.
//! * The crash is a **durability barrier**: an op acked before the crash
//!   must survive into the post-recovery history. This is not special
//!   code in the checker — [`History::observe`] appends the recovered
//!   state of every key as determinate read events whose invocation
//!   timestamps follow every pre-crash response, so ordinary
//!   linearizability forces every acked write to be ordered before the
//!   final reads, and its effect to be visible there unless a later op
//!   legally overwrote it. [`History::mark_crash`] records the barrier
//!   timestamp so reports can split the history, and so the checker can
//!   reject histories whose "post-recovery" observations were recorded
//!   before the crash mark.
//!
//! What this convicts that the allowed-states windows cannot: a read that
//! served a value which was later *not* the one made durable (dirty
//! read), a read that travelled backwards in a key's history (stale
//! read), and any cross-key ordering inversion — by locality, an
//! inversion always surfaces as some single key whose subhistory has no
//! valid linearization.

pub mod check;

pub use check::{check, CheckReport, Violation};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Field values of one record, positionally (the YCSB data model the
/// whole workspace traffics in). The checker only ever compares these for
/// equality, so any stable encoding of "the record's value" works.
pub type FieldVals = Vec<Vec<u8>>;

/// The operation a client invoked.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read the key's record.
    Get,
    /// Insert or replace the whole record.
    Set(FieldVals),
    /// Replace one positional field.
    SetField(usize, Vec<u8>),
    /// Remove the record.
    Del,
}

impl OpKind {
    /// Short tag for reports and digests.
    pub fn tag(&self) -> &'static str {
        match self {
            OpKind::Get => "GET",
            OpKind::Set(_) => "SET",
            OpKind::SetField(..) => "SETF",
            OpKind::Del => "DEL",
        }
    }
}

/// What the client observed the operation do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Write acknowledged (took effect exactly once).
    Ok,
    /// The target was absent (a GET that found nothing, or a write that
    /// answered NotFound).
    NotFound,
    /// A GET that returned this record value.
    Value(FieldVals),
    /// No reply, or an error reply: the op may have taken effect or not.
    /// The checker lets it linearize anywhere in its interval — or
    /// vanish.
    Indeterminate,
}

/// One recorded operation: interval `[inv, res]` on the shared clock,
/// plus the invoked op and its observed outcome. `res == None` means the
/// op was still pending when the history ended (a crash, usually) and may
/// linearize at any point after `inv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The recording client (connection / worker index).
    pub client: usize,
    /// The client's own op counter (0-based), for witness reporting.
    pub seq: usize,
    /// Key the op targets.
    pub key: String,
    /// The invoked operation.
    pub kind: OpKind,
    /// The observed result.
    pub outcome: Outcome,
    /// Invocation timestamp (shared-clock tick).
    pub inv: u64,
    /// Response timestamp; `None` = pending forever (res = ∞).
    pub res: Option<u64>,
}

impl Event {
    /// True when the outcome pins the op's effect (it definitely executed
    /// exactly once with the recorded result).
    pub fn determinate(&self) -> bool {
        self.outcome != Outcome::Indeterminate
    }

    /// One-line rendering for witnesses.
    pub fn display(&self) -> String {
        let res = match self.res {
            Some(t) => t.to_string(),
            None => "∞".to_string(),
        };
        let out = match &self.outcome {
            Outcome::Ok => "ok".to_string(),
            Outcome::NotFound => "notfound".to_string(),
            Outcome::Value(v) => format!(
                "value({} fields, field0 {:?}…)",
                v.len(),
                v.first().map(|f| &f[..f.len().min(8)])
            ),
            Outcome::Indeterminate => "?".to_string(),
        };
        format!(
            "client {} op {}: {} {} -> {} @[{}, {}]",
            self.client,
            self.seq,
            self.kind.tag(),
            self.key,
            out,
            self.inv,
            res
        )
    }
}

/// The shared logical clock. `now()` is one `fetch_add` on an atomic —
/// the stamps it hands out form a total order consistent with real time:
/// if a response was stamped before another op's invocation, the first op
/// really finished before the second began. That is the only property
/// linearizability needs from time.
#[derive(Debug, Clone, Default)]
pub struct Clock(Arc<AtomicU64>);

impl Clock {
    /// Fresh clock at tick 0.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Take the next tick.
    pub fn now(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// Handle to an invoked-but-unresolved op (index into the recorder's
/// event vector).
#[derive(Debug, Clone, Copy)]
pub struct OpToken(usize);

/// Per-client event recorder. Each client thread owns one; recording is a
/// `Vec::push` plus one atomic tick — no locks, no cross-thread sharing
/// beyond the clock. Collect the recorders into a [`History`] after the
/// run.
#[derive(Debug)]
pub struct ClientRecorder {
    clock: Clock,
    client: usize,
    seq: usize,
    events: Vec<Event>,
}

impl ClientRecorder {
    /// Recorder for client `client` on the shared `clock`.
    pub fn new(clock: &Clock, client: usize) -> ClientRecorder {
        ClientRecorder {
            clock: clock.clone(),
            client,
            seq: 0,
            events: Vec::new(),
        }
    }

    /// Record an invocation. The op stays [`Outcome::Indeterminate`] with
    /// `res = None` until [`resolve`](Self::resolve) — exactly the state
    /// a crash leaves an in-flight op in.
    pub fn invoke(&mut self, key: &str, kind: OpKind) -> OpToken {
        let inv = self.clock.now();
        self.events.push(Event {
            client: self.client,
            seq: self.seq,
            key: key.to_string(),
            kind,
            outcome: Outcome::Indeterminate,
            inv,
            res: None,
        });
        self.seq += 1;
        OpToken(self.events.len() - 1)
    }

    /// Record the response for an earlier invocation. Passing
    /// [`Outcome::Indeterminate`] stamps the response time but leaves the
    /// effect unknown (an `Err` reply: the op ended, but whether it took
    /// effect did not become observable).
    pub fn resolve(&mut self, tok: OpToken, outcome: Outcome) {
        let ev = &mut self.events[tok.0];
        debug_assert!(ev.res.is_none(), "op resolved twice");
        ev.res = Some(self.clock.now());
        ev.outcome = outcome;
    }

    /// The recorded events, in invocation order for this client.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

/// A complete run: every client's events, the crash barrier (if one was
/// injected), and the post-recovery observation phase.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All recorded events (any order; the checker sorts per key).
    pub events: Vec<Event>,
    /// Clock tick of the durability barrier, when a crash was injected.
    pub crash_at: Option<u64>,
    clock: Clock,
}

impl History {
    /// Assemble a history from per-client recorders. The clock must be
    /// the one the recorders stamped with — observation events continue
    /// on it.
    pub fn collect(
        clock: Clock,
        recorders: impl IntoIterator<Item = ClientRecorder>,
    ) -> History {
        let mut events = Vec::new();
        for r in recorders {
            events.extend(r.into_events());
        }
        History {
            events,
            crash_at: None,
            clock,
        }
    }

    /// Record the durability barrier: everything stamped before this tick
    /// is pre-crash, every observation appended after it is post-recovery
    /// state. Call once, after traffic has quiesced and before
    /// [`observe`](Self::observe).
    pub fn mark_crash(&mut self) {
        self.crash_at = Some(self.clock.now());
    }

    /// Append one post-recovery observation: the recovered store holds
    /// `state` for `key`. Rendered as a determinate GET whose invocation
    /// follows every prior response, so plain linearizability enforces
    /// the crash's durability barrier (an acked pre-crash write the
    /// observation misses has no valid order).
    pub fn observe(&mut self, key: &str, state: Option<FieldVals>) {
        let inv = self.clock.now();
        let res = self.clock.now();
        self.events.push(Event {
            client: usize::MAX,
            seq: self.events.len(),
            key: key.to_string(),
            kind: OpKind::Get,
            outcome: match state {
                Some(v) => Outcome::Value(v),
                None => Outcome::NotFound,
            },
            inv,
            res: Some(res),
        });
    }

    /// The distinct keys the history touches, sorted.
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.events.iter().map(|e| e.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Deterministic byte encoding of the **invocation sequence**: per
    /// client (sorted), each invoked op's key and kind (with payload),
    /// in invocation order — no timestamps, no outcomes. Two runs at the
    /// same seed must produce byte-identical digests; see the seeded
    /// determinism test in `tests/lincheck.rs`.
    pub fn invocation_digest(&self) -> Vec<u8> {
        let mut by_client: Vec<&Event> =
            self.events.iter().filter(|e| e.client != usize::MAX).collect();
        by_client.sort_by_key(|e| (e.client, e.seq));
        let mut out = Vec::new();
        for e in by_client {
            out.extend_from_slice(&(e.client as u64).to_le_bytes());
            out.extend_from_slice(&(e.key.len() as u32).to_le_bytes());
            out.extend_from_slice(e.key.as_bytes());
            out.extend_from_slice(e.kind.tag().as_bytes());
            match &e.kind {
                OpKind::Set(fields) => {
                    out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
                    for f in fields {
                        out.extend_from_slice(&(f.len() as u32).to_le_bytes());
                        out.extend_from_slice(f);
                    }
                }
                OpKind::SetField(i, v) => {
                    out.extend_from_slice(&(*i as u32).to_le_bytes());
                    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    out.extend_from_slice(v);
                }
                OpKind::Get | OpKind::Del => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ticks_are_strictly_increasing() {
        let c = Clock::new();
        let a = c.now();
        let b = c.now();
        assert!(b > a);
        let c2 = c.clone();
        assert!(c2.now() > b, "clones share the counter");
    }

    #[test]
    fn recorder_stamps_intervals_in_order() {
        let clock = Clock::new();
        let mut r = ClientRecorder::new(&clock, 3);
        let t1 = r.invoke("k", OpKind::Set(vec![b"v".to_vec()]));
        let t2 = r.invoke("k", OpKind::Get);
        r.resolve(t1, Outcome::Ok);
        r.resolve(t2, Outcome::Value(vec![b"v".to_vec()]));
        let ev = r.into_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].client, 3);
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[1].seq, 1);
        assert!(ev[0].inv < ev[1].inv, "invocations in order");
        assert!(ev[1].inv < ev[0].res.unwrap(), "pipelined ops overlap");
        assert!(ev[0].determinate());
    }

    #[test]
    fn unresolved_ops_stay_indeterminate() {
        let clock = Clock::new();
        let mut r = ClientRecorder::new(&clock, 0);
        r.invoke("k", OpKind::Del);
        let ev = r.into_events();
        assert_eq!(ev[0].outcome, Outcome::Indeterminate);
        assert_eq!(ev[0].res, None);
        assert!(!ev[0].determinate());
    }

    #[test]
    fn observe_lands_after_the_crash_mark() {
        let clock = Clock::new();
        let mut r = ClientRecorder::new(&clock, 0);
        let t = r.invoke("k", OpKind::Set(vec![b"v".to_vec()]));
        r.resolve(t, Outcome::Ok);
        let mut h = History::collect(clock, [r]);
        h.mark_crash();
        h.observe("k", Some(vec![b"v".to_vec()]));
        let crash = h.crash_at.expect("marked");
        let obs = h.events.last().unwrap();
        assert!(obs.inv > crash);
        assert!(h.events[0].res.unwrap() < crash, "acked before the barrier");
        assert_eq!(h.keys(), vec!["k"]);
    }

    #[test]
    fn invocation_digest_ignores_timing_and_outcomes() {
        let build = |spin: bool| {
            let clock = Clock::new();
            if spin {
                // Burn ticks so absolute timestamps differ between runs.
                for _ in 0..17 {
                    clock.now();
                }
            }
            let mut a = ClientRecorder::new(&clock, 0);
            let mut b = ClientRecorder::new(&clock, 1);
            let ta = a.invoke("x", OpKind::Set(vec![b"1".to_vec()]));
            let tb = b.invoke("y", OpKind::SetField(0, b"2".to_vec()));
            b.resolve(tb, Outcome::NotFound);
            // One run acks, the other crashes before the reply: the
            // *invocation* digest must not see the difference.
            if spin {
                a.resolve(ta, Outcome::Ok);
            }
            // Collection order must not matter either.
            if spin {
                History::collect(clock, [b, a]).invocation_digest()
            } else {
                History::collect(clock, [a, b]).invocation_digest()
            }
        };
        assert_eq!(build(false), build(true));
    }
}
