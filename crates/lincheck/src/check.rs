//! The durable-linearizability checker: per-key partition (P-compositionality)
//! plus a Wing–Gong search per partition.
//!
//! ## Why partitioning is sound
//!
//! Every operation in the KV history touches exactly one key, and the
//! sequential specification of the whole store is the product of
//! independent per-key specifications. Linearizability is **local**
//! (Herlihy & Wing): a history is linearizable iff its projection onto
//! every object — here, every key — is linearizable. So the checker never
//! searches the global history; it partitions by key and runs the
//! exponential search on each (tiny) partition. A cross-key ordering
//! inversion cannot hide from this: if the global history had no valid
//! order, some single key's subhistory has none either, and that key
//! convicts.
//!
//! ## The search
//!
//! Wing–Gong: pick any operation that *may* linearize first — one whose
//! invocation precedes every other remaining operation's response — apply
//! it to the specification state, recurse on the rest; backtrack on
//! failure. Two refinements:
//!
//! * **Indeterminate operations** (in flight at the crash, or answered
//!   with an error) branch twice when chosen: *linearize* (apply the
//!   transition, ignore the unobserved result) or *vanish* (drop the op
//!   from the history entirely). Dropping at selection time is complete:
//!   while an op remains unselected it blocks nothing (its own response
//!   bound is the only constraint it imposes, and an unreplied op has
//!   none), so deferring the vanish decision loses no interleavings.
//! * **Memoization** on `(remaining-set, spec state)`: two search paths
//!   that linearized different prefixes into the same state and the same
//!   remaining set have identical futures, so the second is pruned. This
//!   is what keeps the worst case at `O(2^n · states)` per key instead of
//!   `n!`.
//!
//! ## Witness minimization
//!
//! On a violation the checker shrinks the failing partition to a
//! 1-minimal subsequence: repeatedly drop any event whose removal leaves
//! the history non-linearizable, in a fixed order, until removing any
//! remaining event would make it pass. The result is the shortest
//! convicting core our greedy order finds — deterministic, so tests can
//! pin expected witnesses.

use std::collections::{BTreeMap, HashSet};

use crate::{Event, FieldVals, History, OpKind, Outcome};

/// Statistics of a passed check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckReport {
    /// Per-key partitions checked.
    pub keys: usize,
    /// Events across all partitions.
    pub events: usize,
    /// Events that were indeterminate (allowed to linearize or vanish).
    pub indeterminate: usize,
}

/// A non-linearizable history, pinned to the key that convicts it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key whose partition has no valid linearization.
    pub key: String,
    /// 1-minimal failing subsequence of that partition.
    pub witness: Vec<Event>,
    /// Human-readable summary.
    pub explain: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.explain)?;
        writeln!(f, "minimized witness ({} ops):", self.witness.len())?;
        for ev in &self.witness {
            writeln!(f, "  {}", ev.display())?;
        }
        Ok(())
    }
}

/// Check a history for durable linearizability. Partitions per key,
/// checks every partition, and reports the first violating key (in key
/// order) with a minimized witness.
pub fn check(history: &History) -> Result<CheckReport, Box<Violation>> {
    if let Some(crash) = history.crash_at {
        for e in &history.events {
            assert!(
                e.client != usize::MAX || e.inv > crash,
                "harness bug: post-recovery observation of {} recorded before the crash mark",
                e.key
            );
        }
    }
    let mut by_key: BTreeMap<&str, Vec<&Event>> = BTreeMap::new();
    for e in &history.events {
        by_key.entry(e.key.as_str()).or_default().push(e);
    }
    let mut report = CheckReport::default();
    for (key, mut events) in by_key {
        events.sort_by_key(|e| e.inv);
        report.keys += 1;
        report.events += events.len();
        report.indeterminate += events.iter().filter(|e| !e.determinate()).count();
        if !linearizable(&events) {
            let witness = minimize(&events);
            let acked = events.iter().filter(|e| e.determinate()).count();
            return Err(Box::new(Violation {
                explain: format!(
                    "key {key}: no linearization of its {} ops exists ({} determinate, \
                     {} indeterminate{})",
                    events.len(),
                    acked,
                    events.len() - acked,
                    match history.crash_at {
                        Some(c) => format!("; crash barrier at tick {c}"),
                        None => String::new(),
                    }
                ),
                key: key.to_string(),
                witness,
            }));
        }
    }
    Ok(report)
}

/// True when the (single-key) event set has a valid linearization.
/// Exposed so tests can assert 1-minimality of witnesses.
pub fn linearizable(events: &[&Event]) -> bool {
    assert!(
        events.len() <= 128,
        "per-key partition of {} ops exceeds the checker's 128-op mask \
         (split the workload per key)",
        events.len()
    );
    let full: u128 = if events.len() == 128 {
        u128::MAX
    } else {
        (1u128 << events.len()) - 1
    };
    let mut memo: HashSet<(u128, Option<FieldVals>)> = HashSet::new();
    search(events, None, full, &mut memo)
}

fn search(
    events: &[&Event],
    state: Option<FieldVals>,
    remaining: u128,
    memo: &mut HashSet<(u128, Option<FieldVals>)>,
) -> bool {
    if remaining == 0 {
        return true;
    }
    if !memo.insert((remaining, state.clone())) {
        return false; // configuration already explored and failed
    }
    // The two smallest response bounds among remaining ops, so each
    // candidate can be tested against the minimum *excluding itself*.
    let (mut min1, mut min2) = (u64::MAX, u64::MAX); // values
    let mut min1_idx = usize::MAX;
    for (i, e) in events.iter().enumerate() {
        if remaining & (1 << i) == 0 {
            continue;
        }
        let r = e.res.unwrap_or(u64::MAX);
        if r < min1 {
            min2 = min1;
            min1 = r;
            min1_idx = i;
        } else if r < min2 {
            min2 = r;
        }
    }
    for i in 0..events.len() {
        if remaining & (1 << i) == 0 {
            continue;
        }
        let e = events[i];
        let bound = if i == min1_idx { min2 } else { min1 };
        if e.inv > bound {
            continue; // some other remaining op finished before e began
        }
        let rest = remaining & !(1 << i);
        if e.determinate() {
            if let Some(next) = apply_checked(&state, e) {
                if search(events, next, rest, memo) {
                    return true;
                }
            }
        } else {
            // Branch 1: the op took effect (result unobserved, so only
            // the state transition matters).
            let next = apply_free(&state, &e.kind);
            if search(events, next, rest, memo) {
                return true;
            }
            // Branch 2: the op vanished at the crash.
            if search(events, state.clone(), rest, memo) {
                return true;
            }
        }
    }
    false
}

/// Apply a determinate op: `None` when the recorded outcome is impossible
/// from `state`, else the successor state.
fn apply_checked(state: &Option<FieldVals>, e: &Event) -> Option<Option<FieldVals>> {
    match (&e.kind, &e.outcome) {
        (OpKind::Get, Outcome::Value(v)) => {
            (state.as_ref() == Some(v)).then(|| state.clone())
        }
        (OpKind::Get, Outcome::NotFound) => state.is_none().then_some(None),
        (OpKind::Set(v), Outcome::Ok) => Some(Some(v.clone())),
        (OpKind::SetField(i, v), Outcome::Ok) => match state {
            Some(fields) if *i < fields.len() => {
                let mut next = fields.clone();
                next[*i] = v.clone();
                Some(Some(next))
            }
            _ => None, // SETF cannot ack against an absent record
        },
        (OpKind::SetField(..), Outcome::NotFound) => match state {
            None => Some(None),
            Some(fields) => {
                // NotFound is also legal when the field index is out of
                // range on a present record.
                let OpKind::SetField(i, _) = &e.kind else { unreachable!() };
                (*i >= fields.len()).then(|| state.clone())
            }
        },
        (OpKind::Del, Outcome::Ok) => state.is_some().then_some(None),
        (OpKind::Del, Outcome::NotFound) => state.is_none().then_some(None),
        _ => None, // e.g. a GET answered Ok — impossible in the spec
    }
}

/// The state transition of an op whose result went unobserved.
fn apply_free(state: &Option<FieldVals>, kind: &OpKind) -> Option<FieldVals> {
    match kind {
        OpKind::Get => state.clone(),
        OpKind::Set(v) => Some(v.clone()),
        OpKind::SetField(i, v) => match state {
            Some(fields) if *i < fields.len() => {
                let mut next = fields.clone();
                next[*i] = v.clone();
                Some(next)
            }
            _ => state.clone(),
        },
        OpKind::Del => None,
    }
}

/// Greedy 1-minimal witness: repeatedly remove any event whose removal
/// keeps the history non-linearizable, scanning in a fixed order until a
/// fixpoint. Deterministic, so expected witnesses can be pinned in tests.
fn minimize(events: &[&Event]) -> Vec<Event> {
    let mut kept: Vec<&Event> = events.to_vec();
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if !linearizable(&candidate) {
                kept = candidate;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    kept.into_iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientRecorder, Clock};

    fn val(s: &str) -> FieldVals {
        vec![s.as_bytes().to_vec()]
    }

    /// Hand-crafted event with an explicit interval.
    fn ev(
        client: usize,
        seq: usize,
        key: &str,
        kind: OpKind,
        outcome: Outcome,
        inv: u64,
        res: Option<u64>,
    ) -> Event {
        Event {
            client,
            seq,
            key: key.to_string(),
            kind,
            outcome,
            inv,
            res,
        }
    }

    fn history(events: Vec<Event>, crash_at: Option<u64>) -> History {
        History {
            events,
            crash_at,
            ..History::default()
        }
    }

    /// The witness must be 1-minimal: it fails, and removing any single
    /// event makes it pass.
    fn assert_one_minimal(witness: &[Event]) {
        let refs: Vec<&Event> = witness.iter().collect();
        assert!(!linearizable(&refs), "witness itself must fail");
        for skip in 0..refs.len() {
            let sub: Vec<&Event> = refs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, e)| *e)
                .collect();
            assert!(
                linearizable(&sub),
                "witness is not minimal: dropping op {skip} still fails"
            );
        }
    }

    // ----------------------------------------------- linearizable histories

    #[test]
    fn sequential_set_get_del_passes() {
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Set(val("a")), Outcome::Ok, 0, Some(1)),
                ev(0, 1, "k", OpKind::Get, Outcome::Value(val("a")), 2, Some(3)),
                ev(0, 2, "k", OpKind::SetField(0, b"b".to_vec()), Outcome::Ok, 4, Some(5)),
                ev(0, 3, "k", OpKind::Get, Outcome::Value(val("b")), 6, Some(7)),
                ev(0, 4, "k", OpKind::Del, Outcome::Ok, 8, Some(9)),
                ev(0, 5, "k", OpKind::Get, Outcome::NotFound, 10, Some(11)),
            ],
            None,
        );
        let r = check(&h).expect("linearizable");
        assert_eq!(r.keys, 1);
        assert_eq!(r.events, 6);
        assert_eq!(r.indeterminate, 0);
    }

    #[test]
    fn overlapping_writes_allow_either_order() {
        // Two concurrent acked SETs; a later read may see either one.
        for winner in ["a", "b"] {
            let h = history(
                vec![
                    ev(0, 0, "k", OpKind::Set(val("a")), Outcome::Ok, 0, Some(3)),
                    ev(1, 0, "k", OpKind::Set(val("b")), Outcome::Ok, 1, Some(4)),
                    ev(0, 1, "k", OpKind::Get, Outcome::Value(val(winner)), 5, Some(6)),
                ],
                None,
            );
            check(&h).unwrap_or_else(|v| panic!("winner {winner}: {v}"));
        }
    }

    #[test]
    fn indeterminate_set_may_linearize_or_vanish() {
        // SET v2 was in flight at the crash. The recovered state may be
        // v2 (it linearized) or v1 (it vanished) — both pass.
        for survivor in ["v1", "v2"] {
            let h = history(
                vec![
                    ev(0, 0, "k", OpKind::Set(val("v1")), Outcome::Ok, 0, Some(1)),
                    ev(0, 1, "k", OpKind::Set(val("v2")), Outcome::Indeterminate, 2, None),
                    ev(usize::MAX, 0, "k", OpKind::Get,
                       if survivor == "v1" { Outcome::Value(val("v1")) } else { Outcome::Value(val("v2")) },
                       11, Some(12)),
                ],
                Some(10),
            );
            check(&h).unwrap_or_else(|v| panic!("survivor {survivor}: {v}"));
        }
    }

    #[test]
    fn indeterminate_del_may_linearize_or_vanish() {
        for present in [true, false] {
            let h = history(
                vec![
                    ev(0, 0, "k", OpKind::Set(val("v")), Outcome::Ok, 0, Some(1)),
                    ev(0, 1, "k", OpKind::Del, Outcome::Indeterminate, 2, None),
                    ev(usize::MAX, 0, "k", OpKind::Get,
                       if present { Outcome::Value(val("v")) } else { Outcome::NotFound },
                       11, Some(12)),
                ],
                Some(10),
            );
            check(&h).unwrap_or_else(|v| panic!("present {present}: {v}"));
        }
    }

    #[test]
    fn errored_write_with_response_time_is_interval_bounded() {
        // An Err-replied SET has a response stamp: if it took effect at
        // all, it did so inside [2, 3]. A read that *follows* the reply
        // and a read that *precedes* the invocation must both be
        // explainable without it linearizing outside that window.
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Set(val("v1")), Outcome::Ok, 0, Some(1)),
                ev(1, 0, "k", OpKind::Set(val("v2")), Outcome::Indeterminate, 2, Some(3)),
                ev(0, 1, "k", OpKind::Get, Outcome::Value(val("v2")), 4, Some(5)),
            ],
            None,
        );
        check(&h).expect("errored write may have applied");

        // But it cannot explain a value read *before* its invocation: a
        // determinate read that finished before the errored SET began
        // must not see its value.
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Get, Outcome::Value(val("v2")), 0, Some(1)),
                ev(1, 0, "k", OpKind::Set(val("v2")), Outcome::Indeterminate, 2, Some(3)),
            ],
            None,
        );
        let v = check(&h).expect_err("read from the future");
        assert_one_minimal(&v.witness);
    }

    #[test]
    fn setfield_on_absent_key_answers_notfound() {
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::SetField(0, b"x".to_vec()), Outcome::NotFound, 0, Some(1)),
                ev(0, 1, "k", OpKind::Del, Outcome::NotFound, 2, Some(3)),
            ],
            None,
        );
        check(&h).expect("NotFound writes on an absent key are legal");
    }

    // -------------------------------------------- adversarial: must reject

    #[test]
    fn lost_acked_write_is_rejected_with_two_op_witness() {
        // The canonical durability violation: SET acked before the crash,
        // gone after recovery. Witness = the acked SET + the observation.
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Set(val("v")), Outcome::Ok, 0, Some(1)),
                ev(usize::MAX, 0, "k", OpKind::Get, Outcome::NotFound, 11, Some(12)),
            ],
            Some(10),
        );
        let v = check(&h).expect_err("acked write lost");
        assert_eq!(v.key, "k");
        assert_eq!(v.witness.len(), 2, "witness: the SET and the missing read");
        assert_eq!(v.witness[0].kind.tag(), "SET");
        assert_eq!(v.witness[1].outcome, Outcome::NotFound);
        assert_one_minimal(&v.witness);
    }

    #[test]
    fn stale_read_after_delete_is_rejected() {
        // SET v1, DEL acked, then a read serves v1 again. The minimal
        // core our greedy order finds is the read itself — v1 was never
        // durably current at its read point (and without the SET, never
        // written at all).
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Set(val("v1")), Outcome::Ok, 0, Some(1)),
                ev(0, 1, "k", OpKind::Del, Outcome::Ok, 2, Some(3)),
                ev(0, 2, "k", OpKind::Get, Outcome::Value(val("v1")), 4, Some(5)),
            ],
            None,
        );
        let v = check(&h).expect_err("resurrected value");
        assert_eq!(v.key, "k");
        assert_eq!(v.witness.len(), 1);
        assert_eq!(v.witness[0].kind, OpKind::Get);
        assert_one_minimal(&v.witness);
    }

    #[test]
    fn stale_read_travelling_backwards_is_rejected() {
        // Reads must never go backwards: GET=v2 then GET=v1 with both
        // SETs acked and no overlap anywhere.
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Set(val("v1")), Outcome::Ok, 0, Some(1)),
                ev(0, 1, "k", OpKind::Set(val("v2")), Outcome::Ok, 2, Some(3)),
                ev(1, 0, "k", OpKind::Get, Outcome::Value(val("v2")), 4, Some(5)),
                ev(1, 1, "k", OpKind::Get, Outcome::Value(val("v1")), 6, Some(7)),
            ],
            None,
        );
        let v = check(&h).expect_err("read went backwards");
        assert_one_minimal(&v.witness);
    }

    #[test]
    fn dirty_read_of_never_durable_value_is_rejected() {
        // A read served v while v's SET was in flight; the crash then
        // discarded the SET. Durable linearizability forbids it: if the
        // read saw v, the SET linearized, so v (or a successor) must
        // survive.
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Set(val("v")), Outcome::Indeterminate, 0, None),
                ev(1, 0, "k", OpKind::Get, Outcome::Value(val("v")), 2, Some(3)),
                ev(usize::MAX, 0, "k", OpKind::Get, Outcome::NotFound, 11, Some(12)),
            ],
            Some(10),
        );
        let v = check(&h).expect_err("dirty read");
        assert_eq!(v.key, "k");
        assert_one_minimal(&v.witness);
    }

    #[test]
    fn cross_key_inversion_convicts_via_one_keys_partition() {
        // The group-deferral nightmare: one client acked SET k1 then SET
        // k2, the crash preserved k2's group but lost k1's. Locality says
        // the inversion must surface on a single key — k1's partition has
        // an acked SET and a NotFound observation.
        let h = history(
            vec![
                ev(0, 0, "k1", OpKind::Set(val("a")), Outcome::Ok, 0, Some(1)),
                ev(0, 1, "k2", OpKind::Set(val("b")), Outcome::Ok, 2, Some(3)),
                ev(usize::MAX, 0, "k1", OpKind::Get, Outcome::NotFound, 11, Some(12)),
                ev(usize::MAX, 1, "k2", OpKind::Get, Outcome::Value(val("b")), 13, Some(14)),
            ],
            Some(10),
        );
        let v = check(&h).expect_err("k1's acked group was lost");
        assert_eq!(v.key, "k1", "the earlier key's partition convicts");
        assert_eq!(v.witness.len(), 2);
        assert_one_minimal(&v.witness);
        // And the honest counterpart passes: both groups durable.
        let h = history(
            vec![
                ev(0, 0, "k1", OpKind::Set(val("a")), Outcome::Ok, 0, Some(1)),
                ev(0, 1, "k2", OpKind::Set(val("b")), Outcome::Ok, 2, Some(3)),
                ev(usize::MAX, 0, "k1", OpKind::Get, Outcome::Value(val("a")), 11, Some(12)),
                ev(usize::MAX, 1, "k2", OpKind::Get, Outcome::Value(val("b")), 13, Some(14)),
            ],
            Some(10),
        );
        check(&h).expect("no inversion");
    }

    #[test]
    fn lost_setfield_is_rejected() {
        // The acked SETF must be reflected in the recovered record.
        let h = history(
            vec![
                ev(0, 0, "k", OpKind::Set(vec![b"a".to_vec(), b"b".to_vec()]), Outcome::Ok, 0, Some(1)),
                ev(0, 1, "k", OpKind::SetField(0, b"x".to_vec()), Outcome::Ok, 2, Some(3)),
                ev(usize::MAX, 0, "k", OpKind::Get,
                   Outcome::Value(vec![b"a".to_vec(), b"b".to_vec()]), 11, Some(12)),
            ],
            Some(10),
        );
        let v = check(&h).expect_err("acked SETF lost");
        assert_one_minimal(&v.witness);
    }

    // --------------------------------------------------------- plumbing

    #[test]
    fn recorder_to_check_round_trip() {
        let clock = Clock::new();
        let mut r = ClientRecorder::new(&clock, 0);
        let t0 = r.invoke("a", OpKind::Set(val("1")));
        r.resolve(t0, Outcome::Ok);
        let t1 = r.invoke("a", OpKind::Del);
        // t1 never resolves: in flight at the crash.
        let _ = t1;
        let mut h = History::collect(clock, [r]);
        h.mark_crash();
        h.observe("a", Some(val("1"))); // DEL vanished
        let rep = check(&h).expect("linearizable");
        assert_eq!(rep.indeterminate, 1);
        // Same run, but the recovered state claims a value nobody wrote.
        let clock = Clock::new();
        let mut r = ClientRecorder::new(&clock, 0);
        let t0 = r.invoke("a", OpKind::Set(val("1")));
        r.resolve(t0, Outcome::Ok);
        let mut h = History::collect(clock, [r]);
        h.mark_crash();
        h.observe("a", Some(val("2")));
        let v = check(&h).expect_err("torn/foreign value");
        assert_eq!(v.witness.len(), 1, "the impossible observation alone convicts");
    }

    #[test]
    fn memoization_handles_wide_concurrency() {
        // 10 pairwise-concurrent indeterminate SETs + one final read:
        // 2^10 vanish/linearize combinations, pruned by the memo. Must
        // terminate fast and accept (the read matches one of the SETs).
        let mut events = Vec::new();
        for i in 0..10usize {
            events.push(ev(
                i, 0, "k",
                OpKind::Set(val(&format!("v{i}"))),
                Outcome::Indeterminate,
                i as u64,
                None,
            ));
        }
        events.push(ev(usize::MAX, 0, "k", OpKind::Get, Outcome::Value(val("v7")), 100, Some(101)));
        check(&history(events, Some(50))).expect("v7 linearized last");
    }

    #[test]
    #[should_panic(expected = "post-recovery observation")]
    fn observation_before_crash_mark_is_harness_misuse() {
        let h = history(
            vec![ev(usize::MAX, 0, "k", OpKind::Get, Outcome::NotFound, 1, Some(2))],
            Some(10),
        );
        let _ = check(&h);
    }
}
