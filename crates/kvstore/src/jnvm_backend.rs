//! The J-NVM backends (J-PDT and J-PFA flavours, §5.1).
//!
//! Records are **persistent objects**: a [`PRecord`] holds references to
//! one immutable [`PBytes`] per field. Reads copy field bytes out through
//! proxies — no marshalling. A field update atomically replaces one field
//! reference and frees the old blob (§4.1.6), exactly the helpers the
//! paper says its Infinispan portage uses.
//!
//! The J-PFA flavour runs every operation inside a failure-atomic block;
//! the J-PDT flavour relies on the structures' hand-crafted crash
//! consistency (low-level interface).

use jnvm::{Jnvm, JnvmBuilder, JnvmError, PObject, Proxy, RawChain};
use jnvm_jpdt::{register_jpdt, PBytes, PStringHashMap, PValue};
use parking_lot::Mutex;

use crate::backend::Backend;
use crate::codec::{ycsb_field_name, Record};

/// A persistent YCSB-style record: `[nfields u64][field blob refs...]`.
pub struct PRecord {
    proxy: Proxy,
}

impl PRecord {
    /// Allocate a record with the given field values. Flushed but
    /// **invalid** — publication (map insert) validates it.
    pub fn create(rt: &Jnvm, values: &[Vec<u8>]) -> Result<PRecord, JnvmError> {
        let proxy = rt.alloc_proxy::<PRecord>(8 + values.len() as u64 * 8)?;
        proxy.write_u64(0, values.len() as u64);
        for (i, v) in values.iter().enumerate() {
            let blob = PBytes::new(rt, v)?;
            proxy.write_ref(8 + i as u64 * 8, Some(blob.addr()));
        }
        proxy.pwb();
        Ok(PRecord { proxy })
    }

    /// Wrap an existing record proxy.
    pub fn from_proxy(proxy: Proxy) -> PRecord {
        PRecord { proxy }
    }

    /// Number of fields.
    pub fn nfields(&self) -> u64 {
        self.proxy.read_u64(0)
    }

    /// Raw persistent address of field `i`'s blob.
    pub fn field_ref(&self, i: u64) -> Option<u64> {
        if i >= self.nfields() {
            return None;
        }
        self.proxy.read_ref(8 + i * 8)
    }

    /// Copy field `i`'s bytes out of NVMM.
    pub fn field(&self, i: u64) -> Option<Vec<u8>> {
        if i >= self.nfields() {
            return None;
        }
        let addr = self.proxy.read_ref(8 + i * 8)?;
        let rt = self.proxy.runtime();
        Some(PBytes::resurrect(rt, addr).to_vec())
    }

    /// Materialize the whole record (positional YCSB field names).
    pub fn to_record(&self, key: &str) -> Record {
        let n = self.nfields();
        let mut fields = Vec::with_capacity(n as usize);
        for i in 0..n {
            fields.push((ycsb_field_name(i as usize), self.field(i).unwrap_or_default()));
        }
        Record {
            key: key.to_string(),
            fields,
        }
    }

    /// Atomically replace field `i` with a fresh blob and free the old one
    /// (the update-and-free helper of §4.1.6).
    pub fn set_field(&self, i: u64, value: &[u8]) -> Result<bool, JnvmError> {
        if i >= self.nfields() {
            return Ok(false);
        }
        let rt = self.proxy.runtime().clone();
        let old = self.proxy.read_ref(8 + i * 8);
        let blob = PBytes::new(&rt, value)?; // written, flushed, validated
        rt.pfence();
        self.proxy.write_ref(8 + i * 8, Some(blob.addr()));
        self.proxy.pwb_field(8 + i * 8, 8);
        rt.pfence();
        self.proxy.ordering_point("record-field-publish", 8 + i * 8, 8);
        if let Some(old_addr) = old {
            rt.free_addr(old_addr);
        }
        Ok(true)
    }

    /// Free the record and every field blob.
    pub fn free_deep(rt: &Jnvm, addr: u64) {
        let proxy = Proxy::open(rt, addr);
        let n = proxy.read_u64(0);
        for i in 0..n {
            if let Some(f) = proxy.read_ref(8 + i * 8) {
                rt.free_addr(f);
            }
        }
        rt.free_addr(addr);
    }
}

impl PObject for PRecord {
    const CLASS_NAME: &'static str = "jnvm_kvstore.PRecord";

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        PRecord {
            proxy: Proxy::open(rt, addr),
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }

    fn trace_extra(rt: &Jnvm, addr: u64, visit: &mut dyn FnMut(u64)) {
        let chain = RawChain::open(rt, addr);
        let n = rt.pmem().read_u64(chain.phys(0));
        for i in 0..n {
            visit(chain.phys(8 + i * 8));
        }
    }
}

/// Register every class the kvstore needs (J-PDT classes + [`PRecord`]).
pub fn register_kvstore(b: JnvmBuilder) -> JnvmBuilder {
    register_jpdt(b).register::<PRecord>()
}

/// The J-PDT / J-PFA backend: sharded persistent hash maps of records.
///
/// # Concurrency contract
///
/// Failure-atomic blocks provide atomicity, not isolation: writes made
/// inside a block live in per-thread in-flight copies until commit-apply,
/// so two blocks mutating the *same* persistent blocks overwrite each
/// other (last apply wins). Per-**key** operations (`update_field`) touch
/// only that key's record, and callers such as [`crate::DataGrid`]
/// serialize them per key. Map-*structure* operations (`store_full`,
/// `remove`) touch the shard's shared cell array and entry chains, so the
/// backend serializes those itself with one lock per shard, held across
/// the whole failure-atomic block.
pub struct JnvmBackend {
    rt: Jnvm,
    shards: Vec<PStringHashMap>,
    shard_locks: Vec<Mutex<()>>,
    fa: bool,
}

const SHARD_ROOT_PREFIX: &str = "kvstore-shard-";

impl JnvmBackend {
    /// Create a fresh backend with `nshards` persistent map shards,
    /// anchored in the root map. `fa = true` selects the J-PFA flavour.
    pub fn create(rt: &Jnvm, nshards: usize, fa: bool) -> Result<JnvmBackend, JnvmError> {
        let mut shards = Vec::with_capacity(nshards);
        for i in 0..nshards.max(1) {
            let m = PStringHashMap::new(rt)?;
            rt.root_put(&format!("{SHARD_ROOT_PREFIX}{i}"), &m)?;
            shards.push(m);
        }
        let shard_locks = (0..shards.len()).map(|_| Mutex::new(())).collect();
        Ok(JnvmBackend {
            rt: rt.clone(),
            shards,
            shard_locks,
            fa,
        })
    }

    /// Re-open the backend from the root map after a restart.
    pub fn open(rt: &Jnvm, fa: bool) -> Result<JnvmBackend, JnvmError> {
        let mut shards = Vec::new();
        loop {
            let name = format!("{SHARD_ROOT_PREFIX}{}", shards.len());
            match rt.root_get_as::<PStringHashMap>(&name)? {
                Some(m) => shards.push(m),
                None => break,
            }
        }
        if shards.is_empty() {
            return Err(JnvmError::UnknownPersistedClass(
                "no kvstore shards in root map".into(),
            ));
        }
        let shard_locks = (0..shards.len()).map(|_| Mutex::new(())).collect();
        Ok(JnvmBackend {
            rt: rt.clone(),
            shards,
            shard_locks,
            fa,
        })
    }

    pub(crate) fn shard_index(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        (h as usize) % self.shards.len()
    }

    fn shard(&self, key: &str) -> &PStringHashMap {
        &self.shards[self.shard_index(key)]
    }

    fn with_fa<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.fa {
            self.rt.fa(f)
        } else {
            f()
        }
    }

    /// The runtime this backend writes through.
    pub(crate) fn runtime(&self) -> &Jnvm {
        &self.rt
    }

    /// True for the J-PFA flavour (every write in a failure-atomic block).
    pub(crate) fn fa_enabled(&self) -> bool {
        self.fa
    }

    /// Insert/replace body — caller provides atomicity (a failure-atomic
    /// block or staging) and exclusion (the shard lock or group-former
    /// shard disjointness).
    fn do_put(&self, key: &str, values: &[Vec<u8>]) -> bool {
        let Ok(prec) = PRecord::create(&self.rt, values) else {
            return false;
        };
        match self.shard(key).put(key.to_string(), prec.addr()) {
            Ok(Some(old)) => {
                PRecord::free_deep(&self.rt, old);
                true
            }
            Ok(None) => true,
            Err(_) => false,
        }
    }

    /// Field-update body; same caller contract as [`JnvmBackend::do_put`].
    fn do_set_field(&self, key: &str, field: usize, value: &[u8]) -> bool {
        let Some(pv) = self.shard(key).get_value(&key.to_string()) else {
            return false;
        };
        let prec = match pv {
            PValue::Block(proxy) => PRecord::from_proxy(proxy),
            PValue::Pooled(addr) => PRecord::resurrect(&self.rt, addr),
        };
        prec.set_field(field as u64, value).unwrap_or(false)
    }

    /// Removal body; same caller contract as [`JnvmBackend::do_put`].
    fn do_remove(&self, key: &str) -> bool {
        match self.shard(key).remove(&key.to_string()) {
            Some(old) => {
                PRecord::free_deep(&self.rt, old);
                true
            }
            None => false,
        }
    }

    /// Apply one batched write. Called from inside a staged failure-atomic
    /// block by [`crate::group::commit_writes`], which provides the
    /// exclusion the direct paths get from the shard/stripe locks.
    pub(crate) fn apply_op(&self, op: &crate::group::WriteOp) -> bool {
        use crate::group::WriteOp;
        match op {
            WriteOp::Set(rec) => {
                let values: Vec<Vec<u8>> =
                    rec.fields.iter().map(|(_, v)| v.clone()).collect();
                self.do_put(&rec.key, &values)
            }
            WriteOp::SetField { key, field, value } => self.do_set_field(key, *field, value),
            WriteOp::Del(key) => self.do_remove(key),
        }
    }
}

impl Backend for JnvmBackend {
    fn name(&self) -> &'static str {
        if self.fa {
            "jpfa"
        } else {
            "jpdt"
        }
    }

    fn store_full(&self, rec: &Record) -> bool {
        let values: Vec<Vec<u8>> = rec.fields.iter().map(|(_, v)| v.clone()).collect();
        // Held across the whole failure-atomic block: the map put mutates
        // the shard's shared blocks (see the concurrency contract above).
        let _shard = self.shard_locks[self.shard_index(&rec.key)].lock();
        self.with_fa(|| self.do_put(&rec.key, &values))
    }

    fn read(&self, key: &str) -> Option<Record> {
        let value = self.shard(key).get_value(&key.to_string())?;
        let prec = match value {
            PValue::Block(proxy) => PRecord::from_proxy(proxy),
            PValue::Pooled(addr) => PRecord::resurrect(&self.rt, addr),
        };
        Some(prec.to_record(key))
    }

    fn read_touch(&self, key: &str) -> bool {
        // The client holds the persistent record: touch every field
        // through its proxy (read the blob length words) without copying
        // the contents out of NVMM.
        let Some(pv) = self.shard(key).get_value(&key.to_string()) else {
            return false;
        };
        let prec = match pv {
            PValue::Block(proxy) => PRecord::from_proxy(proxy),
            PValue::Pooled(addr) => PRecord::resurrect(&self.rt, addr),
        };
        let n = prec.nfields();
        let mut checksum = 0u64;
        for i in 0..n {
            if let Some(addr) = prec.field_ref(i) {
                checksum ^= self.rt.pmem().read_u64(addr + 8); // length word
            }
        }
        std::hint::black_box(checksum);
        true
    }

    fn update_field(&self, key: &str, field: usize, value: &[u8]) -> bool {
        self.with_fa(|| self.do_set_field(key, field, value))
    }

    fn remove(&self, key: &str) -> bool {
        let _shard = self.shard_locks[self.shard_index(key)].lock();
        self.with_fa(|| self.do_remove(key))
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn prefers_field_updates(&self) -> bool {
        true
    }

    fn sync(&self) {
        self.rt.psync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::sync::Arc;

    fn rt(bytes: u64) -> (Arc<Pmem>, Jnvm) {
        let pmem = Pmem::new(PmemConfig::crash_sim(bytes));
        let rt = register_kvstore(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        (pmem, rt)
    }

    #[test]
    fn precord_round_trip() {
        let (_p, rt) = rt(8 << 20);
        let rec = PRecord::create(&rt, &[b"one".to_vec(), b"two".to_vec()]).unwrap();
        assert_eq!(rec.nfields(), 2);
        assert_eq!(rec.field(0).unwrap(), b"one");
        assert_eq!(rec.field(1).unwrap(), b"two");
        assert!(rec.field(2).is_none());
        assert!(rec.set_field(1, b"TWO").unwrap());
        assert_eq!(rec.field(1).unwrap(), b"TWO");
        let r = rec.to_record("k");
        assert_eq!(r.fields[0], ("field0".to_string(), b"one".to_vec()));
    }

    /// Regression: concurrent failure-atomic puts into the *same* shard
    /// used to lose each other's map-cell updates. Each block mutates the
    /// shard's cell array through its own in-flight copy; whichever commit
    /// applied last overwrote the other's cell, leaving the volatile
    /// mirror claiming a key the persistent array no longer references
    /// (and dangling cells pointing at freed records). Store/remove now
    /// hold a per-shard lock across the whole block.
    #[test]
    fn concurrent_same_shard_inserts_all_survive() {
        let (pmem, rt) = rt(64 << 20);
        let be = Arc::new(JnvmBackend::create(&rt, 1, true).unwrap());
        const THREADS: usize = 4;
        const PER_THREAD: usize = 100;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let be = Arc::clone(&be);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let rec = Record::ycsb(
                            &format!("t{t}-{i:04}"),
                            &[format!("v{t}-{i:04}").into_bytes()],
                        );
                        assert!(be.store_full(&rec), "t{t} insert {i} refused");
                    }
                });
            }
        });
        assert_eq!(be.len(), THREADS * PER_THREAD);
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let key = format!("t{t}-{i:04}");
                let rec = be
                    .read(&key)
                    .unwrap_or_else(|| panic!("{key}: concurrent insert lost"));
                assert_eq!(rec.fields[0].1, format!("v{t}-{i:04}").into_bytes());
            }
        }
        // Same story on the persistent image.
        drop(be);
        drop(rt);
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = register_kvstore(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let be2 = JnvmBackend::open(&rt2, true).unwrap();
        assert_eq!(be2.len(), THREADS * PER_THREAD);
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let key = format!("t{t}-{i:04}");
                assert!(be2.read(&key).is_some(), "{key} lost after recovery");
            }
        }
    }

    #[test]
    fn backend_insert_read_update_remove() {
        let (_p, rt) = rt(16 << 20);
        for fa in [false, true] {
            let be = JnvmBackend::create(&rt, 4, fa).unwrap();
            let rec = Record::ycsb(&format!("user-{fa}"), &[b"a".to_vec(), b"b".to_vec()]);
            assert!(be.store_full(&rec));
            assert_eq!(be.read(&rec.key).unwrap(), rec);
            assert!(be.update_field(&rec.key, 0, b"A"));
            assert_eq!(be.read(&rec.key).unwrap().fields[0].1, b"A");
            assert!(!be.update_field("missing", 0, b"x"));
            assert_eq!(be.len(), 1);
            assert!(be.remove(&rec.key));
            assert!(be.read(&rec.key).is_none());
            // Clean up shard roots for the next flavour.
            for i in 0..4 {
                rt.root_remove(&format!("{SHARD_ROOT_PREFIX}{i}"));
            }
        }
    }

    #[test]
    fn backend_survives_crash() {
        let (pmem, rt) = rt(32 << 20);
        let be = JnvmBackend::create(&rt, 2, false).unwrap();
        for i in 0..50 {
            let rec = Record::ycsb(&format!("user{i}"), &[vec![i as u8; 16], vec![0xAB; 8]]);
            assert!(be.store_full(&rec));
        }
        be.sync();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = register_kvstore(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let be2 = JnvmBackend::open(&rt2, false).unwrap();
        assert_eq!(be2.len(), 50);
        for i in 0..50 {
            let rec = be2.read(&format!("user{i}")).expect("record survived");
            assert_eq!(rec.fields[0].1, vec![i as u8; 16]);
        }
    }

    #[test]
    fn replacement_frees_old_record() {
        let (_p, rt) = rt(16 << 20);
        let be = JnvmBackend::create(&rt, 1, false).unwrap();
        let r1 = Record::ycsb("k", &[vec![1; 300]]); // chained blob
        let r2 = Record::ycsb("k", &[vec![2; 300]]);
        be.store_full(&r1);
        let before = rt.heap().stats();
        be.store_full(&r2);
        let after = rt.heap().stats();
        // Replacement allocates a new record+blob and frees the old pair:
        // net block usage stays flat.
        assert_eq!(
            after.blocks_allocated - before.blocks_allocated,
            after.blocks_freed - before.blocks_freed
        );
        assert_eq!(be.read("k").unwrap(), r2);
    }
}
