//! The persistence SPI of the grid, plus the Volatile and NullFS dummy
//! backends of §5.1.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::codec::{decode_record, encode_record, Record};
use crate::CostModel;

/// A persistent (or dummy) store the grid writes through to.
///
/// The SPI deliberately exposes **both** whole-record and field-level
/// operations: the paper's central asymmetry is that J-NVM backends update
/// persistent objects in place while external-design backends must
/// marshal/unmarshal whole records. [`Backend::prefers_field_updates`]
/// tells the grid which path to take.
pub trait Backend: Send + Sync {
    /// Short identifier ("jpdt", "fs"...).
    fn name(&self) -> &'static str;
    /// Store a whole record (insert or replace).
    fn store_full(&self, rec: &Record) -> bool;
    /// Materialize a whole record.
    fn read(&self, key: &str) -> Option<Record>;
    /// Serve a YCSB-style read without forcing materialization: J-NVM
    /// backends hand the client persistent value objects (the paper's
    /// modified client uses "persistent keys and values", §5.2) and touch
    /// the fields through proxies; external designs must unmarshal.
    /// Default: full materialization.
    fn read_touch(&self, key: &str) -> bool {
        self.read(key).is_some()
    }
    /// Whether writes are accepted without the key existing (the nullfs
    /// black hole stores nothing, yet the write path must still pay its
    /// marshalling). Default false.
    fn is_black_hole(&self) -> bool {
        false
    }
    /// Update a single positional field in place.
    fn update_field(&self, key: &str, field: usize, value: &[u8]) -> bool;
    /// Delete a record.
    fn remove(&self, key: &str) -> bool;
    /// Number of stored records.
    fn len(&self) -> usize;
    /// Whether the backend holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Whether the grid should route single-field updates to
    /// [`Backend::update_field`] (J-NVM designs) rather than
    /// read-modify-write + [`Backend::store_full`] (external designs).
    fn prefers_field_updates(&self) -> bool;
    /// Durability point (no-op for most backends: they are write-through).
    fn sync(&self) {}
}

/// Persistence disabled: a plain volatile map, no marshalling
/// ("Volatile" in Figure 8; the baseline of Figures 10 and 12).
#[derive(Default)]
pub struct VolatileBackend {
    map: Vec<RwLock<HashMap<String, Record>>>,
}

impl VolatileBackend {
    /// Create with 64 shards.
    pub fn new() -> VolatileBackend {
        VolatileBackend {
            map: (0..64).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Record>> {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        &self.map[(h as usize) % self.map.len()]
    }
}

impl Backend for VolatileBackend {
    fn name(&self) -> &'static str {
        "volatile"
    }

    fn store_full(&self, rec: &Record) -> bool {
        self.shard(&rec.key)
            .write()
            .insert(rec.key.clone(), rec.clone());
        true
    }

    fn read(&self, key: &str) -> Option<Record> {
        self.shard(key).read().get(key).cloned()
    }

    fn update_field(&self, key: &str, field: usize, value: &[u8]) -> bool {
        let mut m = self.shard(key).write();
        match m.get_mut(key) {
            Some(rec) if field < rec.fields.len() => {
                rec.fields[field].1 = value.to_vec();
                true
            }
            _ => false,
        }
    }

    fn remove(&self, key: &str) -> bool {
        self.shard(key).write().remove(key).is_some()
    }

    fn len(&self) -> usize {
        self.map.iter().map(|s| s.read().len()).sum()
    }

    fn prefers_field_updates(&self) -> bool {
        true
    }
}

/// The nullfs of Figure 8: reads and writes are no-ops at the "file
/// system" level, but the marshalling/unmarshalling work is still
/// performed — isolating serialization cost from storage cost.
#[derive(Default)]
pub struct NullFsBackend {
    count: std::sync::atomic::AtomicUsize,
    costs: CostModel,
}

impl NullFsBackend {
    /// Create with the default cost model.
    pub fn new() -> NullFsBackend {
        NullFsBackend {
            count: Default::default(),
            costs: CostModel::default_model(),
        }
    }

    /// Create with an explicit cost model.
    pub fn with_costs(costs: CostModel) -> NullFsBackend {
        NullFsBackend {
            count: Default::default(),
            costs,
        }
    }
}

impl Backend for NullFsBackend {
    fn name(&self) -> &'static str {
        "nullfs"
    }

    fn store_full(&self, rec: &Record) -> bool {
        // Pay the marshalling, discard the bytes.
        let bytes = encode_record(rec);
        jnvm_pmem::spin_ns(self.costs.marshal_ns_per_byte * bytes.len() as u64);
        std::hint::black_box(&bytes);
        self.count
            .fetch_max(1, std::sync::atomic::Ordering::Relaxed);
        true
    }

    fn read(&self, _key: &str) -> Option<Record> {
        // The black hole returns nothing; exercise the decoder's header
        // path like a read of an empty file would.
        let empty: [u8; 0] = [];
        let _ = decode_record(std::hint::black_box(&empty));
        None
    }

    fn update_field(&self, _key: &str, _field: usize, _value: &[u8]) -> bool {
        false
    }

    fn remove(&self, _key: &str) -> bool {
        true
    }

    fn len(&self) -> usize {
        0
    }

    fn prefers_field_updates(&self) -> bool {
        false
    }

    fn is_black_hole(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_backend_round_trip() {
        let b = VolatileBackend::new();
        let rec = Record::ycsb("k", &[b"v0".to_vec(), b"v1".to_vec()]);
        assert!(b.store_full(&rec));
        assert_eq!(b.read("k").unwrap(), rec);
        assert!(b.update_field("k", 0, b"V0"));
        assert_eq!(b.read("k").unwrap().fields[0].1, b"V0");
        assert!(!b.update_field("k", 5, b"x"));
        assert_eq!(b.len(), 1);
        assert!(b.remove("k"));
        assert!(b.read("k").is_none());
    }

    #[test]
    fn nullfs_swallows_everything() {
        let b = NullFsBackend::new();
        let rec = Record::ycsb("k", &[b"v".to_vec()]);
        assert!(b.store_full(&rec));
        assert!(b.read("k").is_none());
        assert_eq!(b.len(), 0);
    }
}
