//! An LRU cache (intrusive doubly-linked list over a slab) and its sharded
//! concurrent wrapper — the grid's volatile cache, standing in for
//! Infinispan's bounded data container.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A classic O(1) LRU cache.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Get and touch (promote to most recently used).
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.nodes[idx].value)
    }

    /// Peek without touching.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|i| &self.nodes[*i].value)
    }

    /// Insert or replace, touching the entry. Returns the evicted
    /// `(key, value)` if the cache was full.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let node = &mut self.nodes[victim];
            self.map.remove(&node.key);
            // Move out by swapping with the incoming entry.
            let old_key = std::mem::replace(&mut node.key, key.clone());
            let old_val = std::mem::replace(&mut node.value, value);
            evicted = Some((old_key, old_val));
            self.map.insert(key, victim);
            self.push_front(victim);
            return evicted;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Remove an entry.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A sharded, lock-per-shard LRU for concurrent use.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Build with `shards` shards and a *total* capacity. A non-zero total
    /// guarantees at least one entry per shard.
    pub fn new(total_capacity: usize, shards: usize) -> ShardedLru<K, V> {
        let shards = shards.max(1);
        let per = if total_capacity == 0 {
            0
        } else {
            (total_capacity / shards).max(1)
        };
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(LruCache::new(per))).collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Get (clones the value) and touch.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Insert/replace.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().insert(key, value);
    }

    /// Remove.
    pub fn remove(&self, key: &K) -> bool {
        self.shard(key).lock().remove(key)
    }

    /// Total cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_touch_order() {
        let mut c = LruCache::new(2);
        assert!(c.insert("a", 1).is_none());
        assert!(c.insert("b", 2).is_none());
        // Touch "a" so "b" becomes LRU.
        assert_eq!(c.get(&"a"), Some(&1));
        let evicted = c.insert("c", 3).expect("evicts LRU");
        assert_eq!(evicted, ("b", 2));
        assert_eq!(c.peek(&"a"), Some(&1));
        assert_eq!(c.peek(&"b"), None);
        assert_eq!(c.peek(&"c"), Some(&3));
    }

    #[test]
    fn replace_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert!(c.insert("a", 10).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&"a"), Some(&10));
    }

    #[test]
    fn remove_and_reuse() {
        let mut c = LruCache::new(3);
        c.insert(1, "x");
        c.insert(2, "y");
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        assert_eq!(c.len(), 1);
        c.insert(3, "z");
        c.insert(4, "w");
        assert_eq!(c.len(), 3);
        assert_eq!(c.peek(&2), Some(&"y"));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        assert!(c.insert("a", 1).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn eviction_order_is_lru_not_fifo() {
        let mut c = LruCache::new(3);
        for (k, v) in [(1, 1), (2, 2), (3, 3)] {
            c.insert(k, v);
        }
        c.get(&1);
        c.get(&2);
        // 3 is now LRU.
        c.insert(4, 4);
        assert_eq!(c.peek(&3), None);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn sharded_concurrent_smoke() {
        // Capacity comfortably above the 4000 distinct keys inserted so no
        // shard can evict a just-inserted entry mid-assertion.
        let c = std::sync::Arc::new(ShardedLru::new(64_000, 8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.insert(format!("k{t}-{i}"), i);
                        assert_eq!(c.get(&format!("k{t}-{i}")), Some(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(c.len() <= c.capacity());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum LruOp {
            Insert(u8, u32),
            Get(u8),
            Remove(u8),
            /// Read WITHOUT touching — recency must not move.
            Peek(u8),
            /// Drop everything (also resets the slab + free list).
            Clear,
        }

        fn lru_ops() -> impl Strategy<Value = Vec<LruOp>> {
            proptest::collection::vec(
                prop_oneof![
                    4 => (any::<u8>(), any::<u32>()).prop_map(|(k, v)| LruOp::Insert(k % 24, v)),
                    3 => any::<u8>().prop_map(|k| LruOp::Get(k % 24)),
                    2 => any::<u8>().prop_map(|k| LruOp::Remove(k % 24)),
                    2 => any::<u8>().prop_map(|k| LruOp::Peek(k % 24)),
                    1 => Just(LruOp::Clear),
                ],
                1..200,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The full op set (insert/get/remove/peek/clear) agrees with a
            /// recency-ordered model: same hit/miss answers, same length, on
            /// overflow it evicts exactly the least-recently-used entry
            /// (returned as `(key, value)`), `peek` answers like `get` but
            /// must NOT promote, and `clear` resets to an empty cache whose
            /// recency order rebuilds from scratch.
            #[test]
            fn ops_match_recency_model(capacity in 1usize..12, ops in lru_ops()) {
                let mut c = LruCache::new(capacity);
                // Model: vec ordered most- to least-recently used.
                let mut model: Vec<(u8, u32)> = Vec::new();
                for op in ops {
                    match op {
                        LruOp::Insert(k, v) => {
                            let evicted = c.insert(k, v);
                            if model.iter().any(|(mk, _)| *mk == k) {
                                model.retain(|(mk, _)| *mk != k);
                                model.insert(0, (k, v));
                                prop_assert_eq!(evicted, None, "replace must not evict");
                            } else if model.len() >= capacity {
                                let lru = model.pop().unwrap();
                                model.insert(0, (k, v));
                                prop_assert_eq!(evicted, Some(lru), "wrong victim");
                            } else {
                                model.insert(0, (k, v));
                                prop_assert_eq!(evicted, None, "evicted below capacity");
                            }
                        }
                        LruOp::Get(k) => {
                            let got = c.get(&k).copied();
                            let want = model.iter().find(|(mk, _)| *mk == k).map(|(_, v)| *v);
                            prop_assert_eq!(got, want);
                            if let Some(v) = want {
                                model.retain(|(mk, _)| *mk != k);
                                model.insert(0, (k, v));
                            }
                        }
                        LruOp::Remove(k) => {
                            let want = model.iter().any(|(mk, _)| *mk == k);
                            prop_assert_eq!(c.remove(&k), want);
                            model.retain(|(mk, _)| *mk != k);
                        }
                        LruOp::Peek(k) => {
                            let got = c.peek(&k).copied();
                            let want = model.iter().find(|(mk, _)| *mk == k).map(|(_, v)| *v);
                            prop_assert_eq!(got, want);
                            // Deliberately no model reorder: the end-of-run
                            // drain below fails if peek promoted anything.
                        }
                        LruOp::Clear => {
                            c.clear();
                            model.clear();
                        }
                    }
                    prop_assert_eq!(c.len(), model.len());
                    prop_assert!(c.len() <= capacity);
                }
                // Fill to capacity with fresh keys (all ops used keys < 24),
                // then keep inserting: survivors must leave in exact LRU
                // order, oldest first.
                let mut fresh = 100u8;
                while model.len() < capacity {
                    prop_assert_eq!(c.insert(fresh, 0), None);
                    model.insert(0, (fresh, 0));
                    fresh += 1;
                }
                while let Some(lru) = model.pop() {
                    prop_assert_eq!(c.insert(fresh, 0), Some(lru), "wrong drain victim");
                    fresh += 1;
                }
            }
        }
    }

    #[test]
    fn stress_against_reference_model() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut c = LruCache::new(16);
        // Model: vector ordered by recency.
        let mut model: Vec<(u32, u32)> = Vec::new();
        for step in 0..10_000 {
            let k = rng.random_range(0..40u32);
            // Rare full clears exercise slab/free-list reset under load.
            if step % 2_500 == 2_499 {
                c.clear();
                model.clear();
                continue;
            }
            if rng.random_range(0..8u8) == 7 {
                // Peek: answers like get, promotes nothing.
                let got = c.peek(&k).copied();
                let want = model.iter().find(|(mk, _)| *mk == k).map(|(_, v)| *v);
                assert_eq!(got, want);
                continue;
            }
            match rng.random_range(0..3u8) {
                0 => {
                    let v = rng.random::<u32>();
                    c.insert(k, v);
                    model.retain(|(mk, _)| *mk != k);
                    model.insert(0, (k, v));
                    if model.len() > 16 {
                        model.pop();
                    }
                }
                1 => {
                    let got = c.get(&k).copied();
                    let want = model.iter().find(|(mk, _)| *mk == k).map(|(_, v)| *v);
                    assert_eq!(got, want);
                    if let Some(v) = want {
                        model.retain(|(mk, _)| *mk != k);
                        model.insert(0, (k, v));
                    }
                }
                _ => {
                    let got = c.remove(&k);
                    let want = model.iter().any(|(mk, _)| *mk == k);
                    assert_eq!(got, want);
                    model.retain(|(mk, _)| *mk != k);
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
