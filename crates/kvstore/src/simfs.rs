//! A minimal file-per-key store over a pmem pool — the DAX-ext4 stand-in
//! behind the FS and TmpFS backends.
//!
//! Layout: a slot array on the device. Each slot:
//!
//! ```text
//! [state u32][keylen u32][datalen u32][pad u32][key .. data ..]
//! ```
//!
//! `state` = 0 free, 1 live. A volatile directory (key → slot) is rebuilt
//! by scanning the device at open — that scan is the FS restart cost
//! Figure 11 charges the FS backend with. Every operation pays a modeled
//! syscall cost and marshals whole records through the codec, matching the
//! paper's external design.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use jnvm_pmem::{spin_ns, Pmem};


use crate::backend::Backend;
use crate::codec::{decode_record, encode_record, Record};
use crate::CostModel;

const SLOT_HEADER: u64 = 16;
const ST_FREE: u32 = 0;
const ST_LIVE: u32 = 1;

/// The file-per-key store.
pub struct SimFs {
    pmem: Arc<Pmem>,
    slot_size: u64,
    nslots: u64,
    dir: RwLock<Dir>,
    costs: CostModel,
}

struct Dir {
    map: HashMap<String, u64>,
    free: Vec<u64>,
}

impl SimFs {
    /// Format a store whose files can hold up to `max_file_bytes`.
    pub fn format(pmem: Arc<Pmem>, max_file_bytes: u64, costs: CostModel) -> SimFs {
        let slot_size = (SLOT_HEADER + max_file_bytes).next_multiple_of(64);
        let nslots = pmem.len() / slot_size;
        let dir = Dir {
            map: HashMap::new(),
            free: (0..nslots).rev().collect(),
        };
        SimFs {
            pmem,
            slot_size,
            nslots,
            dir: RwLock::new(dir),
            costs,
        }
    }

    /// Mount an existing store: scan every slot to rebuild the directory
    /// (the expensive FS restart the paper measures).
    pub fn mount(pmem: Arc<Pmem>, max_file_bytes: u64, costs: CostModel) -> SimFs {
        let fs = SimFs::format(pmem, max_file_bytes, costs);
        let mut dir = Dir {
            map: HashMap::new(),
            free: Vec::new(),
        };
        for slot in 0..fs.nslots {
            let base = slot * fs.slot_size;
            if fs.pmem.read_u32(base) == ST_LIVE {
                let keylen = fs.pmem.read_u32(base + 4) as usize;
                let mut key = vec![0u8; keylen.min(fs.slot_size as usize)];
                fs.pmem.read_bytes(base + SLOT_HEADER, &mut key);
                dir.map
                    .insert(String::from_utf8_lossy(&key).into_owned(), slot);
            } else {
                dir.free.push(slot);
            }
        }
        dir.free.reverse();
        *fs.dir.write() = dir;
        fs
    }

    /// The software cost model in force.
    pub fn costs(&self) -> CostModel {
        self.costs
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.dir.read().map.len()
    }

    /// Store capacity in files.
    pub fn capacity(&self) -> u64 {
        self.nslots
    }

    /// Write (create or replace) a file. Returns false when the volume is
    /// full or the content exceeds the file size limit.
    pub fn write_file(&self, key: &str, data: &[u8]) -> bool {
        spin_ns(self.costs.syscall_write_ns);
        if SLOT_HEADER + key.len() as u64 + data.len() as u64 > self.slot_size {
            return false;
        }
        let mut dir = self.dir.write();
        let slot = match dir.map.get(key) {
            Some(s) => *s,
            None => match dir.free.pop() {
                Some(s) => {
                    dir.map.insert(key.to_string(), s);
                    s
                }
                None => return false,
            },
        };
        let base = slot * self.slot_size;
        self.pmem.write_u32(base + 4, key.len() as u32);
        self.pmem.write_u32(base + 8, data.len() as u32);
        self.pmem.write_bytes(base + SLOT_HEADER, key.as_bytes());
        self.pmem
            .write_bytes(base + SLOT_HEADER + key.len() as u64, data);
        self.pmem.write_u32(base, ST_LIVE);
        // DAX write-through: the kernel flushes on msync/fsync semantics.
        self.pmem
            .pwb_range(base, SLOT_HEADER + key.len() as u64 + data.len() as u64);
        self.pmem.pfence();
        true
    }

    /// Read a file's content.
    pub fn read_file(&self, key: &str) -> Option<Vec<u8>> {
        spin_ns(self.costs.syscall_read_ns);
        let dir = self.dir.read();
        let slot = *dir.map.get(key)?;
        let base = slot * self.slot_size;
        let keylen = self.pmem.read_u32(base + 4) as u64;
        let datalen = self.pmem.read_u32(base + 8) as usize;
        let mut data = vec![0u8; datalen];
        self.pmem.read_bytes(base + SLOT_HEADER + keylen, &mut data);
        Some(data)
    }

    /// Delete a file.
    pub fn delete_file(&self, key: &str) -> bool {
        spin_ns(self.costs.syscall_write_ns);
        let mut dir = self.dir.write();
        match dir.map.remove(key) {
            Some(slot) => {
                let base = slot * self.slot_size;
                self.pmem.write_u32(base, ST_FREE);
                self.pmem.pwb(base);
                self.pmem.pfence();
                dir.free.push(slot);
                true
            }
            None => false,
        }
    }
}

/// The FS backend of the paper: marshalling + file system over NVMM.
pub struct FsBackend {
    fs: SimFs,
}

impl FsBackend {
    /// Create over a (typically Optane-profiled) pmem pool.
    pub fn new(pmem: Arc<Pmem>, max_record_bytes: u64, costs: CostModel) -> FsBackend {
        FsBackend {
            fs: SimFs::format(pmem, max_record_bytes, costs),
        }
    }

    /// Re-mount after a restart (pays the full directory scan).
    pub fn mount(pmem: Arc<Pmem>, max_record_bytes: u64, costs: CostModel) -> FsBackend {
        FsBackend {
            fs: SimFs::mount(pmem, max_record_bytes, costs),
        }
    }

    /// The underlying file store.
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }
}

impl Backend for FsBackend {
    fn name(&self) -> &'static str {
        "fs"
    }

    fn store_full(&self, rec: &Record) -> bool {
        let bytes = encode_record(rec);
        spin_ns(self.fs.costs().marshal_ns_per_byte * bytes.len() as u64);
        self.fs.write_file(&rec.key, &bytes)
    }

    fn read(&self, key: &str) -> Option<Record> {
        let bytes = self.fs.read_file(key)?;
        spin_ns(self.fs.costs().marshal_ns_per_byte * bytes.len() as u64);
        decode_record(&bytes)
    }

    fn update_field(&self, key: &str, field: usize, value: &[u8]) -> bool {
        // The external design has no partial update: read-modify-write the
        // whole marshalled record.
        let Some(mut rec) = self.read(key) else {
            return false;
        };
        if field >= rec.fields.len() {
            return false;
        }
        rec.fields[field].1 = value.to_vec();
        self.store_full(&rec)
    }

    fn remove(&self, key: &str) -> bool {
        self.fs.delete_file(key)
    }

    fn len(&self) -> usize {
        self.fs.file_count()
    }

    fn prefers_field_updates(&self) -> bool {
        false
    }
}

/// The TmpFS backend: the same file store over DRAM-timed memory.
pub struct TmpfsBackend {
    inner: FsBackend,
}

impl TmpfsBackend {
    /// Create over a DRAM-profiled pool.
    pub fn new(pmem: Arc<Pmem>, max_record_bytes: u64, costs: CostModel) -> TmpfsBackend {
        TmpfsBackend {
            inner: FsBackend::new(pmem, max_record_bytes, costs),
        }
    }
}

impl Backend for TmpfsBackend {
    fn name(&self) -> &'static str {
        "tmpfs"
    }
    fn store_full(&self, rec: &Record) -> bool {
        self.inner.store_full(rec)
    }
    fn read(&self, key: &str) -> Option<Record> {
        self.inner.read(key)
    }
    fn update_field(&self, key: &str, field: usize, value: &[u8]) -> bool {
        self.inner.update_field(key, field, value)
    }
    fn remove(&self, key: &str) -> bool {
        self.inner.remove(key)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn prefers_field_updates(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm_pmem::PmemConfig;

    fn fs() -> SimFs {
        let pmem = Pmem::new(PmemConfig::perf(4 << 20));
        SimFs::format(pmem, 2048, CostModel::free())
    }

    #[test]
    fn write_read_delete() {
        let fs = fs();
        assert!(fs.write_file("a", b"hello"));
        assert_eq!(fs.read_file("a").unwrap(), b"hello");
        assert!(fs.write_file("a", b"rewritten"));
        assert_eq!(fs.read_file("a").unwrap(), b"rewritten");
        assert_eq!(fs.file_count(), 1);
        assert!(fs.delete_file("a"));
        assert!(fs.read_file("a").is_none());
        assert!(!fs.delete_file("a"));
    }

    #[test]
    fn rejects_oversized_files() {
        let fs = fs();
        assert!(!fs.write_file("big", &vec![0u8; 4096]));
    }

    #[test]
    fn mount_rebuilds_directory() {
        let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
        let fs = SimFs::format(Arc::clone(&pmem), 2048, CostModel::free());
        for i in 0..20 {
            assert!(fs.write_file(&format!("k{i}"), format!("v{i}").as_bytes()));
        }
        fs.delete_file("k7");
        pmem.crash(&jnvm_pmem::CrashPolicy::strict()).unwrap();
        let fs2 = SimFs::mount(pmem, 2048, CostModel::free());
        assert_eq!(fs2.file_count(), 19);
        assert_eq!(fs2.read_file("k3").unwrap(), b"v3");
        assert!(fs2.read_file("k7").is_none());
        // New writes reuse freed slots.
        assert!(fs2.write_file("new", b"x"));
    }

    #[test]
    fn backend_round_trip_with_field_update() {
        let pmem = Pmem::new(PmemConfig::perf(4 << 20));
        let be = FsBackend::new(pmem, 4096, CostModel::free());
        let rec = Record::ycsb("user1", &[b"aaa".to_vec(), b"bbb".to_vec()]);
        assert!(be.store_full(&rec));
        assert_eq!(be.read("user1").unwrap(), rec);
        assert!(be.update_field("user1", 1, b"BBB"));
        assert_eq!(be.read("user1").unwrap().fields[1].1, b"BBB");
        assert!(!be.update_field("user1", 9, b"nope"));
        assert!(!be.update_field("missing", 0, b"nope"));
        assert!(be.remove("user1"));
        assert_eq!(be.len(), 0);
    }

    #[test]
    fn volume_full_reports_failure() {
        let pmem = Pmem::new(PmemConfig::perf(16 * 1024));
        let fs = SimFs::format(pmem, 1000, CostModel::free());
        let cap = fs.capacity();
        for i in 0..cap {
            assert!(fs.write_file(&format!("k{i}"), b"x"));
        }
        assert!(!fs.write_file("overflow", b"x"));
    }
}
