//! The embedded data grid: sharded LRU cache + write-through backend +
//! per-key lock striping (Infinispan embedded mode, §5.1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::Backend;
use crate::codec::Record;
use crate::lru::ShardedLru;

/// Grid configuration.
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Volatile cache capacity in records (the paper caches ≤ 10 % of the
    /// dataset; J-NVM backends run with 0 — caching brings them nothing,
    /// §5.3.1).
    pub cache_capacity: usize,
    /// Cache shards.
    pub cache_shards: usize,
    /// Per-key lock stripes.
    pub lock_stripes: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            cache_capacity: 0,
            cache_shards: 64,
            lock_stripes: 256,
        }
    }
}

/// Grid-level counters.
#[derive(Debug, Default)]
pub struct GridMetrics {
    /// Cache hits.
    pub hits: AtomicU64,
    /// Cache misses.
    pub misses: AtomicU64,
    /// Read operations.
    pub reads: AtomicU64,
    /// Write operations (insert + update).
    pub writes: AtomicU64,
}

/// An embedded data grid over a persistence [`Backend`].
pub struct DataGrid {
    backend: Arc<dyn Backend>,
    cache: ShardedLru<String, Record>,
    cache_enabled: bool,
    locks: Vec<Mutex<()>>,
    metrics: GridMetrics,
}

impl DataGrid {
    /// Build a grid over `backend`.
    pub fn new(backend: Arc<dyn Backend>, cfg: GridConfig) -> DataGrid {
        DataGrid {
            backend,
            cache: ShardedLru::new(cfg.cache_capacity, cfg.cache_shards.max(1)),
            cache_enabled: cfg.cache_capacity > 0,
            locks: (0..cfg.lock_stripes.max(1)).map(|_| Mutex::new(())).collect(),
            metrics: GridMetrics::default(),
        }
    }

    fn stripe(&self, key: &str) -> &Mutex<()> {
        &self.locks[self.stripe_index(key)]
    }

    /// Index of the lock stripe guarding `key` (FNV-1a, as everywhere).
    /// Exposed so the group committer can detect same-stripe conflicts and
    /// hold the same locks the direct-call paths take.
    pub(crate) fn stripe_index(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        (h as usize) % self.locks.len()
    }

    /// The stripe lock at `idx` (from [`DataGrid::stripe_index`]).
    pub(crate) fn stripe_at(&self, idx: usize) -> &Mutex<()> {
        &self.locks[idx]
    }

    /// Drop `key` from the volatile cache (used by the group committer,
    /// whose writes bypass the write-through paths).
    pub(crate) fn invalidate(&self, key: &str) {
        if self.cache_enabled {
            self.cache.remove(&key.to_string());
        }
    }

    /// The backing store.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// Grid counters.
    pub fn metrics(&self) -> &GridMetrics {
        &self.metrics
    }

    /// Records in the backend.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when the backend holds no record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert (or replace) a record, write-through.
    pub fn insert(&self, rec: &Record) -> bool {
        let _g = self.stripe(&rec.key).lock();
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let ok = self.backend.store_full(rec);
        if ok && self.cache_enabled {
            self.cache.insert(rec.key.clone(), rec.clone());
        }
        ok
    }

    /// Read a record: volatile cache first, then the backend.
    pub fn read(&self, key: &str) -> Option<Record> {
        let _g = self.stripe(key).lock();
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        if self.cache_enabled {
            if let Some(rec) = self.cache.get(&key.to_string()) {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                return Some(rec);
            }
        }
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        let rec = self.backend.read(key)?;
        if self.cache_enabled {
            self.cache.insert(key.to_string(), rec.clone());
        }
        Some(rec)
    }

    /// Serve a read without forcing full materialization when the backend
    /// supports it (J-NVM designs hand out persistent values; §5.2).
    /// Cache hits still return materialized records.
    pub fn read_touch(&self, key: &str) -> bool {
        let _g = self.stripe(key).lock();
        self.read_touch_locked(key)
    }

    /// [`DataGrid::read_touch`] body; caller holds the key's stripe lock.
    fn read_touch_locked(&self, key: &str) -> bool {
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        if self.cache_enabled
            && self.cache.get(&key.to_string()).is_some() {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        if self.backend.prefers_field_updates() {
            // J-NVM path: proxy touch.
            self.backend.read_touch(key)
        } else {
            let rec = self.backend.read(key);
            if let Some(rec) = rec {
                if self.cache_enabled {
                    self.cache.insert(key.to_string(), rec);
                }
                true
            } else {
                false
            }
        }
    }

    /// Update one positional field, write-through.
    ///
    /// J-NVM-style backends take the in-place path; external-design
    /// backends do read-modify-write with whole-record marshalling (which
    /// is exactly the asymmetry Figure 7 measures).
    pub fn update_field(&self, key: &str, field: usize, value: &[u8]) -> bool {
        let _g = self.stripe(key).lock();
        self.update_field_locked(key, field, value)
    }

    /// [`DataGrid::update_field`] body; caller holds the key's stripe lock.
    fn update_field_locked(&self, key: &str, field: usize, value: &[u8]) -> bool {
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let ok = if self.backend.prefers_field_updates() {
            self.backend.update_field(key, field, value)
        } else {
            let rec = if self.cache_enabled {
                self.cache.get(&key.to_string())
            } else {
                None
            };
            let rec = rec.or_else(|| self.backend.read(key));
            let mut rec = match rec {
                Some(r) => r,
                None if self.backend.is_black_hole() => {
                    // The black hole stores nothing, but the write-through
                    // path still marshals a full record (Figure 8's point).
                    Record::ycsb(key, &vec![value.to_vec(); 10])
                }
                None => return false,
            };
            if field >= rec.fields.len() {
                return false;
            }
            rec.fields[field].1 = value.to_vec();
            self.backend.store_full(&rec)
        };
        if ok && self.cache_enabled {
            // Keep the cached copy coherent (write-through).
            if let Some(mut rec) = self.cache.get(&key.to_string()) {
                if field < rec.fields.len() {
                    rec.fields[field].1 = value.to_vec();
                    self.cache.insert(key.to_string(), rec);
                }
            }
        }
        ok
    }

    /// Read-modify-write: read the record (through proxies for J-NVM
    /// backends, materialized otherwise), then update one field.
    pub fn rmw(&self, key: &str, field: usize, value: &[u8]) -> bool {
        // Single-key RMW: one stripe-lock acquisition covers both halves,
        // so no concurrent writer can interleave between the read and the
        // update.
        let _g = self.stripe(key).lock();
        self.read_touch_locked(key) && self.update_field_locked(key, field, value)
    }

    /// Remove a record.
    pub fn remove(&self, key: &str) -> bool {
        let _g = self.stripe(key).lock();
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        if self.cache_enabled {
            self.cache.remove(&key.to_string());
        }
        self.backend.remove(key)
    }

    /// Cache hit ratio since start.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.metrics.hits.load(Ordering::Relaxed) as f64;
        let m = self.metrics.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::VolatileBackend;
    use crate::simfs::FsBackend;
    use crate::CostModel;
    use jnvm_pmem::{Pmem, PmemConfig};

    fn volatile_grid(cache: usize) -> DataGrid {
        DataGrid::new(
            Arc::new(VolatileBackend::new()),
            GridConfig {
                cache_capacity: cache,
                ..GridConfig::default()
            },
        )
    }

    #[test]
    fn insert_read_update_remove() {
        let g = volatile_grid(10);
        let rec = Record::ycsb("k", &[b"a".to_vec(), b"b".to_vec()]);
        assert!(g.insert(&rec));
        assert_eq!(g.read("k").unwrap(), rec);
        assert!(g.update_field("k", 1, b"B"));
        assert_eq!(g.read("k").unwrap().fields[1].1, b"B");
        assert!(g.rmw("k", 0, b"A"));
        assert_eq!(g.read("k").unwrap().fields[0].1, b"A");
        assert!(g.remove("k"));
        assert!(g.read("k").is_none());
    }

    #[test]
    fn cache_serves_hits() {
        let g = volatile_grid(10);
        let rec = Record::ycsb("k", &[b"v".to_vec()]);
        g.insert(&rec);
        g.read("k");
        g.read("k");
        assert!(g.metrics().hits.load(Ordering::Relaxed) >= 2);
        assert!(g.hit_ratio() > 0.5);
    }

    #[test]
    fn cache_stays_coherent_after_update() {
        let g = volatile_grid(10);
        let rec = Record::ycsb("k", &[b"old".to_vec()]);
        g.insert(&rec);
        g.read("k"); // cached
        g.update_field("k", 0, b"new");
        assert_eq!(g.read("k").unwrap().fields[0].1, b"new");
    }

    #[test]
    fn rmw_on_external_backend_marshal_path() {
        let pmem = Pmem::new(PmemConfig::perf(8 << 20));
        let be = Arc::new(FsBackend::new(pmem, 4096, CostModel::free()));
        let g = DataGrid::new(
            be,
            GridConfig {
                cache_capacity: 4,
                ..GridConfig::default()
            },
        );
        let rec = Record::ycsb("k", &[b"x".to_vec(), b"y".to_vec()]);
        g.insert(&rec);
        assert!(g.update_field("k", 0, b"X"));
        assert_eq!(g.read("k").unwrap().fields[0].1, b"X");
        assert!(!g.update_field("absent", 0, b"X"));
    }

    #[test]
    fn cache_disabled_always_misses() {
        let g = volatile_grid(0);
        let rec = Record::ycsb("k", &[b"v".to_vec()]);
        g.insert(&rec);
        g.read("k");
        g.read("k");
        assert_eq!(g.metrics().hits.load(Ordering::Relaxed), 0);
        assert_eq!(g.hit_ratio(), 0.0);
    }

    #[test]
    fn concurrent_rmw_preserves_per_key_atomicity() {
        let g = Arc::new(volatile_grid(0));
        g.insert(&Record::ycsb("k", &[0u64.to_le_bytes().to_vec()]));
        // 8 threads × 100 increments through rmw-like cycles under the
        // grid; the stripe lock serializes per key.
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        loop {
                            let cur = g.read("k").unwrap();
                            let v = u64::from_le_bytes(cur.fields[0].1[..8].try_into().unwrap());
                            // CAS-like: reinsert only if unchanged (the
                            // VolatileBackend's update is atomic per call).
                            if g.update_field_cas("k", v, v + 1) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = u64::from_le_bytes(g.read("k").unwrap().fields[0].1[..8].try_into().unwrap());
        assert_eq!(v, 800);
    }

    /// A backend that detects a writer interleaving between the read and
    /// the update halves of [`DataGrid::rmw`]: every mutation bumps a
    /// version; `read_touch` remembers the version its thread saw, and
    /// `update_field` flags the rmw as torn when the version moved in
    /// between. With rmw holding the stripe lock across both halves no
    /// interleave is possible.
    #[derive(Default)]
    struct VersionedBackend {
        version: AtomicU64,
        seen: Mutex<std::collections::HashMap<std::thread::ThreadId, u64>>,
        torn: AtomicU64,
    }

    impl crate::backend::Backend for VersionedBackend {
        fn name(&self) -> &'static str {
            "versioned"
        }
        fn store_full(&self, _rec: &Record) -> bool {
            self.version.fetch_add(1, Ordering::SeqCst);
            true
        }
        fn read(&self, key: &str) -> Option<Record> {
            Some(Record::ycsb(key, &[b"v".to_vec()]))
        }
        fn read_touch(&self, _key: &str) -> bool {
            let v = self.version.load(Ordering::SeqCst);
            self.seen.lock().insert(std::thread::current().id(), v);
            // Widen the rmw window so an unlocked gap is actually hit.
            std::thread::yield_now();
            true
        }
        fn update_field(&self, _key: &str, _field: usize, _value: &[u8]) -> bool {
            let seen = self.seen.lock().remove(&std::thread::current().id());
            let now = self.version.fetch_add(1, Ordering::SeqCst);
            if let Some(seen) = seen {
                if now != seen {
                    self.torn.fetch_add(1, Ordering::SeqCst);
                }
            }
            true
        }
        fn remove(&self, _key: &str) -> bool {
            self.version.fetch_add(1, Ordering::SeqCst);
            true
        }
        fn len(&self) -> usize {
            1
        }
        fn prefers_field_updates(&self) -> bool {
            true
        }
    }

    #[test]
    fn rmw_holds_stripe_lock_across_read_and_update() {
        let be = Arc::new(VersionedBackend::default());
        let g = Arc::new(DataGrid::new(
            Arc::clone(&be) as Arc<dyn Backend>,
            GridConfig {
                cache_capacity: 0,
                ..GridConfig::default()
            },
        ));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        if (t + i) % 2 == 0 {
                            assert!(g.rmw("k", 0, b"x"));
                        } else {
                            // The competing writer that used to slip into
                            // rmw's unlocked gap.
                            assert!(g.update_field("k", 0, b"y"));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            be.torn.load(Ordering::SeqCst),
            0,
            "a writer interleaved between rmw's read and update"
        );
    }

    /// A counter backend for proving rmw's read and update halves execute
    /// under one continuous stripe-lock hold: `read_touch` observes the
    /// counter, `update_field` stores back observed + 1. Any writer
    /// interleaving between the halves loses increments, so an exact
    /// final sum is only possible with the lock held across both.
    #[derive(Default)]
    struct CounterBackend {
        value: AtomicU64,
        seen: Mutex<std::collections::HashMap<std::thread::ThreadId, u64>>,
    }

    impl crate::backend::Backend for CounterBackend {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn store_full(&self, _rec: &Record) -> bool {
            true
        }
        fn read(&self, key: &str) -> Option<Record> {
            Some(Record::ycsb(
                key,
                &[self.value.load(Ordering::SeqCst).to_le_bytes().to_vec()],
            ))
        }
        fn read_touch(&self, _key: &str) -> bool {
            let v = self.value.load(Ordering::SeqCst);
            self.seen.lock().insert(std::thread::current().id(), v);
            // Widen the read-to-update window so an unlocked gap is hit.
            std::thread::yield_now();
            true
        }
        fn update_field(&self, _key: &str, _field: usize, _value: &[u8]) -> bool {
            let seen = self
                .seen
                .lock()
                .remove(&std::thread::current().id())
                .expect("rmw update half without its read half");
            self.value.store(seen + 1, Ordering::SeqCst);
            true
        }
        fn remove(&self, _key: &str) -> bool {
            true
        }
        fn len(&self) -> usize {
            1
        }
        fn prefers_field_updates(&self) -> bool {
            true
        }
    }

    #[test]
    fn concurrent_rmw_counter_sum_is_exact() {
        let be = Arc::new(CounterBackend::default());
        let g = Arc::new(DataGrid::new(
            Arc::clone(&be) as Arc<dyn Backend>,
            GridConfig {
                cache_capacity: 0,
                ..GridConfig::default()
            },
        ));
        const T: usize = 8;
        const K: u64 = 250;
        let threads: Vec<_> = (0..T)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..K {
                        assert!(g.rmw("k", 0, b"x"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            be.value.load(Ordering::SeqCst),
            T as u64 * K,
            "lost increments: rmw released the stripe lock between read and update"
        );
    }

    #[test]
    fn remove_counts_as_write() {
        let g = volatile_grid(0);
        g.insert(&Record::ycsb("k", &[b"v".to_vec()]));
        let before = g.metrics().writes.load(Ordering::Relaxed);
        g.remove("k");
        assert_eq!(g.metrics().writes.load(Ordering::Relaxed), before + 1);
    }

    impl DataGrid {
        /// Test helper: compare-and-set the first field as a u64 counter.
        fn update_field_cas(&self, key: &str, expect: u64, new: u64) -> bool {
            let _g = self.stripe(key).lock();
            let Some(rec) = self.backend.read(key) else {
                return false;
            };
            let cur = u64::from_le_bytes(rec.fields[0].1[..8].try_into().unwrap());
            if cur != expect {
                return false;
            }
            self.backend
                .update_field(key, 0, &new.to_le_bytes())
        }
    }
}
