//! # jnvm-kvstore — an Infinispan-like embedded data grid
//!
//! The evaluation substrate of the paper (§5.1): an embedded key-value
//! data grid with
//!
//! * a sharded **LRU cache** with a configurable capacity ratio (Infinispan
//!   caches up to 10 % of the data items in the paper),
//! * **write-through persistence** to a pluggable [`Backend`],
//! * per-key **lock striping**,
//! * a hand-rolled binary **marshalling codec** (the cost the paper
//!   attributes FS/PCJ slowness to — it must be real CPU work, not a
//!   constant),
//!
//! and the persistent backends of §5.1:
//!
//! | backend | description |
//! |---|---|
//! | [`JnvmBackend`] (J-PDT) | persistent records + J-PDT maps, low-level interface |
//! | [`JnvmBackend`] (J-PFA) | same structures, every operation in a failure-atomic block |
//! | [`FsBackend`] | file-per-key store over NVMM with marshalling + syscall costs (DAX ext4 stand-in) |
//! | [`TmpfsBackend`] | the same store over DRAM-timed memory |
//! | [`NullFsBackend`] | marshal, then discard (the nullfs of Figure 8) |
//! | [`PcjBackend`] | marshalled values behind a simulated JNI bridge (PCJ/PMDK stand-in) |
//! | [`VolatileBackend`] | plain volatile map, persistence disabled |

mod backend;
mod codec;
mod grid;
mod group;
mod jnvm_backend;
mod lru;
mod pcj;
mod repl;
mod sharded;
mod simfs;

pub use backend::{Backend, NullFsBackend, VolatileBackend};
pub use codec::{decode_record, encode_record, Record};
pub use grid::{DataGrid, GridConfig, GridMetrics};
pub use group::{commit_writes, BatchOutcome, WriteOp};
pub use jnvm_backend::{register_kvstore, JnvmBackend, PRecord};
pub use lru::{LruCache, ShardedLru};
pub use pcj::PcjBackend;
pub use repl::{commit_writes_replicated, ReplLag, ReplicaStack};
pub use sharded::{shard_for_key, KvShard, ShardedKv};
pub use simfs::{FsBackend, SimFs, TmpfsBackend};

/// Simulated software costs (nanoseconds) of the non-J-NVM access paths.
///
/// Calibrated to the per-operation costs the paper reports or cites: a DAX
/// ext4 read/write syscall takes a few microseconds of kernel time, and a
/// JNI downcall requires "heavy synchronization to call a native method"
/// (§5.2) on the order of a microsecond per crossing.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Kernel cost of a file read.
    pub syscall_read_ns: u64,
    /// Kernel cost of a file write (DAX write + metadata).
    pub syscall_write_ns: u64,
    /// One JNI crossing.
    pub jni_call_ns: u64,
    /// Java-marshalling surcharge per byte. Our hand-rolled Rust codec is
    /// an order of magnitude cheaper than the JBoss Marshalling stack the
    /// paper's Infinispan uses; this calibrated surcharge restores the
    /// measured Java cost (Figure 8: FS/NullFS/TmpFS land at 2.11-6.26x
    /// the Volatile baseline for 1 KB records).
    pub marshal_ns_per_byte: u64,
    /// JNI crossings per PCJ map operation (get/put each traverse the
    /// bridge several times: enter, per-argument pinning, exit).
    pub jni_calls_per_op: u64,
}

impl CostModel {
    /// The calibration used by the benchmark harnesses.
    pub const fn default_model() -> CostModel {
        CostModel {
            syscall_read_ns: 1_500,
            syscall_write_ns: 2_500,
            jni_call_ns: 900,
            jni_calls_per_op: 4,
            marshal_ns_per_byte: 14,
        }
    }

    /// All-zero costs (unit tests).
    pub const fn free() -> CostModel {
        CostModel {
            syscall_read_ns: 0,
            syscall_write_ns: 0,
            jni_call_ns: 0,
            jni_calls_per_op: 0,
            marshal_ns_per_byte: 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::default_model()
    }
}
