//! Replicated group commit: the same batch of [`WriteOp`]s committed on
//! two independent pool stacks, with a **replication-lag watermark**.
//!
//! The replication unit is the commit group (PR 3): one group = one
//! §4.2 fence pass per device, so replicating at group granularity pays
//! the backup's 3 fences once per batch, not per write — the Persistent
//! Software Combining argument applied across devices.
//!
//! [`commit_writes_replicated`] is the in-process form used by the
//! fault-injection harness and the `fig14_replication` model: it commits
//! the batch on the **backup first**, then on the primary, mirroring the
//! server's wire ordering (the group is streamed to the backup *before*
//! the primary's commit). That ordering is what makes failover safe: at
//! any crash point on the primary, the backup's applied state is a
//! superset-prefix of the primary's — every *fully replicated-committed*
//! (i.e. ackable) batch is durable on the backup, and anything beyond the
//! last acked batch is an allowed prefix extension under the acked ⇒
//! durable contract.
//!
//! `jnvm-server` uses the wire path instead (REPL frames in
//! `server::proto`), but drives the same [`ReplLag`] watermark: `sent`
//! advances when a group is handed to the backup, `acked` when the
//! backup's durability point comes back. `sent - acked` is the
//! replication lag a STATS reader sees.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::grid::DataGrid;
use crate::group::{commit_writes, BatchOutcome, WriteOp};
use crate::jnvm_backend::JnvmBackend;

/// Replication-lag watermark: monotone sequence numbers for groups handed
/// to the backup (`sent`) and groups the backup has made durable
/// (`acked`). Lag is their difference — 0 when the backup is caught up,
/// frozen at its last value once the set degrades.
#[derive(Debug, Default)]
pub struct ReplLag {
    sent: AtomicU64,
    acked: AtomicU64,
}

impl ReplLag {
    /// Fresh watermark at sequence 0.
    pub fn new() -> ReplLag {
        ReplLag::default()
    }

    /// Allocate the next group sequence number (first call returns 1).
    pub fn next_seq(&self) -> u64 {
        self.sent.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Record the backup's durability point (cumulative: acks may arrive
    /// coalesced, only the max matters).
    pub fn record_acked(&self, seq: u64) {
        self.acked.fetch_max(seq, Ordering::AcqRel);
    }

    /// Groups handed to the backup so far.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Acquire)
    }

    /// The backup's durability point.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Groups in flight to the backup (`sent - acked`).
    pub fn lag(&self) -> u64 {
        self.sent().saturating_sub(self.acked())
    }
}

/// One replica's commit surface.
pub struct ReplicaStack<'a> {
    /// The replica's grid (cache invalidation rides the commit).
    pub grid: &'a DataGrid,
    /// The replica's backend.
    pub be: &'a JnvmBackend,
}

/// Commit `ops` on the backup, then on the primary, and return the
/// primary's outcome. Both sides run the full group-commit pass
/// ([`commit_writes`]) against their own device; group formation is
/// deterministic in the op list and the backend state, so replaying the
/// identical batches yields identical per-op results — asserted here.
/// With `backup = None` (degraded / solo mode) this is plain
/// [`commit_writes`] and the watermark does not move.
///
/// The caller owns crash handling: an injected crash on either device
/// unwinds out of this function ([`jnvm_pmem::catch_crash`] at the call
/// site), after which the caller promotes or degrades. On a mid-batch
/// primary crash the backup has already committed the batch — the
/// superset-prefix invariant failover relies on.
pub fn commit_writes_replicated(
    primary: ReplicaStack<'_>,
    backup: Option<ReplicaStack<'_>>,
    ops: &[WriteOp],
    lag: &ReplLag,
) -> BatchOutcome {
    if let Some(b) = backup {
        let seq = lag.next_seq();
        let backup_out = commit_writes(b.grid, b.be, ops);
        lag.record_acked(seq);
        let out = commit_writes(primary.grid, primary.be, ops);
        debug_assert_eq!(
            out.results, backup_out.results,
            "replica divergence inside a crash-free batch: group commit \
             must be deterministic in (ops, backend state)"
        );
        out
    } else {
        commit_writes(primary.grid, primary.be, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{Pmem, PmemConfig};

    use crate::grid::GridConfig;
    use crate::jnvm_backend::register_kvstore;
    use crate::Backend;
    use crate::Record;

    fn stack(bytes: u64) -> (Arc<Pmem>, jnvm::Jnvm, Arc<JnvmBackend>, DataGrid) {
        let pmem = Pmem::new(PmemConfig::crash_sim(bytes));
        let rt = register_kvstore(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .expect("pool");
        let be = Arc::new(JnvmBackend::create(&rt, 4, true).expect("backend"));
        let grid = DataGrid::new(
            Arc::clone(&be) as Arc<dyn Backend>,
            GridConfig {
                cache_capacity: 0,
                ..GridConfig::default()
            },
        );
        (pmem, rt, be, grid)
    }

    #[test]
    fn replicated_commit_applies_to_both_and_tracks_lag() {
        let (_pp, _prt, pbe, pgrid) = stack(4 << 20);
        let (_bp, _brt, bbe, bgrid) = stack(4 << 20);
        let lag = ReplLag::new();

        let ops = vec![
            WriteOp::Set(Record::ycsb("a", &[b"1".to_vec()])),
            WriteOp::Set(Record::ycsb("b", &[b"2".to_vec()])),
            WriteOp::Del("missing".into()),
        ];
        let out = commit_writes_replicated(
            ReplicaStack { grid: &pgrid, be: &pbe },
            Some(ReplicaStack { grid: &bgrid, be: &bbe }),
            &ops,
            &lag,
        );
        assert_eq!(out.results, vec![true, true, false]);
        assert_eq!(pbe.read("a").unwrap().fields[0].1, b"1");
        assert_eq!(bbe.read("a").unwrap().fields[0].1, b"1");
        assert_eq!(bbe.read("b").unwrap().fields[0].1, b"2");
        assert_eq!((lag.sent(), lag.acked(), lag.lag()), (1, 1, 0));
    }

    #[test]
    fn solo_commit_leaves_the_watermark_alone() {
        let (_pp, _prt, pbe, pgrid) = stack(4 << 20);
        let lag = ReplLag::new();
        let ops = vec![WriteOp::Set(Record::ycsb("k", &[b"v".to_vec()]))];
        let out = commit_writes_replicated(
            ReplicaStack { grid: &pgrid, be: &pbe },
            None,
            &ops,
            &lag,
        );
        assert_eq!(out.results, vec![true]);
        assert_eq!(lag.sent(), 0);
        assert_eq!(lag.lag(), 0);
    }

    #[test]
    fn coalesced_acks_are_cumulative() {
        let lag = ReplLag::new();
        assert_eq!(lag.next_seq(), 1);
        assert_eq!(lag.next_seq(), 2);
        assert_eq!(lag.next_seq(), 3);
        assert_eq!(lag.lag(), 3);
        lag.record_acked(3); // one ack covers all three
        assert_eq!(lag.lag(), 0);
        lag.record_acked(1); // stale ack must not regress the point
        assert_eq!(lag.acked(), 3);
    }
}
