//! Group commit over the J-PFA redo log: stage many independent
//! failure-atomic writes on one thread, then make them durable behind a
//! *shared* pair of fences instead of three fences each (the amortization
//! argument of persistent software combining, applied to the §4.2 log).
//!
//! ## Exclusive-writer contract
//!
//! [`commit_writes`] holds the grid's per-key stripe locks for every key it
//! stages, from staging until the group's durability point, so concurrent
//! *readers* through the [`DataGrid`] are safe. It does **not** take the
//! backend's shard locks (staging several structural writes on one thread
//! while direct callers commit under those locks would invert lock order).
//! Instead the group former never puts two structural ops on the same
//! shard in one group, and the process must route **all writes** to a
//! given backend through the committer while it is in use — the server's
//! single-committer design does exactly that.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use crate::backend::Backend;
use crate::codec::Record;
use crate::grid::DataGrid;
use crate::jnvm_backend::JnvmBackend;

/// One batched write, as decoded from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or replace a whole record.
    Set(Record),
    /// Replace one positional field.
    SetField {
        /// Record key.
        key: String,
        /// Positional field index.
        field: usize,
        /// New field bytes.
        value: Vec<u8>,
    },
    /// Remove a record.
    Del(String),
}

impl WriteOp {
    /// The key this op touches.
    pub fn key(&self) -> &str {
        match self {
            WriteOp::Set(rec) => &rec.key,
            WriteOp::SetField { key, .. } => key,
            WriteOp::Del(key) => key,
        }
    }

    /// True when the op mutates the shard's shared map structure (cell
    /// array, entry chains) rather than just one record's blocks. Two
    /// structural ops on one shard cannot share a group: each would stage
    /// its own in-flight copy of the same cells and the last apply would
    /// win.
    fn is_structural(&self) -> bool {
        !matches!(self, WriteOp::SetField { .. })
    }
}

/// What a batch commit did.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-op success, parallel to the input slice.
    pub results: Vec<bool>,
    /// Commit groups issued (each costs 3 ordering fences on the FA path).
    pub groups: usize,
}

/// Commit a batch of writes against `grid`/`be` with group commit.
///
/// `be` must be the backend `grid` was built over. On the J-PFA flavour
/// each op is staged as its own failure-atomic block and whole groups are
/// committed behind shared fences; when every op in the batch lands in one
/// group, the batch costs 3 fences total instead of 3 per op. Ops that
/// conflict (same lock stripe, or two structural ops on one shard) are
/// deferred to a later group of the same call, preserving per-key order.
///
/// When the function returns, every op in the batch is durable — the
/// caller may acknowledge all of them.
pub fn commit_writes(grid: &DataGrid, be: &JnvmBackend, ops: &[WriteOp]) -> BatchOutcome {
    let mut results = vec![false; ops.len()];
    if ops.is_empty() {
        return BatchOutcome { results, groups: 0 };
    }

    if !be.fa_enabled() {
        // J-PDT flavour: the structures are crash-consistent on their own;
        // one psync after the batch is the shared durability point.
        for (i, op) in ops.iter().enumerate() {
            results[i] = match op {
                WriteOp::Set(rec) => grid.insert(rec),
                WriteOp::SetField { key, field, value } => grid.update_field(key, *field, value),
                WriteOp::Del(key) => grid.remove(key),
            };
        }
        be.sync();
        // The batch's ack point: the structures flushed their own lines,
        // so there is no footprint left to check here — the label still
        // marks where acknowledgements become legal.
        be.runtime().pmem().ordering_point("kv-batch-ack", &[]);
        return BatchOutcome { results, groups: 1 };
    }

    let rt = be.runtime().clone();
    let mut groups = 0;
    let mut remaining: Vec<usize> = (0..ops.len()).collect();
    while !remaining.is_empty() {
        let mut stripes: HashSet<usize> = HashSet::new();
        let mut structural_shards: HashSet<usize> = HashSet::new();
        let mut deferred_stripes: HashSet<usize> = HashSet::new();
        let mut guards = Vec::new();
        let mut staged = Vec::new();
        let mut committed = 0u64;
        let mut deferred: Vec<usize> = Vec::new();

        for &idx in &remaining {
            let op = &ops[idx];
            let stripe = grid.stripe_index(op.key());
            let shard = be.shard_index(op.key());
            let conflict = stripes.contains(&stripe)
                || deferred_stripes.contains(&stripe)
                || (op.is_structural() && structural_shards.contains(&shard));
            if conflict {
                // Same stripe ⇒ possibly the same key: defer to a later
                // group of this call so per-key order is preserved. The
                // stripe is poisoned for the rest of the round — once one
                // op on it defers, a later op on the same key must not slip
                // into this group ahead of it.
                deferred.push(idx);
                deferred_stripes.insert(stripe);
                continue;
            }
            stripes.insert(stripe);
            if op.is_structural() {
                structural_shards.insert(shard);
            }
            // Stripe lock held through the group's durability point: a
            // staged key's persistent image is mid-flight and its volatile
            // mirror already new, so no reader may observe it in between.
            guards.push(grid.stripe_at(stripe).lock());
            let (tx, ok) = rt.fa_stage(|| be.apply_op(op));
            results[idx] = ok;
            committed += 1;
            staged.push(tx);
        }

        // The group's durability point: 3 fences for `committed` ops.
        // `fa_commit_group` declares the log/object footprints itself
        // ("fa-commit"/"fa-retire"); this label only marks the ack point.
        rt.fa_commit_group(staged);
        rt.pmem().ordering_point("kv-batch-ack", &[]);
        groups += 1;
        grid.metrics().writes.fetch_add(committed, Ordering::Relaxed);
        for &idx in &remaining {
            if !deferred.contains(&idx) {
                grid.invalidate(ops[idx].key());
            }
        }
        drop(guards);
        remaining = deferred;
    }

    BatchOutcome { results, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use crate::jnvm_backend::register_kvstore;
    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{Pmem, PmemConfig};
    use std::sync::Arc;

    fn setup(fa: bool) -> (Arc<Pmem>, Arc<JnvmBackend>, DataGrid) {
        let pmem = Pmem::new(PmemConfig::crash_sim(32 << 20));
        let rt = register_kvstore(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        let be = Arc::new(JnvmBackend::create(&rt, 8, fa).unwrap());
        let grid = DataGrid::new(
            Arc::clone(&be) as Arc<dyn Backend>,
            GridConfig::default(),
        );
        (pmem, be, grid)
    }

    fn set(key: &str, val: &[u8]) -> WriteOp {
        WriteOp::Set(Record::ycsb(key, &[val.to_vec()]))
    }

    #[test]
    fn batch_applies_all_ops_and_amortizes_fences() {
        let (pmem, be, grid) = setup(true);
        let ops: Vec<WriteOp> = (0..16).map(|i| set(&format!("k{i:02}"), b"v")).collect();
        // First run warms the log pool — fresh-log creation pays fences of
        // its own that would obscure the steady-state count under test.
        commit_writes(&grid, &be, &ops);
        let before = pmem.stats();
        let out = commit_writes(&grid, &be, &ops);
        let d = pmem.stats().delta(&before);
        assert!(out.results.iter().all(|&r| r));
        // Ops spread over 8 shards ⇒ more than one group, but far fewer
        // than one per op; each group costs 3 fences.
        assert!(out.groups < ops.len(), "no grouping happened: {out:?}");
        assert_eq!(d.pfences, 3 * out.groups as u64);
        for i in 0..16 {
            assert_eq!(grid.read(&format!("k{i:02}")).unwrap().fields[0].1, b"v");
        }
    }

    #[test]
    fn same_key_ops_apply_in_order() {
        let (_p, be, grid) = setup(true);
        let ops = vec![
            set("k", b"first"),
            WriteOp::SetField {
                key: "k".into(),
                field: 0,
                value: b"second".to_vec(),
            },
            set("other", b"x"),
            WriteOp::Del("k".into()),
        ];
        let out = commit_writes(&grid, &be, &ops);
        assert_eq!(out.results, vec![true, true, true, true]);
        assert!(out.groups >= 3, "same-key ops must land in distinct groups");
        assert!(grid.read("k").is_none(), "Del must be the last word");
        assert!(grid.read("other").is_some());
    }

    #[test]
    fn deferred_set_never_lets_its_setf_jump_the_queue() {
        // Regression: with more structural Sets than shards, some Sets
        // defer on the shard rule. Their stripe was not yet claimed, so a
        // later SetField on the same key used to slip into the earlier
        // group and run before its Set existed.
        let (_p, be, grid) = setup(true);
        let mut ops = Vec::new();
        for i in 0..32 {
            let key = format!("pair-{i:03}");
            ops.push(set(&key, b"base"));
            ops.push(WriteOp::SetField {
                key,
                field: 0,
                value: b"patched".to_vec(),
            });
        }
        let out = commit_writes(&grid, &be, &ops);
        for (i, r) in out.results.iter().enumerate() {
            assert!(*r, "op {i} failed: SetField outran its Set");
        }
        for i in 0..32 {
            assert_eq!(
                grid.read(&format!("pair-{i:03}")).unwrap().fields[0].1,
                b"patched"
            );
        }
    }

    #[test]
    fn deferred_set_keeps_its_del_behind_it() {
        // The DEL twin of the SetField regression above: with more
        // structural Sets than shards, Sets defer across group
        // boundaries. A same-key Del is itself structural *and* keyed on
        // the same stripe, so it must ride a strictly later round than
        // its Set — if it ever jumped the queue, the Del would hit an
        // absent key (result false) and the Set would then resurrect the
        // record. Split across deferral rounds, per-key order must hold:
        // every op applies, and the final state is "deleted".
        let (_p, be, grid) = setup(true);
        let mut ops = Vec::new();
        for i in 0..32 {
            let key = format!("dpair-{i:03}");
            ops.push(set(&key, b"doomed"));
            ops.push(WriteOp::Del(key));
        }
        let out = commit_writes(&grid, &be, &ops);
        for (i, r) in out.results.iter().enumerate() {
            assert!(*r, "op {i} failed: Del outran its Set across a group boundary");
        }
        assert!(
            out.groups >= 2,
            "32 structural pairs over 8 shards must span multiple groups"
        );
        for i in 0..32 {
            assert!(
                grid.read(&format!("dpair-{i:03}")).is_none(),
                "dpair-{i:03}: Del must be the last word even when its Set deferred"
            );
        }
        assert_eq!(grid.len(), 0);
    }

    #[test]
    fn jpdt_flavour_batches_behind_one_sync() {
        let (_p, be, grid) = setup(false);
        let ops = vec![set("a", b"1"), set("b", b"2"), WriteOp::Del("absent".into())];
        let out = commit_writes(&grid, &be, &ops);
        assert_eq!(out.results, vec![true, true, false]);
        assert_eq!(out.groups, 1);
        assert_eq!(grid.len(), 2);
    }

    #[test]
    fn failed_ops_report_false_without_poisoning_the_batch() {
        let (_p, be, grid) = setup(true);
        let ops = vec![
            WriteOp::SetField {
                key: "missing".into(),
                field: 0,
                value: b"x".to_vec(),
            },
            set("present", b"v"),
            WriteOp::Del("also-missing".into()),
        ];
        let out = commit_writes(&grid, &be, &ops);
        assert_eq!(out.results, vec![false, true, false]);
        assert_eq!(grid.read("present").unwrap().fields[0].1, b"v");
    }
}
