//! Sharded KV engine: key-hash routing over N independent pool shards.
//!
//! Each shard is a complete stack — device, [`jnvm::Jnvm`] runtime,
//! [`JnvmBackend`], [`DataGrid`] — and keys route to shards by the same
//! FNV-1a hash the backend uses for its in-pool map shards. Because the
//! shards share nothing (disjoint devices, asserted by
//! [`jnvm::ShardedJnvm`]), a committer per shard may run
//! [`crate::commit_writes`] concurrently with every other shard's
//! committer: the group-commit exclusive-writer contract is per backend,
//! and routing guarantees a key only ever reaches one backend.

use std::sync::Arc;

use jnvm::{Jnvm, JnvmError, RecoveryOptions, RecoveryReport, ShardedJnvm};
use jnvm_heap::HeapConfig;
use jnvm_pmem::Pmem;

use crate::backend::Backend;
use crate::codec::Record;
use crate::grid::{DataGrid, GridConfig};
use crate::group::WriteOp;
use crate::jnvm_backend::{register_kvstore, JnvmBackend};

/// Route `key` to one of `nshards` pool shards (FNV-1a, the workspace's
/// standard key hash). Stable across runs and processes: the reopen path
/// must route every key to the shard that stored it.
pub fn shard_for_key(key: &str, nshards: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    (h as usize) % nshards.max(1)
}

/// One pool shard's full stack.
pub struct KvShard {
    /// The shard's device.
    pub pmem: Arc<Pmem>,
    /// The shard's runtime (own FA manager, persistence domains, recovery
    /// state).
    pub rt: Jnvm,
    /// The shard's persistent backend.
    pub be: Arc<JnvmBackend>,
    /// The shard's grid (cache + lock stripes + metrics).
    pub grid: Arc<DataGrid>,
}

/// N [`KvShard`] stacks plus the routing function.
pub struct ShardedKv {
    shards: Vec<KvShard>,
}

impl ShardedKv {
    /// Format a fresh pool on every device and stack a backend + grid on
    /// each. `map_shards` is the per-pool map shard count (the in-pool
    /// sharding that existed before multi-pool; orthogonal to routing).
    pub fn create(
        pmems: &[Arc<Pmem>],
        map_shards: usize,
        fa: bool,
        grid_cfg: GridConfig,
    ) -> Result<ShardedKv, JnvmError> {
        let runtimes =
            ShardedJnvm::create(pmems, HeapConfig::default(), register_kvstore)?.into_shards();
        Self::stack(pmems, runtimes, grid_cfg, |rt| {
            JnvmBackend::create(rt, map_shards.max(1), fa)
        })
    }

    /// Reopen every shard (concurrent per-shard recovery via
    /// [`ShardedJnvm::open_with_options`]) and re-anchor a backend + grid
    /// on each. Returns one [`RecoveryReport`] per shard.
    pub fn open(
        pmems: &[Arc<Pmem>],
        fa: bool,
        grid_cfg: GridConfig,
        opts: RecoveryOptions,
    ) -> Result<(ShardedKv, Vec<RecoveryReport>), JnvmError> {
        let (runtimes, reports) =
            ShardedJnvm::open_with_options(pmems, opts, register_kvstore)?;
        let kv = Self::stack(pmems, runtimes.into_shards(), grid_cfg, |rt| {
            JnvmBackend::open(rt, fa)
        })?;
        Ok((kv, reports))
    }

    fn stack(
        pmems: &[Arc<Pmem>],
        runtimes: Vec<Jnvm>,
        grid_cfg: GridConfig,
        be_for: impl Fn(&Jnvm) -> Result<JnvmBackend, JnvmError>,
    ) -> Result<ShardedKv, JnvmError> {
        let shards = pmems
            .iter()
            .zip(runtimes)
            .map(|(pmem, rt)| {
                let be = Arc::new(be_for(&rt)?);
                let grid = Arc::new(DataGrid::new(
                    Arc::clone(&be) as Arc<dyn Backend>,
                    grid_cfg,
                ));
                Ok(KvShard {
                    pmem: Arc::clone(pmem),
                    rt,
                    be,
                    grid,
                })
            })
            .collect::<Result<Vec<_>, JnvmError>>()?;
        Ok(ShardedKv { shards })
    }

    /// Number of pool shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to.
    pub fn route(&self, key: &str) -> usize {
        shard_for_key(key, self.shards.len())
    }

    /// One shard's stack.
    pub fn shard(&self, i: usize) -> &KvShard {
        &self.shards[i]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[KvShard] {
        &self.shards
    }

    /// Read `key` through its shard's grid.
    pub fn read(&self, key: &str) -> Option<Record> {
        self.shards[self.route(key)].grid.read(key)
    }

    /// Total records across shards.
    pub fn records(&self) -> usize {
        self.shards.iter().map(|s| s.grid.len()).sum()
    }

    /// Debug-check that every op in `ops` routes to shard `shard` — the
    /// invariant a per-shard committer's batches must satisfy before
    /// handing them to [`crate::commit_writes`].
    pub fn assert_routed(&self, shard: usize, ops: &[WriteOp]) {
        debug_assert!(
            ops.iter().all(|op| self.route(op.key()) == shard),
            "op routed to the wrong shard's committer"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::commit_writes;
    use jnvm_pmem::PmemConfig;

    fn devices(n: usize) -> Vec<Arc<Pmem>> {
        (0..n)
            .map(|_| Pmem::new(PmemConfig::crash_sim(16 << 20)))
            .collect()
    }

    #[test]
    fn routing_is_stable_and_reasonably_balanced() {
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let key = format!("c0-{i:06}");
            let s = shard_for_key(&key, 4);
            assert_eq!(s, shard_for_key(&key, 4), "routing must be deterministic");
            counts[s] += 1;
        }
        for (s, c) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(c),
                "shard {s} got {c} of 4000 keys — hash badly skewed: {counts:?}"
            );
        }
    }

    /// Golden routing pin: `shard_for_key` is FNV-1a over the key bytes,
    /// reduced mod the shard count — and it is **on-media layout**. A
    /// multi-pool image reopened after a silent hash change would scatter
    /// every key to the wrong shard's recovery pass. These values were
    /// computed independently from the FNV-1a reference parameters
    /// (offset 0xcbf29ce484222325, prime 0x100000001b3); they must never
    /// change.
    #[test]
    fn shard_for_key_golden_values_are_pinned() {
        // (key, shard of 4, shard of 8)
        let golden: &[(&str, usize, usize)] = &[
            ("c0-000000", 1, 1),
            ("c0-000001", 2, 6),
            ("c1-000017", 0, 0),
            ("c3-000042", 0, 0),
            ("drain-000", 0, 4),
            ("extra-000", 0, 4),
            ("key-000", 1, 1),
            ("s0-c003-k1", 2, 2),
            ("alpha", 3, 3),
            ("bank/accounts", 0, 4),
            ("user:1001", 2, 6),
            ("Δ-unicode-key", 3, 3),
        ];
        for &(key, of4, of8) in golden {
            assert_eq!(
                shard_for_key(key, 4),
                of4,
                "{key}: routing (mod 4) changed — reopened images would scatter"
            );
            assert_eq!(
                shard_for_key(key, 8),
                of8,
                "{key}: routing (mod 8) changed — reopened images would scatter"
            );
        }
        // Single-shard degenerate case stays total.
        for &(key, ..) in golden {
            assert_eq!(shard_for_key(key, 1), 0);
        }
    }

    #[test]
    fn sharded_create_write_reopen_roundtrip() {
        let pmems = devices(3);
        let kv = ShardedKv::create(&pmems, 8, true, GridConfig::default()).unwrap();
        // Commit through each shard's own committer path, as the server
        // does: ops grouped per shard, commit_writes per shard.
        let keys: Vec<String> = (0..60).map(|i| format!("key-{i:03}")).collect();
        let mut per_shard: Vec<Vec<WriteOp>> = vec![Vec::new(); kv.num_shards()];
        for k in &keys {
            per_shard[kv.route(k)]
                .push(WriteOp::Set(Record::ycsb(k, &[k.as_bytes().to_vec()])));
        }
        for (s, ops) in per_shard.iter().enumerate() {
            kv.assert_routed(s, ops);
            let shard = kv.shard(s);
            let out = commit_writes(&shard.grid, &shard.be, ops);
            assert!(out.results.iter().all(|&r| r));
        }
        assert_eq!(kv.records(), keys.len());
        drop(kv);
        for p in &pmems {
            p.crash(&jnvm_pmem::CrashPolicy::strict()).expect("crash");
        }
        let (kv2, reports) =
            ShardedKv::open(&pmems, true, GridConfig::default(), RecoveryOptions::parallel(2))
                .unwrap();
        assert_eq!(reports.len(), 3);
        for k in &keys {
            let rec = kv2.read(k).expect("record survives reopen");
            assert_eq!(rec.fields[0].1, k.as_bytes());
        }
        assert_eq!(kv2.records(), keys.len());
    }
}
