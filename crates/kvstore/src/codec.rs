//! The volatile record type and its binary marshalling codec.
//!
//! The codec is intentionally a real serializer (length-prefixed fields
//! with names, allocation on decode): Figure 8 of the paper shows that
//! marshalling — not the file system — dominates the cost of the external
//! design, so the cost here must be genuine CPU work.

/// A volatile key-value record: named fields with byte-string values
/// (YCSB's data model: 10 fields of 100 B by default).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    /// Record key.
    pub key: String,
    /// Ordered `(name, value)` fields.
    pub fields: Vec<(String, Vec<u8>)>,
}

/// Positional YCSB field name, allocation-light for the common widths.
pub fn ycsb_field_name(i: usize) -> String {
    const NAMES: [&str; 16] = [
        "field0", "field1", "field2", "field3", "field4", "field5", "field6", "field7",
        "field8", "field9", "field10", "field11", "field12", "field13", "field14", "field15",
    ];
    match NAMES.get(i) {
        Some(n) => (*n).to_string(),
        None => format!("field{i}"),
    }
}

impl Record {
    /// Build a YCSB-style record with positional field names.
    pub fn ycsb(key: &str, values: &[Vec<u8>]) -> Record {
        Record {
            key: key.to_string(),
            fields: values
                .iter()
                .enumerate()
                .map(|(i, v)| (ycsb_field_name(i), v.clone()))
                .collect(),
        }
    }

    /// Total value bytes.
    pub fn value_bytes(&self) -> usize {
        self.fields.iter().map(|(_, v)| v.len()).sum()
    }
}

const MAGIC: u16 = 0x4a52; // "JR"

/// Marshal a record to bytes.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        16 + rec.key.len() + rec.fields.iter().map(|(n, v)| 8 + n.len() + v.len()).sum::<usize>(),
    );
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(rec.fields.len() as u16).to_le_bytes());
    out.extend_from_slice(&(rec.key.len() as u32).to_le_bytes());
    out.extend_from_slice(rec.key.as_bytes());
    for (name, value) in &rec.fields {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(value);
    }
    out
}

/// Unmarshal a record. Returns `None` on malformed input.
pub fn decode_record(bytes: &[u8]) -> Option<Record> {
    fn take<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if b.len() < n {
            return None;
        }
        let (head, tail) = b.split_at(n);
        *b = tail;
        Some(head)
    }
    let mut b = bytes;
    let magic = u16::from_le_bytes(take(&mut b, 2)?.try_into().ok()?);
    if magic != MAGIC {
        return None;
    }
    let nfields = u16::from_le_bytes(take(&mut b, 2)?.try_into().ok()?) as usize;
    let keylen = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
    let key = String::from_utf8(take(&mut b, keylen)?.to_vec()).ok()?;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let namelen = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
        let datalen = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
        let name = String::from_utf8(take(&mut b, namelen)?.to_vec()).ok()?;
        let data = take(&mut b, datalen)?.to_vec();
        fields.push((name, data));
    }
    Some(Record { key, fields })
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The decoder never panics and round-trips every encodable record.
        #[test]
        fn decode_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let _ = decode_record(&bytes); // must not panic
        }

        #[test]
        fn encode_decode_round_trip(
            key in "[a-zA-Z0-9_-]{0,40}",
            fields in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..120), 0..12),
        ) {
            let rec = Record::ycsb(&key, &fields);
            prop_assert_eq!(decode_record(&encode_record(&rec)), Some(rec));
        }

        /// Truncation at any point yields None, never a wrong record.
        #[test]
        fn truncation_never_misdecodes(cut in 0usize..200) {
            let rec = Record::ycsb("userX", &[vec![1u8; 50], vec![2u8; 50]]);
            let bytes = encode_record(&rec);
            if cut < bytes.len() {
                let out = decode_record(&bytes[..cut]);
                prop_assert!(out.is_none());
            }
        }

        /// Zero-field records (the wire protocol can legally carry them)
        /// round-trip for any key.
        #[test]
        fn zero_field_record_round_trips(key in "[a-zA-Z0-9_:.-]{0,64}") {
            let rec = Record { key, fields: vec![] };
            prop_assert_eq!(decode_record(&encode_record(&rec)), Some(rec));
        }

        /// Flipping any single byte of a valid encoding never panics the
        /// decoder (attacker-shaped input from the wire).
        #[test]
        fn single_byte_corruption_never_panics(pos in 0usize..64, bit in 0u8..8) {
            let rec = Record::ycsb("k", &[vec![7u8; 20], vec![]]);
            let mut bytes = encode_record(&rec);
            if pos < bytes.len() {
                bytes[pos] ^= 1 << bit;
            }
            let _ = decode_record(&bytes); // must not panic
        }
    }

    /// The field-count word is a u16: a record with exactly `u16::MAX`
    /// fields (the wire maximum) round-trips losslessly.
    #[test]
    fn max_field_count_round_trips() {
        let rec = Record {
            key: "max".to_string(),
            fields: (0..u16::MAX as usize)
                .map(|i| (ycsb_field_name(i), Vec::new()))
                .collect(),
        };
        let bytes = encode_record(&rec);
        let back = decode_record(&bytes).expect("max-field record must decode");
        assert_eq!(back.fields.len(), u16::MAX as usize);
        assert_eq!(back, rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let rec = Record::ycsb("user42", &[vec![1, 2, 3], vec![], vec![0xff; 100]]);
        let bytes = encode_record(&rec);
        let back = decode_record(&bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn empty_record() {
        let rec = Record {
            key: String::new(),
            fields: vec![],
        };
        assert_eq!(decode_record(&encode_record(&rec)).unwrap(), rec);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_record(b"").is_none());
        assert!(decode_record(b"xx").is_none());
        assert!(decode_record(&[0x4a, 0x52, 5, 0, 255, 255, 255, 255]).is_none());
        let mut ok = encode_record(&Record::ycsb("k", &[vec![1]]));
        ok.truncate(ok.len() - 1);
        assert!(decode_record(&ok).is_none());
    }

    #[test]
    fn ycsb_names_are_positional() {
        let rec = Record::ycsb("k", &[vec![1], vec![2]]);
        assert_eq!(rec.fields[0].0, "field0");
        assert_eq!(rec.fields[1].0, "field1");
        assert_eq!(rec.value_bytes(), 2);
    }
}
