//! The PCJ backend stand-in (§5.1): Persistent Collections for Java over
//! PMDK, reached through JNI.
//!
//! The paper attributes PCJ's poor performance to two costs, both modeled
//! here and nothing else:
//!
//! * **JNI crossings** — "the Java native interface ... requires heavy
//!   synchronization to call a native method" (§5.2): every operation pays
//!   `jni_calls_per_op × jni_call_ns`,
//! * **marshalling** — PCJ values cross the bridge as serialized byte
//!   arrays, so records are stored as one marshalled blob and every
//!   update is a full decode/patch/encode cycle.
//!
//! The storage itself reuses the persistent map/blob machinery (PMDK's
//! role), which if anything *flatters* PCJ.

use jnvm::{Jnvm, JnvmError, PObject};
use jnvm_jpdt::{PBytes, PStringHashMap};
use jnvm_pmem::spin_ns;

use crate::backend::Backend;
use crate::codec::{decode_record, encode_record, Record};
use crate::CostModel;

/// The PCJ-like backend.
pub struct PcjBackend {
    rt: Jnvm,
    shards: Vec<PStringHashMap>,
    costs: CostModel,
}

const SHARD_ROOT_PREFIX: &str = "pcj-shard-";

impl PcjBackend {
    /// Create with `nshards` persistent map shards.
    pub fn create(rt: &Jnvm, nshards: usize, costs: CostModel) -> Result<PcjBackend, JnvmError> {
        let mut shards = Vec::with_capacity(nshards.max(1));
        for i in 0..nshards.max(1) {
            let m = PStringHashMap::new(rt)?;
            rt.root_put(&format!("{SHARD_ROOT_PREFIX}{i}"), &m)?;
            shards.push(m);
        }
        Ok(PcjBackend {
            rt: rt.clone(),
            shards,
            costs,
        })
    }

    fn shard(&self, key: &str) -> &PStringHashMap {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        &self.shards[(h as usize) % self.shards.len()]
    }

    fn jni(&self) {
        spin_ns(self.costs.jni_call_ns * self.costs.jni_calls_per_op);
    }
}

impl Backend for PcjBackend {
    fn name(&self) -> &'static str {
        "pcj"
    }

    fn store_full(&self, rec: &Record) -> bool {
        self.jni();
        let bytes = encode_record(rec);
        spin_ns(self.costs.marshal_ns_per_byte * bytes.len() as u64);
        let Ok(blob) = PBytes::new(&self.rt, &bytes) else {
            return false;
        };
        self.rt.pfence();
        match self.shard(&rec.key).put(rec.key.clone(), blob.addr()) {
            Ok(Some(old)) => {
                self.rt.free_addr(old);
                true
            }
            Ok(None) => true,
            Err(_) => false,
        }
    }

    fn read(&self, key: &str) -> Option<Record> {
        self.jni();
        let addr = self.shard(key).get(&key.to_string())?;
        let blob = PBytes::resurrect(&self.rt, addr);
        let bytes = blob.to_vec();
        spin_ns(self.costs.marshal_ns_per_byte * bytes.len() as u64);
        decode_record(&bytes)
    }

    fn update_field(&self, key: &str, field: usize, value: &[u8]) -> bool {
        // Full unmarshal / patch / remarshal round trip.
        let Some(mut rec) = self.read(key) else {
            return false;
        };
        if field >= rec.fields.len() {
            return false;
        }
        rec.fields[field].1 = value.to_vec();
        self.store_full(&rec)
    }

    fn remove(&self, key: &str) -> bool {
        self.jni();
        match self.shard(key).remove(&key.to_string()) {
            Some(old) => {
                self.rt.free_addr(old);
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn prefers_field_updates(&self) -> bool {
        // PCJ has no in-place field path; the grid routes updates through
        // read-modify-write.
        false
    }

    fn sync(&self) {
        self.rt.psync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jnvm_backend::register_kvstore;
    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{Pmem, PmemConfig};
    use std::sync::Arc;

    #[test]
    fn pcj_round_trip() {
        let pmem = Pmem::new(PmemConfig::perf(16 << 20));
        let rt = register_kvstore(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        let be = PcjBackend::create(&rt, 2, CostModel::free()).unwrap();
        let rec = Record::ycsb("user7", &[b"aaa".to_vec(), b"bbb".to_vec()]);
        assert!(be.store_full(&rec));
        assert_eq!(be.read("user7").unwrap(), rec);
        assert!(be.update_field("user7", 1, b"BBB"));
        assert_eq!(be.read("user7").unwrap().fields[1].1, b"BBB");
        assert_eq!(be.len(), 1);
        assert!(be.remove("user7"));
        assert!(be.read("user7").is_none());
    }
}
