//! Property tests: the device behaves like a flat byte array, and the
//! persistence semantics respect the pwb/pfence contract.

use proptest::prelude::*;

use crate::{CrashPolicy, Pmem, PmemConfig};

const SIZE: u64 = 16 * 1024;

#[derive(Debug, Clone)]
enum Op {
    W8(u64, u8),
    W16(u64, u16),
    W32(u64, u32),
    W64(u64, u64),
    WBytes(u64, Vec<u8>),
    Zero(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SIZE - 1, any::<u8>()).prop_map(|(a, v)| Op::W8(a, v)),
        (0..SIZE - 2, any::<u16>()).prop_map(|(a, v)| Op::W16(a, v)),
        (0..SIZE - 4, any::<u32>()).prop_map(|(a, v)| Op::W32(a, v)),
        (0..SIZE - 8, any::<u64>()).prop_map(|(a, v)| Op::W64(a, v)),
        (0..SIZE - 64, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(a, v)| Op::WBytes(a, v)),
        (0..SIZE - 64, 0u64..64).prop_map(|(a, n)| Op::Zero(a, n)),
    ]
}

fn apply(pmem: &Pmem, model: &mut [u8], op: &Op) {
    match op {
        Op::W8(a, v) => {
            pmem.write_u8(*a, *v);
            model[*a as usize] = *v;
        }
        Op::W16(a, v) => {
            pmem.write_u16(*a, *v);
            model[*a as usize..*a as usize + 2].copy_from_slice(&v.to_le_bytes());
        }
        Op::W32(a, v) => {
            pmem.write_u32(*a, *v);
            model[*a as usize..*a as usize + 4].copy_from_slice(&v.to_le_bytes());
        }
        Op::W64(a, v) => {
            pmem.write_u64(*a, *v);
            model[*a as usize..*a as usize + 8].copy_from_slice(&v.to_le_bytes());
        }
        Op::WBytes(a, v) => {
            pmem.write_bytes(*a, v);
            model[*a as usize..*a as usize + v.len()].copy_from_slice(v);
        }
        Op::Zero(a, n) => {
            pmem.zero_range(*a, *n);
            model[*a as usize..(*a + *n) as usize].fill(0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of every write width agree with a flat
    /// byte-array model, under every read width.
    #[test]
    fn device_matches_byte_array_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let pmem = Pmem::new(PmemConfig::crash_sim(SIZE));
        let mut model = vec![0u8; SIZE as usize];
        for op in &ops {
            apply(&pmem, &mut model, op);
        }
        // Full sweep with byte reads.
        let mut out = vec![0u8; SIZE as usize];
        pmem.read_bytes(0, &mut out);
        prop_assert_eq!(&out, &model);
        // Random-width probes.
        for a in (0..SIZE - 8).step_by(97) {
            prop_assert_eq!(pmem.read_u8(a), model[a as usize]);
            prop_assert_eq!(
                pmem.read_u64(a),
                u64::from_le_bytes(model[a as usize..a as usize + 8].try_into().unwrap())
            );
        }
    }

    /// After pwb + pfence over a region, a strict crash preserves exactly
    /// that region; unflushed writes elsewhere vanish.
    #[test]
    fn fenced_region_survives_strict_crash(
        base in (0u64..(SIZE / 128)).prop_map(|b| b * 128),
        len in 1u64..128,
        noise in (0u64..(SIZE / 128)).prop_map(|b| b * 128),
    ) {
        prop_assume!(noise != base);
        let pmem = Pmem::new(PmemConfig::crash_sim(SIZE));
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        pmem.write_bytes(base, &data);
        pmem.pwb_range(base, len);
        pmem.pfence();
        pmem.write_u64(noise, 0xdeadbeef); // never flushed
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let mut out = vec![0u8; len as usize];
        pmem.read_bytes(base, &mut out);
        prop_assert_eq!(out, data);
        prop_assert_eq!(pmem.read_u64(noise), 0);
    }

    /// A lenient crash (everything evicts) equals drain_all: no data loss,
    /// regardless of flush discipline.
    #[test]
    fn lenient_crash_preserves_all(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let pmem = Pmem::new(PmemConfig::crash_sim(SIZE));
        let mut model = vec![0u8; SIZE as usize];
        for op in &ops {
            apply(&pmem, &mut model, op);
        }
        pmem.crash(&CrashPolicy::lenient()).unwrap();
        let mut out = vec![0u8; SIZE as usize];
        pmem.read_bytes(0, &mut out);
        prop_assert_eq!(out, model);
    }

    /// Post-crash content is always line-granular: every 64-byte line
    /// equals either its pre-crash cache content or its pre-crash media
    /// content — never a blend.
    #[test]
    fn crash_is_line_granular(seed in any::<u64>(), evict in 0.0f64..=1.0) {
        let pmem = Pmem::new(PmemConfig::crash_sim(SIZE));
        // Persist a baseline.
        for line in 0..SIZE / 64 {
            pmem.write_u64(line * 64, line + 1);
            pmem.write_u64(line * 64 + 8, line + 1);
        }
        pmem.drain_all();
        // Overwrite everything, flush nothing.
        for line in 0..SIZE / 64 {
            pmem.write_u64(line * 64, (line + 1) << 32);
            pmem.write_u64(line * 64 + 8, (line + 1) << 32);
        }
        pmem.crash(&CrashPolicy { evict_probability: evict, seed }).unwrap();
        for line in 0..SIZE / 64 {
            let a = pmem.read_u64(line * 64);
            let b = pmem.read_u64(line * 64 + 8);
            prop_assert_eq!(a, b, "line {} mixed old and new halves", line);
            prop_assert!(a == line + 1 || a == (line + 1) << 32, "line {} content {a:#x}", line);
        }
    }
}
