//! Persist-ordering sanitizer: a per-cache-line state machine layered
//! under the device's `pwb`/`pfence`/`psync` paths that audits the
//! flush-then-fence discipline *constructively* on every run, where the
//! crash-point sweeps check it destructively one interleaving at a time.
//!
//! Every line moves through `clean → dirty → write-backed → clean`
//! (a fence on the write-backing thread is what makes a write-backed line
//! clean again — per-thread persistence domains, exactly as `device.rs`
//! models them). Annotated code declares *ordering points*: labeled
//! program points whose declared footprint must be fully persisted when
//! execution passes them (FA commit, log retire, allocator publish,
//! recovery apply). The sanitizer flags:
//!
//! * **missing pwb** — a footprint line still dirty at an ordering point,
//! * **missing fence** — a footprint line write-backed by the *calling*
//!   thread but not yet fenced,
//! * **cross-thread fence** — a footprint line write-backed by *another*
//!   thread, whose fence the calling thread has no control over (the
//!   per-thread-domain rule, previously enforced only by torture),
//! * **redundant flushes** — a `pwb` of an already-clean line and
//!   back-to-back fences with no intervening `pwb`, reported through
//!   [`crate::StatsSnapshot`] rather than flagged as violations.
//!
//! Modes: `Off` (no state, no cost), `Log` (count and record violations),
//! `Strict` (panic at the first violation — CI runs tier-1 this way).
//! Selected per-pool via [`crate::PmemConfig::sanitize`], whose default
//! comes from the `JNVM_SANITIZE` environment variable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

use crate::stats::PmemStats;
use crate::CACHE_LINE;

/// Sanitizer mode, per pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeMode {
    /// No line tracking, no checks, no allocation. The default.
    #[default]
    Off,
    /// Track lines, count violations into the stats and record them for
    /// [`crate::Pmem::san_violations`]; never panic.
    Log,
    /// Panic with a diagnostic at the first violation. Redundant flushes
    /// are still only counted.
    Strict,
}

impl SanitizeMode {
    /// Read the mode from the `JNVM_SANITIZE` environment variable:
    /// unset/empty/`off`/`0` → `Off`, `log` → `Log`, `strict` → `Strict`.
    ///
    /// # Panics
    ///
    /// Panics on any other value — a typo must not silently disable the
    /// checker a CI leg believes it turned on.
    pub fn from_env() -> SanitizeMode {
        match std::env::var("JNVM_SANITIZE") {
            Err(_) => SanitizeMode::Off,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "off" | "0" => SanitizeMode::Off,
                "log" => SanitizeMode::Log,
                "strict" => SanitizeMode::Strict,
                other => panic!(
                    "JNVM_SANITIZE={other:?}: expected \"off\", \"log\" or \"strict\""
                ),
            },
        }
    }
}

/// What an ordering/publish point found wrong with a footprint line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanViolationKind {
    /// The line was dirty: never `pwb`ed since its last write.
    MissingPwb,
    /// The line was write-backed by the calling thread but not fenced.
    MissingFence,
    /// The line was write-backed by another thread, whose fence the
    /// calling thread cannot issue (per-thread persistence domains).
    CrossThreadFence,
}

impl SanViolationKind {
    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SanViolationKind::MissingPwb => "missing-pwb",
            SanViolationKind::MissingFence => "missing-fence",
            SanViolationKind::CrossThreadFence => "cross-thread-fence",
        }
    }
}

/// One recorded violation (`Log` mode keeps up to [`MAX_RECORDED`]).
#[derive(Debug, Clone)]
pub struct SanViolation {
    /// What rule the line broke.
    pub kind: SanViolationKind,
    /// The ordering/publish point's label.
    pub label: String,
    /// Byte address of the offending cache line.
    pub line_addr: u64,
    /// Compact id of the thread that last dirtied / write-backed the
    /// line (assigned per thread at first device access).
    pub owner: u32,
    /// Compact id of the thread that hit the ordering point.
    pub observer: u32,
}

impl std::fmt::Display for SanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at ordering point {:?}: line {:#x} (owner thread #{}, observed by #{})",
            self.kind.name(),
            self.label,
            self.line_addr,
            self.owner,
            self.observer
        )
    }
}

/// Cap on recorded violations — a broken loop must not balloon memory.
const MAX_RECORDED: usize = 4096;

/// Per-line packed state: bits 0-1 the state, bits 2+ the owner thread.
const ST_CLEAN: u64 = 0;
const ST_DIRTY: u64 = 1;
const ST_WB: u64 = 2;

#[inline]
fn pack(state: u64, owner: u32) -> u64 {
    state | ((owner as u64) << 2)
}

#[inline]
fn unpack(word: u64) -> (u64, u32) {
    (word & 0b11, (word >> 2) as u32)
}

/// Process-wide compact thread id (the sanitizer's "persistence domain"
/// label; `ThreadId` itself is not packable into line words).
fn san_thread_id() -> u32 {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    thread_local! {
        static ID: u32 = NEXT.fetch_add(1, Ordering::Relaxed) as u32;
    }
    ID.with(|i| *i)
}

/// Per-thread sanitizer state, mirroring the device's per-thread
/// write-pending queues.
#[derive(Default)]
struct ThreadSan {
    /// Lines this thread write-backed since its last fence.
    wb: Mutex<Vec<u64>>,
    /// `pwb`s issued since this thread's last fence (0 at a fence means
    /// the fence ordered nothing new: back-to-back fences).
    pwbs_since_fence: AtomicU64,
    /// Whether this thread has fenced at least once (the first fence is
    /// never "back-to-back").
    fenced_once: AtomicBool,
}

/// The per-pool sanitizer. Allocated only when the mode is not `Off`.
pub(crate) struct Sanitizer {
    mode: SanitizeMode,
    /// One packed word per cache line of the pool.
    lines: Box<[AtomicU64]>,
    /// Per-thread write-back queues.
    threads: Mutex<HashMap<ThreadId, Arc<ThreadSan>>>,
    /// Violations recorded in `Log` mode.
    violations: Mutex<Vec<SanViolation>>,
}

impl Sanitizer {
    pub(crate) fn new(mode: SanitizeMode, pool_size: u64) -> Sanitizer {
        debug_assert_ne!(mode, SanitizeMode::Off);
        let nlines = (pool_size / CACHE_LINE) as usize;
        let mut lines = Vec::with_capacity(nlines);
        lines.resize_with(nlines, AtomicU64::default);
        Sanitizer {
            mode,
            lines: lines.into_boxed_slice(),
            threads: Mutex::new(HashMap::new()),
            violations: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn mode(&self) -> SanitizeMode {
        self.mode
    }

    fn my_state(&self) -> Arc<ThreadSan> {
        let mut map = self.threads.lock();
        Arc::clone(map.entry(std::thread::current().id()).or_default())
    }

    /// A store touched `[addr, addr + len)`: every overlapping line is
    /// dirty and owned by the writing thread.
    pub(crate) fn note_write(&self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let me = san_thread_id();
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        for line in first..=last {
            self.lines[line as usize].store(pack(ST_DIRTY, me), Ordering::Release);
        }
    }

    /// A `pwb` of the line containing `addr`.
    pub(crate) fn note_pwb(&self, addr: u64, stats: &PmemStats) {
        let me = san_thread_id();
        let line = addr / CACHE_LINE;
        let slot = &self.lines[line as usize];
        let (state, _) = unpack(slot.load(Ordering::Acquire));
        if state == ST_CLEAN {
            // Flushing a clean line is legal but wasted work — exactly the
            // redundancy NVTraverse reports as endemic.
            stats.redundant_pwbs.add(1);
        } else {
            // Dirty or already write-backed: the line now sits in this
            // thread's domain (re-flushing a pending line adopts it, like
            // `clwb`), and this thread's next fence settles it.
            slot.store(pack(ST_WB, me), Ordering::Release);
            self.my_state().wb.lock().push(line);
        }
        self.my_state().pwbs_since_fence.fetch_add(1, Ordering::Relaxed);
    }

    /// A `pfence`/`psync` by the calling thread: its write-backed lines
    /// become clean (lines rewritten after their `pwb` stay dirty).
    pub(crate) fn note_fence(&self, stats: &PmemStats) {
        let st = self.my_state();
        if st.pwbs_since_fence.swap(0, Ordering::Relaxed) == 0
            && st.fenced_once.swap(true, Ordering::Relaxed)
        {
            stats.redundant_fences.add(1);
        } else {
            st.fenced_once.store(true, Ordering::Relaxed);
        }
        let mut wb = st.wb.lock();
        for line in wb.drain(..) {
            let slot = &self.lines[line as usize];
            let word = slot.load(Ordering::Acquire);
            if unpack(word).0 == ST_WB {
                let _ = slot.compare_exchange(
                    word,
                    pack(ST_CLEAN, 0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
    }

    /// Crash / orderly drain / cache resync: every line is clean and no
    /// thread has outstanding obligations.
    pub(crate) fn reset(&self) {
        for slot in self.lines.iter() {
            slot.store(pack(ST_CLEAN, 0), Ordering::Release);
        }
        for st in self.threads.lock().values() {
            st.wb.lock().clear();
            st.pwbs_since_fence.store(0, Ordering::Relaxed);
            st.fenced_once.store(false, Ordering::Relaxed);
        }
    }

    fn flag(&self, kind: SanViolationKind, label: &str, line: u64, owner: u32, stats: &PmemStats) {
        stats.san_violations.add(1);
        let v = SanViolation {
            kind,
            label: label.to_string(),
            line_addr: line * CACHE_LINE,
            owner,
            observer: san_thread_id(),
        };
        match self.mode {
            SanitizeMode::Strict => panic!("persist-ordering violation: {v}"),
            _ => {
                let mut log = self.violations.lock();
                if log.len() < MAX_RECORDED {
                    log.push(v);
                }
            }
        }
    }

    /// Check one footprint line at an ordering point (`publish` relaxes
    /// the rule: a line this thread already write-backed is acceptable,
    /// because the publishing thread's own later fence covers it).
    fn check_line(&self, label: &str, line: u64, publish: bool, stats: &PmemStats) {
        let me = san_thread_id();
        let (state, owner) = unpack(self.lines[line as usize].load(Ordering::Acquire));
        match state {
            ST_DIRTY => self.flag(SanViolationKind::MissingPwb, label, line, owner, stats),
            ST_WB if owner != me => {
                self.flag(SanViolationKind::CrossThreadFence, label, line, owner, stats)
            }
            ST_WB if !publish => {
                self.flag(SanViolationKind::MissingFence, label, line, owner, stats)
            }
            _ => {}
        }
    }

    /// Validate a declared footprint at an ordering or publish point.
    pub(crate) fn check_footprint(
        &self,
        label: &str,
        footprint: &[(u64, u64)],
        publish: bool,
        stats: &PmemStats,
    ) {
        for &(addr, len) in footprint {
            if len == 0 {
                continue;
            }
            let first = addr / CACHE_LINE;
            let last = (addr + len - 1) / CACHE_LINE;
            for line in first..=last {
                self.check_line(label, line, publish, stats);
            }
        }
    }

    /// Violations recorded so far (`Log` mode).
    pub(crate) fn violations(&self) -> Vec<SanViolation> {
        self.violations.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrashPolicy, PmemConfig};
    use crate::device::Pmem;
    use std::sync::Arc;

    fn pool(mode: SanitizeMode) -> Arc<Pmem> {
        Pmem::new(PmemConfig::crash_sim(4096).with_sanitize(mode))
    }

    // ------------------------------------------------------------------
    // Cache-line boundary handling of pwb_range / zero_range. A range
    // ending exactly on a line boundary must not enqueue (or count) a
    // spurious extra line.
    // ------------------------------------------------------------------

    #[test]
    fn pwb_range_on_exact_line_boundary_flushes_one_line() {
        let p = pool(SanitizeMode::Off);
        p.write_u64(0, 1);
        p.reset_stats();
        p.pwb_range(0, CACHE_LINE); // [0, 64): exactly line 0
        assert_eq!(p.stats().pwbs, 1);
        p.reset_stats();
        p.pwb_range(0, CACHE_LINE + 1); // [0, 65): lines 0 and 1
        assert_eq!(p.stats().pwbs, 2);
        p.reset_stats();
        p.pwb_range(CACHE_LINE - 1, 2); // [63, 65): straddles the boundary
        assert_eq!(p.stats().pwbs, 2);
        p.reset_stats();
        p.pwb_range(CACHE_LINE, CACHE_LINE); // [64, 128): exactly line 1
        assert_eq!(p.stats().pwbs, 1);
        p.reset_stats();
        p.pwb_range(10, 0); // empty range: nothing
        assert_eq!(p.stats().pwbs, 0);
    }

    #[test]
    fn zero_range_dirties_exactly_the_covered_lines() {
        let p = pool(SanitizeMode::Log);
        // Make lines 0..=2 durably clean.
        for line in 0..3u64 {
            p.write_u64(line * CACHE_LINE, 7);
            p.pwb(line * CACHE_LINE);
        }
        p.pfence();
        assert_eq!(p.stats().san_violations, 0);
        // Zero exactly line 1; its neighbours must stay clean.
        p.zero_range(CACHE_LINE, CACHE_LINE);
        p.ordering_point("line0", &[(0, CACHE_LINE)]);
        p.ordering_point("line2", &[(2 * CACHE_LINE, CACHE_LINE)]);
        assert_eq!(p.stats().san_violations, 0, "zero_range leaked into a neighbour line");
        p.ordering_point("line1", &[(CACHE_LINE, CACHE_LINE)]);
        let v = p.san_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, SanViolationKind::MissingPwb);
        assert_eq!(v[0].line_addr, CACHE_LINE);
    }

    // ------------------------------------------------------------------
    // Deliberately broken persist sequences: caught in Strict, counted
    // in Log, free in Off.
    // ------------------------------------------------------------------

    #[test]
    #[should_panic(expected = "persist-ordering violation")]
    fn strict_catches_missing_pwb() {
        let p = pool(SanitizeMode::Strict);
        p.write_u64(0, 1); // dirty, never written back
        p.ordering_point("commit", &[(0, 8)]);
    }

    #[test]
    #[should_panic(expected = "missing-fence")]
    fn strict_catches_missing_fence() {
        let p = pool(SanitizeMode::Strict);
        p.write_u64(0, 1);
        p.pwb(0); // written back, never fenced
        p.ordering_point("commit", &[(0, 8)]);
    }

    #[test]
    #[should_panic(expected = "cross-thread-fence")]
    fn strict_catches_wrong_thread_fence() {
        let p = pool(SanitizeMode::Strict);
        let pa = Arc::clone(&p);
        std::thread::spawn(move || {
            pa.write_u64(0, 1);
            pa.pwb(0); // pending in A's domain
        })
        .join()
        .unwrap();
        p.pfence(); // drains only *this* thread's (empty) domain
        p.ordering_point("commit", &[(0, 8)]);
    }

    #[test]
    fn strict_passes_a_correct_sequence() {
        let p = pool(SanitizeMode::Strict);
        p.write_u64(0, 1);
        p.pwb(0);
        p.pfence();
        p.ordering_point("commit", &[(0, 8)]);
        assert_eq!(p.stats().san_violations, 0);
        assert_eq!(p.stats().ordering_points, 1);
    }

    #[test]
    fn log_counts_violations_without_panicking() {
        let p = pool(SanitizeMode::Log);
        p.write_u64(0, 1); // dirty
        p.write_u64(CACHE_LINE, 2);
        p.pwb(CACHE_LINE); // write-backed, unfenced
        p.ordering_point("commit", &[(0, 8), (CACHE_LINE, 8)]);
        let s = p.stats();
        assert_eq!(s.san_violations, 2);
        assert_eq!(s.ordering_points, 1);
        let v = p.san_violations();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].kind, SanViolationKind::MissingPwb);
        assert_eq!(v[1].kind, SanViolationKind::MissingFence);
        assert!(v.iter().all(|v| v.label == "commit"));
    }

    #[test]
    fn off_mode_tracks_nothing_but_still_counts_ordering_points() {
        let p = pool(SanitizeMode::Off);
        assert!(!p.sanitizer_active());
        assert_eq!(p.sanitize_mode(), SanitizeMode::Off);
        p.write_u64(0, 1); // broken on purpose
        p.ordering_point("commit", &[(0, 8)]);
        let s = p.stats();
        assert_eq!(s.san_violations, 0);
        assert_eq!(s.redundant_pwbs, 0);
        assert_eq!(s.ordering_points, 1);
        assert!(p.san_violations().is_empty());
    }

    // ------------------------------------------------------------------
    // Publish points, redundancy accounting, state resets.
    // ------------------------------------------------------------------

    #[test]
    fn publish_point_accepts_own_writeback_but_not_dirty() {
        let p = pool(SanitizeMode::Log);
        p.write_u64(0, 1);
        p.pwb(0);
        p.publish_point("chain-extend", &[(0, 8)]); // own WB: fine
        assert_eq!(p.stats().san_violations, 0);
        p.write_u64(CACHE_LINE, 2);
        p.publish_point("chain-extend", &[(CACHE_LINE, 8)]); // dirty: flagged
        let v = p.san_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, SanViolationKind::MissingPwb);
        // Publish points are not ordering points.
        assert_eq!(p.stats().ordering_points, 0);
    }

    #[test]
    fn publish_point_rejects_foreign_writeback() {
        let p = pool(SanitizeMode::Log);
        let pa = Arc::clone(&p);
        std::thread::spawn(move || {
            pa.write_u64(0, 1);
            pa.pwb(0);
        })
        .join()
        .unwrap();
        p.publish_point("chain-extend", &[(0, 8)]);
        let v = p.san_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, SanViolationKind::CrossThreadFence);
    }

    #[test]
    fn redundant_flushes_are_counted_not_flagged() {
        let p = pool(SanitizeMode::Log);
        p.write_u64(0, 1);
        p.pwb(0);
        p.pfence(); // line 0 clean
        p.pwb(0); // wasted: line already clean
        let s = p.stats();
        assert_eq!(s.redundant_pwbs, 1);
        assert_eq!(s.san_violations, 0);
        p.pfence(); // ordered the redundant pwb: not itself redundant
        p.pfence(); // nothing new since the last fence: redundant
        let s = p.stats();
        assert_eq!(s.redundant_fences, 1);
        assert_eq!(s.san_violations, 0);
    }

    #[test]
    fn re_flushing_a_pending_line_is_not_redundant() {
        // pwb of a line another thread left pending adopts it (clwb
        // semantics) — that flush does real work and must not count as
        // redundant.
        let p = pool(SanitizeMode::Log);
        let pa = Arc::clone(&p);
        std::thread::spawn(move || {
            pa.write_u64(0, 1);
            pa.pwb(0);
        })
        .join()
        .unwrap();
        p.pwb(0);
        p.pfence();
        let s = p.stats();
        assert_eq!(s.redundant_pwbs, 0);
        p.ordering_point("commit", &[(0, 8)]);
        assert_eq!(p.stats().san_violations, 0);
    }

    #[test]
    fn rewrite_after_pwb_reverts_line_to_dirty() {
        let p = pool(SanitizeMode::Log);
        p.write_u64(0, 1);
        p.pwb(0);
        p.write_u64(0, 2); // newer write invalidates the write-back
        p.pfence();
        p.ordering_point("commit", &[(0, 8)]);
        let v = p.san_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, SanViolationKind::MissingPwb);
    }

    #[test]
    fn crash_resets_line_state() {
        let p = pool(SanitizeMode::Strict);
        p.write_u64(0, 1); // dirty...
        p.crash(&CrashPolicy::strict()).unwrap(); // ...lost in the crash
        p.ordering_point("recovery", &[(0, 8)]); // must not flag stale state
        assert_eq!(p.stats().san_violations, 0);
    }

    #[test]
    fn drain_all_resets_line_state() {
        let p = pool(SanitizeMode::Strict);
        p.write_u64(0, 1);
        p.drain_all(); // orderly shutdown persists everything
        p.ordering_point("shutdown", &[(0, 8)]);
        assert_eq!(p.stats().san_violations, 0);
    }

    #[test]
    fn sanitizer_state_survives_many_threads() {
        // Each thread runs a correct persist sequence on its own lines; no
        // violations, and every ordering point is counted.
        let p = pool(SanitizeMode::Strict);
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let a = t * 8 * CACHE_LINE;
                    for i in 0..8u64 {
                        p.write_u64(a + i * CACHE_LINE, i + 1);
                        p.pwb(a + i * CACHE_LINE);
                    }
                    p.pfence();
                    p.ordering_point("commit", &[(a, 8 * CACHE_LINE)]);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = p.stats();
        assert_eq!(s.san_violations, 0);
        assert_eq!(s.ordering_points, 8);
    }
}
