//! Pool images: saving and restoring the *persistent* content of a pool to a
//! real file, so examples and tests can demonstrate cross-process restarts.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::config::PmemConfig;
use crate::device::Pmem;
use crate::error::PmemError;

const MAGIC: &[u8; 8] = b"JNVMPMEM";
const VERSION: u32 = 1;

impl Pmem {
    /// Write the persistent content of the pool (the media in `CrashSim`
    /// mode, the live array otherwise) to `path`.
    ///
    /// The image records only size and contents; the simulation mode and
    /// latency profile are chosen again at [`Pmem::load`] time.
    pub fn save(&self, path: &Path) -> Result<(), PmemError> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&self.len().to_le_bytes())?;
        for widx in 0..self.word_count() {
            w.write_all(&self.persistent_word(widx).to_le_bytes())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Recreate a pool from an image written by [`Pmem::save`].
    ///
    /// `cfg.size` is ignored; the image dictates the pool size. Mode and
    /// latency come from `cfg`.
    pub fn load(path: &Path, cfg: PmemConfig) -> Result<Arc<Pmem>, PmemError> {
        let file = File::open(path)?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PmemError::BadImage("bad magic".into()));
        }
        let mut v4 = [0u8; 4];
        r.read_exact(&mut v4)?;
        if u32::from_le_bytes(v4) != VERSION {
            return Err(PmemError::BadImage(format!(
                "unsupported version {}",
                u32::from_le_bytes(v4)
            )));
        }
        let mut v8 = [0u8; 8];
        r.read_exact(&mut v8)?;
        let size = u64::from_le_bytes(v8);
        if size % 8 != 0 {
            return Err(PmemError::BadImage("size not word aligned".into()));
        }
        let pool = Pmem::new(PmemConfig { size, ..cfg });
        let mut buf = [0u8; 8];
        for widx in 0..pool.word_count() {
            r.read_exact(&mut buf)?;
            pool.restore_word(widx, u64::from_le_bytes(buf));
        }
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrashPolicy, PmemConfig};

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("jnvm-pmem-image-{}.img", std::process::id()));
        let p = Pmem::new(PmemConfig::crash_sim(4096));
        p.write_u64(16, 0xfeed);
        p.write_u64(256, 0xcafe);
        p.pwb(16);
        p.pwb(256);
        p.pfence();
        p.write_u64(512, 0xdead); // unflushed: must not be in the image
        p.save(&path).unwrap();

        let q = Pmem::load(&path, PmemConfig::crash_sim(0)).unwrap();
        assert_eq!(q.len(), 4096);
        assert_eq!(q.read_u64(16), 0xfeed);
        assert_eq!(q.read_u64(256), 0xcafe);
        assert_eq!(q.read_u64(512), 0);
        // The restored state is fully persistent.
        q.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(q.read_u64(16), 0xfeed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("jnvm-pmem-garbage-{}.img", std::process::id()));
        std::fs::write(&path, b"not an image at all").unwrap();
        assert!(Pmem::load(&path, PmemConfig::perf(0)).is_err());
        std::fs::remove_file(&path).ok();
    }
}
