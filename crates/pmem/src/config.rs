//! Device configuration: size, simulation mode, latency profile, crash
//! policy, persist-ordering sanitizer mode.

use crate::sanitize::SanitizeMode;

/// How faithfully the device models persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Single in-memory array. `pwb`/`pfence`/`psync` only account statistics
    /// and inject latency. Crash simulation is unavailable. This is the mode
    /// every benchmark harness uses.
    Performance,
    /// Cache/media split with per-line dirty tracking. [`crate::Pmem::crash`]
    /// is available. Roughly 2x the memory footprint and slower accesses;
    /// intended for correctness tests.
    ///
    /// Persistence domains are **per thread**, mirroring x86 semantics: a
    /// `pwb` enqueues the line on the calling thread's write-pending queue
    /// and a `pfence`/`psync` drains only that thread's queue. Lines another
    /// thread has `pwb`ed but not yet fenced are still *unpersisted* at a
    /// crash (they fall under the eviction coin of the [`CrashPolicy`] like
    /// any dirty line). Code that flushes on one thread and fences on
    /// another is therefore not crash-consistent, and the simulator will
    /// catch it.
    CrashSim,
}

/// Latency injected per device operation, in nanoseconds.
///
/// The defaults of [`LatencyProfile::optane_like`] are calibrated from the
/// Optane DC measurements of Izraelevitz et al. ("Basic Performance
/// Measurements of the Intel Optane DC Persistent Memory Module", 2019),
/// which the paper cites: NVMM reads ~2-3x DRAM latency, `clwb` tens of
/// nanoseconds, and an `sfence` with a non-empty write-pending queue on the
/// order of 100 ns. Absolute numbers do not matter for the reproduction —
/// only the asymmetries they create.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Extra nanoseconds charged per cache line touched by a read.
    pub read_line_ns: u64,
    /// Extra nanoseconds charged per cache line touched by a write.
    pub write_line_ns: u64,
    /// Nanoseconds charged per `pwb`.
    pub pwb_ns: u64,
    /// Nanoseconds charged per `pfence`.
    pub pfence_ns: u64,
    /// Nanoseconds charged per `psync`.
    pub psync_ns: u64,
}

impl LatencyProfile {
    /// No injected latency at all (unit tests, CI).
    pub const fn off() -> Self {
        LatencyProfile {
            read_line_ns: 0,
            write_line_ns: 0,
            pwb_ns: 0,
            pfence_ns: 0,
            psync_ns: 0,
        }
    }

    /// DRAM-like timing: tiny read cost, free persistence primitives. Used by
    /// the `TmpFS` backend which stores files in volatile memory.
    pub const fn dram() -> Self {
        LatencyProfile {
            read_line_ns: 0,
            write_line_ns: 0,
            pwb_ns: 0,
            pfence_ns: 0,
            psync_ns: 0,
        }
    }

    /// Optane-DC-like timing asymmetries (see type-level docs).
    ///
    /// The read charge is an *effective* per-line cost: raw Optane reads
    /// are ~300 ns, but the CPU cache absorbs most accesses to hot lines
    /// under skewed workloads, which the simulator does not model
    /// per-line. 30 ns/line reproduces the end-to-end read latencies the
    /// paper reports for proxy access (§5.3.1).
    pub const fn optane_like() -> Self {
        LatencyProfile {
            read_line_ns: 30,
            write_line_ns: 0,
            pwb_ns: 70,
            pfence_ns: 110,
            psync_ns: 130,
        }
    }

    /// True when every field is zero, allowing the hot path to skip the
    /// calibrated spin entirely.
    pub fn is_off(&self) -> bool {
        self.read_line_ns == 0
            && self.write_line_ns == 0
            && self.pwb_ns == 0
            && self.pfence_ns == 0
            && self.psync_ns == 0
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile::off()
    }
}

/// Construction parameters for a [`crate::Pmem`] pool.
#[derive(Debug, Clone)]
pub struct PmemConfig {
    /// Pool size in bytes. Rounded up to a whole number of cache lines.
    pub size: u64,
    /// Simulation fidelity.
    pub mode: SimMode,
    /// Injected latency per operation.
    pub latency: LatencyProfile,
    /// Persist-ordering sanitizer mode (see `sanitize.rs`). The
    /// constructors default it from the `JNVM_SANITIZE` environment
    /// variable, so `JNVM_SANITIZE=strict cargo test` audits every pool
    /// a test creates.
    pub sanitize: SanitizeMode,
    /// Human-readable device identity (e.g. `"shard0/primary"`), carried
    /// into crash-plan reports so a multi-device harness can say *which*
    /// replica's device a fault plan was armed on. Empty by default.
    pub label: String,
}

impl PmemConfig {
    /// A `CrashSim` pool with no injected latency — the right default for
    /// tests.
    pub fn crash_sim(size: u64) -> Self {
        PmemConfig {
            size,
            mode: SimMode::CrashSim,
            latency: LatencyProfile::off(),
            sanitize: SanitizeMode::from_env(),
            label: String::new(),
        }
    }

    /// A `Performance` pool with no injected latency.
    pub fn perf(size: u64) -> Self {
        PmemConfig {
            size,
            mode: SimMode::Performance,
            latency: LatencyProfile::off(),
            sanitize: SanitizeMode::from_env(),
            label: String::new(),
        }
    }

    /// A `Performance` pool with Optane-like latency — the benchmark default.
    pub fn optane(size: u64) -> Self {
        PmemConfig {
            size,
            mode: SimMode::Performance,
            latency: LatencyProfile::optane_like(),
            sanitize: SanitizeMode::from_env(),
            label: String::new(),
        }
    }

    /// Replace the sanitizer mode (overriding the `JNVM_SANITIZE` default).
    pub fn with_sanitize(mut self, mode: SanitizeMode) -> Self {
        self.sanitize = mode;
        self
    }

    /// Attach a device identity label (see [`PmemConfig::label`]).
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// What the crash-point injection engine does once armed
/// (see [`crate::Pmem::arm_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Count (and trace) persistence-relevant operations without crashing.
    /// Used by sweep drivers to learn how many crash points a workload has.
    Count,
    /// Simulate a power failure immediately **before** the Nth (0-based)
    /// counted operation executes, then unwind the workload with a
    /// [`crate::CrashInjected`] panic.
    CrashAt(u64),
}

/// A crash-point injection plan: when to crash and what the simulated
/// power failure does to unflushed cache lines.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Count only, or crash before the Nth operation.
    pub mode: FaultMode,
    /// Line-survival policy applied by the injected crash.
    pub policy: CrashPolicy,
}

impl FaultPlan {
    /// Count and trace operations; never crash.
    pub const fn count() -> Self {
        FaultPlan {
            mode: FaultMode::Count,
            policy: CrashPolicy::strict(),
        }
    }

    /// Crash with [`CrashPolicy::strict`] before the Nth (0-based)
    /// persistence-relevant operation.
    pub const fn crash_at(n: u64) -> Self {
        FaultPlan {
            mode: FaultMode::CrashAt(n),
            policy: CrashPolicy::strict(),
        }
    }

    /// Replace the injected crash's line-survival policy.
    pub const fn with_policy(mut self, policy: CrashPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// What happens to not-yet-persisted cache lines when the power fails.
#[derive(Debug, Clone, Copy)]
pub struct CrashPolicy {
    /// Probability that a dirty (or pending-but-unfenced) line nevertheless
    /// reaches the media before power is lost — cache eviction and
    /// in-flight write-pending-queue drain can both persist data the program
    /// never fenced.
    pub evict_probability: f64,
    /// Seed for the per-line persistence coin flips.
    pub seed: u64,
}

impl CrashPolicy {
    /// Nothing unflushed survives. The most deterministic policy: exactly the
    /// fenced state is visible after the crash.
    pub const fn strict() -> Self {
        CrashPolicy {
            evict_probability: 0.0,
            seed: 0,
        }
    }

    /// Every unflushed line independently survives with probability 1/2.
    /// Catches code that *relies* on data not persisting as well as code
    /// that forgets to flush.
    pub const fn adversarial(seed: u64) -> Self {
        CrashPolicy {
            evict_probability: 0.5,
            seed,
        }
    }

    /// Everything dirty survives (an orderly-shutdown-like crash).
    pub const fn lenient() -> Self {
        CrashPolicy {
            evict_probability: 1.0,
            seed: 0,
        }
    }
}
