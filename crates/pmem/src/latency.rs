//! Calibrated busy-wait latency injection.
//!
//! The device charges nanosecond-scale costs per operation. `Instant::now`
//! is itself tens of nanoseconds, so the hot path instead runs a spin loop
//! whose iteration rate is calibrated once per process.

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

thread_local! {
    /// Nanoseconds the latency model has charged the calling thread.
    static CHARGED_NS: Cell<u64> = const { Cell::new(0) };
}

/// Total latency-model nanoseconds charged to the calling thread so far.
///
/// Every [`spin_ns`] call both busy-waits and adds to this per-thread
/// counter, so a delta around a stretch of work is that thread's *modeled*
/// time on the simulated medium — the time the thread would spend if it
/// had a dedicated core. Wall clock and this counter agree when the host
/// has a core per thread; on smaller hosts (notably 1-CPU CI containers)
/// busy-waiting threads time-share and wall clock cannot show parallel
/// speedup, while per-thread charged time still can. Zero on devices with
/// no latency model.
pub fn thread_charged_ns() -> u64 {
    CHARGED_NS.with(|c| c.get())
}

/// Spin-loop iterations executed per nanosecond, measured once.
fn iters_per_ns() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(|| {
        // Warm up, then measure a fixed batch.
        spin_iters(100_000);
        let iters: u64 = 4_000_000;
        let start = Instant::now();
        spin_iters(iters);
        let elapsed = start.elapsed().as_nanos().max(1) as f64;
        (iters as f64 / elapsed).max(0.01)
    })
}

#[inline]
fn spin_iters(n: u64) {
    for _ in 0..n {
        std::hint::spin_loop();
    }
}

/// Busy-wait for approximately `ns` nanoseconds.
///
/// Accuracy is best above ~50 ns; shorter waits round down to a handful of
/// spin iterations. A zero argument returns immediately.
#[inline]
pub fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    CHARGED_NS.with(|c| c.set(c.get() + ns));
    let iters = (ns as f64 * iters_per_ns()) as u64;
    spin_iters(iters.max(1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn zero_is_free() {
        let start = Instant::now();
        for _ in 0..1_000_000 {
            spin_ns(0);
        }
        // A million no-ops should be far under 100ms.
        assert!(start.elapsed().as_millis() < 100);
    }

    #[test]
    fn spin_is_roughly_calibrated() {
        // We only need the right order of magnitude for the simulation, and
        // debug builds / noisy CI skew the calibration, so bounds are loose.
        spin_ns(1_000_000); // warm the calibration
        let start = Instant::now();
        spin_ns(1_000_000);
        let elapsed = start.elapsed().as_nanos() as u64;
        assert!(
            elapsed > 20_000,
            "1ms spin finished suspiciously fast: {elapsed}ns"
        );
        assert!(
            elapsed < 100_000_000,
            "1ms spin took suspiciously long: {elapsed}ns"
        );
    }
}
