//! Error type of the pmem device.

use std::fmt;

/// Errors reported by the simulated NVMM device.
#[derive(Debug)]
pub enum PmemError {
    /// An access touched bytes beyond the end of the pool.
    OutOfBounds {
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: u64,
        /// Total pool size in bytes.
        size: u64,
    },
    /// The requested operation needs [`crate::SimMode::CrashSim`].
    CrashSimRequired,
    /// A pool image on disk is malformed or from an incompatible version.
    BadImage(String),
    /// An underlying I/O error while saving or loading a pool image.
    Io(std::io::Error),
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::OutOfBounds { addr, len, size } => write!(
                f,
                "pmem access out of bounds: addr={addr:#x} len={len} pool size={size}"
            ),
            PmemError::CrashSimRequired => {
                write!(f, "operation requires a device in CrashSim mode")
            }
            PmemError::BadImage(msg) => write!(f, "bad pmem image: {msg}"),
            PmemError::Io(e) => write!(f, "pmem image i/o error: {e}"),
        }
    }
}

impl std::error::Error for PmemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PmemError {
    fn from(e: std::io::Error) -> Self {
        PmemError::Io(e)
    }
}
