//! Crash-point injection: a thread-safe counter over the device's
//! persistence-relevant operations (`write_*`, `pwb`, `pfence`, `psync`,
//! and the atomic word ops) that can trigger a simulated power failure
//! *between* any two of them.
//!
//! Ordinary crash tests call [`crate::Pmem::crash`] between whole
//! operations; persistence bugs live between the individual stores and
//! write-backs of a commit sequence (NVTraverse et al.). The engine makes
//! those interior points reachable:
//!
//! 1. Arm the device with [`FaultPlan::count`] and run the workload once —
//!    [`crate::Pmem::disarm_faults`] returns how many crash points `N` it
//!    has, and [`crate::Pmem::fault_trace`] says what each one is.
//! 2. For each `i in 0..N`: rebuild the workload's initial state, arm with
//!    [`FaultPlan::crash_at`]`(i)`, and run again. Immediately before the
//!    `i`-th operation the device simulates a power failure through the
//!    existing [`crate::Pmem::crash`] machinery and unwinds the workload
//!    with a [`CrashInjected`] panic, which [`catch_crash`] turns back into
//!    a value.
//! 3. Reopen the pool and assert the recovery invariants.
//!
//! After an injected crash the device is **frozen**: every subsequent
//! mutation or write-back is ignored until [`crate::Pmem::disarm_faults`].
//! This matters because the workload's unwind path (e.g. the
//! failure-atomic abort guard in `jnvm`) still executes and would
//! otherwise scribble post-crash writes onto the pool, making the
//! recovered state unrepresentative of a real power failure. Volatile
//! cleanup still runs; the persistent image stays exactly as the crash
//! left it.
//!
//! A power failure stops *every* CPU, not just the one whose store the
//! engine pre-empted. The first time any **other** thread touches the
//! frozen device it too unwinds, with [`CrashInjected::secondary`] set —
//! otherwise concurrent workers would keep "running past the end of the
//! world", mutating volatile state (heap free queues, metrics) that no
//! real post-crash process could observe. After its unwind a thread's
//! further device ops are skipped silently, so unwind destructors remain
//! safe to run.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::config::{CrashPolicy, FaultMode, FaultPlan};
use crate::device::Pmem;

/// The kinds of persistence-relevant device operations the engine counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A `write_u8`/`u16`/`u32`/`u64` (or signed/float) store.
    Write,
    /// A `write_bytes` bulk store.
    WriteBytes,
    /// A `zero_range`.
    Zero,
    /// A `fetch_add_u64`.
    FetchAdd,
    /// A `cas_u64`.
    Cas,
    /// A `pwb` (each line of a `pwb_range` counts separately).
    Pwb,
    /// A `pfence`.
    Pfence,
    /// A `psync`.
    Psync,
}

impl FaultOp {
    /// Short lowercase label for traces and sweep tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Write => "write",
            FaultOp::WriteBytes => "write_bytes",
            FaultOp::Zero => "zero",
            FaultOp::FetchAdd => "fetch_add",
            FaultOp::Cas => "cas",
            FaultOp::Pwb => "pwb",
            FaultOp::Pfence => "pfence",
            FaultOp::Psync => "psync",
        }
    }
}

/// Panic payload thrown by an injected crash; catch it with [`catch_crash`].
#[derive(Debug, Clone, Copy)]
pub struct CrashInjected {
    /// 0-based index of the operation the crash pre-empted.
    pub op_index: u64,
    /// What that operation would have been.
    pub op: FaultOp,
    /// `false` on the thread whose operation hit the armed trigger;
    /// `true` when this unwind stopped *another* thread that touched the
    /// device after the power failure (its `op` is the op it attempted,
    /// `op_index` the trigger point).
    pub secondary: bool,
}

/// One counted operation, recorded in [`FaultMode::Count`] mode.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Operation kind.
    pub op: FaultOp,
    /// Byte address the operation targeted (0 for `pfence`/`psync`).
    pub addr: u64,
}

/// Internal engine state; one per device.
pub(crate) struct Injector {
    enabled: AtomicBool,
    frozen: AtomicBool,
    counter: AtomicU64,
    /// Op index to crash before; `u64::MAX` in count mode.
    trigger: AtomicU64,
    tracing: AtomicBool,
    /// Process-unique id of the current arming, compared against each
    /// thread's [`SEEN_CRASH`] to tell "this thread already unwound from
    /// this crash" (skip silently) from "fresh thread must unwind".
    crash_token: AtomicU64,
    policy: Mutex<CrashPolicy>,
    trace: Mutex<Vec<TraceRecord>>,
}

impl Default for Injector {
    fn default() -> Self {
        Injector {
            enabled: AtomicBool::new(false),
            frozen: AtomicBool::new(false),
            counter: AtomicU64::new(0),
            trigger: AtomicU64::new(u64::MAX),
            tracing: AtomicBool::new(false),
            crash_token: AtomicU64::new(0),
            policy: Mutex::new(CrashPolicy::strict()),
            trace: Mutex::new(Vec::new()),
        }
    }
}

/// Source of process-unique crash tokens; 0 is reserved for "never saw a
/// crash" so the counter starts at 1.
static NEXT_CRASH_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The last crash token this thread unwound (or triggered) under.
    static SEEN_CRASH: Cell<u64> = const { Cell::new(0) };
}

impl Pmem {
    /// Arm the crash-point engine. Resets the op counter and trace, then
    /// counts every subsequent persistence-relevant operation; with
    /// [`FaultMode::CrashAt`]`(n)` the `n`-th one (0-based) is pre-empted
    /// by a simulated power failure and a [`CrashInjected`] panic.
    pub fn arm_faults(&self, plan: FaultPlan) {
        let inj = self.injector();
        inj.counter.store(0, Ordering::Relaxed);
        inj.frozen.store(false, Ordering::Relaxed);
        inj.crash_token
            .store(NEXT_CRASH_TOKEN.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        *inj.policy.lock() = plan.policy;
        inj.trace.lock().clear();
        let (trigger, tracing) = match plan.mode {
            FaultMode::Count => (u64::MAX, true),
            FaultMode::CrashAt(n) => (n, false),
        };
        inj.trigger.store(trigger, Ordering::Relaxed);
        inj.tracing.store(tracing, Ordering::Relaxed);
        inj.enabled.store(true, Ordering::Release);
    }

    /// Disarm the engine (clearing the frozen state an injected crash left
    /// behind) and return how many operations were counted while armed.
    pub fn disarm_faults(&self) -> u64 {
        let inj = self.injector();
        inj.enabled.store(false, Ordering::Release);
        inj.frozen.store(false, Ordering::Relaxed);
        inj.trigger.store(u64::MAX, Ordering::Relaxed);
        inj.tracing.store(false, Ordering::Relaxed);
        inj.counter.load(Ordering::Relaxed)
    }

    /// Operations counted since the last [`Pmem::arm_faults`].
    pub fn fault_ops(&self) -> u64 {
        self.injector().counter.load(Ordering::Relaxed)
    }

    /// True after an injected crash until the engine is disarmed; while
    /// frozen the device ignores every mutation and write-back.
    pub fn faults_frozen(&self) -> bool {
        self.injector().frozen.load(Ordering::Relaxed)
    }

    /// The operation trace recorded by the last [`FaultMode::Count`] run.
    pub fn fault_trace(&self) -> Vec<TraceRecord> {
        self.injector().trace.lock().clone()
    }

    /// The per-operation hook. Returns `true` when the caller must skip
    /// the operation (device frozen by an earlier injected crash); does
    /// not return at all when this operation is the armed crash point.
    #[inline]
    pub(crate) fn fault_point(&self, op: FaultOp, addr: u64) -> bool {
        if !self.injector().enabled.load(Ordering::Relaxed) {
            return false;
        }
        self.fault_point_armed(op, addr)
    }

    #[cold]
    fn fault_point_armed(&self, op: FaultOp, addr: u64) -> bool {
        let inj = self.injector();
        if inj.frozen.load(Ordering::Relaxed) {
            // The device is down. A thread that already unwound from this
            // crash (or triggered it) is on its unwind/cleanup path: skip
            // the op silently. Any *other* thread is experiencing the
            // power failure for the first time — stop it too.
            let token = inj.crash_token.load(Ordering::Relaxed);
            if SEEN_CRASH.with(|c| c.get()) == token {
                return true;
            }
            SEEN_CRASH.with(|c| c.set(token));
            self.record_secondary_unwind();
            std::panic::panic_any(CrashInjected {
                op_index: inj.trigger.load(Ordering::Relaxed),
                op,
                secondary: true,
            });
        }
        let idx = inj.counter.fetch_add(1, Ordering::Relaxed);
        if inj.tracing.load(Ordering::Relaxed) {
            inj.trace.lock().push(TraceRecord { op, addr });
        }
        if idx == inj.trigger.load(Ordering::Relaxed) {
            // Freeze first: the crash below and the unwind after it must
            // not re-enter the engine or mutate the post-crash image.
            inj.frozen.store(true, Ordering::SeqCst);
            SEEN_CRASH.with(|c| c.set(inj.crash_token.load(Ordering::Relaxed)));
            let policy = *inj.policy.lock();
            self.record_injected_crash();
            // On a Performance pool there is no media to roll back; the
            // freeze + unwind still model the control-flow cut.
            let _ = self.crash(&policy);
            std::panic::panic_any(CrashInjected {
                op_index: idx,
                op,
                secondary: false,
            });
        }
        false
    }
}

/// Run `f`, converting an injected-crash unwind into `Err(CrashInjected)`.
/// Any other panic is propagated unchanged.
///
/// `f` is wrapped in [`AssertUnwindSafe`]: an injected crash deliberately
/// abandons the workload's in-progress state, exactly as a power failure
/// abandons a half-executed program, and the caller is expected to discard
/// the workload context and re-derive everything from the pool.
pub fn catch_crash<R>(f: impl FnOnce() -> R) -> Result<R, CrashInjected> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<CrashInjected>() {
            Ok(ci) => Err(*ci),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

thread_local! {
    static HUSHED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII guard: while held, the hook installed by [`silence_crash_panics`]
/// swallows *every* panic on this thread, not just [`CrashInjected`].
///
/// A reader racing the exact instant a device freezes can observe the
/// crashing writer's abandoned in-DRAM state and trip a data-structure
/// invariant panic instead of a clean `CrashInjected` — expected in that
/// window, and the caller catches it, but without this guard the default
/// hook would print a backtrace for it. No effect unless
/// `silence_crash_panics` has installed the hook.
pub struct PanicHush {
    prev: bool,
}

/// Hush all panics on the current thread until the guard drops.
pub fn hush_panics() -> PanicHush {
    PanicHush {
        prev: HUSHED.with(|h| h.replace(true)),
    }
}

impl Drop for PanicHush {
    fn drop(&mut self) {
        let prev = self.prev;
        HUSHED.with(|h| h.set(prev));
    }
}

/// Install a panic hook that stays silent for [`CrashInjected`] unwinds
/// (sweeps inject hundreds of them) and for threads inside a
/// [`hush_panics`] scope, while delegating everything else to the
/// previously installed hook. Idempotent enough for test setups.
pub fn silence_crash_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let crash = info.payload().downcast_ref::<CrashInjected>().is_some();
        if !crash && !HUSHED.with(|h| h.get()) {
            prev(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PmemConfig;
    use std::sync::Arc;

    fn dev() -> Arc<Pmem> {
        Pmem::new(PmemConfig::crash_sim(4096))
    }

    /// Two fenced writes: ops are write, pwb, pfence, write, pwb, pfence.
    fn workload(p: &Pmem) {
        p.write_u64(0, 7);
        p.pwb(0);
        p.pfence();
        p.write_u64(128, 9);
        p.pwb(128);
        p.pfence();
    }

    #[test]
    fn count_mode_counts_and_traces() {
        let p = dev();
        p.arm_faults(FaultPlan::count());
        workload(&p);
        let n = p.disarm_faults();
        assert_eq!(n, 6);
        let trace = p.fault_trace();
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[0].op, FaultOp::Write);
        assert_eq!(trace[1].op, FaultOp::Pwb);
        assert_eq!(trace[2].op, FaultOp::Pfence);
        assert_eq!(trace[1].addr, 0);
        assert_eq!(trace[4].addr, 128);
    }

    #[test]
    fn crash_at_every_point_yields_prefix_states() {
        silence_crash_panics();
        for i in 0..6u64 {
            let p = dev();
            p.arm_faults(FaultPlan::crash_at(i));
            let err = catch_crash(|| workload(&p)).expect_err("must crash");
            assert_eq!(err.op_index, i);
            assert!(p.faults_frozen());
            p.disarm_faults();
            // Under the strict policy, exactly the fenced prefix survives.
            let first = p.read_u64(0);
            let second = p.read_u64(128);
            if i < 3 {
                assert_eq!((first, second), (0, 0), "point {i}");
            } else {
                assert_eq!((first, second), (7, 0), "point {i}");
            }
        }
    }

    #[test]
    fn past_the_end_the_workload_completes() {
        let p = dev();
        p.arm_faults(FaultPlan::crash_at(100));
        assert!(catch_crash(|| workload(&p)).is_ok());
        assert_eq!(p.disarm_faults(), 6);
    }

    #[test]
    fn frozen_device_ignores_all_mutations() {
        silence_crash_panics();
        let p = dev();
        p.write_u64(0, 1);
        p.pwb(0);
        p.pfence();
        p.arm_faults(FaultPlan::crash_at(0));
        let _ = catch_crash(|| p.write_u64(0, 2)).expect_err("must crash");
        // The unwind path of a real workload keeps running: none of this
        // may reach the pool.
        p.write_u64(0, 3);
        p.write_bytes(8, &[0xff; 8]);
        p.zero_range(0, 8);
        assert_eq!(p.fetch_add_u64(0, 10), 1);
        assert!(p.cas_u64(0, 1, 9).is_err());
        p.pwb(0);
        p.pfence();
        p.psync();
        p.disarm_faults();
        assert_eq!(p.read_u64(0), 1);
        assert_eq!(p.read_u64(8), 0);
    }

    #[test]
    fn other_threads_unwind_after_injected_crash() {
        silence_crash_panics();
        let p = dev();
        p.arm_faults(FaultPlan::crash_at(0));
        let err = catch_crash(|| p.write_u64(0, 1)).expect_err("must crash");
        assert!(!err.secondary);
        let p2 = Arc::clone(&p);
        std::thread::spawn(move || {
            // A power failure stops every CPU: this thread's first op on
            // the frozen device must unwind too.
            let err = catch_crash(|| p2.write_u64(64, 2)).expect_err("other threads must stop");
            assert!(err.secondary);
            assert_eq!(err.op, FaultOp::Write);
            assert_eq!(err.op_index, 0, "secondary unwinds report the trigger point");
            // After its own unwind the thread is quiesced; cleanup paths
            // may keep touching the device without aborting the process.
            p2.write_u64(64, 3);
            p2.pwb(64);
            p2.pfence();
        })
        .join()
        .unwrap();
        p.disarm_faults();
        assert_eq!(p.read_u64(64), 0, "frozen device must drop all of the thread's writes");
        assert_eq!(p.stats().secondary_unwinds, 1);
    }

    #[test]
    fn secondary_unwind_fires_once_per_crash() {
        silence_crash_panics();
        let p = dev();
        let worker = |p: &Arc<Pmem>| {
            let p = Arc::clone(p);
            std::thread::spawn(move || {
                catch_crash(|| p.write_u64(64, 2)).expect_err("secondary unwind")
            })
            .join()
            .unwrap()
        };
        // Two arm/crash cycles: a fresh crash token per arming means the
        // same OS thread would unwind again, and a *new* thread unwinds
        // exactly once per crash.
        for round in 0..2u64 {
            p.arm_faults(FaultPlan::crash_at(0));
            let _ = catch_crash(|| p.write_u64(0, 1)).expect_err("must crash");
            let err = worker(&p);
            assert!(err.secondary, "round {round}");
            p.disarm_faults();
        }
        assert_eq!(p.stats().secondary_unwinds, 2);
    }

    #[test]
    fn injected_crash_counts_in_stats() {
        silence_crash_panics();
        let p = dev();
        let before = p.stats();
        p.arm_faults(FaultPlan::crash_at(0));
        let _ = catch_crash(|| p.write_u64(0, 1)).expect_err("must crash");
        p.disarm_faults();
        let d = p.stats().delta(&before);
        assert_eq!(d.injected_crashes, 1);
        assert_eq!(d.crashes, 1);
    }

    #[test]
    fn disarmed_device_pays_nothing() {
        let p = dev();
        workload(&p);
        assert_eq!(p.fault_ops(), 0);
        assert!(p.fault_trace().is_empty());
    }
}
