//! # jnvm-pmem — simulated Non-Volatile Main Memory
//!
//! This crate is the hardware substitute for the Intel Optane DC persistent
//! memory used by the J-NVM paper (SOSP '21). It provides a byte-addressable
//! memory pool together with the three architecture-agnostic persistence
//! primitives of Izraelevitz et al. that the paper adds to the HotSpot JVM:
//!
//! * [`Pmem::pwb`] — *persistent write-back*: enqueue the cache line holding
//!   an address into the write-pending queue (models `clwb`),
//! * [`Pmem::pfence`] — order preceding `pwb`s/stores before succeeding ones
//!   and drain the write-pending queue to media (models `sfence` under ADR),
//! * [`Pmem::psync`] — like `pfence`, additionally guaranteeing that pending
//!   lines reached the media (the paper implements both with `sfence`).
//!
//! ## Simulation modes
//!
//! * [`SimMode::Performance`] — a single in-memory array; persistence
//!   primitives only update statistics and inject calibrated latency. Used by
//!   the benchmark harnesses.
//! * [`SimMode::CrashSim`] — a cache/media split with per-line dirty state.
//!   [`Pmem::crash`] simulates a power failure: every line that was not
//!   explicitly written back *may or may not* have reached the media
//!   (seeded, configurable eviction probability), after which the volatile
//!   cache is rebuilt from the media. This is strictly harsher than the
//!   paper's SIGKILL experiments and is the substrate for all
//!   crash-consistency tests in the workspace.
//!
//! ## Addressing
//!
//! All addresses are **byte offsets relative to the pool base**, never
//! absolute pointers, mirroring the paper's relocatable-heap requirement
//! (§4.4). Sub-word and unaligned accesses are supported; aligned accesses
//! take a fast path.

mod config;
mod device;
mod inject;
#[cfg(test)]
mod proptests;
mod error;
mod image;
mod latency;
mod sanitize;
mod stats;

pub use config::{CrashPolicy, FaultMode, FaultPlan, LatencyProfile, PmemConfig, SimMode};
pub use device::{Pmem, CACHE_LINE};
pub use error::PmemError;
pub use inject::{
    catch_crash, hush_panics, silence_crash_panics, CrashInjected, FaultOp, PanicHush, TraceRecord,
};
pub use latency::{spin_ns, thread_charged_ns};
pub use sanitize::{SanViolation, SanViolationKind, SanitizeMode};
pub use stats::{PmemStats, StatsSnapshot};
