//! Operation counters of the device.
//!
//! Every counter is **sharded**: each thread bumps a cache-line-padded
//! cell picked by a thread-local slot, and readers sum the cells. With the
//! parallel recovery engine N workers hammer these counters on every
//! device op; a single `AtomicU64` per counter serializes them on one
//! contended line and shows up in the recovery thread-scaling bench.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shards per counter. Power of two, comfortably above the recovery
/// thread counts exercised in the benches.
const SHARDS: usize = 16;

/// This thread's shard slot, assigned round-robin at first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SLOT.with(|s| *s)
}

/// One shard cell, padded onto its own cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Cell(AtomicU64);

/// A `u64` counter striped over [`SHARDS`] cells. Writers touch only their
/// own thread's cell; `sum` merges on read.
#[derive(Debug, Default)]
pub(crate) struct ShardedU64 {
    cells: [Cell; SHARDS],
}

impl ShardedU64 {
    #[inline]
    pub(crate) fn add(&self, n: u64) {
        self.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Internal sharded counters; every device operation bumps one of these.
#[derive(Debug, Default)]
pub struct PmemStats {
    pub(crate) reads: ShardedU64,
    pub(crate) writes: ShardedU64,
    pub(crate) bytes_read: ShardedU64,
    pub(crate) bytes_written: ShardedU64,
    pub(crate) pwbs: ShardedU64,
    pub(crate) pfences: ShardedU64,
    pub(crate) psyncs: ShardedU64,
    pub(crate) crashes: ShardedU64,
    pub(crate) injected_crashes: ShardedU64,
    pub(crate) secondary_unwinds: ShardedU64,
    pub(crate) ordering_points: ShardedU64,
    pub(crate) san_violations: ShardedU64,
    pub(crate) redundant_pwbs: ShardedU64,
    pub(crate) redundant_fences: ShardedU64,
}

impl PmemStats {
    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.add(1);
        self.bytes_read.add(bytes);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.writes.add(1);
        self.bytes_written.add(bytes);
    }

    /// Capture a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.sum(),
            writes: self.writes.sum(),
            bytes_read: self.bytes_read.sum(),
            bytes_written: self.bytes_written.sum(),
            pwbs: self.pwbs.sum(),
            pfences: self.pfences.sum(),
            psyncs: self.psyncs.sum(),
            crashes: self.crashes.sum(),
            injected_crashes: self.injected_crashes.sum(),
            secondary_unwinds: self.secondary_unwinds.sum(),
            ordering_points: self.ordering_points.sum(),
            san_violations: self.san_violations.sum(),
            redundant_pwbs: self.redundant_pwbs.sum(),
            redundant_fences: self.redundant_fences.sum(),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.reads.reset();
        self.writes.reset();
        self.bytes_read.reset();
        self.bytes_written.reset();
        self.pwbs.reset();
        self.pfences.reset();
        self.psyncs.reset();
        self.crashes.reset();
        self.injected_crashes.reset();
        self.secondary_unwinds.reset();
        self.ordering_points.reset();
        self.san_violations.reset();
        self.redundant_pwbs.reset();
        self.redundant_fences.reset();
    }
}

/// A point-in-time copy of the device counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// `pwb` invocations.
    pub pwbs: u64,
    /// `pfence` invocations.
    pub pfences: u64,
    /// `psync` invocations.
    pub psyncs: u64,
    /// Simulated power failures.
    pub crashes: u64,
    /// Power failures triggered by the crash-point injection engine
    /// (a subset of `crashes`).
    pub injected_crashes: u64,
    /// Threads stopped by an injected crash they did not trigger (their
    /// first op against the frozen device unwound).
    pub secondary_unwinds: u64,
    /// Labeled [`crate::Pmem::ordering_point`] emissions (FA commit and
    /// retire, allocator publish, recovery apply). Counted in every
    /// sanitizer mode, including `Off`.
    pub ordering_points: u64,
    /// Persist-ordering violations the sanitizer detected (`Log` mode
    /// records them; `Strict` panics after counting the first).
    pub san_violations: u64,
    /// `pwb`s of already-clean lines — wasted flushes. Tracked only when
    /// the sanitizer is on.
    pub redundant_pwbs: u64,
    /// Fences with no intervening `pwb` on the fencing thread — wasted
    /// ordering points. Tracked only when the sanitizer is on.
    pub redundant_fences: u64,
}

impl StatsSnapshot {
    /// Number of counters in the snapshot (the length of [`Self::to_array`]).
    pub const FIELDS: usize = 14;

    /// Field names, in [`Self::to_array`] order.
    pub const FIELD_NAMES: [&'static str; Self::FIELDS] = [
        "reads",
        "writes",
        "bytes_read",
        "bytes_written",
        "pwbs",
        "pfences",
        "psyncs",
        "crashes",
        "injected_crashes",
        "secondary_unwinds",
        "ordering_points",
        "san_violations",
        "redundant_pwbs",
        "redundant_fences",
    ];

    /// Every counter as a fixed-size array, in [`Self::FIELD_NAMES`] order.
    ///
    /// The **exhaustive** destructuring (no `..`) is the completeness
    /// guard: adding a field to the struct without threading it through
    /// here — and therefore through [`Self::delta`] and [`Self::absorb`],
    /// which are implemented on top of the array — is a compile error,
    /// not a silently-missing counter (this struct grew by hand twice
    /// before, each time risking exactly that).
    pub fn to_array(&self) -> [u64; Self::FIELDS] {
        let StatsSnapshot {
            reads,
            writes,
            bytes_read,
            bytes_written,
            pwbs,
            pfences,
            psyncs,
            crashes,
            injected_crashes,
            secondary_unwinds,
            ordering_points,
            san_violations,
            redundant_pwbs,
            redundant_fences,
        } = *self;
        [
            reads,
            writes,
            bytes_read,
            bytes_written,
            pwbs,
            pfences,
            psyncs,
            crashes,
            injected_crashes,
            secondary_unwinds,
            ordering_points,
            san_violations,
            redundant_pwbs,
            redundant_fences,
        ]
    }

    /// Inverse of [`Self::to_array`].
    pub fn from_array(a: [u64; Self::FIELDS]) -> StatsSnapshot {
        let [reads, writes, bytes_read, bytes_written, pwbs, pfences, psyncs, crashes, injected_crashes, secondary_unwinds, ordering_points, san_violations, redundant_pwbs, redundant_fences] =
            a;
        StatsSnapshot {
            reads,
            writes,
            bytes_read,
            bytes_written,
            pwbs,
            pfences,
            psyncs,
            crashes,
            injected_crashes,
            secondary_unwinds,
            ordering_points,
            san_violations,
            redundant_pwbs,
            redundant_fences,
        }
    }

    /// Counter-wise difference `self - earlier`, for measuring an interval.
    ///
    /// Saturating: if [`crate::Pmem::reset_stats`] ran between the two
    /// snapshots, `earlier` may exceed `self`; the difference clamps to 0
    /// instead of panicking in debug builds / wrapping in release builds.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut a = self.to_array();
        for (v, e) in a.iter_mut().zip(earlier.to_array()) {
            *v = v.saturating_sub(e);
        }
        StatsSnapshot::from_array(a)
    }

    /// Labeled ordering points emitted via [`crate::Pmem::ordering_point`]
    /// — FA commits and retires, allocator publishes, recovery applies.
    /// Formerly the bare `pfence + psync` count; the labeled emissions are
    /// the honest denominator of the acked-durability assertion: group
    /// commit is working when ordering points per acknowledged write sit
    /// well below one under pipelined load.
    pub fn ordering_points(&self) -> u64 {
        self.ordering_points
    }

    /// Counter-wise accumulate `other` into `self` — the aggregation a
    /// sharded engine needs to report one fleet-wide snapshot over N
    /// disjoint devices. Totals (not maxima): a fleet snapshot answers
    /// "how much device work happened", while per-shard critical-path
    /// comparisons should keep the snapshots separate.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        let mut a = self.to_array();
        for (v, o) in a.iter_mut().zip(other.to_array()) {
            *v += o;
        }
        *self = StatsSnapshot::from_array(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_saturates_after_reset() {
        let before = StatsSnapshot {
            reads: 10,
            writes: 10,
            ..StatsSnapshot::default()
        };
        let after = StatsSnapshot {
            reads: 3,
            writes: 0,
            pwbs: 5,
            ..StatsSnapshot::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 0);
        assert_eq!(d.pwbs, 5);
    }

    #[test]
    fn absorb_sums_every_counter() {
        let a = StatsSnapshot {
            reads: 1,
            writes: 2,
            bytes_read: 3,
            bytes_written: 4,
            pwbs: 5,
            pfences: 6,
            psyncs: 7,
            crashes: 8,
            injected_crashes: 9,
            secondary_unwinds: 10,
            ordering_points: 11,
            san_violations: 12,
            redundant_pwbs: 13,
            redundant_fences: 14,
        };
        let mut total = a;
        total.absorb(&a);
        // Doubling every field catches a counter forgotten in absorb.
        let twice = StatsSnapshot {
            reads: 2,
            writes: 4,
            bytes_read: 6,
            bytes_written: 8,
            pwbs: 10,
            pfences: 12,
            psyncs: 14,
            crashes: 16,
            injected_crashes: 18,
            secondary_unwinds: 20,
            ordering_points: 22,
            san_violations: 24,
            redundant_pwbs: 26,
            redundant_fences: 28,
        };
        assert_eq!(total, twice);
        assert_eq!(total.ordering_points(), 22);
    }

    #[test]
    fn array_roundtrip_covers_every_field() {
        // A distinct value per field: from_array(to_array(s)) == s proves
        // the two orderings agree field-for-field.
        let a: [u64; StatsSnapshot::FIELDS] =
            std::array::from_fn(|i| (i as u64 + 1) * 1_000_003);
        let s = StatsSnapshot::from_array(a);
        assert_eq!(s.to_array(), a);
        assert_eq!(StatsSnapshot::from_array(s.to_array()), s);
        assert_eq!(StatsSnapshot::FIELD_NAMES.len(), StatsSnapshot::FIELDS);
    }
}
