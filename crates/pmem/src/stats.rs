//! Operation counters of the device.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters; every device operation bumps one of these.
#[derive(Debug, Default)]
pub struct PmemStats {
    pub(crate) reads: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) pwbs: AtomicU64,
    pub(crate) pfences: AtomicU64,
    pub(crate) psyncs: AtomicU64,
    pub(crate) crashes: AtomicU64,
    pub(crate) injected_crashes: AtomicU64,
    pub(crate) secondary_unwinds: AtomicU64,
}

impl PmemStats {
    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Capture a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            pwbs: self.pwbs.load(Ordering::Relaxed),
            pfences: self.pfences.load(Ordering::Relaxed),
            psyncs: self.psyncs.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            injected_crashes: self.injected_crashes.load(Ordering::Relaxed),
            secondary_unwinds: self.secondary_unwinds.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.pwbs.store(0, Ordering::Relaxed);
        self.pfences.store(0, Ordering::Relaxed);
        self.psyncs.store(0, Ordering::Relaxed);
        self.crashes.store(0, Ordering::Relaxed);
        self.injected_crashes.store(0, Ordering::Relaxed);
        self.secondary_unwinds.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the device counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// `pwb` invocations.
    pub pwbs: u64,
    /// `pfence` invocations.
    pub pfences: u64,
    /// `psync` invocations.
    pub psyncs: u64,
    /// Simulated power failures.
    pub crashes: u64,
    /// Power failures triggered by the crash-point injection engine
    /// (a subset of `crashes`).
    pub injected_crashes: u64,
    /// Threads stopped by an injected crash they did not trigger (their
    /// first op against the frozen device unwound).
    pub secondary_unwinds: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier`, for measuring an interval.
    ///
    /// Saturating: if [`crate::Pmem::reset_stats`] ran between the two
    /// snapshots, `earlier` may exceed `self`; the difference clamps to 0
    /// instead of panicking in debug builds / wrapping in release builds.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            pwbs: self.pwbs.saturating_sub(earlier.pwbs),
            pfences: self.pfences.saturating_sub(earlier.pfences),
            psyncs: self.psyncs.saturating_sub(earlier.psyncs),
            crashes: self.crashes.saturating_sub(earlier.crashes),
            injected_crashes: self.injected_crashes.saturating_sub(earlier.injected_crashes),
            secondary_unwinds: self.secondary_unwinds.saturating_sub(earlier.secondary_unwinds),
        }
    }

    /// Total ordering points the device saw: `pfence` + `psync`. This is
    /// the denominator of the acked-durability assertion — group commit is
    /// working when ordering points per acknowledged write sit well below
    /// one under pipelined load.
    pub fn ordering_points(&self) -> u64 {
        self.pfences + self.psyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_saturates_after_reset() {
        let before = StatsSnapshot {
            reads: 10,
            writes: 10,
            ..StatsSnapshot::default()
        };
        let after = StatsSnapshot {
            reads: 3,
            writes: 0,
            pwbs: 5,
            ..StatsSnapshot::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 0);
        assert_eq!(d.pwbs, 5);
    }
}
