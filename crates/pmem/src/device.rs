//! The simulated NVMM device.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::{CrashPolicy, LatencyProfile, PmemConfig, SimMode};
use crate::error::PmemError;
use crate::inject::{FaultOp, Injector};
use crate::latency::spin_ns;
use crate::sanitize::{SanViolation, SanitizeMode, Sanitizer};
use crate::stats::{PmemStats, StatsSnapshot};

/// Size of a simulated CPU cache line in bytes.
pub const CACHE_LINE: u64 = 64;

const WORDS_PER_LINE: usize = (CACHE_LINE / 8) as usize;

/// Per-line persistence state (CrashSim mode).
const LINE_CLEAN: u8 = 0;
const LINE_DIRTY: u8 = 1;
const LINE_PENDING: u8 = 2;

/// State owned only by [`SimMode::CrashSim`] devices.
struct CrashSim {
    /// The persistent media: survives [`Pmem::crash`].
    media: Box<[AtomicU64]>,
    /// Per-line state: clean / dirty / pending (in some thread's domain).
    line_state: Box<[AtomicU8]>,
    /// Per-thread persistence domains: each thread's `pwb`s queue into its
    /// own write-pending queue, and only that thread's `pfence`/`psync`
    /// drains it — an `sfence` on real hardware orders only the issuing
    /// CPU's `clwb`s. Lines left in *other* threads' domains at a crash
    /// are as vulnerable as dirty lines.
    domains: Mutex<HashMap<ThreadId, Arc<SegQueue<u64>>>>,
    /// Serializes crash/drain against each other.
    crash_lock: Mutex<()>,
}

impl CrashSim {
    /// The calling thread's write-pending queue, created on first use.
    fn my_domain(&self) -> Arc<SegQueue<u64>> {
        let mut map = self.domains.lock();
        Arc::clone(map.entry(std::thread::current().id()).or_default())
    }

    /// The calling thread's queue, if it ever issued a `pwb`.
    fn my_domain_if_any(&self) -> Option<Arc<SegQueue<u64>>> {
        self.domains.lock().get(&std::thread::current().id()).cloned()
    }

    /// Empty every thread's queue (crash / orderly shutdown).
    fn clear_domains(&self) {
        for q in self.domains.lock().values() {
            while q.pop().is_some() {}
        }
    }
}

/// A simulated byte-addressable non-volatile memory pool.
///
/// Thread safety: the word array is atomic, so concurrent access is memory
/// safe. Like real NVMM, the device provides no synchronization between
/// racing accesses to the *same* object — callers (the heap, the data grid)
/// bring their own locking, exactly as Infinispan does in the paper.
pub struct Pmem {
    size: u64,
    label: String,
    words: Box<[AtomicU64]>,
    sim: Option<CrashSim>,
    latency: LatencyProfile,
    latency_on: bool,
    stats: PmemStats,
    injector: Injector,
    /// Persist-ordering sanitizer; `None` in `Off` mode, so the hot path
    /// pays one never-taken branch per store.
    san: Option<Sanitizer>,
}

fn zeroed_words(n: usize) -> Box<[AtomicU64]> {
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, || AtomicU64::new(0));
    v.into_boxed_slice()
}

impl Pmem {
    /// Create a pool per `cfg`. The size is rounded up to a whole number of
    /// cache lines; contents start zeroed (persistently so).
    pub fn new(cfg: PmemConfig) -> Arc<Pmem> {
        // Span timestamps come from the modeled device clock, which lives
        // here in jnvm-pmem; the obs crate sits below us in the graph, so
        // the clock is installed at runtime (first installation wins).
        jnvm_obs::install_clock(crate::latency::thread_charged_ns);
        let size = cfg.size.div_ceil(CACHE_LINE) * CACHE_LINE;
        let nwords = (size / 8) as usize;
        let nlines = (size / CACHE_LINE) as usize;
        let sim = match cfg.mode {
            SimMode::Performance => None,
            SimMode::CrashSim => {
                let mut states = Vec::with_capacity(nlines);
                states.resize_with(nlines, || AtomicU8::new(LINE_CLEAN));
                Some(CrashSim {
                    media: zeroed_words(nwords),
                    line_state: states.into_boxed_slice(),
                    domains: Mutex::new(HashMap::new()),
                    crash_lock: Mutex::new(()),
                })
            }
        };
        let san = match cfg.sanitize {
            SanitizeMode::Off => None,
            mode => Some(Sanitizer::new(mode, size)),
        };
        Arc::new(Pmem {
            size,
            label: cfg.label,
            words: zeroed_words(nwords),
            sim,
            latency_on: !cfg.latency.is_off(),
            latency: cfg.latency,
            stats: PmemStats::default(),
            injector: Injector::default(),
            san,
        })
    }

    /// Pool size in bytes.
    pub fn len(&self) -> u64 {
        self.size
    }

    /// The device identity label from [`PmemConfig::with_label`] (empty
    /// when none was set). Multi-device harnesses use it to report which
    /// replica's device a crash plan was armed on.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// True only for a zero-sized pool.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Whether crash simulation is available.
    pub fn crash_sim_enabled(&self) -> bool {
        self.sim.is_some()
    }

    /// The device operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset the operation counters.
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    /// Crash-point injection state (see `inject.rs`).
    pub(crate) fn injector(&self) -> &Injector {
        &self.injector
    }

    /// Bump the injected-crash counter (called by the engine only).
    pub(crate) fn record_injected_crash(&self) {
        self.stats.injected_crashes.add(1);
    }

    /// Bump the secondary-unwind counter (called by the engine only).
    pub(crate) fn record_secondary_unwind(&self) {
        self.stats.secondary_unwinds.add(1);
    }

    #[inline]
    fn check(&self, addr: u64, len: u64) {
        if addr.checked_add(len).is_none_or(|end| end > self.size) {
            panic!(
                "pmem access out of bounds: addr={addr:#x} len={len} size={}",
                self.size
            );
        }
    }

    #[inline]
    fn lines_touched(addr: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        (addr + len - 1) / CACHE_LINE - addr / CACHE_LINE + 1
    }

    #[inline]
    fn charge_read(&self, addr: u64, len: u64) {
        self.stats.record_read(len);
        if self.latency_on {
            spin_ns(self.latency.read_line_ns * Self::lines_touched(addr, len));
        }
    }

    #[inline]
    fn charge_write(&self, addr: u64, len: u64) {
        self.stats.record_write(len);
        if self.latency_on {
            spin_ns(self.latency.write_line_ns * Self::lines_touched(addr, len));
        }
    }

    /// Mark every line overlapping `[addr, addr+len)` dirty (CrashSim
    /// line state and, when enabled, the sanitizer's state machine).
    #[inline]
    fn mark_dirty(&self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(san) = &self.san {
            san.note_write(addr, len);
        }
        if let Some(sim) = &self.sim {
            let first = addr / CACHE_LINE;
            let last = (addr + len - 1) / CACHE_LINE;
            for line in first..=last {
                sim.line_state[line as usize].store(LINE_DIRTY, Ordering::Release);
            }
        }
    }

    // ------------------------------------------------------------------
    // Word-level raw access.
    // ------------------------------------------------------------------

    #[inline]
    fn load_word(&self, widx: usize) -> u64 {
        self.words[widx].load(Ordering::Relaxed)
    }

    #[inline]
    fn store_word(&self, widx: usize, v: u64) {
        self.words[widx].store(v, Ordering::Relaxed);
    }

    /// Read an unsigned integer of `LEN` bytes (1, 2, 4 or 8) at any byte
    /// address, crossing word boundaries if necessary.
    #[inline]
    fn read_uint(&self, addr: u64, len: u64) -> u64 {
        self.check(addr, len);
        self.charge_read(addr, len);
        let widx = (addr / 8) as usize;
        let shift = (addr % 8) * 8;
        if shift + len * 8 <= 64 {
            let word = self.load_word(widx);
            let v = word >> shift;
            if len == 8 {
                v
            } else {
                v & ((1u64 << (len * 8)) - 1)
            }
        } else {
            // The value straddles two words.
            let lo = self.load_word(widx) >> shift;
            let hi_bits = shift + len * 8 - 64;
            let hi = self.load_word(widx + 1) & ((1u64 << hi_bits) - 1);
            let v = lo | (hi << (64 - shift));
            if len == 8 {
                v
            } else {
                v & ((1u64 << (len * 8)) - 1)
            }
        }
    }

    /// Write an unsigned integer of `len` bytes at any byte address.
    ///
    /// Sub-word writes are read-modify-write on the containing word(s); like
    /// hardware, racing writers to the *same word* need external ordering,
    /// which upper layers provide.
    #[inline]
    fn write_uint(&self, addr: u64, len: u64, v: u64) {
        self.check(addr, len);
        if self.fault_point(FaultOp::Write, addr) {
            return;
        }
        self.charge_write(addr, len);
        self.mark_dirty(addr, len);
        let widx = (addr / 8) as usize;
        let shift = (addr % 8) * 8;
        if len == 8 && shift == 0 {
            self.store_word(widx, v);
            return;
        }
        if shift + len * 8 <= 64 {
            let mask = if len == 8 {
                u64::MAX
            } else {
                ((1u64 << (len * 8)) - 1) << shift
            };
            let old = self.load_word(widx);
            self.store_word(widx, (old & !mask) | ((v << shift) & mask));
        } else {
            let lo_bits = 64 - shift;
            let lo_mask = u64::MAX << shift;
            let old_lo = self.load_word(widx);
            self.store_word(widx, (old_lo & !lo_mask) | (v << shift));
            let hi_bits = len * 8 - lo_bits;
            let hi_mask = (1u64 << hi_bits) - 1;
            let old_hi = self.load_word(widx + 1);
            self.store_word(widx + 1, (old_hi & !hi_mask) | ((v >> lo_bits) & hi_mask));
        }
    }

    // ------------------------------------------------------------------
    // Typed accessors.
    // ------------------------------------------------------------------

    /// Read a `u64` at `addr` (any alignment).
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Write a `u64` at `addr` (any alignment).
    #[inline]
    pub fn write_u64(&self, addr: u64, v: u64) {
        self.write_uint(addr, 8, v)
    }

    /// Read a `u32` at `addr`.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Write a `u32` at `addr`.
    #[inline]
    pub fn write_u32(&self, addr: u64, v: u32) {
        self.write_uint(addr, 4, v as u64)
    }

    /// Read a `u16` at `addr`.
    #[inline]
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_uint(addr, 2) as u16
    }

    /// Write a `u16` at `addr`.
    #[inline]
    pub fn write_u16(&self, addr: u64, v: u16) {
        self.write_uint(addr, 2, v as u64)
    }

    /// Read a single byte at `addr`.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.read_uint(addr, 1) as u8
    }

    /// Write a single byte at `addr`.
    #[inline]
    pub fn write_u8(&self, addr: u64, v: u8) {
        self.write_uint(addr, 1, v as u64)
    }

    /// Read an `i32` at `addr`.
    #[inline]
    pub fn read_i32(&self, addr: u64) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Write an `i32` at `addr`.
    #[inline]
    pub fn write_i32(&self, addr: u64, v: i32) {
        self.write_u32(addr, v as u32)
    }

    /// Read an `i64` at `addr`.
    #[inline]
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Write an `i64` at `addr`.
    #[inline]
    pub fn write_i64(&self, addr: u64, v: i64) {
        self.write_u64(addr, v as u64)
    }

    /// Read an `f64` at `addr`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an `f64` at `addr`.
    #[inline]
    pub fn write_f64(&self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits())
    }

    /// Fill `out` from the pool starting at `addr`.
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) {
        let len = out.len() as u64;
        self.check(addr, len);
        self.charge_read(addr, len);
        let mut i = 0usize;
        let mut a = addr;
        // Head: bytes up to the next word boundary.
        while i < out.len() && !a.is_multiple_of(8) {
            out[i] = (self.load_word((a / 8) as usize) >> ((a % 8) * 8)) as u8;
            i += 1;
            a += 1;
        }
        // Body: whole words.
        while out.len() - i >= 8 {
            let w = self.load_word((a / 8) as usize);
            out[i..i + 8].copy_from_slice(&w.to_le_bytes());
            i += 8;
            a += 8;
        }
        // Tail.
        if i < out.len() {
            let w = self.load_word((a / 8) as usize).to_le_bytes();
            let rest = out.len() - i;
            out[i..].copy_from_slice(&w[..rest]);
        }
    }

    /// Copy `data` into the pool starting at `addr`.
    pub fn write_bytes(&self, addr: u64, data: &[u8]) {
        let len = data.len() as u64;
        self.check(addr, len);
        if self.fault_point(FaultOp::WriteBytes, addr) {
            return;
        }
        self.charge_write(addr, len);
        self.mark_dirty(addr, len);
        let mut i = 0usize;
        let mut a = addr;
        while i < data.len() && !a.is_multiple_of(8) {
            let widx = (a / 8) as usize;
            let shift = (a % 8) * 8;
            let old = self.load_word(widx);
            let mask = 0xffu64 << shift;
            self.store_word(widx, (old & !mask) | ((data[i] as u64) << shift));
            i += 1;
            a += 1;
        }
        while data.len() - i >= 8 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i..i + 8]);
            self.store_word((a / 8) as usize, u64::from_le_bytes(b));
            i += 8;
            a += 8;
        }
        if i < data.len() {
            let widx = (a / 8) as usize;
            let rest = data.len() - i;
            let mut b = self.load_word(widx).to_le_bytes();
            b[..rest].copy_from_slice(&data[i..]);
            self.store_word(widx, u64::from_le_bytes(b));
        }
    }

    /// Zero `len` bytes starting at `addr`.
    pub fn zero_range(&self, addr: u64, len: u64) {
        self.check(addr, len);
        if self.fault_point(FaultOp::Zero, addr) {
            return;
        }
        self.charge_write(addr, len);
        self.mark_dirty(addr, len);
        let mut a = addr;
        let end = addr + len;
        while a < end && !a.is_multiple_of(8) {
            let widx = (a / 8) as usize;
            let shift = (a % 8) * 8;
            let old = self.load_word(widx);
            self.store_word(widx, old & !(0xffu64 << shift));
            a += 1;
        }
        while end - a >= 8 {
            self.store_word((a / 8) as usize, 0);
            a += 8;
        }
        while a < end {
            let widx = (a / 8) as usize;
            let shift = (a % 8) * 8;
            let old = self.load_word(widx);
            self.store_word(widx, old & !(0xffu64 << shift));
            a += 1;
        }
    }

    // ------------------------------------------------------------------
    // Atomic word operations (8-byte aligned addresses only).
    // ------------------------------------------------------------------

    /// Atomically add `delta` to the aligned word at `addr`, returning the
    /// previous value. Used for the persistent bump pointer.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned or out of bounds.
    pub fn fetch_add_u64(&self, addr: u64, delta: u64) -> u64 {
        assert!(addr.is_multiple_of(8), "fetch_add_u64 requires 8-byte alignment");
        self.check(addr, 8);
        if self.fault_point(FaultOp::FetchAdd, addr) {
            // Frozen: report the current value without mutating.
            return self.load_word((addr / 8) as usize);
        }
        self.charge_write(addr, 8);
        self.mark_dirty(addr, 8);
        self.words[(addr / 8) as usize].fetch_add(delta, Ordering::AcqRel)
    }

    /// Atomically compare-and-swap the aligned word at `addr`.
    ///
    /// Returns `Ok(current)` on success and `Err(actual)` on failure.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned or out of bounds.
    pub fn cas_u64(&self, addr: u64, current: u64, new: u64) -> Result<u64, u64> {
        assert!(addr.is_multiple_of(8), "cas_u64 requires 8-byte alignment");
        self.check(addr, 8);
        if self.fault_point(FaultOp::Cas, addr) {
            // Frozen: fail the swap, reporting the current value.
            return Err(self.load_word((addr / 8) as usize));
        }
        self.charge_write(addr, 8);
        self.mark_dirty(addr, 8);
        self.words[(addr / 8) as usize].compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
    }

    // ------------------------------------------------------------------
    // Persistence primitives (Izraelevitz et al., as adapted by the paper).
    // ------------------------------------------------------------------

    /// `pwb`: enqueue the cache line containing `addr` into the calling
    /// thread's write-pending queue (its persistence domain). Persistence
    /// is only guaranteed after a subsequent [`Pmem::pfence`] or
    /// [`Pmem::psync`] **on the same thread** — another thread's fence
    /// does not cover this `pwb`, just as another CPU's `sfence` does not
    /// order this CPU's `clwb`s.
    pub fn pwb(&self, addr: u64) {
        self.check(addr, 1);
        if self.fault_point(FaultOp::Pwb, addr) {
            return;
        }
        self.stats.pwbs.add(1);
        jnvm_obs::note_pwb();
        if self.latency_on {
            spin_ns(self.latency.pwb_ns);
        }
        if let Some(san) = &self.san {
            san.note_pwb(addr, &self.stats);
        }
        if let Some(sim) = &self.sim {
            let line = addr / CACHE_LINE;
            let st = &sim.line_state[line as usize];
            // Queue dirty lines; a line another thread already has pending
            // joins this thread's domain too (like `clwb`, flushing it
            // again is legal, and *this* thread's fence must then make it
            // durable even if the original flusher never fences).
            let claimed = st
                .compare_exchange(
                    LINE_DIRTY,
                    LINE_PENDING,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok();
            if claimed || st.load(Ordering::Acquire) == LINE_PENDING {
                sim.my_domain().push(line);
            }
        }
    }

    /// `pwb` over every line overlapping `[addr, addr + len)`.
    pub fn pwb_range(&self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.check(addr, len);
        let first = addr / CACHE_LINE;
        let last = (addr + len - 1) / CACHE_LINE;
        for line in first..=last {
            self.pwb(line * CACHE_LINE);
        }
    }

    fn persist_line(&self, sim: &CrashSim, line: u64) {
        let base = line as usize * WORDS_PER_LINE;
        for w in 0..WORDS_PER_LINE {
            sim.media[base + w].store(self.words[base + w].load(Ordering::Acquire), Ordering::Release);
        }
    }

    fn drain_wpq(&self, sim: &CrashSim) {
        // Drain only the calling thread's domain: a fence persists the
        // fencing thread's own pending flushes, nobody else's.
        let Some(q) = sim.my_domain_if_any() else {
            return;
        };
        let _g = sim.crash_lock.lock();
        while let Some(line) = q.pop() {
            self.persist_line(sim, line);
            // If the line was rewritten after its pwb it is DIRTY again; the
            // current content was persisted (an allowed eviction) but the
            // line stays dirty so a later crash may still lose newer writes.
            let _ = sim.line_state[line as usize].compare_exchange(
                LINE_PENDING,
                LINE_CLEAN,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
    }

    /// `pfence`: order preceding `pwb`s before succeeding ones. Under the
    /// ADR model the paper assumes, a fenced `pwb` is durable; the simulator
    /// therefore drains the calling thread's write-pending queue to media
    /// here. Lines pending in *other* threads' queues stay pending.
    pub fn pfence(&self) {
        if self.fault_point(FaultOp::Pfence, 0) {
            return;
        }
        self.stats.pfences.add(1);
        jnvm_obs::note_fence();
        if self.latency_on {
            spin_ns(self.latency.pfence_ns);
        }
        if let Some(san) = &self.san {
            san.note_fence(&self.stats);
        }
        if let Some(sim) = &self.sim {
            self.drain_wpq(sim);
        }
    }

    /// `psync`: a `pfence` that additionally waits for the write-pending
    /// queue to reach media. Identical to `pfence` in the simulator (the
    /// paper implements both with `sfence` on its Intel testbed).
    pub fn psync(&self) {
        if self.fault_point(FaultOp::Psync, 0) {
            return;
        }
        self.stats.psyncs.add(1);
        jnvm_obs::note_psync();
        if self.latency_on {
            spin_ns(self.latency.psync_ns);
        }
        if let Some(san) = &self.san {
            san.note_fence(&self.stats);
        }
        if let Some(sim) = &self.sim {
            self.drain_wpq(sim);
        }
    }

    // ------------------------------------------------------------------
    // Persist-ordering sanitizer (see `sanitize.rs`).
    // ------------------------------------------------------------------

    /// The pool's sanitizer mode.
    pub fn sanitize_mode(&self) -> SanitizeMode {
        self.san.as_ref().map_or(SanitizeMode::Off, |s| s.mode())
    }

    /// True when line tracking is on (`Log` or `Strict`). Callers with
    /// expensive footprints should gate their construction on this.
    pub fn sanitizer_active(&self) -> bool {
        self.san.is_some()
    }

    /// Declare a labeled **ordering point**: execution passing here
    /// asserts that every cache line overlapping the declared footprint
    /// is fully persisted — written back *and* fenced on the thread that
    /// flushed it. Emitted by `jnvm-core` at FA commit and retire, by the
    /// allocator at root publishes, and by recovery after each replay
    /// worker's closing fence.
    ///
    /// Always counts into [`StatsSnapshot::ordering_points`], even in
    /// `Off` mode (the labeled count replaced the bare `pfence + psync`
    /// counter as the acked-durability denominator). With the sanitizer
    /// on, a dirty footprint line is a missing `pwb`, a write-backed line
    /// flushed by the calling thread is a missing fence, and one flushed
    /// by another thread is a cross-thread domain violation — counted in
    /// `Log` mode, fatal in `Strict`.
    ///
    /// No-op while the device is frozen by an injected crash: the ops a
    /// crash-point sweep skipped would otherwise read as violations.
    pub fn ordering_point(&self, label: &'static str, footprint: &[(u64, u64)]) {
        if self.faults_frozen() {
            return;
        }
        self.stats.ordering_points.add(1);
        // Claims the thread's pending pwb/fence counts for this label and
        // records an instant span (one never-taken branch while obs is off).
        jnvm_obs::note_ordering_point(label);
        if let Some(san) = &self.san {
            for &(addr, len) in footprint {
                self.check(addr, len);
            }
            san.check_footprint(label, footprint, false, &self.stats);
        }
    }

    /// Declare a labeled **publish point**: a durable pointer is about to
    /// be (or was just) written whose targets must at least be written
    /// back. Unlike [`Pmem::ordering_point`] this accepts lines the
    /// *calling* thread has write-backed but not yet fenced — the
    /// publishing thread's own later fence covers pointer and target
    /// together — but still flags dirty lines (a pointer to a
    /// never-flushed header) and lines pending in another thread's
    /// domain. Does not count as an ordering point.
    pub fn publish_point(&self, label: &'static str, footprint: &[(u64, u64)]) {
        if self.faults_frozen() {
            return;
        }
        if let Some(san) = &self.san {
            for &(addr, len) in footprint {
                self.check(addr, len);
            }
            san.check_footprint(label, footprint, true, &self.stats);
        }
    }

    /// Violations recorded by the `Log`-mode sanitizer (empty in `Off`;
    /// `Strict` panics at the first violation instead of recording).
    pub fn san_violations(&self) -> Vec<SanViolation> {
        self.san.as_ref().map_or_else(Vec::new, |s| s.violations())
    }

    // ------------------------------------------------------------------
    // Crash simulation.
    // ------------------------------------------------------------------

    /// Simulate a power failure.
    ///
    /// Every line not persisted via `pwb`+`pfence` *on the same thread*
    /// independently survives with `policy.evict_probability` (seeded — a
    /// given `(policy, dirty set)` pair always produces the same post-crash
    /// state); a line still pending in another thread's domain faces the
    /// same coin as a dirty line. The volatile cache is then rebuilt from
    /// media, so subsequent reads observe exactly the surviving state.
    ///
    /// Returns [`PmemError::CrashSimRequired`] on a `Performance`-mode pool.
    ///
    /// Callers must quiesce writer threads first, as with a real power
    /// failure there is no meaningful "result" for racing in-flight writes.
    pub fn crash(&self, policy: &CrashPolicy) -> Result<(), PmemError> {
        let sim = self.sim.as_ref().ok_or(PmemError::CrashSimRequired)?;
        let _g = sim.crash_lock.lock();
        self.stats.crashes.add(1);
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let nlines = sim.line_state.len();
        for line in 0..nlines {
            let st = sim.line_state[line].load(Ordering::Acquire);
            if st != LINE_CLEAN {
                // Dirty lines may be evicted; pending lines sit in the
                // write-pending queue, which may or may not drain before
                // power loss. Both face the same coin.
                let survive = policy.evict_probability > 0.0
                    && (policy.evict_probability >= 1.0
                        || rng.random::<f64>() < policy.evict_probability);
                if survive {
                    self.persist_line(sim, line as u64);
                }
                sim.line_state[line].store(LINE_CLEAN, Ordering::Release);
            }
        }
        // Rebuild the cache view from what survived on media.
        for w in 0..self.words.len() {
            self.words[w].store(sim.media[w].load(Ordering::Acquire), Ordering::Release);
        }
        sim.clear_domains();
        if let Some(san) = &self.san {
            san.reset();
        }
        Ok(())
    }

    /// Persist every dirty line (an orderly shutdown / eADR-style flush),
    /// regardless of which thread's domain it was pending in.
    /// No-op on `Performance` pools.
    pub fn drain_all(&self) {
        if let Some(sim) = &self.sim {
            let _g = sim.crash_lock.lock();
            for line in 0..sim.line_state.len() {
                if sim.line_state[line].load(Ordering::Acquire) != LINE_CLEAN {
                    self.persist_line(sim, line as u64);
                    sim.line_state[line].store(LINE_CLEAN, Ordering::Release);
                }
            }
            sim.clear_domains();
        }
        if let Some(san) = &self.san {
            san.reset();
        }
    }

    /// Rebuild the volatile cache from media, marking every line clean and
    /// emptying every thread's persistence domain. No-op on `Performance`
    /// pools.
    ///
    /// Torture harnesses call this after an injected crash once every
    /// worker thread has quiesced: a worker that entered a store just
    /// before the trigger fired may complete that store *after*
    /// [`Pmem::crash`] rebuilt the cache — exactly like a CPU mid-store at
    /// power loss — and those ghost writes must not be visible to
    /// recovery. The media (the crash image) is not touched.
    pub fn resync_cache(&self) {
        if let Some(sim) = &self.sim {
            let _g = sim.crash_lock.lock();
            for line in 0..sim.line_state.len() {
                sim.line_state[line].store(LINE_CLEAN, Ordering::Release);
            }
            for w in 0..self.words.len() {
                self.words[w].store(sim.media[w].load(Ordering::Acquire), Ordering::Release);
            }
            sim.clear_domains();
        }
        if let Some(san) = &self.san {
            san.reset();
        }
    }

    /// Direct read of the *media* (post-crash) content of a word, bypassing
    /// the cache. Test-support API; falls back to the cache view on
    /// `Performance` pools.
    pub fn media_read_u64(&self, addr: u64) -> u64 {
        assert!(addr.is_multiple_of(8), "media_read_u64 requires 8-byte alignment");
        self.check(addr, 8);
        match &self.sim {
            Some(sim) => sim.media[(addr / 8) as usize].load(Ordering::Acquire),
            None => self.load_word((addr / 8) as usize),
        }
    }

    pub(crate) fn persistent_word(&self, widx: usize) -> u64 {
        match &self.sim {
            Some(sim) => sim.media[widx].load(Ordering::Acquire),
            None => self.words[widx].load(Ordering::Acquire),
        }
    }

    pub(crate) fn restore_word(&self, widx: usize, v: u64) {
        self.words[widx].store(v, Ordering::Release);
        if let Some(sim) = &self.sim {
            sim.media[widx].store(v, Ordering::Release);
        }
    }

    pub(crate) fn word_count(&self) -> usize {
        self.words.len()
    }

    pub(crate) fn mode(&self) -> SimMode {
        if self.sim.is_some() {
            SimMode::CrashSim
        } else {
            SimMode::Performance
        }
    }
}

impl std::fmt::Debug for Pmem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pmem")
            .field("size", &self.size)
            .field("mode", &self.mode())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PmemConfig;

    fn dev(size: u64) -> Arc<Pmem> {
        Pmem::new(PmemConfig::crash_sim(size))
    }

    #[test]
    fn round_trips_all_widths() {
        let p = dev(4096);
        p.write_u8(3, 0xab);
        p.write_u16(10, 0xbeef);
        p.write_u32(20, 0xdeadbeef);
        p.write_u64(40, 0x0123456789abcdef);
        p.write_i32(60, -42);
        p.write_i64(72, i64::MIN + 7);
        p.write_f64(80, -3.5);
        assert_eq!(p.read_u8(3), 0xab);
        assert_eq!(p.read_u16(10), 0xbeef);
        assert_eq!(p.read_u32(20), 0xdeadbeef);
        assert_eq!(p.read_u64(40), 0x0123456789abcdef);
        assert_eq!(p.read_i32(60), -42);
        assert_eq!(p.read_i64(72), i64::MIN + 7);
        assert_eq!(p.read_f64(80), -3.5);
    }

    #[test]
    fn unaligned_u64_crosses_words() {
        let p = dev(4096);
        for off in 0..8u64 {
            let addr = 100 + off;
            let v = 0x1122334455667788u64.wrapping_add(off);
            p.write_u64(addr, v);
            assert_eq!(p.read_u64(addr), v, "offset {off}");
        }
    }

    #[test]
    fn adjacent_writes_do_not_clobber() {
        let p = dev(4096);
        p.write_u8(0, 0x11);
        p.write_u8(1, 0x22);
        p.write_u16(2, 0x4433);
        p.write_u32(4, 0x88776655);
        assert_eq!(p.read_u64(0), 0x8877665544332211);
    }

    #[test]
    fn byte_slices_round_trip_unaligned() {
        let p = dev(4096);
        let data: Vec<u8> = (0..255u8).collect();
        p.write_bytes(13, &data);
        let mut out = vec![0u8; data.len()];
        p.read_bytes(13, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn zero_range_works_unaligned() {
        let p = dev(4096);
        let data = vec![0xffu8; 64];
        p.write_bytes(5, &data);
        p.zero_range(9, 41);
        let mut out = vec![0u8; 64];
        p.read_bytes(5, &mut out);
        for (i, b) in out.iter().enumerate() {
            let addr = 5 + i as u64;
            if (9..50).contains(&addr) {
                assert_eq!(*b, 0, "addr {addr}");
            } else {
                assert_eq!(*b, 0xff, "addr {addr}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let p = dev(64);
        p.write_u64(60, 1);
    }

    #[test]
    fn strict_crash_loses_unflushed_writes() {
        let p = dev(4096);
        p.write_u64(0, 77);
        p.pwb(0);
        p.pfence();
        p.write_u64(128, 88); // never flushed
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(0), 77);
        assert_eq!(p.read_u64(128), 0);
    }

    #[test]
    fn pwb_without_fence_is_not_durable_under_strict_policy() {
        let p = dev(4096);
        p.write_u64(0, 1);
        p.pwb(0); // queued, never fenced
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(0), 0);
    }

    #[test]
    fn lenient_crash_keeps_everything() {
        let p = dev(4096);
        p.write_u64(0, 1);
        p.write_u64(512, 2);
        p.crash(&CrashPolicy::lenient()).unwrap();
        assert_eq!(p.read_u64(0), 1);
        assert_eq!(p.read_u64(512), 2);
    }

    #[test]
    fn adversarial_crash_is_deterministic_per_seed() {
        let mk = || {
            let p = dev(64 * 1024);
            for i in 0..100u64 {
                p.write_u64(i * 128, i + 1);
            }
            p.crash(&CrashPolicy::adversarial(42)).unwrap();
            (0..100u64).map(|i| p.read_u64(i * 128)).collect::<Vec<_>>()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        // With p=0.5 over 100 lines, some but not all survive.
        assert!(a.iter().any(|v| *v != 0));
        assert!(a.contains(&0));
    }

    #[test]
    fn fence_persists_whole_line() {
        let p = dev(4096);
        // Two values on the same 64-byte line.
        p.write_u64(192, 5);
        p.write_u64(200, 6);
        p.pwb(192);
        p.pfence();
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(192), 5);
        assert_eq!(p.read_u64(200), 6);
    }

    #[test]
    fn pwb_range_covers_every_line() {
        let p = dev(4096);
        let data = vec![0xabu8; 256];
        p.write_bytes(100, &data);
        p.pwb_range(100, 256);
        p.pfence();
        p.crash(&CrashPolicy::strict()).unwrap();
        let mut out = vec![0u8; 256];
        p.read_bytes(100, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn crash_on_performance_pool_errors() {
        let p = Pmem::new(PmemConfig::perf(4096));
        assert!(matches!(
            p.crash(&CrashPolicy::strict()),
            Err(PmemError::CrashSimRequired)
        ));
    }

    #[test]
    fn fetch_add_and_cas() {
        let p = dev(4096);
        assert_eq!(p.fetch_add_u64(8, 5), 0);
        assert_eq!(p.fetch_add_u64(8, 3), 5);
        assert_eq!(p.read_u64(8), 8);
        assert_eq!(p.cas_u64(8, 8, 100), Ok(8));
        assert_eq!(p.cas_u64(8, 8, 200), Err(100));
    }

    #[test]
    fn stats_count_operations() {
        let p = dev(4096);
        p.reset_stats();
        p.write_u64(0, 1);
        p.read_u64(0);
        p.pwb(0);
        p.pfence();
        p.psync();
        let s = p.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.pwbs, 1);
        assert_eq!(s.pfences, 1);
        assert_eq!(s.psyncs, 1);
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.bytes_read, 8);
    }

    #[test]
    fn drain_all_persists_everything() {
        let p = dev(4096);
        p.write_u64(0, 11);
        p.write_u64(1024, 22);
        p.drain_all();
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(0), 11);
        assert_eq!(p.read_u64(1024), 22);
    }

    #[test]
    fn size_rounds_up_to_line() {
        let p = Pmem::new(PmemConfig::crash_sim(100));
        assert_eq!(p.len(), 128);
    }

    #[test]
    fn rewrite_after_pwb_may_lose_only_newer_data() {
        let p = dev(4096);
        p.write_u64(0, 1);
        p.pwb(0);
        p.pfence(); // 1 is durable
        p.write_u64(0, 2); // newer, unflushed
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(0), 1);
    }

    #[test]
    fn foreign_fence_does_not_persist_unfenced_pwb() {
        // Thread A pwbs without fencing; thread B fences. An sfence orders
        // only the issuing CPU's clwbs, so A's line must NOT be durable.
        // The old global write-pending queue drained A's pwb at B's fence
        // and wrongly guaranteed it.
        let p = dev(4096);
        let pa = Arc::clone(&p);
        std::thread::spawn(move || {
            pa.write_u64(0, 41);
            pa.pwb(0); // queued in A's domain, never fenced by A
        })
        .join()
        .unwrap();
        p.pfence(); // B's fence drains B's (empty) domain only
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(0), 0, "another thread's fence persisted A's un-fenced pwb");
    }

    #[test]
    fn own_fence_persists_own_pwbs_only() {
        let p = dev(4096);
        let pa = Arc::clone(&p);
        std::thread::spawn(move || {
            pa.write_u64(0, 41);
            pa.pwb(0); // never fenced by A
        })
        .join()
        .unwrap();
        p.write_u64(128, 42);
        p.pwb(128);
        p.pfence();
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(0), 0);
        assert_eq!(p.read_u64(128), 42);
    }

    #[test]
    fn pwb_of_pending_line_joins_callers_domain() {
        // A pwbs a line and never fences; B pwbs the same (already
        // pending) line and fences. B's clwb + sfence persists the line on
        // hardware, so it must be durable here too.
        let p = dev(4096);
        let pa = Arc::clone(&p);
        std::thread::spawn(move || {
            pa.write_u64(0, 43);
            pa.pwb(0);
        })
        .join()
        .unwrap();
        p.pwb(0);
        p.pfence();
        p.crash(&CrashPolicy::strict()).unwrap();
        assert_eq!(p.read_u64(0), 43);
    }

    #[test]
    fn foreign_pending_lines_face_the_eviction_coin() {
        // Lenient policy: a line pending in a never-fenced thread's domain
        // may still reach media (in-flight WPQ drain at power loss).
        let p = dev(4096);
        let pa = Arc::clone(&p);
        std::thread::spawn(move || {
            pa.write_u64(0, 44);
            pa.pwb(0);
        })
        .join()
        .unwrap();
        p.crash(&CrashPolicy::lenient()).unwrap();
        assert_eq!(p.read_u64(0), 44);
    }

    #[test]
    fn resync_cache_discards_post_crash_scribbles() {
        let p = dev(4096);
        p.write_u64(0, 7);
        p.pwb(0);
        p.pfence();
        p.crash(&CrashPolicy::strict()).unwrap();
        // Simulate a racing in-flight store landing after the crash
        // rebuilt the cache: resync must roll the cache back to media.
        p.write_u64(0, 999);
        p.write_u64(64, 999);
        p.resync_cache();
        assert_eq!(p.read_u64(0), 7);
        assert_eq!(p.read_u64(64), 0);
    }

    #[test]
    fn concurrent_writers_distinct_lines() {
        let p = dev(64 * 1024);
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let addr = (t * 1000 + i) * 8 % (64 * 1024 - 8);
                        let _ = addr; // distinct ranges per thread below
                        let a = t * 8192 + (i % 1000) * 8;
                        p.write_u64(a, t + 1);
                        p.pwb(a);
                    }
                    p.pfence();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        p.crash(&CrashPolicy::strict()).unwrap();
        for t in 0..8u64 {
            assert_eq!(p.read_u64(t * 8192), t + 1);
        }
    }
}
