//! Fixed-size persistent arrays (§4.3.1).
//!
//! An array stores its length at offset 0 and the elements afterwards.
//! Element accessors go through the mediated [`Proxy`] interface, so the
//! same array is usable from the low-level interface *and* inside
//! failure-atomic blocks.

use jnvm::{Jnvm, JnvmError, PObject, Proxy};

macro_rules! array_common {
    ($name:ident) => {
        impl $name {
            /// Number of elements.
            pub fn len(&self) -> u64 {
                self.proxy.read_u64(0)
            }

            /// True for zero-length arrays.
            pub fn is_empty(&self) -> bool {
                self.len() == 0
            }

            /// The underlying proxy (low-level interface).
            pub fn proxy(&self) -> &Proxy {
                &self.proxy
            }

            /// Flush the whole array (§4.3.1: "methods to flush either an
            /// element, or the array in full").
            pub fn pwb(&self) {
                self.proxy.pwb();
            }

            /// Validate the array (fence-free).
            pub fn validate(&self) {
                self.proxy.validate();
            }

            /// Free the array (`JNVM.free`). Does not free referenced
            /// objects.
            pub fn free(self) {
                let rt = self.proxy.runtime().clone();
                rt.free_addr(self.proxy.addr());
            }

            #[inline]
            #[allow(dead_code)] // not every array type indexes elements
            fn check(&self, i: u64) {
                let n = self.len();
                assert!(i < n, "array index {i} out of bounds (len {n})");
            }
        }
    };
}

/// A persistent array of `i64` (`long[]` replacement).
#[derive(Clone)]
pub struct PLongArray {
    proxy: Proxy,
}

array_common!(PLongArray);

impl PLongArray {
    /// Allocate an array of `len` elements, zero-initialized, flushed and
    /// validated (fence-free).
    pub fn new(rt: &Jnvm, len: u64) -> Result<PLongArray, JnvmError> {
        let proxy = rt.alloc_proxy::<PLongArray>(8 + len * 8)?;
        proxy.write_u64(0, len);
        for i in 0..len {
            proxy.write_u64(8 + i * 8, 0);
        }
        proxy.pwb();
        proxy.validate();
        Ok(PLongArray { proxy })
    }

    /// Element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: u64) -> i64 {
        self.check(i);
        self.proxy.read_i64(8 + i * 8)
    }

    /// Store element `i` (no flush).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&self, i: u64, v: i64) {
        self.check(i);
        self.proxy.write_i64(8 + i * 8, v);
    }

    /// Flush the lines holding element `i`.
    pub fn pwb_element(&self, i: u64) {
        self.proxy.pwb_field(8 + i * 8, 8);
    }
}

impl PObject for PLongArray {
    const CLASS_NAME: &'static str = "jnvm_jpdt.PLongArray";

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        PLongArray {
            proxy: Proxy::open(rt, addr),
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }
}

/// A persistent byte array (`byte[]` replacement, mutable — contrast with
/// the immutable [`crate::PBytes`]).
#[derive(Clone)]
pub struct PByteArray {
    proxy: Proxy,
}

array_common!(PByteArray);

impl PByteArray {
    /// Allocate `len` zeroed bytes, flushed and validated (fence-free).
    pub fn new(rt: &Jnvm, len: u64) -> Result<PByteArray, JnvmError> {
        let proxy = rt.alloc_proxy::<PByteArray>(8 + len)?;
        proxy.write_u64(0, len);
        let zeros = vec![0u8; len as usize];
        proxy.write_bytes(8, &zeros);
        proxy.pwb();
        proxy.validate();
        Ok(PByteArray { proxy })
    }

    /// Copy `data` into the array at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_at(&self, off: u64, data: &[u8]) {
        assert!(off + data.len() as u64 <= self.len(), "byte range out of bounds");
        self.proxy.write_bytes(8 + off, data);
    }

    /// Copy bytes out of the array starting at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_at(&self, off: u64, out: &mut [u8]) {
        assert!(off + out.len() as u64 <= self.len(), "byte range out of bounds");
        self.proxy.read_bytes(8 + off, out);
    }

    /// Flush the lines holding `[off, off+len)`.
    pub fn pwb_range(&self, off: u64, len: u64) {
        self.proxy.pwb_field(8 + off, len);
    }
}

impl PObject for PByteArray {
    const CLASS_NAME: &'static str = "jnvm_jpdt.PByteArray";

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        PByteArray {
            proxy: Proxy::open(rt, addr),
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }
}

/// A persistent array of object references — the backbone of the extensible
/// structures and maps. Cells hold raw persistent addresses (0 = null); the
/// recovery GC traces every cell.
#[derive(Clone)]
pub struct PRefArray {
    proxy: Proxy,
}

array_common!(PRefArray);

impl PRefArray {
    /// Allocate `len` null cells, flushed and validated (fence-free).
    pub fn new(rt: &Jnvm, len: u64) -> Result<PRefArray, JnvmError> {
        let proxy = rt.alloc_proxy::<PRefArray>(8 + len * 8)?;
        proxy.write_u64(0, len);
        for i in 0..len {
            proxy.write_u64(8 + i * 8, 0);
        }
        proxy.pwb();
        proxy.validate();
        Ok(PRefArray { proxy })
    }

    /// Reference in cell `i` (`None` = null).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get_ref(&self, i: u64) -> Option<u64> {
        self.check(i);
        self.proxy.read_ref(8 + i * 8)
    }

    /// Store a reference in cell `i` (no flush, no fence — callers follow
    /// the validation protocol).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_ref(&self, i: u64, r: Option<u64>) {
        self.check(i);
        self.proxy.write_ref(8 + i * 8, r);
    }

    /// Flush the line of cell `i`.
    pub fn pwb_cell(&self, i: u64) {
        self.proxy.pwb_field(8 + i * 8, 8);
    }

    /// Atomic reference update of cell `i` (Figure 6 semantics).
    pub fn update_cell(&self, i: u64, target: Option<u64>) {
        self.check(i);
        let rt = self.proxy.runtime();
        if let Some(t) = target {
            rt.set_valid_addr(t, true);
        }
        rt.pfence();
        self.proxy.write_ref(8 + i * 8, target);
        self.pwb_cell(i);
    }
}

impl PObject for PRefArray {
    const CLASS_NAME: &'static str = "jnvm_jpdt.PRefArray";

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        PRefArray {
            proxy: Proxy::open(rt, addr),
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }

    fn trace_extra(rt: &Jnvm, addr: u64, visit: &mut dyn FnMut(u64)) {
        let chain = jnvm::RawChain::open(rt, addr);
        let len = rt.pmem().read_u64(chain.phys(0));
        for i in 0..len {
            visit(chain.phys(8 + i * 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PString;
    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::sync::Arc;

    fn rt() -> (Arc<Pmem>, Jnvm) {
        let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
        let rt = crate::register_jpdt(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        (pmem, rt)
    }

    #[test]
    fn long_array_round_trip() {
        let (_p, rt) = rt();
        let a = PLongArray::new(&rt, 100).unwrap();
        assert_eq!(a.len(), 100);
        for i in 0..100 {
            a.set(i, (i as i64) * -3);
        }
        for i in 0..100 {
            assert_eq!(a.get(i), (i as i64) * -3);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn long_array_bounds_checked() {
        let (_p, rt) = rt();
        let a = PLongArray::new(&rt, 3).unwrap();
        a.get(3);
    }

    #[test]
    fn byte_array_spans_blocks() {
        let (_p, rt) = rt();
        let a = PByteArray::new(&rt, 1000).unwrap();
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        a.write_at(300, &data);
        let mut out = vec![0u8; 500];
        a.read_at(300, &mut out);
        assert_eq!(out, data);
        let mut pre = [1u8; 10];
        a.read_at(0, &mut pre);
        assert_eq!(pre, [0u8; 10]);
    }

    #[test]
    fn ref_array_traces_and_survives() {
        let (pmem, rt) = rt();
        let arr = PRefArray::new(&rt, 8).unwrap();
        let s = PString::from_str_in(&rt, "element").unwrap();
        arr.update_cell(3, Some(jnvm::PObject::addr(&s)));
        rt.root_put("arr", &arr).unwrap();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let arr2 = rt2.root_get_as::<PRefArray>("arr").unwrap().unwrap();
        let sa = arr2.get_ref(3).expect("cell survives");
        let s2 = rt2.read_pobject::<PString>(sa).unwrap();
        assert_eq!(s2.to_string_lossy(), "element");
        assert_eq!(arr2.get_ref(0), None);
    }

    #[test]
    fn ref_array_dangling_cell_nullified_at_recovery() {
        let (pmem, rt) = rt();
        let arr = PRefArray::new(&rt, 4).unwrap();
        // A reference to a never-validated object.
        let dangling = rt.alloc_proxy::<PLongArray>(16).unwrap();
        arr.set_ref(1, Some(dangling.addr()));
        arr.pwb_cell(1);
        rt.root_put("arr", &arr).unwrap();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, report) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        assert!(report.nullified_refs >= 1);
        let arr2 = rt2.root_get_as::<PRefArray>("arr").unwrap().unwrap();
        assert_eq!(arr2.get_ref(1), None);
    }

    #[test]
    fn arrays_work_inside_fa_blocks() {
        let (_p, rt) = rt();
        let a = PLongArray::new(&rt, 4).unwrap();
        rt.pfence();
        rt.fa(|| {
            a.set(0, 10);
            a.set(1, 20);
            assert_eq!(a.get(0), 10, "read own write in fa block");
        });
        assert_eq!(a.get(0), 10);
        assert_eq!(a.get(1), 20);
    }
}
