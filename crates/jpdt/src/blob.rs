//! Small immutable blobs: [`PString`] and [`PBytes`].
//!
//! Layout: `[length u64][bytes]`. Blobs that fit a pool slot (§4.4) are
//! pool-allocated to avoid internal fragmentation; larger ones get a block
//! chain. Blobs are immutable after construction, which is what makes pool
//! packing safe under failure-atomic blocks (§4.4).

use jnvm::{Jnvm, JnvmError, PObject, RawChain};

/// Internal representation of a blob proxy.
#[derive(Clone)]
enum Repr {
    /// Pool slot: payload starts at `addr + 8`.
    Pooled,
    /// Block chain.
    Chain(RawChain),
}

fn open_repr(rt: &Jnvm, addr: u64) -> Repr {
    if rt.pools().is_pooled_addr(addr) {
        Repr::Pooled
    } else {
        Repr::Chain(RawChain::open(rt, addr))
    }
}

fn blob_alloc<T: PObject>(rt: &Jnvm, data: &[u8]) -> Result<(u64, Repr), JnvmError> {
    let payload = 8 + data.len() as u64;
    if payload <= rt.pools().max_payload() {
        let addr = rt.alloc_pooled::<T>(payload)?;
        let pmem = rt.pmem();
        pmem.write_u64(addr + 8, data.len() as u64);
        pmem.write_bytes(addr + 16, data);
        // Flush the whole object (mini-header included) — fence-free: the
        // creator batches a fence before publication (§3.2.3).
        pmem.pwb_range(addr, 8 + payload);
        rt.set_valid_addr(addr, true);
        Ok((addr, Repr::Pooled))
    } else {
        let proxy = rt.alloc_proxy::<T>(payload)?;
        let chain = proxy.chain().clone();
        let pmem = rt.pmem();
        pmem.write_u64(chain.phys(0), data.len() as u64);
        chain.write_bytes(pmem, 8, data);
        proxy.pwb();
        proxy.validate();
        Ok((proxy.addr(), Repr::Chain(chain)))
    }
}

fn blob_len(rt: &Jnvm, addr: u64, repr: &Repr) -> u64 {
    let pmem = rt.pmem();
    match repr {
        Repr::Pooled => pmem.read_u64(addr + 8),
        Repr::Chain(c) => pmem.read_u64(c.phys(0)),
    }
}

fn blob_read(rt: &Jnvm, addr: u64, repr: &Repr, out: &mut [u8]) {
    let pmem = rt.pmem();
    match repr {
        Repr::Pooled => pmem.read_bytes(addr + 16, out),
        Repr::Chain(c) => c.read_bytes(pmem, 8, out),
    }
}

macro_rules! blob_type {
    ($(#[$meta:meta])* $name:ident, $class:literal) => {
        $(#[$meta])*
        #[derive(Clone)]
        pub struct $name {
            rt: Jnvm,
            addr: u64,
            repr: Repr,
        }

        impl $name {
            /// Create a new blob holding `data`. The object is flushed and
            /// validated, fence-free: issue a `pfence` (directly or through
            /// a publishing structure) before relying on durability.
            pub fn new(rt: &Jnvm, data: &[u8]) -> Result<$name, JnvmError> {
                let (addr, repr) = blob_alloc::<$name>(rt, data)?;
                Ok($name { rt: rt.clone(), addr, repr })
            }

            /// Content length in bytes.
            pub fn len(&self) -> u64 {
                blob_len(&self.rt, self.addr, &self.repr)
            }

            /// True for a zero-length blob.
            pub fn is_empty(&self) -> bool {
                self.len() == 0
            }

            /// Copy the content into a fresh `Vec`.
            pub fn to_vec(&self) -> Vec<u8> {
                let mut out = vec![0u8; self.len() as usize];
                blob_read(&self.rt, self.addr, &self.repr, &mut out);
                out
            }

            /// Copy up to `out.len()` bytes of content into `out`,
            /// returning the number of bytes copied.
            pub fn read_into(&self, out: &mut [u8]) -> usize {
                let n = (self.len() as usize).min(out.len());
                blob_read(&self.rt, self.addr, &self.repr, &mut out[..n]);
                n
            }

            /// Content equality against a byte slice without allocating.
            pub fn eq_bytes(&self, other: &[u8]) -> bool {
                if self.len() as usize != other.len() {
                    return false;
                }
                self.to_vec() == other
            }

            /// Whether this blob is pool-allocated (§4.4).
            pub fn is_pooled(&self) -> bool {
                matches!(self.repr, Repr::Pooled)
            }

            /// Free the blob (`JNVM.free`).
            pub fn free(self) {
                self.rt.clone().free_addr(self.addr);
            }
        }

        impl PObject for $name {
            const CLASS_NAME: &'static str = $class;

            fn resurrect(rt: &Jnvm, addr: u64) -> Self {
                $name {
                    rt: rt.clone(),
                    addr,
                    repr: open_repr(rt, addr),
                }
            }

            fn addr(&self) -> u64 {
                self.addr
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("addr", &self.addr)
                    .field("len", &self.len())
                    .finish()
            }
        }
    };
}

blob_type!(
    /// An immutable persistent byte string (`PString` in the paper's
    /// Figure 3 — the drop-in replacement for `java.lang.String`).
    PString,
    "jnvm_jpdt.PString"
);

blob_type!(
    /// An immutable persistent byte array (the replacement for `byte[]`,
    /// used for YCSB field values).
    PBytes,
    "jnvm_jpdt.PBytes"
);

impl PString {
    /// Create from a `&str`.
    pub fn from_str_in(rt: &Jnvm, s: &str) -> Result<PString, JnvmError> {
        PString::new(rt, s.as_bytes())
    }

    /// Copy the content into a `String` (lossy for non-UTF-8 content).
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.to_vec()).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::sync::Arc;

    fn rt() -> (Arc<Pmem>, Jnvm) {
        let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
        let rt = crate::register_jpdt(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        (pmem, rt)
    }

    #[test]
    fn small_strings_are_pooled() {
        let (_p, rt) = rt();
        let s = PString::from_str_in(&rt, "Hello, NVMM!").unwrap();
        assert!(s.is_pooled());
        assert_eq!(s.len(), 12);
        assert_eq!(s.to_string_lossy(), "Hello, NVMM!");
        assert!(s.eq_bytes(b"Hello, NVMM!"));
        assert!(!s.eq_bytes(b"Hello"));
    }

    #[test]
    fn large_blobs_use_chains() {
        let (_p, rt) = rt();
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 253) as u8).collect();
        let b = PBytes::new(&rt, &data).unwrap();
        assert!(!b.is_pooled());
        assert_eq!(b.to_vec(), data);
    }

    #[test]
    fn empty_blob() {
        let (_p, rt) = rt();
        let b = PBytes::new(&rt, &[]).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<u8>::new());
    }

    #[test]
    fn boundary_sizes_round_trip() {
        let (_p, rt) = rt();
        // Around the pool/chain boundary (max pooled payload 232 => 224
        // data bytes) and around block payload multiples.
        for n in [1usize, 7, 8, 223, 224, 225, 232, 240, 247, 248, 249, 495, 496, 497] {
            let data: Vec<u8> = (0..n).map(|i| (i * 7 % 251) as u8).collect();
            let b = PBytes::new(&rt, &data).unwrap();
            assert_eq!(b.to_vec(), data, "size {n}");
        }
    }

    #[test]
    fn blob_survives_crash_when_reachable() {
        let (pmem, rt) = rt();
        let s = PString::from_str_in(&rt, "durable").unwrap();
        rt.root_put("s", &s).unwrap();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let s2 = rt2.root_get_as::<PString>("s").unwrap().unwrap();
        assert_eq!(s2.to_string_lossy(), "durable");
    }

    #[test]
    fn unreachable_pooled_blob_is_collected() {
        let (pmem, rt) = rt();
        let keep = PString::from_str_in(&rt, "keep").unwrap();
        rt.root_put("keep", &keep).unwrap();
        let leak = PString::from_str_in(&rt, "leak").unwrap();
        rt.pmem().pfence();
        let leak_addr = leak.addr();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        // The leaked slot was persistently cleared by pool rebuild.
        assert_eq!(rt2.pmem().read_u64(leak_addr), 0);
        assert!(rt2.root_get_as::<PString>("keep").unwrap().is_some());
    }

    #[test]
    fn read_into_truncates() {
        let (_p, rt) = rt();
        let s = PString::from_str_in(&rt, "abcdef").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(s.read_into(&mut buf), 4);
        assert_eq!(&buf, b"abcd");
    }

    #[test]
    fn free_invalidates() {
        let (_p, rt) = rt();
        let s = PString::from_str_in(&rt, "bye").unwrap();
        let addr = s.addr();
        assert!(rt.is_valid_addr(addr));
        s.free();
        assert!(!rt.is_valid_addr(addr));
    }
}
