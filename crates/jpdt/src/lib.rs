//! # jnvm-jpdt — the J-PDT persistent data type library (§4.3)
//!
//! Hand-crafted, crash-consistent persistent data types built **directly on
//! the low-level J-NVM interface** — no failure-atomic blocks. Internally
//! every mutation of a structure boils down to a single reference write in
//! NVMM, so the persistent representation is consistent at every instant;
//! fences are placed only where the paper's validation protocol requires
//! them.
//!
//! The map/set family follows the paper's decoupling pattern (§4.3.2): the
//! *content* (an extensible persistent array of entry references) lives in
//! NVMM, while the *logic* lives in a volatile **mirror** — a `HashMap`,
//! `BTreeMap` or skip list mapping keys to array cells, rebuilt at
//! resurrection. Three proxy-caching variants are offered: `Base`,
//! `Cached` and `Eager` (§4.3.2).
//!
//! Types:
//!
//! * [`PString`], [`PBytes`] — small immutable blobs (pool-allocated when
//!   they fit, block chains otherwise; §4.4),
//! * [`PLongArray`], [`PByteArray`], [`PRefArray`] — fixed-size arrays,
//! * [`PRefVec`] — the extensible array (`ArrayList` drop-in, §4.3.1),
//! * [`PQueue`] — a persistent FIFO ring queue,
//! * [`PStringHashMap`] / [`PStringTreeMap`] / [`PStringSkipMap`] and the
//!   `i64`-keyed variants — persistent maps,
//! * [`PStringSet`], [`PI64Set`] — sets as self-referencing maps,
//! * [`SkipListMap`] — the volatile skip list used as a mirror (and as the
//!   volatile baseline in Figure 12).
//!
//! Call [`register_jpdt`] on your [`jnvm::JnvmBuilder`] to register every
//! J-PDT class.

mod blob;
mod parray;
#[cfg(test)]
mod proptests;
mod pmap;
mod pqueue;
mod pvec;
mod register;
mod skiplist;

pub use blob::{PBytes, PString};
pub use parray::{PByteArray, PLongArray, PRefArray};
pub use pmap::{
    CacheMode, HashMirror, MapEntry, Mirror, PI64HashMap, PI64Set, PI64SkipMap, PI64TreeMap,
    PKey, PMapCore, PStringHashMap, PValue, PStringSet, PStringSkipMap, PStringTreeMap, SkipMirror,
    TreeMirror,
};
pub use pqueue::PQueue;
pub use pvec::PRefVec;
pub use register::register_jpdt;
pub use skiplist::SkipListMap;
