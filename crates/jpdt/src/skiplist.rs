//! A volatile skip-list map.
//!
//! Used (a) as the mirror of the persistent skip-list map and (b) as the
//! volatile `ConcurrentSkipListMap` stand-in of Figure 12. Arena-based
//! (indices instead of pointers) so it stays entirely in safe Rust.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const MAX_LEVEL: usize = 24;
const NIL: usize = usize::MAX;

struct SkipNode<K, V> {
    key: K,
    value: V,
    /// next[l] = arena index of the successor at level l.
    next: Vec<usize>,
}

/// A volatile ordered map backed by a skip list.
pub struct SkipListMap<K, V> {
    arena: Vec<SkipNode<K, V>>,
    /// Recycled arena slots.
    free: Vec<usize>,
    /// head[l] = first node at level l.
    head: [usize; MAX_LEVEL],
    level: usize,
    len: usize,
    rng: SmallRng,
}

impl<K: Ord, V> Default for SkipListMap<K, V> {
    fn default() -> Self {
        SkipListMap::new()
    }
}

impl<K: Ord, V> SkipListMap<K, V> {
    /// An empty map (deterministic tower heights, seeded per instance).
    pub fn new() -> SkipListMap<K, V> {
        SkipListMap {
            arena: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            len: 0,
            rng: SmallRng::seed_from_u64(0x5eed_cafe),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn random_level(&mut self) -> usize {
        let mut lvl = 1;
        while lvl < MAX_LEVEL && (self.rng.random::<u32>() & 3) == 0 {
            lvl += 1;
        }
        lvl
    }

    /// For each level `l`, the index of the last node with key < `key`
    /// (NIL meaning "head"). Returns the predecessor array.
    fn predecessors(&self, key: &K) -> [usize; MAX_LEVEL] {
        let mut preds = [NIL; MAX_LEVEL];
        let mut cur = NIL; // head
        for l in (0..self.level).rev() {
            loop {
                let next = if cur == NIL {
                    self.head[l]
                } else {
                    self.arena[cur].next[l]
                };
                if next != NIL && self.arena[next].key < *key {
                    cur = next;
                } else {
                    break;
                }
            }
            preds[l] = cur;
        }
        preds
    }

    fn next_of(&self, node: usize, level: usize) -> usize {
        if node == NIL {
            self.head[level]
        } else {
            self.arena[node].next[level]
        }
    }

    fn set_next(&mut self, node: usize, level: usize, to: usize) {
        if node == NIL {
            self.head[level] = to;
        } else {
            self.arena[node].next[level] = to;
        }
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let preds = self.predecessors(&key);
        let candidate = self.next_of(preds[0], 0);
        if candidate != NIL && self.arena[candidate].key == key {
            return Some(std::mem::replace(&mut self.arena[candidate].value, value));
        }
        let lvl = self.random_level();
        if lvl > self.level {
            self.level = lvl;
        }
        let node = SkipNode {
            key,
            value,
            next: vec![NIL; lvl],
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena[i] = node;
                i
            }
            None => {
                self.arena.push(node);
                self.arena.len() - 1
            }
        };
        for (l, &pred) in preds.iter().enumerate().take(lvl) {
            let succ = self.next_of(pred, l);
            self.arena[idx].next[l] = succ;
            self.set_next(pred, l, idx);
        }
        self.len += 1;
        None
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let preds = self.predecessors(key);
        let candidate = self.next_of(preds[0], 0);
        if candidate != NIL && self.arena[candidate].key == *key {
            Some(&self.arena[candidate].value)
        } else {
            None
        }
    }

    /// Remove `key`; returns whether it was present. (The slot's value
    /// stays parked in the arena until reuse; [`SkipListMap::remove_cloned`]
    /// retrieves it for cloneable values.)
    pub fn remove(&mut self, key: &K) -> bool {
        let preds = self.predecessors(key);
        let target = self.next_of(preds[0], 0);
        if target == NIL || self.arena[target].key != *key {
            return false;
        }
        let height = self.arena[target].next.len();
        for (l, &pred) in preds.iter().enumerate().take(height) {
            let succ = self.arena[target].next[l];
            self.set_next(pred, l, succ);
        }
        self.arena[target].next.clear();
        self.len -= 1;
        self.free.push(target);
        true
    }

    /// In-order iteration over `(key, value)`.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let mut cur = self.head[0];
        while cur != NIL {
            let node = &self.arena[cur];
            f(&node.key, &node.value);
            cur = node.next[0];
        }
    }

    /// Keys in order, up to `limit`.
    pub fn first_keys(&self, limit: usize) -> Vec<&K> {
        let mut out = Vec::new();
        let mut cur = self.head[0];
        while cur != NIL && out.len() < limit {
            out.push(&self.arena[cur].key);
            cur = self.arena[cur].next[0];
        }
        out
    }
}

impl<K: Ord, V: Clone> SkipListMap<K, V> {
    /// Remove `key` and return a clone of its value. (The arena keeps the
    /// slot until reuse; cloning sidesteps moving out of the arena.)
    pub fn remove_cloned(&mut self, key: &K) -> Option<V> {
        let preds = self.predecessors(key);
        let target = self.next_of(preds[0], 0);
        if target == NIL || self.arena[target].key != *key {
            return None;
        }
        let value = self.arena[target].value.clone();
        self.remove(key);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove() {
        let mut m = SkipListMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(9, "nine"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&5), Some(&"five"));
        assert_eq!(m.get(&2), None);
        assert_eq!(m.insert(5, "FIVE"), Some("five"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.remove_cloned(&5), Some("FIVE"));
        assert_eq!(m.get(&5), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove_cloned(&5), None);
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = SkipListMap::new();
        for k in [9, 3, 7, 1, 5, 8, 2, 6, 4, 0] {
            m.insert(k, k * 10);
        }
        let mut seen = Vec::new();
        m.for_each(|k, v| {
            seen.push((*k, *v));
        });
        assert_eq!(seen, (0..10).map(|k| (k, k * 10)).collect::<Vec<_>>());
        assert_eq!(m.first_keys(3), vec![&0, &1, &2]);
    }

    #[test]
    fn agrees_with_btreemap_under_random_ops() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sl: SkipListMap<u32, u32> = SkipListMap::new();
        let mut bt: BTreeMap<u32, u32> = BTreeMap::new();
        for _ in 0..5000 {
            let k = rng.random_range(0..500u32);
            match rng.random_range(0..3u8) {
                0 => {
                    let v = rng.random::<u32>();
                    assert_eq!(sl.insert(k, v), bt.insert(k, v));
                }
                1 => {
                    assert_eq!(sl.get(&k).copied(), bt.get(&k).copied());
                }
                _ => {
                    assert_eq!(sl.remove_cloned(&k), bt.remove(&k));
                }
            }
            assert_eq!(sl.len(), bt.len());
        }
        let mut pairs = Vec::new();
        sl.for_each(|k, v| pairs.push((*k, *v)));
        assert_eq!(pairs, bt.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut m = SkipListMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        for k in 0..100 {
            m.remove_cloned(&k);
        }
        assert!(m.is_empty());
        for k in 0..100 {
            m.insert(k, k + 1);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42), Some(&43));
    }
}
