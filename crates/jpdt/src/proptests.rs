//! Property tests: persistent maps against a volatile reference model,
//! across crashes.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use jnvm::{Jnvm, JnvmBuilder, PObject};
use jnvm_heap::HeapConfig;
use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};

use crate::{register_jpdt, PBytes, PRefVec, PStringHashMap};

#[derive(Debug, Clone)]
enum MapOp {
    Put(u8, Vec<u8>),
    Remove(u8),
    Get(u8),
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..40))
                .prop_map(|(k, v)| MapOp::Put(k, v)),
            any::<u8>().prop_map(MapOp::Remove),
            any::<u8>().prop_map(MapOp::Get),
        ],
        1..60,
    )
}

fn fresh() -> (Arc<Pmem>, Jnvm) {
    let pmem = Pmem::new(PmemConfig::crash_sim(32 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    (pmem, rt)
}

fn blob_of(rt: &Jnvm, addr: u64) -> Vec<u8> {
    PBytes::resurrect(rt, addr).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The persistent hash map agrees with `std::HashMap` on arbitrary
    /// op sequences, and still agrees after an adversarial crash.
    #[test]
    fn phashmap_matches_model_across_crash(ops in map_ops(), seed in any::<u64>()) {
        let (pmem, rt) = fresh();
        let map = PStringHashMap::new(&rt).unwrap();
        rt.root_put("m", &map).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                MapOp::Put(k, v) => {
                    let key = format!("k{k}");
                    let blob = PBytes::new(&rt, v).unwrap();
                    if let Some(old) = map.put(key.clone(), blob.addr()).unwrap() {
                        rt.free_addr(old);
                    }
                    model.insert(key, v.clone());
                }
                MapOp::Remove(k) => {
                    let key = format!("k{k}");
                    let got = map.remove(&key);
                    let want = model.remove(&key);
                    prop_assert_eq!(got.is_some(), want.is_some());
                    if let Some(addr) = got {
                        prop_assert_eq!(blob_of(&rt, addr), want.unwrap());
                        rt.free_addr(addr);
                        rt.pfence();
                    }
                }
                MapOp::Get(k) => {
                    let key = format!("k{k}");
                    let got = map.get(&key).map(|a| blob_of(&rt, a));
                    prop_assert_eq!(got.as_ref(), model.get(&key));
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
        // Crash and compare the recovered map against the model.
        pmem.crash(&CrashPolicy { evict_probability: 0.5, seed }).unwrap();
        let (rt2, _) = register_jpdt(JnvmBuilder::new()).open(Arc::clone(&pmem)).unwrap();
        let map2 = rt2.root_get_as::<PStringHashMap>("m").unwrap().unwrap();
        prop_assert_eq!(map2.len(), model.len());
        for (k, v) in &model {
            let addr = map2.get(k);
            prop_assert!(addr.is_some(), "{} lost", k);
            prop_assert_eq!(&blob_of(&rt2, addr.unwrap()), v);
        }
    }

    /// PRefVec push/pop agrees with a Vec model across a strict crash.
    #[test]
    fn prefvec_matches_model(pushes in 1usize..50, pops in 0usize..60) {
        let (pmem, rt) = fresh();
        let vec = PRefVec::new(&rt, 2).unwrap();
        rt.root_put("v", &vec).unwrap();
        let mut model: Vec<Vec<u8>> = Vec::new();
        for i in 0..pushes {
            let content = vec![i as u8; i % 30 + 1];
            let blob = PBytes::new(&rt, &content).unwrap();
            vec.push(blob.addr()).unwrap();
            model.push(content);
        }
        for _ in 0..pops.min(pushes) {
            let got = vec.pop();
            let want = model.pop();
            prop_assert_eq!(got.is_some(), want.is_some());
            if let Some(a) = got {
                prop_assert_eq!(blob_of(&rt, a), want.unwrap());
                rt.free_addr(a);
            }
        }
        rt.pfence();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = register_jpdt(JnvmBuilder::new()).open(Arc::clone(&pmem)).unwrap();
        let vec2 = rt2.root_get_as::<PRefVec>("v").unwrap().unwrap();
        prop_assert_eq!(vec2.len() as usize, model.len());
        for (i, want) in model.iter().enumerate() {
            let a = vec2.get(i as u64).unwrap();
            prop_assert_eq!(&blob_of(&rt2, a), want);
        }
    }

    /// Blobs of any content and size round-trip, pooled or chained.
    #[test]
    fn blob_round_trip(content in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let (_p, rt) = fresh();
        let b = PBytes::new(&rt, &content).unwrap();
        prop_assert_eq!(b.len() as usize, content.len());
        prop_assert_eq!(b.to_vec(), content);
    }
}
