//! Registration of every J-PDT class on a [`JnvmBuilder`].

use jnvm::JnvmBuilder;

use crate::blob::{PBytes, PString};
use crate::parray::{PByteArray, PLongArray, PRefArray};
use crate::pmap::{
    MapEntry, PI64HashMap, PI64Set, PI64SkipMap, PI64TreeMap, PStringHashMap, PStringSet,
    PStringSkipMap, PStringTreeMap,
};
use crate::pqueue::PQueue;
use crate::pvec::PRefVec;

/// Register every J-PDT persistent class. Call this on the builder of any
/// pool that stores J-PDT structures (both at create and open time).
pub fn register_jpdt(b: JnvmBuilder) -> JnvmBuilder {
    b.register::<PString>()
        .register::<PBytes>()
        .register::<PLongArray>()
        .register::<PByteArray>()
        .register::<PRefArray>()
        .register::<PRefVec>()
        .register::<PQueue>()
        .register::<MapEntry<String>>()
        .register::<MapEntry<i64>>()
        .register::<PStringHashMap>()
        .register::<PStringTreeMap>()
        .register::<PStringSkipMap>()
        .register::<PI64HashMap>()
        .register::<PI64TreeMap>()
        .register::<PI64SkipMap>()
        .register::<PStringSet>()
        .register::<PI64Set>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheMode, PBytes, PStringHashMap, PStringSet, PStringTreeMap};
    use jnvm::{JnvmBuilder, PObject};
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::sync::Arc;

    fn rt(bytes: u64) -> (Arc<Pmem>, jnvm::Jnvm) {
        let pmem = Pmem::new(PmemConfig::crash_sim(bytes));
        let rt = register_jpdt(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        (pmem, rt)
    }

    fn reopen(pmem: &Arc<Pmem>) -> jnvm::Jnvm {
        register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(pmem))
            .unwrap()
            .0
    }

    #[test]
    fn hashmap_put_get_remove() {
        let (_p, rt) = rt(8 << 20);
        let m = PStringHashMap::new(&rt).unwrap();
        assert!(m.is_empty());
        let v1 = PBytes::new(&rt, b"value-1").unwrap();
        let v2 = PBytes::new(&rt, b"value-2").unwrap();
        assert_eq!(m.put("k1".into(), v1.addr()).unwrap(), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains(&"k1".to_string()));
        assert_eq!(m.get(&"k1".to_string()), Some(v1.addr()));
        // Replace returns the old value; caller frees it.
        let old = m.put("k1".into(), v2.addr()).unwrap();
        assert_eq!(old, Some(v1.addr()));
        rt.free_addr(old.unwrap());
        assert_eq!(m.get(&"k1".to_string()), Some(v2.addr()));
        assert_eq!(m.remove(&"k1".to_string()), Some(v2.addr()));
        assert!(m.is_empty());
        assert_eq!(m.remove(&"k1".to_string()), None);
    }

    #[test]
    fn map_grows_beyond_initial_capacity() {
        let (_p, rt) = rt(32 << 20);
        let m = PStringHashMap::new(&rt).unwrap();
        for i in 0..300 {
            let v = PBytes::new(&rt, format!("v{i}").as_bytes()).unwrap();
            m.put(format!("key-{i}"), v.addr()).unwrap();
        }
        assert_eq!(m.len(), 300);
        for i in 0..300 {
            let v = m.get(&format!("key-{i}")).expect("present after growth");
            let b = rt.read_pobject::<PBytes>(v).unwrap();
            assert_eq!(b.to_vec(), format!("v{i}").into_bytes());
        }
    }

    #[test]
    fn map_survives_crash_and_resurrects_mirror() {
        let (pmem, rt) = rt(32 << 20);
        let m = PStringHashMap::new(&rt).unwrap();
        rt.root_put("map", &m).unwrap();
        for i in 0..100 {
            let v = PBytes::new(&rt, format!("payload-{i}").as_bytes()).unwrap();
            m.put(format!("key-{i}"), v.addr()).unwrap();
        }
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let rt2 = reopen(&pmem);
        let m2 = rt2.root_get_as::<PStringHashMap>("map").unwrap().unwrap();
        assert_eq!(m2.len(), 100);
        for i in 0..100 {
            let v = m2.get(&format!("key-{i}")).expect("key survived");
            let b = rt2.read_pobject::<PBytes>(v).unwrap();
            assert_eq!(b.to_vec(), format!("payload-{i}").into_bytes());
        }
    }

    #[test]
    fn removed_values_are_callers_to_free() {
        let (pmem, rt) = rt(8 << 20);
        let m = PStringHashMap::new(&rt).unwrap();
        rt.root_put("map", &m).unwrap();
        let v = PBytes::new(&rt, b"gone").unwrap();
        m.put("k".into(), v.addr()).unwrap();
        let got = m.remove(&"k".to_string()).unwrap();
        rt.free_addr(got);
        rt.pmem().pfence();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let rt2 = reopen(&pmem);
        let m2 = rt2.root_get_as::<PStringHashMap>("map").unwrap().unwrap();
        assert_eq!(m2.len(), 0);
    }

    #[test]
    fn treemap_orders_keys() {
        let (_p, rt) = rt(8 << 20);
        let m = PStringTreeMap::new(&rt).unwrap();
        for k in ["pear", "apple", "mango", "fig"] {
            let v = PBytes::new(&rt, k.as_bytes()).unwrap();
            m.put(k.into(), v.addr()).unwrap();
        }
        assert_eq!(m.keys(10), vec!["apple", "fig", "mango", "pear"]);
    }

    #[test]
    fn skipmap_orders_keys_and_survives() {
        let (pmem, rt) = rt(8 << 20);
        let m = crate::PI64SkipMap::new(&rt).unwrap();
        rt.root_put("sk", &m).unwrap();
        for k in [50i64, 10, 30, 20, 40] {
            let v = PBytes::new(&rt, &k.to_le_bytes()).unwrap();
            m.put(k, v.addr()).unwrap();
        }
        assert_eq!(m.keys(10), vec![10, 20, 30, 40, 50]);
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let rt2 = reopen(&pmem);
        let m2 = rt2.root_get_as::<crate::PI64SkipMap>("sk").unwrap().unwrap();
        assert_eq!(m2.keys(10), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn cached_and_eager_modes_serve_hits() {
        let (pmem, rt) = rt(8 << 20);
        for mode in [CacheMode::Base, CacheMode::Cached, CacheMode::Eager] {
            let m = PStringHashMap::with_mode(&rt, mode).unwrap();
            let v = PBytes::new(&rt, b"cached").unwrap();
            m.put("k".into(), v.addr()).unwrap();
            let p1 = m.get_value(&"k".to_string()).unwrap();
            let p2 = m.get_value(&"k".to_string()).unwrap();
            assert_eq!(p1.addr(), v.addr());
            assert_eq!(p2.addr(), v.addr());
        }
        // Eager resurrection pre-populates the cache.
        let m = PStringHashMap::new(&rt).unwrap();
        rt.root_put("em", &m).unwrap();
        let v = PBytes::new(&rt, b"eager").unwrap();
        m.put("k".into(), v.addr()).unwrap();
        pmem.drain_all();
        let any = rt.root_get("em").unwrap();
        let m2 = PStringHashMap::open_with_mode(&rt, any.addr(), CacheMode::Eager);
        assert_eq!(m2.get_value(&"k".to_string()).unwrap().addr(), v.addr());
    }

    #[test]
    fn set_semantics() {
        let (pmem, rt) = rt(8 << 20);
        let s = PStringSet::new(&rt).unwrap();
        rt.root_put("set", &s).unwrap();
        assert!(s.insert("a".into()).unwrap());
        assert!(!s.insert("a".into()).unwrap(), "duplicate insert rejected");
        assert!(s.insert("b".into()).unwrap());
        assert!(s.contains(&"a".to_string()));
        assert_eq!(s.len(), 2);
        assert!(s.remove(&"a".to_string()));
        assert!(!s.remove(&"a".to_string()));
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let rt2 = reopen(&pmem);
        let s2 = rt2.root_get_as::<PStringSet>("set").unwrap().unwrap();
        assert_eq!(s2.len(), 1);
        assert!(s2.contains(&"b".to_string()));
    }

    #[test]
    fn map_inside_fa_block_is_atomic() {
        let (_p, rt) = rt(8 << 20);
        let m = PStringHashMap::new(&rt).unwrap();
        rt.root_put("m", &m).unwrap();
        rt.fa(|| {
            let v = PBytes::new(&rt, b"fa-value").unwrap();
            m.put("k".into(), v.addr()).unwrap();
        });
        let v = m.get(&"k".to_string()).unwrap();
        assert_eq!(rt.read_pobject::<PBytes>(v).unwrap().to_vec(), b"fa-value");
    }

    #[test]
    fn i64_maps_work() {
        let (_p, rt) = rt(8 << 20);
        let m = crate::PI64HashMap::new(&rt).unwrap();
        for k in 0..50i64 {
            let v = PBytes::new(&rt, &k.to_le_bytes()).unwrap();
            m.put(k, v.addr()).unwrap();
        }
        for k in 0..50i64 {
            let v = m.get(&k).unwrap();
            let b = rt.read_pobject::<PBytes>(v).unwrap();
            assert_eq!(b.to_vec(), k.to_le_bytes());
        }
        assert!(m.remove(&25).is_some());
        assert!(!m.contains(&25));
        assert_eq!(m.len(), 49);
    }

    #[test]
    fn entry_and_key_objects_are_freed_on_remove() {
        let (_p, rt) = rt(8 << 20);
        let m = PStringHashMap::new(&rt).unwrap();
        let before = rt.heap().stats();
        let v = PBytes::new(&rt, b"v").unwrap();
        m.put("some-key".into(), v.addr()).unwrap();
        let got = m.remove(&"some-key".to_string()).unwrap();
        rt.free_addr(got);
        let after = rt.heap().stats();
        // The put/remove cycle allocates the entry block plus (on first
        // use) one pool block hosting the PString/PBytes slots. The entry
        // block is freed; pool blocks are retained for slot reuse.
        assert_eq!(after.blocks_freed - before.blocks_freed, 1);
        assert_eq!(after.blocks_allocated - before.blocks_allocated, 2);
        assert!(rt.pools().free_slots() as usize > 0);
    }
}
