//! A persistent FIFO queue — a J-PDT type built on the same
//! single-write-per-mutation discipline as the maps (§4.3).
//!
//! Layout: the queue object is `[array ref][head u64][tail u64]`; storage
//! is a [`PRefArray`] used as a ring buffer. `head` and `tail` are
//! monotonically increasing logical indices (cell = index % capacity), so
//! each enqueue/dequeue publishes with **one** counter write:
//!
//! * enqueue: write the cell, flush, fence, bump `tail` (the publish),
//! * dequeue: read the cell, bump `head` (the publish), fence, null the
//!   cell (so the recovery GC cannot keep the element alive).
//!
//! A crash between the cell write and the counter write leaves the
//! structure exactly as before the operation — all-or-nothing without
//! failure-atomic blocks. Growth copies into a double-size ring and
//! publishes it with the atomic-update protocol (§4.1.6).

use parking_lot::Mutex;

use jnvm::{Jnvm, JnvmError, PObject, Proxy};

use crate::parray::PRefArray;

const OFF_ARRAY: u64 = 0;
const OFF_HEAD: u64 = 8;
const OFF_TAIL: u64 = 16;

/// A persistent FIFO queue of object references.
pub struct PQueue {
    proxy: Proxy,
    ring: Mutex<PRefArray>,
}

impl PQueue {
    /// Create an empty queue with the given initial capacity (min 4),
    /// validated and fenced.
    pub fn new(rt: &Jnvm, capacity: u64) -> Result<PQueue, JnvmError> {
        let ring = PRefArray::new(rt, capacity.max(4))?;
        let proxy = rt.alloc_proxy::<PQueue>(24)?;
        proxy.write_ref(OFF_ARRAY, Some(ring.addr()));
        proxy.write_u64(OFF_HEAD, 0);
        proxy.write_u64(OFF_TAIL, 0);
        proxy.pwb();
        proxy.validate();
        rt.pfence();
        Ok(PQueue {
            proxy,
            ring: Mutex::new(ring),
        })
    }

    /// Number of queued elements.
    pub fn len(&self) -> u64 {
        self.proxy.read_u64(OFF_TAIL) - self.proxy.read_u64(OFF_HEAD)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> u64 {
        self.ring.lock().len()
    }

    /// Append a reference at the tail.
    pub fn enqueue(&self, target: u64) -> Result<(), JnvmError> {
        let rt = self.proxy.runtime().clone();
        let mut ring = self.ring.lock();
        let head = self.proxy.read_u64(OFF_HEAD);
        let tail = self.proxy.read_u64(OFF_TAIL);
        if tail - head == ring.len() {
            // Grow: unroll the ring into a double-size array starting at
            // cell (head % new_cap), publish atomically.
            let old_cap = ring.len();
            let bigger = PRefArray::new(&rt, old_cap * 2)?;
            for i in 0..old_cap {
                let idx = head + i;
                bigger.set_ref(idx % (old_cap * 2), ring.get_ref(idx % old_cap));
            }
            bigger.pwb();
            rt.set_valid_addr(bigger.addr(), true);
            rt.pfence();
            self.proxy.write_ref(OFF_ARRAY, Some(bigger.addr()));
            self.proxy.pwb_field(OFF_ARRAY, 8);
            rt.pfence();
            let old = std::mem::replace(&mut *ring, bigger);
            old.free();
        }
        rt.set_valid_addr(target, true);
        let cell = tail % ring.len();
        ring.set_ref(cell, Some(target));
        ring.pwb_cell(cell);
        rt.pfence();
        self.proxy.write_u64(OFF_TAIL, tail + 1); // the publish
        self.proxy.pwb_field(OFF_TAIL, 8);
        rt.pfence();
        self.proxy.ordering_point("pqueue-publish", OFF_TAIL, 8);
        Ok(())
    }

    /// Remove and return the head reference (ownership passes to the
    /// caller — deletion stays explicit).
    pub fn dequeue(&self) -> Option<u64> {
        let rt = self.proxy.runtime().clone();
        let ring = self.ring.lock();
        let head = self.proxy.read_u64(OFF_HEAD);
        let tail = self.proxy.read_u64(OFF_TAIL);
        if head == tail {
            return None;
        }
        let cell = head % ring.len();
        let v = ring.get_ref(cell);
        self.proxy.write_u64(OFF_HEAD, head + 1); // the publish
        self.proxy.pwb_field(OFF_HEAD, 8);
        rt.pfence();
        self.proxy.ordering_point("pqueue-consume", OFF_HEAD, 8);
        // Unreachable garbage must not be kept alive by the stale cell.
        ring.set_ref(cell, None);
        ring.pwb_cell(cell);
        v
    }

    /// Head reference without removing it.
    pub fn peek(&self) -> Option<u64> {
        let ring = self.ring.lock();
        let head = self.proxy.read_u64(OFF_HEAD);
        if head == self.proxy.read_u64(OFF_TAIL) {
            return None;
        }
        ring.get_ref(head % ring.len())
    }

    /// Iterate `(logical index, reference)` head to tail.
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        let ring = self.ring.lock();
        let head = self.proxy.read_u64(OFF_HEAD);
        let tail = self.proxy.read_u64(OFF_TAIL);
        for i in head..tail {
            if let Some(r) = ring.get_ref(i % ring.len()) {
                f(i - head, r);
            }
        }
    }

    /// Free the queue and its ring (not the referenced objects).
    pub fn free(self) {
        let rt = self.proxy.runtime().clone();
        self.ring.into_inner().free();
        rt.free_addr(self.proxy.addr());
    }
}

impl PObject for PQueue {
    const CLASS_NAME: &'static str = "jnvm_jpdt.PQueue";
    const REF_OFFSETS: &'static [u64] = &[OFF_ARRAY];

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        let proxy = Proxy::open(rt, addr);
        let ring_addr = proxy.read_ref(OFF_ARRAY).expect("queue always has a ring");
        PQueue {
            ring: Mutex::new(PRefArray::resurrect(rt, ring_addr)),
            proxy,
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }
}

impl std::fmt::Debug for PQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PQueue")
            .field("addr", &self.proxy.addr())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PString;
    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::collections::VecDeque;
    use std::sync::Arc;

    fn rt() -> (Arc<Pmem>, Jnvm) {
        let pmem = Pmem::new(PmemConfig::crash_sim(16 << 20));
        let rt = crate::register_jpdt(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        (pmem, rt)
    }

    #[test]
    fn fifo_order() {
        let (_p, rt) = rt();
        let q = PQueue::new(&rt, 4).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
        let items: Vec<PString> = (0..10)
            .map(|i| PString::from_str_in(&rt, &format!("item-{i}")).unwrap())
            .collect();
        for it in &items {
            q.enqueue(it.addr()).unwrap();
        }
        assert_eq!(q.len(), 10);
        assert!(q.capacity() >= 10, "ring grew");
        assert_eq!(q.peek(), Some(items[0].addr()));
        for it in &items {
            assert_eq!(q.dequeue(), Some(it.addr()));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn ring_wraps_around() {
        let (_p, rt) = rt();
        let q = PQueue::new(&rt, 4).unwrap();
        let mut model: VecDeque<u64> = VecDeque::new();
        // Interleave so head/tail wrap the 4-cell ring many times without
        // growing.
        for round in 0..40u64 {
            let s = PString::from_str_in(&rt, &format!("r{round}")).unwrap();
            q.enqueue(s.addr()).unwrap();
            model.push_back(s.addr());
            if round % 2 == 1 {
                assert_eq!(q.dequeue(), model.pop_front());
                assert_eq!(q.dequeue(), model.pop_front());
            }
        }
        assert_eq!(q.capacity(), 4, "never needed to grow");
        assert_eq!(q.len() as usize, model.len());
    }

    #[test]
    fn survives_crash_with_wrapped_state() {
        let (pmem, rt) = rt();
        let q = PQueue::new(&rt, 4).unwrap();
        rt.root_put("q", &q).unwrap();
        let mut expected = VecDeque::new();
        for i in 0..11u64 {
            let s = PString::from_str_in(&rt, &format!("e{i}")).unwrap();
            q.enqueue(s.addr()).unwrap();
            expected.push_back(format!("e{i}"));
            if i % 3 == 2 {
                let got = q.dequeue().unwrap();
                let want = expected.pop_front().unwrap();
                assert_eq!(PString::resurrect(&rt, got).to_string_lossy(), want);
                rt.free_addr(got);
                rt.pfence();
            }
        }
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let q2 = rt2.root_get_as::<PQueue>("q").unwrap().unwrap();
        assert_eq!(q2.len() as usize, expected.len());
        while let Some(want) = expected.pop_front() {
            let got = q2.dequeue().unwrap();
            assert_eq!(PString::resurrect(&rt2, got).to_string_lossy(), want);
        }
    }

    #[test]
    fn dequeued_elements_are_collectable() {
        let (pmem, rt) = rt();
        let q = PQueue::new(&rt, 4).unwrap();
        rt.root_put("q", &q).unwrap();
        let s = PString::from_str_in(&rt, "transient").unwrap();
        q.enqueue(s.addr()).unwrap();
        let got = q.dequeue().unwrap();
        assert_eq!(got, s.addr());
        // Caller "forgets" to free: the element is unreachable (the cell
        // was nulled), so recovery must reclaim it.
        rt.pfence();
        let s_block = rt.heap().block_of_addr(s.addr());
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        assert!(rt2.heap().read_header(s_block).is_free_or_slave());
    }

    #[test]
    fn crash_mid_enqueue_is_all_or_nothing() {
        // Model the torn enqueue: cell written and fenced, tail bump
        // unflushed. After the crash the element must be invisible.
        let (pmem, rt) = rt();
        let q = PQueue::new(&rt, 4).unwrap();
        rt.root_put("q", &q).unwrap();
        let s = PString::from_str_in(&rt, "torn").unwrap();
        rt.pfence();
        // Hand-drive the first half of enqueue.
        {
            let ring = rt
                .root_get_as::<PQueue>("q")
                .unwrap()
                .unwrap();
            let _ = ring; // the public API has no way to tear — drive via proxy
        }
        // Write cell 0 + flush, but never bump tail.
        let ring_addr = q.proxy.read_ref(OFF_ARRAY).unwrap();
        let ring = PRefArray::resurrect(&rt, ring_addr);
        ring.set_ref(0, Some(s.addr()));
        ring.pwb_cell(0);
        rt.pfence();
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let q2 = rt2.root_get_as::<PQueue>("q").unwrap().unwrap();
        assert!(q2.is_empty(), "unpublished element must be invisible");
    }
}
