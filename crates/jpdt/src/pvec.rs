//! The extensible persistent array (§4.3.1): the `ArrayList` drop-in.
//!
//! Layout: the vec object is `[array ref u64][len u64]`; the storage is a
//! [`PRefArray`]. Growth allocates a double-capacity array, copies the
//! cells, then publishes it with the low-level **atomic update** of §4.1.6
//! — validate, fence, store — so the structure is consistent at every
//! instant.

use parking_lot::Mutex;

use jnvm::{Jnvm, JnvmError, PObject, Proxy};

use crate::parray::PRefArray;

/// An extensible persistent array of object references.
pub struct PRefVec {
    proxy: Proxy,
    /// Cached storage-array proxy, refreshed on growth/resurrection.
    array: Mutex<PRefArray>,
}

const OFF_ARRAY: u64 = 0;
const OFF_LEN: u64 = 8;

impl PRefVec {
    /// Create an empty vec with the given initial capacity (min 4),
    /// validated and fenced.
    pub fn new(rt: &Jnvm, capacity: u64) -> Result<PRefVec, JnvmError> {
        let array = PRefArray::new(rt, capacity.max(4))?;
        let proxy = rt.alloc_proxy::<PRefVec>(16)?;
        proxy.write_ref(OFF_ARRAY, Some(array.addr()));
        proxy.write_u64(OFF_LEN, 0);
        proxy.pwb();
        proxy.validate();
        rt.pfence();
        Ok(PRefVec {
            proxy,
            array: Mutex::new(array),
        })
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.proxy.read_u64(OFF_LEN)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current storage capacity.
    pub fn capacity(&self) -> u64 {
        self.array.lock().len()
    }

    /// The underlying proxy.
    pub fn proxy(&self) -> &Proxy {
        &self.proxy
    }

    /// Element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: u64) -> Option<u64> {
        let n = self.len();
        assert!(i < n, "index {i} out of bounds (len {n})");
        self.array.lock().get_ref(i)
    }

    /// Overwrite element `i` with the atomic-update protocol.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&self, i: u64, target: Option<u64>) {
        let n = self.len();
        assert!(i < n, "index {i} out of bounds (len {n})");
        self.array.lock().update_cell(i, target);
    }

    /// Append a reference. Crash-consistent: the cell is written and fenced
    /// before the length that publishes it.
    pub fn push(&self, target: u64) -> Result<(), JnvmError> {
        let rt = self.proxy.runtime().clone();
        let mut array = self.array.lock();
        let len = self.len();
        if len == array.len() {
            // Grow: copy into a double-size array, publish atomically.
            let bigger = PRefArray::new(&rt, array.len() * 2)?;
            for i in 0..len {
                bigger.set_ref(i, array.get_ref(i));
            }
            bigger.pwb();
            // update: validate(new), pfence, store ref, pwb.
            rt.set_valid_addr(bigger.addr(), true);
            rt.pfence();
            self.proxy.write_ref(OFF_ARRAY, Some(bigger.addr()));
            self.proxy.pwb_field(OFF_ARRAY, 8);
            rt.pfence();
            let old = std::mem::replace(&mut *array, bigger);
            old.free();
        }
        rt.set_valid_addr(target, true);
        array.set_ref(len, Some(target));
        array.pwb_cell(len);
        rt.pfence();
        self.proxy.write_u64(OFF_LEN, len + 1);
        self.proxy.pwb_field(OFF_LEN, 8);
        rt.pfence();
        self.proxy.ordering_point("pvec-publish", OFF_LEN, 8);
        Ok(())
    }

    /// Remove and return the last element. The vacated cell is nulled so
    /// the recovery GC cannot keep it alive.
    pub fn pop(&self) -> Option<u64> {
        let rt = self.proxy.runtime().clone();
        let array = self.array.lock();
        let len = self.len();
        if len == 0 {
            return None;
        }
        let v = array.get_ref(len - 1);
        self.proxy.write_u64(OFF_LEN, len - 1);
        self.proxy.pwb_field(OFF_LEN, 8);
        rt.pfence();
        array.set_ref(len - 1, None);
        array.pwb_cell(len - 1);
        v
    }

    /// Iterate `(index, reference)` over the live elements.
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        let array = self.array.lock();
        for i in 0..self.len() {
            if let Some(r) = array.get_ref(i) {
                f(i, r);
            }
        }
    }

    /// Free the vec and its storage array (not the referenced objects).
    pub fn free(self) {
        let rt = self.proxy.runtime().clone();
        let array = self.array.into_inner();
        array.free();
        rt.free_addr(self.proxy.addr());
    }
}

impl PObject for PRefVec {
    const CLASS_NAME: &'static str = "jnvm_jpdt.PRefVec";
    const REF_OFFSETS: &'static [u64] = &[OFF_ARRAY];

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        let proxy = Proxy::open(rt, addr);
        let arr_addr = proxy.read_ref(OFF_ARRAY).expect("vec always has storage");
        PRefVec {
            array: Mutex::new(PRefArray::resurrect(rt, arr_addr)),
            proxy,
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }
}

impl std::fmt::Debug for PRefVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PRefVec")
            .field("addr", &self.proxy.addr())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PString;
    use jnvm::JnvmBuilder;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};
    use std::sync::Arc;

    fn rt() -> (Arc<Pmem>, Jnvm) {
        let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
        let rt = crate::register_jpdt(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        (pmem, rt)
    }

    #[test]
    fn push_get_pop() {
        let (_p, rt) = rt();
        let v = PRefVec::new(&rt, 4).unwrap();
        let strings: Vec<PString> = (0..10)
            .map(|i| PString::from_str_in(&rt, &format!("s{i}")).unwrap())
            .collect();
        for s in &strings {
            v.push(s.addr()).unwrap();
        }
        assert_eq!(v.len(), 10);
        assert!(v.capacity() >= 10, "grew beyond initial capacity");
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(v.get(i as u64), Some(s.addr()));
        }
        assert_eq!(v.pop(), Some(strings[9].addr()));
        assert_eq!(v.len(), 9);
    }

    #[test]
    fn pop_empty_is_none() {
        let (_p, rt) = rt();
        let v = PRefVec::new(&rt, 4).unwrap();
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn growth_survives_crash() {
        let (pmem, rt) = rt();
        let v = PRefVec::new(&rt, 2).unwrap();
        rt.root_put("v", &v).unwrap();
        let strings: Vec<PString> = (0..50)
            .map(|i| PString::from_str_in(&rt, &format!("x{i}")).unwrap())
            .collect();
        for s in &strings {
            v.push(s.addr()).unwrap();
        }
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let v2 = rt2.root_get_as::<PRefVec>("v").unwrap().unwrap();
        assert_eq!(v2.len(), 50);
        for i in 0..50u64 {
            let s = rt2.read_pobject::<PString>(v2.get(i).unwrap()).unwrap();
            assert_eq!(s.to_string_lossy(), format!("x{i}"));
        }
    }

    #[test]
    fn popped_elements_are_collectable() {
        let (pmem, rt) = rt();
        let v = PRefVec::new(&rt, 4).unwrap();
        rt.root_put("v", &v).unwrap();
        let s = PString::from_str_in(&rt, "gone").unwrap();
        v.push(s.addr()).unwrap();
        assert_eq!(v.pop(), Some(s.addr()));
        rt.pmem().pfence();
        // s is now unreachable: recovery must collect it.
        let s_block = rt.heap().block_of_addr(s.addr());
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = crate::register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        // The pool block hosting only the dead string was reclaimed whole.
        assert!(rt2.heap().read_header(s_block).is_free_or_slave());
    }
}
