//! Persistent maps and sets (§4.3.2).
//!
//! The persistent content of a map is an extensible [`PRefArray`] whose
//! cells reference *entry* objects (`[value ref][key ...]`). The logic —
//! key lookup — lives in a volatile **mirror** (hash map, tree map or skip
//! list) mapping keys to cell indices, rebuilt at resurrection. Every
//! mutation of the persistent state is one reference write, so the map is
//! consistent at any instant without failure-atomic blocks.
//!
//! Three caching variants trade memory for resurrection cost (§4.3.2):
//! [`CacheMode::Base`] allocates a fresh value proxy per lookup,
//! [`CacheMode::Cached`] fills a proxy cache on demand, and
//! [`CacheMode::Eager`] populates it during resurrection.

use std::collections::HashMap;
use std::marker::PhantomData;

use parking_lot::Mutex;

use jnvm::{Jnvm, JnvmError, PObject, Proxy, RawChain};

use crate::parray::PRefArray;
use crate::skiplist::SkipListMap;
use crate::PString;

/// Proxy-caching policy of a map (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No value-proxy cache: every lookup resurrects a fresh proxy.
    /// Lowest memory, default.
    #[default]
    Base,
    /// Cache value proxies on first lookup.
    Cached,
    /// Populate the proxy cache during resurrection.
    Eager,
}

// ----------------------------------------------------------------------
// Keys.
// ----------------------------------------------------------------------

/// A volatile key type storable in a persistent map entry.
///
/// The entry payload is `[value ref u64][key: KEY_WORDS words]`; the key
/// part may inline the key (`i64`) or reference persistent sub-objects
/// (`String` via [`PString`]).
pub trait PKey: Clone + Eq + std::hash::Hash + Ord + Send + 'static {
    /// Words occupied by the key inside an entry.
    const KEY_WORDS: u64;
    /// Class name under which this key's entry class is registered.
    const ENTRY_CLASS_NAME: &'static str;
    /// Reference-slot offsets within the entry payload (must include 0,
    /// the value slot, plus any key sub-object slots).
    const ENTRY_REF_OFFSETS: &'static [u64];

    /// Materialize the key into entry `e` at payload offset `off`
    /// (allocating sub-objects as needed; they must be left validated).
    fn write_key(rt: &Jnvm, e: &Proxy, off: u64, key: &Self) -> Result<(), JnvmError>;
    /// Read the key back from entry `e`.
    fn read_key(rt: &Jnvm, e: &Proxy, off: u64) -> Self;
    /// Free key sub-objects of entry `e`.
    fn free_key(rt: &Jnvm, e: &Proxy, off: u64);
}

impl PKey for String {
    const KEY_WORDS: u64 = 1;
    const ENTRY_CLASS_NAME: &'static str = "jnvm_jpdt.MapEntry<String>";
    /// Value slot + PString key slot.
    const ENTRY_REF_OFFSETS: &'static [u64] = &[0, 8];

    fn write_key(rt: &Jnvm, e: &Proxy, off: u64, key: &Self) -> Result<(), JnvmError> {
        let s = PString::from_str_in(rt, key)?;
        e.write_ref(off, Some(s.addr()));
        Ok(())
    }

    fn read_key(rt: &Jnvm, e: &Proxy, off: u64) -> Self {
        let addr = e.read_ref(off).expect("entry key reference present");
        PString::resurrect(rt, addr).to_string_lossy()
    }

    fn free_key(rt: &Jnvm, e: &Proxy, off: u64) {
        if let Some(addr) = e.read_ref(off) {
            rt.free_addr(addr);
        }
    }
}

impl PKey for i64 {
    const KEY_WORDS: u64 = 1;
    const ENTRY_CLASS_NAME: &'static str = "jnvm_jpdt.MapEntry<i64>";
    /// Only the value slot holds a reference; the key is inline.
    const ENTRY_REF_OFFSETS: &'static [u64] = &[0];

    fn write_key(_rt: &Jnvm, e: &Proxy, off: u64, key: &Self) -> Result<(), JnvmError> {
        e.write_i64(off, *key);
        Ok(())
    }

    fn read_key(_rt: &Jnvm, e: &Proxy, off: u64) -> Self {
        e.read_i64(off)
    }

    fn free_key(_rt: &Jnvm, _e: &Proxy, _off: u64) {}
}

/// The persistent entry class of a map keyed by `K`:
/// `[value ref][key words]`.
pub struct MapEntry<K: PKey> {
    proxy: Proxy,
    _k: PhantomData<fn() -> K>,
}

impl<K: PKey> MapEntry<K> {
    const VALUE_OFF: u64 = 0;
    const KEY_OFF: u64 = 8;

    fn payload_bytes() -> u64 {
        8 + K::KEY_WORDS * 8
    }
}

impl<K: PKey> PObject for MapEntry<K> {
    const CLASS_NAME: &'static str = K::ENTRY_CLASS_NAME;
    const REF_OFFSETS: &'static [u64] = K::ENTRY_REF_OFFSETS;

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        MapEntry {
            proxy: Proxy::open(rt, addr),
            _k: PhantomData,
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }
}

// ----------------------------------------------------------------------
// Mirrors.
// ----------------------------------------------------------------------

/// The volatile key→cell index of a map.
pub trait Mirror<K>: Send + Default {
    /// Insert a mapping, returning the displaced cell if the key existed.
    fn insert(&mut self, k: K, cell: u64) -> Option<u64>;
    /// Cell of `k`, if present.
    fn get(&self, k: &K) -> Option<u64>;
    /// Remove `k`, returning its cell.
    fn remove(&mut self, k: &K) -> Option<u64>;
    /// Number of keys.
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Iterate `(key, cell)`.
    fn for_each(&self, f: &mut dyn FnMut(&K, u64));
}

/// Hash mirror — the persistent `HashMap` analogue.
pub struct HashMirror<K>(HashMap<K, u64>);

impl<K> Default for HashMirror<K> {
    fn default() -> Self {
        HashMirror(HashMap::new())
    }
}

impl<K: PKey> Mirror<K> for HashMirror<K> {
    fn insert(&mut self, k: K, cell: u64) -> Option<u64> {
        self.0.insert(k, cell)
    }
    fn get(&self, k: &K) -> Option<u64> {
        self.0.get(k).copied()
    }
    fn remove(&mut self, k: &K) -> Option<u64> {
        self.0.remove(k)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn for_each(&self, f: &mut dyn FnMut(&K, u64)) {
        for (k, c) in &self.0 {
            f(k, *c);
        }
    }
}

/// Red-black-tree mirror — the persistent `TreeMap` analogue.
pub struct TreeMirror<K>(std::collections::BTreeMap<K, u64>);

impl<K> Default for TreeMirror<K> {
    fn default() -> Self {
        TreeMirror(std::collections::BTreeMap::new())
    }
}

impl<K: PKey> Mirror<K> for TreeMirror<K> {
    fn insert(&mut self, k: K, cell: u64) -> Option<u64> {
        self.0.insert(k, cell)
    }
    fn get(&self, k: &K) -> Option<u64> {
        self.0.get(k).copied()
    }
    fn remove(&mut self, k: &K) -> Option<u64> {
        self.0.remove(k)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn for_each(&self, f: &mut dyn FnMut(&K, u64)) {
        for (k, c) in &self.0 {
            f(k, *c);
        }
    }
}

/// Skip-list mirror — the persistent `ConcurrentSkipListMap` analogue.
pub struct SkipMirror<K: Ord>(SkipListMap<K, u64>);

impl<K: Ord> Default for SkipMirror<K> {
    fn default() -> Self {
        SkipMirror(SkipListMap::new())
    }
}

impl<K: PKey> Mirror<K> for SkipMirror<K> {
    fn insert(&mut self, k: K, cell: u64) -> Option<u64> {
        self.0.insert(k, cell)
    }
    fn get(&self, k: &K) -> Option<u64> {
        self.0.get(k).copied()
    }
    fn remove(&mut self, k: &K) -> Option<u64> {
        self.0.remove_cloned(k)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn for_each(&self, f: &mut dyn FnMut(&K, u64)) {
        self.0.for_each(|k, c| f(k, *c));
    }
}

// ----------------------------------------------------------------------
// The map core.
// ----------------------------------------------------------------------

/// A handle on a map value: block-chained values get a ready proxy (the
/// expensive part of resurrection), pooled small objects just their
/// address.
#[derive(Clone, Debug)]
pub enum PValue {
    /// A block-chained object with its proxy (block addresses cached).
    Block(Proxy),
    /// A pooled small-immutable object.
    Pooled(u64),
}

impl PValue {
    fn open(rt: &Jnvm, addr: u64) -> PValue {
        if rt.pools().is_pooled_addr(addr) {
            PValue::Pooled(addr)
        } else {
            PValue::Block(Proxy::open(rt, addr))
        }
    }

    /// Persistent address of the value.
    pub fn addr(&self) -> u64 {
        match self {
            PValue::Block(p) => p.addr(),
            PValue::Pooled(a) => *a,
        }
    }

    /// The proxy, for block-chained values.
    pub fn as_proxy(&self) -> Option<&Proxy> {
        match self {
            PValue::Block(p) => Some(p),
            PValue::Pooled(_) => None,
        }
    }
}

struct Inner<K: PKey, M: Mirror<K>> {
    array: PRefArray,
    mirror: M,
    free_cells: Vec<u64>,
    /// cell -> value handle (Cached/Eager modes).
    cache: HashMap<u64, PValue>,
    _k: PhantomData<fn() -> K>,
}

/// Generic persistent map machinery, wrapped by the concrete named map
/// types ([`PStringHashMap`] etc., which carry the persistent class names).
pub struct PMapCore<K: PKey, M: Mirror<K>> {
    rt: Jnvm,
    master: Proxy, // payload: [array ref u64]
    mode: CacheMode,
    inner: Mutex<Inner<K, M>>,
}

const OFF_ARRAY: u64 = 0;
const INITIAL_CAPACITY: u64 = 64;

impl<K: PKey, M: Mirror<K>> PMapCore<K, M> {
    /// Allocate a fresh persistent map with the concrete class id
    /// `master_class_id`.
    pub fn create(rt: &Jnvm, master_class_id: u16, mode: CacheMode) -> Result<Self, JnvmError> {
        let array = PRefArray::new(rt, INITIAL_CAPACITY)?;
        let master = Proxy::try_alloc(rt, master_class_id, 8)?;
        master.write_ref(OFF_ARRAY, Some(array.addr()));
        master.pwb();
        master.validate();
        rt.pfence();
        let free_cells = (0..INITIAL_CAPACITY).rev().collect();
        Ok(PMapCore {
            rt: rt.clone(),
            master,
            mode,
            inner: Mutex::new(Inner {
                array,
                mirror: M::default(),
                free_cells,
                cache: HashMap::new(),
                _k: PhantomData,
            }),
        })
    }

    /// Resurrect an existing map: rebuild the volatile mirror (and, in
    /// [`CacheMode::Eager`], the proxy cache) by scanning the persistent
    /// array (§4.3.2).
    pub fn resurrect(rt: &Jnvm, addr: u64, mode: CacheMode) -> Self {
        let master = Proxy::open(rt, addr);
        let arr_addr = master.read_ref(OFF_ARRAY).expect("map always has storage");
        let array = PRefArray::resurrect(rt, arr_addr);
        let mut mirror = M::default();
        let mut free_cells = Vec::new();
        let mut cache = HashMap::new();
        let cap = array.len();
        for cell in 0..cap {
            match array.get_ref(cell) {
                Some(entry_addr) => {
                    let e = Proxy::open(rt, entry_addr);
                    let key = K::read_key(rt, &e, MapEntry::<K>::KEY_OFF);
                    if mode == CacheMode::Eager {
                        if let Some(v) = e.read_ref(MapEntry::<K>::VALUE_OFF) {
                            cache.insert(cell, PValue::open(rt, v));
                        }
                    }
                    mirror.insert(key, cell);
                }
                None => free_cells.push(cell),
            }
        }
        free_cells.reverse();
        PMapCore {
            rt: rt.clone(),
            master,
            mode,
            inner: Mutex::new(Inner {
                array,
                mirror,
                free_cells,
                cache,
                _k: PhantomData,
            }),
        }
    }

    /// The map's persistent address.
    pub fn addr(&self) -> u64 {
        self.master.addr()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().mirror.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The caching mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    fn entry_at(&self, cell: u64, array: &PRefArray) -> Proxy {
        let addr = array.get_ref(cell).expect("mirror cell holds an entry");
        Proxy::open(&self.rt, addr)
    }

    fn grow(&self, inner: &mut Inner<K, M>) -> Result<(), JnvmError> {
        let rt = &self.rt;
        let old_cap = inner.array.len();
        let bigger = PRefArray::new(rt, old_cap * 2)?;
        for i in 0..old_cap {
            bigger.set_ref(i, inner.array.get_ref(i));
        }
        bigger.pwb();
        // Publish with the atomic-update protocol (§4.1.6).
        rt.set_valid_addr(bigger.addr(), true);
        rt.pfence();
        self.master.write_ref(OFF_ARRAY, Some(bigger.addr()));
        self.master.pwb_field(OFF_ARRAY, 8);
        rt.pfence();
        let old = std::mem::replace(&mut inner.array, bigger);
        old.free();
        inner.free_cells.extend((old_cap..old_cap * 2).rev());
        Ok(())
    }

    /// Insert or update: associate `key` with the persistent object at
    /// `value`. Returns the previous value's address if the key existed
    /// (ownership of the old object passes back to the caller — deletion
    /// is explicit in J-NVM).
    pub fn put(&self, key: K, value: u64) -> Result<Option<u64>, JnvmError> {
        let mut inner = self.inner.lock();
        if let Some(cell) = inner.mirror.get(&key) {
            let e = self.entry_at(cell, &inner.array);
            let old = e.read_ref(MapEntry::<K>::VALUE_OFF);
            // Atomic update: validate new value, fence, store, flush.
            self.rt.set_valid_addr(value, true);
            self.rt.pfence();
            e.write_ref(MapEntry::<K>::VALUE_OFF, Some(value));
            e.pwb_field(MapEntry::<K>::VALUE_OFF, 8);
            self.rt.pfence();
            e.ordering_point("pmap-publish", MapEntry::<K>::VALUE_OFF, 8);
            if self.mode != CacheMode::Base {
                inner.cache.insert(cell, PValue::open(&self.rt, value));
            }
            return Ok(old);
        }
        if inner.free_cells.is_empty() {
            self.grow(&mut inner)?;
        }
        let cell = inner.free_cells.pop().expect("grow guarantees a free cell");
        let e = Proxy::try_alloc(
            &self.rt,
            self.rt.registry().id_of::<MapEntry<K>>()?,
            MapEntry::<K>::payload_bytes(),
        )?;
        K::write_key(&self.rt, &e, MapEntry::<K>::KEY_OFF, &key)?;
        e.write_ref(MapEntry::<K>::VALUE_OFF, Some(value));
        e.pwb();
        self.rt.set_valid_addr(value, true);
        e.validate();
        self.rt.pfence();
        // One write publishes the entry.
        inner.array.set_ref(cell, Some(e.addr()));
        inner.array.pwb_cell(cell);
        self.rt.pfence();
        inner.array.proxy().ordering_point("pmap-publish", 8 + cell * 8, 8);
        if self.mode != CacheMode::Base {
            inner.cache.insert(cell, PValue::open(&self.rt, value));
        }
        inner.mirror.insert(key, cell);
        Ok(None)
    }

    /// Address of the value associated with `key`.
    pub fn get(&self, key: &K) -> Option<u64> {
        let inner = self.inner.lock();
        let cell = inner.mirror.get(key)?;
        self.entry_at(cell, &inner.array)
            .read_ref(MapEntry::<K>::VALUE_OFF)
    }

    /// Value handle for `key`, honouring the caching mode: `Base`
    /// resurrects a fresh handle, `Cached` fills the cache on miss,
    /// `Eager` normally hits the resurrection-time cache.
    pub fn get_value(&self, key: &K) -> Option<PValue> {
        let mut inner = self.inner.lock();
        let cell = inner.mirror.get(key)?;
        if self.mode != CacheMode::Base {
            if let Some(p) = inner.cache.get(&cell) {
                return Some(p.clone());
            }
        }
        let v = self
            .entry_at(cell, &inner.array)
            .read_ref(MapEntry::<K>::VALUE_OFF)?;
        let value = PValue::open(&self.rt, v);
        if self.mode != CacheMode::Base {
            inner.cache.insert(cell, value.clone());
        }
        Some(value)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().mirror.get(key).is_some()
    }

    /// Remove `key`. Returns the value's address (ownership passes to the
    /// caller); the entry and its key sub-objects are freed.
    pub fn remove(&self, key: &K) -> Option<u64> {
        let mut inner = self.inner.lock();
        let cell = inner.mirror.remove(key)?;
        let e = self.entry_at(cell, &inner.array);
        let value = e.read_ref(MapEntry::<K>::VALUE_OFF);
        // One write unpublishes the entry; fence before reclaiming.
        inner.array.set_ref(cell, None);
        inner.array.pwb_cell(cell);
        self.rt.pfence();
        K::free_key(&self.rt, &e, MapEntry::<K>::KEY_OFF);
        self.rt.free_addr(e.addr());
        inner.free_cells.push(cell);
        inner.cache.remove(&cell);
        value
    }

    /// Iterate `(key, value address)` in mirror order.
    pub fn for_each(&self, mut f: impl FnMut(&K, u64)) {
        let inner = self.inner.lock();
        inner.mirror.for_each(&mut |k, cell| {
            if let Some(v) = self
                .entry_at(cell, &inner.array)
                .read_ref(MapEntry::<K>::VALUE_OFF)
            {
                f(k, v);
            }
        });
    }

    /// Keys in mirror order (ordered for tree/skip mirrors), up to `limit`.
    pub fn keys(&self, limit: usize) -> Vec<K> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        inner.mirror.for_each(&mut |k, _| {
            if out.len() < limit {
                out.push(k.clone());
            }
        });
        out
    }

    /// Set-style insert: the entry's value references the entry itself
    /// ("a persistent map that associates each key with itself", §4.3.2).
    /// Returns true if the key was newly inserted.
    pub fn insert_self(&self, key: K) -> Result<bool, JnvmError> {
        let mut inner = self.inner.lock();
        if inner.mirror.get(&key).is_some() {
            return Ok(false);
        }
        if inner.free_cells.is_empty() {
            self.grow(&mut inner)?;
        }
        let cell = inner.free_cells.pop().expect("grow guarantees a free cell");
        let e = Proxy::try_alloc(
            &self.rt,
            self.rt.registry().id_of::<MapEntry<K>>()?,
            MapEntry::<K>::payload_bytes(),
        )?;
        K::write_key(&self.rt, &e, MapEntry::<K>::KEY_OFF, &key)?;
        e.write_ref(MapEntry::<K>::VALUE_OFF, Some(e.addr()));
        e.pwb();
        e.validate();
        self.rt.pfence();
        inner.array.set_ref(cell, Some(e.addr()));
        inner.array.pwb_cell(cell);
        self.rt.pfence();
        inner.mirror.insert(key, cell);
        Ok(true)
    }
}

// ----------------------------------------------------------------------
// Concrete named maps (each a persistent class of its own).
// ----------------------------------------------------------------------

macro_rules! define_pmap {
    ($(#[$meta:meta])* $name:ident, $key:ty, $mirror:ty, $class:literal) => {
        $(#[$meta])*
        pub struct $name {
            core: PMapCore<$key, $mirror>,
        }

        impl $name {
            /// Create an empty map (Base caching mode).
            pub fn new(rt: &Jnvm) -> Result<$name, JnvmError> {
                Self::with_mode(rt, CacheMode::Base)
            }

            /// Create an empty map with an explicit caching mode.
            pub fn with_mode(rt: &Jnvm, mode: CacheMode) -> Result<$name, JnvmError> {
                let id = rt.registry().id_of::<$name>()?;
                Ok($name {
                    core: PMapCore::create(rt, id, mode)?,
                })
            }

            /// Resurrect with an explicit caching mode (the plain
            /// [`jnvm::PObject::resurrect`] uses Base).
            pub fn open_with_mode(rt: &Jnvm, addr: u64, mode: CacheMode) -> $name {
                $name {
                    core: PMapCore::resurrect(rt, addr, mode),
                }
            }

            /// The generic map core.
            pub fn core(&self) -> &PMapCore<$key, $mirror> {
                &self.core
            }

            /// See [`PMapCore::put`].
            pub fn put(&self, key: $key, value: u64) -> Result<Option<u64>, JnvmError> {
                self.core.put(key, value)
            }

            /// See [`PMapCore::get`].
            pub fn get(&self, key: &$key) -> Option<u64> {
                self.core.get(key)
            }

            /// See [`PMapCore::get_value`].
            pub fn get_value(&self, key: &$key) -> Option<PValue> {
                self.core.get_value(key)
            }

            /// See [`PMapCore::remove`].
            pub fn remove(&self, key: &$key) -> Option<u64> {
                self.core.remove(key)
            }

            /// See [`PMapCore::contains`].
            pub fn contains(&self, key: &$key) -> bool {
                self.core.contains(key)
            }

            /// Number of keys.
            pub fn len(&self) -> usize {
                self.core.len()
            }

            /// True when empty.
            pub fn is_empty(&self) -> bool {
                self.core.is_empty()
            }

            /// See [`PMapCore::for_each`].
            pub fn for_each(&self, f: impl FnMut(&$key, u64)) {
                self.core.for_each(f)
            }

            /// See [`PMapCore::keys`].
            pub fn keys(&self, limit: usize) -> Vec<$key> {
                self.core.keys(limit)
            }
        }

        impl PObject for $name {
            const CLASS_NAME: &'static str = $class;
            const REF_OFFSETS: &'static [u64] = &[0];

            fn resurrect(rt: &Jnvm, addr: u64) -> Self {
                Self::open_with_mode(rt, addr, CacheMode::Base)
            }

            fn addr(&self) -> u64 {
                self.core.addr()
            }
        }
    };
}

define_pmap!(
    /// Persistent hash map keyed by strings (the drop-in for
    /// `java.util.HashMap` in Figure 12).
    PStringHashMap,
    String,
    HashMirror<String>,
    "jnvm_jpdt.PStringHashMap"
);

define_pmap!(
    /// Persistent ordered map keyed by strings (red-black mirror, the
    /// `java.util.TreeMap` drop-in).
    PStringTreeMap,
    String,
    TreeMirror<String>,
    "jnvm_jpdt.PStringTreeMap"
);

define_pmap!(
    /// Persistent skip-list map keyed by strings (the
    /// `ConcurrentSkipListMap` drop-in).
    PStringSkipMap,
    String,
    SkipMirror<String>,
    "jnvm_jpdt.PStringSkipMap"
);

define_pmap!(
    /// Persistent hash map keyed by `i64`.
    PI64HashMap,
    i64,
    HashMirror<i64>,
    "jnvm_jpdt.PI64HashMap"
);

define_pmap!(
    /// Persistent ordered map keyed by `i64`.
    PI64TreeMap,
    i64,
    TreeMirror<i64>,
    "jnvm_jpdt.PI64TreeMap"
);

define_pmap!(
    /// Persistent skip-list map keyed by `i64`.
    PI64SkipMap,
    i64,
    SkipMirror<i64>,
    "jnvm_jpdt.PI64SkipMap"
);

// ----------------------------------------------------------------------
// Sets.
// ----------------------------------------------------------------------

macro_rules! define_pset {
    ($(#[$meta:meta])* $name:ident, $key:ty, $map:ident, $class:literal) => {
        $(#[$meta])*
        pub struct $name {
            core: PMapCore<$key, HashMirror<$key>>,
        }

        impl $name {
            /// Create an empty set.
            pub fn new(rt: &Jnvm) -> Result<$name, JnvmError> {
                let id = rt.registry().id_of::<$name>()?;
                Ok($name {
                    core: PMapCore::create(rt, id, CacheMode::Base)?,
                })
            }

            /// Insert `key`; returns true if newly inserted.
            pub fn insert(&self, key: $key) -> Result<bool, JnvmError> {
                self.core.insert_self(key)
            }

            /// Whether `key` is present.
            pub fn contains(&self, key: &$key) -> bool {
                self.core.contains(key)
            }

            /// Remove `key`; returns true if it was present.
            pub fn remove(&self, key: &$key) -> bool {
                self.core.remove(key).is_some()
            }

            /// Number of keys.
            pub fn len(&self) -> usize {
                self.core.len()
            }

            /// True when empty.
            pub fn is_empty(&self) -> bool {
                self.core.is_empty()
            }

            /// Keys (up to `limit`).
            pub fn keys(&self, limit: usize) -> Vec<$key> {
                self.core.keys(limit)
            }
        }

        impl PObject for $name {
            const CLASS_NAME: &'static str = $class;
            const REF_OFFSETS: &'static [u64] = &[0];

            fn resurrect(rt: &Jnvm, addr: u64) -> Self {
                $name {
                    core: PMapCore::resurrect(rt, addr, CacheMode::Base),
                }
            }

            fn addr(&self) -> u64 {
                self.core.addr()
            }
        }
    };
}

define_pset!(
    /// Persistent set of strings.
    PStringSet,
    String,
    PStringHashMap,
    "jnvm_jpdt.PStringSet"
);

define_pset!(
    /// Persistent set of `i64`.
    PI64Set,
    i64,
    PI64HashMap,
    "jnvm_jpdt.PI64Set"
);

/// Tracer registered for [`RawChain`]-reachable map arrays — re-exported
/// for tests that need to assert layout invariants.
pub(crate) fn _unused(_: &RawChain) {}
