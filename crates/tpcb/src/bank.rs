//! Bank implementations: J-NVM (failure-atomic transfers), FS
//! (file-per-account with marshalling) and Volatile.

use std::sync::Arc;

use parking_lot::Mutex;

use jnvm::{Jnvm, JnvmBuilder, JnvmError, PObject, Proxy};
use jnvm_jpdt::PRefArray;
use jnvm_kvstore::{CostModel, SimFs};
use jnvm_pmem::Pmem;

/// Account record size from the paper (§5.3.3: "10M accounts of 140 B
/// each").
pub const ACCOUNT_BYTES: u64 = 140;

/// A persistent bank account: `[balance i64][padding to 140 B]`.
pub struct Account {
    proxy: Proxy,
}

impl Account {
    /// Allocate with an initial balance (flushed, not yet validated).
    pub fn create(rt: &Jnvm, balance: i64) -> Result<Account, JnvmError> {
        let proxy = rt.alloc_proxy::<Account>(ACCOUNT_BYTES)?;
        proxy.write_i64(0, balance);
        proxy.pwb();
        Ok(Account { proxy })
    }

    /// Current balance.
    pub fn balance(&self) -> i64 {
        self.proxy.read_i64(0)
    }

    /// Overwrite the balance (mediated: inside a failure-atomic block the
    /// write is redo-logged).
    pub fn set_balance(&self, v: i64) {
        self.proxy.write_i64(0, v);
    }

    /// The proxy.
    pub fn proxy(&self) -> &Proxy {
        &self.proxy
    }
}

impl PObject for Account {
    const CLASS_NAME: &'static str = "jnvm_tpcb.Account";

    fn resurrect(rt: &Jnvm, addr: u64) -> Self {
        Account {
            proxy: Proxy::open(rt, addr),
        }
    }

    fn addr(&self) -> u64 {
        self.proxy.addr()
    }
}

/// Register the bank's persistent classes (plus everything they rely on).
pub fn register_tpcb(b: JnvmBuilder) -> JnvmBuilder {
    jnvm_jpdt::register_jpdt(b).register::<Account>()
}

/// The operations Figure 11's load injector needs.
pub trait Bank: Send + Sync {
    /// Move `amount` from account `a` to account `b`, atomically with
    /// respect to crashes (for the persistent designs).
    fn transfer(&self, a: u64, b: u64, amount: i64) -> bool;
    /// Balance of account `a`.
    fn balance(&self, a: u64) -> i64;
    /// Sum over all accounts (the crash-atomicity invariant).
    fn total(&self) -> i64;
    /// Number of accounts.
    fn len(&self) -> u64;
    /// Whether the bank holds no accounts.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const STRIPES: usize = 256;

fn stripe_pair(locks: &[Mutex<()>], a: u64, b: u64) -> (usize, usize) {
    let (x, y) = (
        (a as usize) % locks.len(),
        (b as usize) % locks.len(),
    );
    (x.min(y), x.max(y))
}

/// The J-NVM bank: accounts in a persistent reference array, account
/// proxies cached eagerly (§5.3.3: restart "creates proxies instead of
/// reloading data in full"), transfers in failure-atomic blocks.
pub struct JnvmBank {
    rt: Jnvm,
    accounts: Vec<Account>,
    locks: Vec<Mutex<()>>,
}

impl JnvmBank {
    /// Create `n` accounts with `initial` balance each, rooted under
    /// "tpcb-accounts".
    pub fn create(rt: &Jnvm, n: u64, initial: i64) -> Result<JnvmBank, JnvmError> {
        let array = PRefArray::new(rt, n)?;
        let mut accounts = Vec::with_capacity(n as usize);
        for i in 0..n {
            let acc = Account::create(rt, initial)?;
            acc.proxy().validate();
            array.set_ref(i, Some(acc.addr()));
            accounts.push(acc);
        }
        array.pwb();
        rt.pmem().pfence();
        rt.root_put("tpcb-accounts", &array)?;
        Ok(JnvmBank {
            rt: rt.clone(),
            accounts,
            locks: (0..STRIPES).map(|_| Mutex::new(())).collect(),
        })
    }

    /// Re-open after a restart: resurrect the array and every account
    /// proxy (the proxy-cache rebuild the paper times).
    pub fn open(rt: &Jnvm) -> Result<JnvmBank, JnvmError> {
        let array = rt
            .root_get_as::<PRefArray>("tpcb-accounts")?
            .ok_or(JnvmError::StaleProxy)?;
        let n = array.len();
        let mut accounts = Vec::with_capacity(n as usize);
        for i in 0..n {
            let addr = array.get_ref(i).ok_or(JnvmError::StaleProxy)?;
            accounts.push(Account::resurrect(rt, addr));
        }
        Ok(JnvmBank {
            rt: rt.clone(),
            accounts,
            locks: (0..STRIPES).map(|_| Mutex::new(())).collect(),
        })
    }
}

impl Bank for JnvmBank {
    fn transfer(&self, a: u64, b: u64, amount: i64) -> bool {
        if a == b || a >= self.len() || b >= self.len() {
            return false;
        }
        let (lo, hi) = stripe_pair(&self.locks, a, b);
        let _g1 = self.locks[lo].lock();
        let _g2 = if lo != hi {
            Some(self.locks[hi].lock())
        } else {
            None
        };
        let (acc_a, acc_b) = (&self.accounts[a as usize], &self.accounts[b as usize]);
        self.rt.fa(|| {
            acc_a.set_balance(acc_a.balance() - amount);
            acc_b.set_balance(acc_b.balance() + amount);
        });
        true
    }

    fn balance(&self, a: u64) -> i64 {
        self.accounts[a as usize].balance()
    }

    fn total(&self) -> i64 {
        self.accounts.iter().map(|a| a.balance()).sum()
    }

    fn len(&self) -> u64 {
        self.accounts.len() as u64
    }
}

/// The FS bank: one marshalled 140-B file per account over [`SimFs`],
/// write-through.
pub struct FsBank {
    fs: SimFs,
    locks: Vec<Mutex<()>>,
    n: u64,
}

impl FsBank {
    fn encode(balance: i64) -> Vec<u8> {
        let mut rec = vec![0u8; ACCOUNT_BYTES as usize];
        rec[..8].copy_from_slice(&balance.to_le_bytes());
        rec
    }

    fn decode(bytes: &[u8]) -> i64 {
        i64::from_le_bytes(bytes[..8].try_into().expect("account record >= 8 bytes"))
    }

    /// Create `n` account files.
    pub fn create(pmem: Arc<Pmem>, n: u64, initial: i64, costs: CostModel) -> FsBank {
        let fs = SimFs::format(pmem, ACCOUNT_BYTES + 64, costs);
        for i in 0..n {
            fs.write_file(&format!("acct{i}"), &FsBank::encode(initial));
        }
        FsBank {
            fs,
            locks: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            n,
        }
    }

    /// Remount after a crash (pays the directory scan) and eagerly reload
    /// `preload` accounts, as Infinispan reloads its cache (§5.3.3).
    pub fn mount(pmem: Arc<Pmem>, n: u64, preload: u64, costs: CostModel) -> FsBank {
        let fs = SimFs::mount(pmem, ACCOUNT_BYTES + 64, costs);
        let bank = FsBank {
            fs,
            locks: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            n,
        };
        for i in 0..preload.min(n) {
            std::hint::black_box(bank.balance(i));
        }
        bank
    }
}

impl Bank for FsBank {
    fn transfer(&self, a: u64, b: u64, amount: i64) -> bool {
        if a == b || a >= self.n || b >= self.n {
            return false;
        }
        let (lo, hi) = stripe_pair(&self.locks, a, b);
        let _g1 = self.locks[lo].lock();
        let _g2 = if lo != hi {
            Some(self.locks[hi].lock())
        } else {
            None
        };
        let (ka, kb) = (format!("acct{a}"), format!("acct{b}"));
        let (Some(ba), Some(bb)) = (self.fs.read_file(&ka), self.fs.read_file(&kb)) else {
            return false;
        };
        self.fs
            .write_file(&ka, &FsBank::encode(FsBank::decode(&ba) - amount))
            && self
                .fs
                .write_file(&kb, &FsBank::encode(FsBank::decode(&bb) + amount))
    }

    fn balance(&self, a: u64) -> i64 {
        self.fs
            .read_file(&format!("acct{a}"))
            .map(|b| FsBank::decode(&b))
            .unwrap_or(0)
    }

    fn total(&self) -> i64 {
        (0..self.n).map(|i| self.balance(i)).sum()
    }

    fn len(&self) -> u64 {
        self.n
    }
}

/// Persistence disabled: balances in DRAM; a restart loses everything and
/// accounts restart from zero (exactly the paper's Volatile behaviour).
pub struct VolatileBank {
    balances: Vec<Mutex<i64>>,
}

impl VolatileBank {
    /// Create `n` accounts with `initial` balance.
    pub fn new(n: u64, initial: i64) -> VolatileBank {
        VolatileBank {
            balances: (0..n).map(|_| Mutex::new(initial)).collect(),
        }
    }
}

impl Bank for VolatileBank {
    fn transfer(&self, a: u64, b: u64, amount: i64) -> bool {
        if a == b || a as usize >= self.balances.len() || b as usize >= self.balances.len() {
            return false;
        }
        let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
        let mut first = self.balances[lo].lock();
        let mut second = self.balances[hi].lock();
        if a < b {
            *first -= amount;
            *second += amount;
        } else {
            *second -= amount;
            *first += amount;
        }
        true
    }

    fn balance(&self, a: u64) -> i64 {
        *self.balances[a as usize].lock()
    }

    fn total(&self) -> i64 {
        self.balances.iter().map(|b| *b.lock()).sum()
    }

    fn len(&self) -> u64 {
        self.balances.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jnvm_heap::HeapConfig;
    use jnvm_pmem::{CrashPolicy, PmemConfig};

    fn jnvm_rt(bytes: u64) -> (Arc<Pmem>, Jnvm) {
        let pmem = Pmem::new(PmemConfig::crash_sim(bytes));
        let rt = register_tpcb(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .unwrap();
        (pmem, rt)
    }

    #[test]
    fn jnvm_bank_transfers_conserve_total() {
        let (_p, rt) = jnvm_rt(16 << 20);
        let bank = JnvmBank::create(&rt, 100, 1000).unwrap();
        assert_eq!(bank.total(), 100_000);
        assert!(bank.transfer(1, 2, 300));
        assert_eq!(bank.balance(1), 700);
        assert_eq!(bank.balance(2), 1300);
        assert!(!bank.transfer(1, 1, 10), "self transfer rejected");
        assert!(!bank.transfer(1, 999, 10), "bad account rejected");
        assert_eq!(bank.total(), 100_000);
    }

    #[test]
    fn jnvm_bank_crash_preserves_atomicity_and_total() {
        let (pmem, rt) = jnvm_rt(32 << 20);
        let bank = JnvmBank::create(&rt, 50, 100).unwrap();
        for i in 0..200u64 {
            bank.transfer(i % 50, (i * 7 + 1) % 50, 3);
        }
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let (rt2, _) = register_tpcb(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .unwrap();
        let bank2 = JnvmBank::open(&rt2).unwrap();
        assert_eq!(bank2.len(), 50);
        assert_eq!(bank2.total(), 5000, "no money created or destroyed");
    }

    #[test]
    fn jnvm_bank_concurrent_transfers() {
        let (_p, rt) = jnvm_rt(32 << 20);
        let bank = Arc::new(JnvmBank::create(&rt, 20, 1000).unwrap());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let bank = Arc::clone(&bank);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        bank.transfer((t * 13 + i) % 20, (t * 7 + i * 3 + 1) % 20, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(bank.total(), 20_000);
    }

    #[test]
    fn fs_bank_round_trip_and_remount() {
        let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
        let bank = FsBank::create(Arc::clone(&pmem), 20, 500, CostModel::free());
        assert!(bank.transfer(0, 1, 100));
        assert_eq!(bank.balance(0), 400);
        assert_eq!(bank.balance(1), 600);
        pmem.crash(&CrashPolicy::strict()).unwrap();
        let bank2 = FsBank::mount(pmem, 20, 5, CostModel::free());
        assert_eq!(bank2.total(), 10_000);
        assert_eq!(bank2.balance(1), 600);
    }

    #[test]
    fn volatile_bank_behaviour() {
        let bank = VolatileBank::new(10, 50);
        assert!(bank.transfer(3, 4, 20));
        assert_eq!(bank.balance(3), 30);
        assert_eq!(bank.balance(4), 70);
        assert_eq!(bank.total(), 500);
        assert!(!bank.transfer(3, 3, 5));
    }
}
