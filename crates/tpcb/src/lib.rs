//! # jnvm-tpcb — the TPC-B-like bank of §5.3.3
//!
//! A bank server holding N accounts of 140 B each, exposing a single
//! `transfer` operation executed in a failure-atomic block (J-PFA), plus
//! the alternative persistence designs Figure 11 compares (Volatile, FS)
//! and the crash/recovery timeline driver that regenerates the figure.

mod bank;
mod timeline;

pub use bank::{register_tpcb, Account, Bank, FsBank, JnvmBank, VolatileBank, ACCOUNT_BYTES};
pub use timeline::{run_timeline, BankKind, TimelineConfig, TimelineReport};
