//! The crash/recovery throughput-timeline driver behind Figure 11.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use jnvm::{JnvmBuilder, RecoveryMode, RecoveryOptions, RecoveryReport};
use jnvm_heap::HeapConfig;
use jnvm_kvstore::CostModel;
use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};

use crate::bank::{register_tpcb, Bank, FsBank, JnvmBank, VolatileBank};

/// Which persistence design to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankKind {
    /// DRAM only; a restart begins from zeroed accounts.
    Volatile,
    /// File-per-account over the simulated DAX file system.
    Fs,
    /// J-NVM with failure-atomic transfers, full recovery GC.
    Jpfa,
    /// J-PFA with the header-scan-only recovery (J-PFA-nogc).
    JpfaNogc,
}

impl BankKind {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            BankKind::Volatile => "volatile",
            BankKind::Fs => "fs",
            BankKind::Jpfa => "jpfa",
            BankKind::JpfaNogc => "jpfa-nogc",
        }
    }
}

/// Timeline parameters (defaults are the 1/100-scaled paper setup).
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Accounts (paper: 10 M).
    pub accounts: u64,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Load-injector threads.
    pub threads: usize,
    /// Worker threads of the recovery pass at restart (replay, mark,
    /// sweep). `1` is the sequential pass.
    pub recovery_threads: usize,
    /// Seconds of load before the crash (paper: 60 s).
    pub run_before: Duration,
    /// Seconds of load after recovery.
    pub run_after: Duration,
    /// Throughput bucket width.
    pub bucket: Duration,
    /// Persistent pool size for the J-NVM/FS designs.
    pub pool_bytes: u64,
    /// Fraction of accounts the FS design eagerly reloads at restart
    /// (Infinispan reloads its 10 % cache).
    pub fs_preload_ratio: f64,
    /// Software cost model for the FS design.
    pub costs: CostModel,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            accounts: 100_000,
            initial_balance: 100,
            threads: 4,
            recovery_threads: 1,
            run_before: Duration::from_secs(2),
            run_after: Duration::from_secs(2),
            bucket: Duration::from_millis(250),
            pool_bytes: 1 << 30,
            fs_preload_ratio: 0.1,
            costs: CostModel::default_model(),
        }
    }
}

/// What the driver measured.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// Design under test.
    pub kind: BankKind,
    /// `(bucket start seconds, transfers completed)`.
    pub buckets: Vec<(f64, u64)>,
    /// When the crash was injected (seconds from start).
    pub crash_at: f64,
    /// Restart duration: crash to first served request (seconds).
    pub restart_duration: f64,
    /// Mean throughput before the crash (ops/s).
    pub nominal_before: f64,
    /// Mean throughput after recovery (ops/s).
    pub nominal_after: f64,
    /// Recovery report of the J-NVM designs.
    pub recovery: Option<RecoveryReport>,
    /// Whether the sum of balances was conserved across the crash
    /// (trivially false for Volatile, which restarts from zero).
    pub money_conserved: bool,
}

#[allow(clippy::too_many_arguments)]
fn drive(
    bank: &Arc<dyn Bank>,
    accounts: u64,
    threads: usize,
    duration: Duration,
    start: Instant,
    bucket: Duration,
    buckets: &[AtomicU64],
    seed: u64,
) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..threads {
            let bank = Arc::clone(bank);
            let stop = &stop;
            let buckets = &*buckets;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ t as u64);
                while !stop.load(Ordering::Relaxed) {
                    let a = rng.random_range(0..accounts);
                    let mut b = rng.random_range(0..accounts);
                    if b == a {
                        b = (b + 1) % accounts;
                    }
                    bank.transfer(a, b, 1);
                    let idx = (start.elapsed().as_nanos() / bucket.as_nanos()) as usize;
                    if idx < buckets.len() {
                        buckets[idx].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
}

/// Run the Figure 11 experiment for one design.
pub fn run_timeline(kind: BankKind, cfg: &TimelineConfig) -> TimelineReport {
    let bucket_count = ((cfg.run_before + cfg.run_after + Duration::from_secs(120)).as_nanos()
        / cfg.bucket.as_nanos()) as usize;
    let buckets: Vec<AtomicU64> = (0..bucket_count).map(|_| AtomicU64::new(0)).collect();

    // Build the initial bank.
    let pmem = match kind {
        BankKind::Volatile => None,
        BankKind::Fs => Some(Pmem::new(PmemConfig::perf(cfg.pool_bytes))),
        BankKind::Jpfa | BankKind::JpfaNogc => Some(Pmem::new(PmemConfig::perf(cfg.pool_bytes))),
    };
    let bank: Arc<dyn Bank> = match kind {
        BankKind::Volatile => Arc::new(VolatileBank::new(cfg.accounts, cfg.initial_balance)),
        BankKind::Fs => Arc::new(FsBank::create(
            Arc::clone(pmem.as_ref().expect("fs has a pool")),
            cfg.accounts,
            cfg.initial_balance,
            cfg.costs,
        )),
        BankKind::Jpfa | BankKind::JpfaNogc => {
            let rt = register_tpcb(JnvmBuilder::new())
                .create(
                    Arc::clone(pmem.as_ref().expect("jnvm has a pool")),
                    HeapConfig::default(),
                )
                .expect("pool creation");
            Arc::new(JnvmBank::create(&rt, cfg.accounts, cfg.initial_balance).expect("bank"))
        }
    };

    let start = Instant::now();
    drive(
        &bank,
        cfg.accounts,
        cfg.threads,
        cfg.run_before,
        start,
        cfg.bucket,
        &buckets,
        7,
    );
    let crash_at = start.elapsed().as_secs_f64();
    drop(bank);

    // Crash: the device loses unflushed lines (Performance pools have no
    // crash simulation — the volatile structures being dropped and rebuilt
    // is the restart under test; CrashSim-mode atomicity is covered by the
    // unit/integration tests).
    if let Some(p) = &pmem {
        let _ = p.crash(&CrashPolicy::strict());
    }

    // Restart (timed).
    let restart_begin = Instant::now();
    let mut recovery = None;
    let bank2: Arc<dyn Bank> = match kind {
        BankKind::Volatile => Arc::new(VolatileBank::new(cfg.accounts, 0)),
        BankKind::Fs => Arc::new(FsBank::mount(
            Arc::clone(pmem.as_ref().expect("fs has a pool")),
            cfg.accounts,
            (cfg.accounts as f64 * cfg.fs_preload_ratio) as u64,
            cfg.costs,
        )),
        BankKind::Jpfa | BankKind::JpfaNogc => {
            let mode = if kind == BankKind::JpfaNogc {
                RecoveryMode::HeaderScanOnly
            } else {
                RecoveryMode::Full
            };
            let (rt, report) = register_tpcb(JnvmBuilder::new())
                .open_with_options(
                    Arc::clone(pmem.as_ref().expect("jnvm has a pool")),
                    RecoveryOptions { mode, threads: cfg.recovery_threads },
                )
                .expect("recovery");
            recovery = Some(report);
            Arc::new(JnvmBank::open(&rt).expect("bank reopen"))
        }
    };
    let restart_duration = restart_begin.elapsed().as_secs_f64();

    let money_conserved =
        bank2.total() == cfg.accounts as i64 * cfg.initial_balance && kind != BankKind::Volatile;

    drive(
        &bank2,
        cfg.accounts,
        cfg.threads,
        cfg.run_after,
        start,
        cfg.bucket,
        &buckets,
        13,
    );

    // Summaries.
    let bucket_s = cfg.bucket.as_secs_f64();
    let series: Vec<(f64, u64)> = buckets
        .iter()
        .enumerate()
        .map(|(i, b)| (i as f64 * bucket_s, b.load(Ordering::Relaxed)))
        .take_while(|(t, _)| *t < start.elapsed().as_secs_f64())
        .collect();
    let before: Vec<u64> = series
        .iter()
        .filter(|(t, _)| *t + bucket_s <= crash_at)
        .map(|(_, n)| *n)
        .collect();
    let after: Vec<u64> = series
        .iter()
        .filter(|(t, _)| *t >= crash_at + restart_duration + bucket_s)
        .map(|(_, n)| *n)
        .collect();
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64 / bucket_s
        }
    };
    TimelineReport {
        kind,
        buckets: series,
        crash_at,
        restart_duration,
        nominal_before: mean(&before),
        nominal_after: mean(&after),
        recovery,
        money_conserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TimelineConfig {
        TimelineConfig {
            accounts: 1000,
            threads: 2,
            run_before: Duration::from_millis(300),
            run_after: Duration::from_millis(300),
            bucket: Duration::from_millis(50),
            pool_bytes: 64 << 20,
            costs: CostModel::free(),
            ..TimelineConfig::default()
        }
    }

    #[test]
    fn volatile_timeline_restarts_from_zero() {
        let r = run_timeline(BankKind::Volatile, &tiny());
        assert!(r.nominal_before > 0.0);
        assert!(!r.money_conserved, "volatile loses all balances");
        assert!(r.restart_duration < 1.0);
    }

    #[test]
    fn jpfa_timeline_conserves_money_and_recovers() {
        let r = run_timeline(BankKind::Jpfa, &tiny());
        assert!(r.nominal_before > 0.0, "server served before crash");
        assert!(r.money_conserved, "failure-atomic transfers conserve money");
        assert!(r.recovery.is_some());
        assert!(r.nominal_after > 0.0, "server served after recovery");
    }

    #[test]
    fn jpfa_nogc_recovers_faster_shape() {
        let full = run_timeline(BankKind::Jpfa, &tiny());
        let nogc = run_timeline(BankKind::JpfaNogc, &tiny());
        assert!(nogc.money_conserved);
        let full_rec = full.recovery.unwrap();
        let nogc_rec = nogc.recovery.unwrap();
        assert!(full_rec.mode_full);
        assert!(!nogc_rec.mode_full);
    }

    #[test]
    fn jpfa_timeline_with_parallel_recovery_conserves_money() {
        let cfg = TimelineConfig { recovery_threads: 4, ..tiny() };
        let r = run_timeline(BankKind::Jpfa, &cfg);
        assert!(r.money_conserved, "parallel recovery must not tear transfers");
        assert_eq!(r.recovery.expect("recovery ran").threads, 4);
    }

    #[test]
    fn fs_timeline_conserves_money() {
        let r = run_timeline(BankKind::Fs, &tiny());
        assert!(r.money_conserved);
        assert!(r.nominal_before > 0.0);
    }
}
