//! The server: acceptor + per-connection handler threads + one group
//! committer **per pool shard**, each shard optionally backed by a
//! replica set (`jnvm-repl`).
//!
//! ## Sharded write path and the ack barrier
//!
//! The server runs over N independent pool shards (grid + backend +
//! device each; see [`jnvm_kvstore::ShardedKv`]). Connection handlers
//! never touch the persistent devices for writes. They decode ops, route
//! each by key hash ([`jnvm_kvstore::shard_for_key`]) to its shard's
//! bounded queue (backpressure: producers block while that queue is full)
//! and hold a *ticket* per op. Each shard's committer drains up to
//! `batch_max` ops from its own queue, runs
//! [`jnvm_kvstore::commit_writes`] against its own backend (group commit:
//! 3 fences per group, not per op) and resolves the batch's tickets only
//! after that call returns — i.e. after the group durability point *and*
//! the apply phase, so a subsequent GET on the same connection reads its
//! own writes. K writes spread over N shards pay N *concurrent* fence
//! passes instead of serializing behind one committer. Handlers release
//! replies strictly in request order: writes when their ticket resolves,
//! reads executed inline after every earlier write on the connection has
//! been acked.
//!
//! ## Replication: acked ⇒ durable on a surviving replica
//!
//! With `--replicas 2` each shard owns a [`jnvm::ReplicaSet`] of two
//! full stacks on independent devices. The committer streams each drained
//! batch to the shard's backup endpoint (`REPL_APPLY` frames over a
//! loopback link; see [`crate::repl`]) **before** committing on the
//! primary, then waits for the backup's cumulative `REPL_ACK` before
//! resolving tickets. The backup applies concurrently with the primary's
//! commit, so the added latency is `max` of the two passes, not their
//! sum — and send-before-commit means the backup's applied state is
//! always a superset-prefix of the primary's, which is what makes
//! failover safe at *every* primary crash point.
//!
//! ## Crash behaviour: promote, degrade, or die
//!
//! Every thread that can touch a device runs under
//! [`jnvm_pmem::catch_crash`]. When the fault-injection engine fires on a
//! replicated shard's **primary**, that shard's committer fails the
//! in-flight batch and everything queued (none of it was acked), quiesces
//! the replication link (close + join the endpoint thread — the
//! exclusive-writer handoff), **promotes** the backup in place and keeps
//! serving; `acked_after_promotion` counts the proof of life. When the
//! **backup** dies (its endpoint stops acking), the committer degrades to
//! solo mode and keeps acking off the primary alone. Only a crash with no
//! redundancy left kills the shard, PR 6 style: writes are answered
//! [`Reply::Err`] at enqueue and GETs routed to it answer `Err` too.
//! Writes that missed their durability point are never answered `Ok`.
//! The kill-during-traffic torture checks exactly these contracts.
//!
//! ## Write accounting
//!
//! `acked`/`nacked`/`failed` are counted when the committer *resolves*
//! each ticket (not when the handler flushes the reply — a send failure
//! must not lose counts), `queued` when a ticket is created, and
//! `rejected` when enqueue refuses (dead shard / shutdown). After a full
//! shutdown every queued ticket is drained and resolved, so
//! `queued == acked + nacked + failed` — the graceful-shutdown
//! regression pins this.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jnvm::ReplicaSet;
use jnvm_kvstore::{
    commit_writes, encode_record, shard_for_key, Backend, DataGrid, JnvmBackend, ReplLag, WriteOp,
};
use jnvm_pmem::{catch_crash, hush_panics, thread_charged_ns, Pmem, StatsSnapshot};
use jnvm_ycsb::Histogram;

use crate::proto::{
    check_hello, encode_repl_apply, encode_reply, hello_frame, parse_frame, parse_reply,
    ParseOutcome, Reply, Request,
};
use crate::repl::start_backup_endpoint;

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum ops a committer drains into one batch.
    pub batch_max: usize,
    /// Per-shard bounded-queue capacity; producers block (backpressure)
    /// beyond it.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_max: 64,
            queue_cap: 256,
        }
    }
}

/// One replica's serving surface (one full stack on its own device).
/// `be` must be the backend `grid` was built over, and `pmem` the device
/// both live on; all writes to the backend must flow through this server
/// while it runs (the group committer's exclusive-writer contract, per
/// shard — and per replica, via the endpoint handoff).
pub struct ShardHandle {
    /// The replica's grid.
    pub grid: Arc<DataGrid>,
    /// The replica's backend.
    pub be: Arc<JnvmBackend>,
    /// The replica's device.
    pub pmem: Arc<Pmem>,
}

/// Counters the server exports (also rendered by STATS).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Writes acknowledged `Ok` — each one durable before its reply left
    /// (on *every* live replica of its shard).
    pub acked_writes: u64,
    /// Writes answered `NotFound` (absent SETF/DEL target).
    pub nacked_writes: u64,
    /// Writes ticketed but failed by a crash before their durability
    /// point (in-flight batch or queue-drain on the promotion/death path).
    pub failed_writes: u64,
    /// Writes that got a ticket at all (acked + nacked + failed once the
    /// queues drain — the graceful-shutdown invariant).
    pub queued_writes: u64,
    /// Writes refused at enqueue (dead shard, or server shutting down).
    pub rejected_writes: u64,
    /// Commit groups issued (3 ordering fences each on the FA path).
    pub groups: u64,
    /// Batches drained across all committers.
    pub batches: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Pool shards the server runs over.
    pub shards: u64,
    /// Replica stacks across all shards.
    pub replicas: u64,
    /// Shards whose write path died with no redundancy left.
    pub dead_shards: u64,
    /// Backups promoted to primary after a primary crash.
    pub promotions: u64,
    /// Replicated shards running solo (backup lost, or post-promotion).
    pub degraded_shards: u64,
    /// Writes acked by a shard that has failed over — the liveness
    /// witness of promotion.
    pub acked_after_promotion: u64,
    /// Commit groups handed to backup endpoints.
    pub repl_sent: u64,
    /// Commit groups the backups have made durable.
    pub repl_acked: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TicketState {
    Waiting,
    /// Committed and durable; `true` = applied, `false` = target absent.
    Done(bool),
    /// The shard died before this op's durability point.
    Failed,
}

struct Ticket {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Mutex::new(TicketState::Waiting),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, s: TicketState) {
        *self.state.lock().expect("ticket lock") = s;
        self.cv.notify_all();
    }

    /// Block until resolved. The shard's committer resolves every ticket
    /// it ever dequeues (including on the crash path), so the timeout
    /// loop is only a backstop against the shard dying between enqueue
    /// and dequeue.
    fn wait(&self, shard: &ShardState) -> TicketState {
        let mut st = self.state.lock().expect("ticket lock");
        loop {
            match *st {
                TicketState::Waiting => {}
                resolved => return resolved,
            }
            if shard.dead.load(Ordering::Acquire) {
                return TicketState::Failed;
            }
            let (g, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .expect("ticket wait");
            st = g;
        }
    }
}

struct Pending {
    op: WriteOp,
    ticket: Arc<Ticket>,
    /// When the op entered its shard queue — the base of the commit-ack
    /// latency recorded into the obs registry at resolution.
    enqueued: Instant,
}

/// One replica's stack inside a shard's [`ReplicaSet`].
struct ReplicaUnit {
    grid: Arc<DataGrid>,
    be: Arc<JnvmBackend>,
    pmem: Arc<Pmem>,
}

/// Per-shard serving state: the replica set plus the committer's queue,
/// replication link and crash flag. Each shard's committer owns exactly
/// this shard — the footprint-disjointness the FA group commit asserts
/// holds trivially across shards because their devices are disjoint.
struct ShardState {
    set: ReplicaSet<ReplicaUnit>,
    /// Committer-side replication link to this shard's backup endpoint.
    /// `None` once solo (never replicated, degraded, or promoted).
    link: Mutex<Option<TcpStream>>,
    /// The backup endpoint thread; joined when the link closes — that
    /// join is the exclusive-writer handoff of the backup's stack.
    endpoint: Mutex<Option<JoinHandle<()>>>,
    /// Replication-lag watermark (groups sent vs. backup durability point).
    lag: ReplLag,
    queue: Mutex<VecDeque<Pending>>,
    /// The shard's committer waits here for work.
    queue_cv: Condvar,
    /// Producers wait here for queue space.
    space_cv: Condvar,
    /// This shard's write path died with no replica left to serve.
    dead: AtomicBool,
    groups: AtomicU64,
    batches: AtomicU64,
    /// Modeled device nanoseconds charged to this shard's committer
    /// thread ([`jnvm_pmem::thread_charged_ns`]), updated after every
    /// batch — the commit critical path of this shard.
    charged_ns: AtomicU64,
}

impl ShardState {
    /// The replica currently serving reads and primary commits.
    fn active(&self) -> &ReplicaUnit {
        self.set.active()
    }
}

struct Shared {
    cfg: ServerConfig,
    shards: Vec<ShardState>,
    shutdown: AtomicBool,
    acked_writes: AtomicU64,
    nacked_writes: AtomicU64,
    failed_writes: AtomicU64,
    queued_writes: AtomicU64,
    rejected_writes: AtomicU64,
    acked_after_promotion: AtomicU64,
    connections: AtomicU64,
    /// Per-connection write ack-latency histograms, merged at conn close.
    latency: Mutex<Histogram>,
}

impl Shared {
    fn route(&self, key: &str) -> usize {
        shard_for_key(key, self.shards.len())
    }

    fn all_dead(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.dead.load(Ordering::Acquire))
    }
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// listener thread until process exit; tests always call `shutdown`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    committers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Single-shard convenience wrapper around [`Server::start_sharded`]
    /// — the degenerate N=1 configuration every pre-sharding caller used.
    pub fn start(
        grid: Arc<DataGrid>,
        be: Arc<JnvmBackend>,
        pmem: Arc<Pmem>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_sharded(vec![ShardHandle { grid, be, pmem }], cfg)
    }

    /// Unreplicated sharding: every shard is a singleton replica set.
    pub fn start_sharded(
        handles: Vec<ShardHandle>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_replicated(handles.into_iter().map(|h| vec![h]).collect(), cfg)
    }

    /// Bind `127.0.0.1:0` (ephemeral port) and start serving the given
    /// pool shards, spawning one group committer per shard. Keys route to
    /// shards by [`shard_for_key`]; the outer vec must be in shard order
    /// (index `i` serves routing bucket `i`). Each inner vec is that
    /// shard's replica set: `[primary]` for solo, `[primary, backup]`
    /// for replicated (a backup endpoint thread is spawned per backup
    /// and the committer's link connected before serving starts).
    pub fn start_replicated(
        shards: Vec<Vec<ShardHandle>>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(!shards.is_empty(), "the server needs at least one shard");
        assert!(
            shards.iter().all(|r| (1..=2).contains(&r.len())),
            "each shard takes one primary and at most one backup"
        );
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut states: Vec<ShardState> = Vec::with_capacity(shards.len());
        for replicas in shards {
            let mut link = None;
            let mut endpoint = None;
            if let Some(backup) = replicas.get(1) {
                let (stream, handle) =
                    start_backup_endpoint(Arc::clone(&backup.grid), Arc::clone(&backup.be))?;
                link = Some(stream);
                endpoint = Some(handle);
            }
            let units: Vec<ReplicaUnit> = replicas
                .into_iter()
                .map(|h| ReplicaUnit {
                    grid: h.grid,
                    be: h.be,
                    pmem: h.pmem,
                })
                .collect();
            states.push(ShardState {
                set: ReplicaSet::new(units),
                link: Mutex::new(link),
                endpoint: Mutex::new(endpoint),
                lag: ReplLag::new(),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                space_cv: Condvar::new(),
                dead: AtomicBool::new(false),
                groups: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                charged_ns: AtomicU64::new(0),
            });
        }
        let shared = Arc::new(Shared {
            cfg,
            shards: states,
            shutdown: AtomicBool::new(false),
            acked_writes: AtomicU64::new(0),
            nacked_writes: AtomicU64::new(0),
            failed_writes: AtomicU64::new(0),
            queued_writes: AtomicU64::new(0),
            rejected_writes: AtomicU64::new(0),
            acked_after_promotion: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let committers = (0..shared.shards.len())
            .map(|si| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || committer_loop(&shared, si))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || acceptor_loop(listener, &shared, &handlers))
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            committers,
            handlers,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of pool shards served.
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// True after a (simulated) crash killed **any** shard's write path
    /// with no replica left to promote.
    pub fn is_dead(&self) -> bool {
        self.shared
            .shards
            .iter()
            .any(|s| s.dead.load(Ordering::Acquire))
    }

    /// True once shutdown was requested (SHUTDOWN frame or [`Server::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        snapshot(&self.shared)
    }

    /// Modeled device nanoseconds charged to each shard's committer so
    /// far, in shard order. The max over shards is the sharded engine's
    /// commit critical path (all committers run concurrently).
    pub fn committer_charged_ns(&self) -> Vec<u64> {
        self.shared
            .shards
            .iter()
            .map(|s| s.charged_ns.load(Ordering::Acquire))
            .collect()
    }

    /// Merged write ack-latency histogram of all *closed* connections.
    pub fn latency(&self) -> Histogram {
        self.shared.latency.lock().expect("latency lock").clone()
    }

    /// Stop accepting, drain queued writes (each queued ticket is acked
    /// or failed, never silently dropped), join every thread — committers
    /// close their replication links on exit, which shuts the backup
    /// endpoints down in turn.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared);
        // Unblock the acceptor's blocking accept(). No hello follows: the
        // handler's hello-read loop exits on the shutdown flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.handlers.lock().expect("handlers lock").drain(..) {
            let _ = h.join();
        }
        for c in self.committers.drain(..) {
            let _ = c.join();
        }
        // Committers quiesce their own links; this catches endpoints whose
        // committer died before the link existed (defensive only).
        for s in &self.shared.shards {
            quiesce_link(s);
        }
    }
}

fn request_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    // Per shard, under its queue lock so the committer's empty-queue exit
    // check and the producers' reject check see a consistent flag.
    for shard in &shared.shards {
        let _q = shard.queue.lock().expect("queue lock");
        shard.queue_cv.notify_all();
        shard.space_cv.notify_all();
    }
}

fn snapshot(shared: &Shared) -> ServerStats {
    ServerStats {
        acked_writes: shared.acked_writes.load(Ordering::Relaxed),
        nacked_writes: shared.nacked_writes.load(Ordering::Relaxed),
        failed_writes: shared.failed_writes.load(Ordering::Relaxed),
        queued_writes: shared.queued_writes.load(Ordering::Relaxed),
        rejected_writes: shared.rejected_writes.load(Ordering::Relaxed),
        groups: shared
            .shards
            .iter()
            .map(|s| s.groups.load(Ordering::Relaxed))
            .sum(),
        batches: shared
            .shards
            .iter()
            .map(|s| s.batches.load(Ordering::Relaxed))
            .sum(),
        connections: shared.connections.load(Ordering::Relaxed),
        shards: shared.shards.len() as u64,
        replicas: shared.shards.iter().map(|s| s.set.len() as u64).sum(),
        dead_shards: shared
            .shards
            .iter()
            .filter(|s| s.dead.load(Ordering::Acquire))
            .count() as u64,
        promotions: shared.shards.iter().map(|s| s.set.promotions()).sum(),
        // Singleton sets are born degraded; only count lost redundancy.
        degraded_shards: shared
            .shards
            .iter()
            .filter(|s| s.set.len() >= 2 && s.set.is_degraded())
            .count() as u64,
        acked_after_promotion: shared.acked_after_promotion.load(Ordering::Relaxed),
        repl_sent: shared.shards.iter().map(|s| s.lag.sent()).sum(),
        repl_acked: shared.shards.iter().map(|s| s.lag.acked()).sum(),
    }
}

/// Run a device read, treating *any* panic as "this replica is crashing".
///
/// A GET racing the exact instant a crash point fires can observe the
/// committer's abandoned in-DRAM state — mid-rehash maps, half-published
/// entries — and trip a data-structure invariant panic rather than a
/// clean `CrashInjected`. Both mean the same thing on the read path: the
/// replica is going down and the request must fail (the next read after
/// failover lands on the survivor). The catch is a plain `catch_unwind`
/// so the payload type does not matter, and the thread is hushed so the
/// expected unwind does not print a backtrace under the torture hook.
fn read_in_crash_window<R>(f: impl FnOnce() -> R) -> Option<R> {
    let _hush = hush_panics();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).ok()
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let h = std::thread::spawn(move || {
            // Handlers wrap their own device reads in catch_crash and
            // answer Err, so a crash should never unwind to here — this
            // catch is a conservative backstop against a non-crash panic
            // stranding the server. A crash that does reach it cannot be
            // attributed to one shard: mark them all dead.
            if catch_crash(|| handle_conn(&shared, stream)).is_err() {
                for s in &shared.shards {
                    s.dead.store(true, Ordering::Release);
                }
            }
        });
        handlers.lock().expect("handlers lock").push(h);
    }
}

/// Close the committer-side replication link and join the backup endpoint
/// thread. TCP delivers everything written before the close, so the join
/// returns only after the endpoint has applied every streamed group and
/// exited — after this, the caller is the backup stack's only writer.
/// Idempotent; safe whether the endpoint exited on its own (backup crash)
/// or is still draining.
fn quiesce_link(shard: &ShardState) {
    drop(shard.link.lock().expect("link lock").take());
    if let Some(h) = shard.endpoint.lock().expect("endpoint lock").take() {
        let _ = h.join();
    }
}

/// Resolve a committed ticket and do the write accounting. Counting at
/// resolution (not at reply flush) keeps the counters exact even when the
/// client connection died before its replies could be sent.
fn resolve_done(shared: &Shared, shard: &ShardState, p: &Pending, ok: bool) {
    if ok {
        shared.acked_writes.fetch_add(1, Ordering::Relaxed);
        // Exactly one registry sample per acked write, recorded at the
        // same place the counter moves — the obs-invariant suite holds
        // `acked_writes == hist("commit-ack").count` to the digit.
        jnvm_obs::record_latency("commit-ack", p.enqueued.elapsed().as_nanos() as u64);
        if shard.set.promotions() > 0 {
            shared.acked_after_promotion.fetch_add(1, Ordering::Relaxed);
        }
    } else {
        shared.nacked_writes.fetch_add(1, Ordering::Relaxed);
    }
    p.ticket.resolve(TicketState::Done(ok));
}

fn resolve_failed(shared: &Shared, p: &Pending) {
    shared.failed_writes.fetch_add(1, Ordering::Relaxed);
    p.ticket.resolve(TicketState::Failed);
}

/// Fail the in-flight batch and everything queued behind it — the crash
/// path's "nothing here was acked" sweep. Every ticket is resolved; none
/// is silently dropped.
fn fail_batch_and_queue(shared: &Shared, shard: &ShardState, batch: &[Pending]) {
    for p in batch {
        resolve_failed(shared, p);
    }
    let mut q = shard.queue.lock().expect("queue lock");
    for p in q.drain(..) {
        resolve_failed(shared, &p);
    }
    shard.space_cv.notify_all();
}

/// Stream the batch to the shard's backup endpoint, chunked into
/// `REPL_APPLY` frames. Returns the last sequence number to await, or
/// `None` when the shard runs solo. A send failure means the backup is
/// gone: degrade in place and commit solo from now on.
fn stream_to_backup(shard: &ShardState, ops: &[WriteOp]) -> Option<u64> {
    if shard.set.is_degraded() {
        return None;
    }
    let mut guard = shard.link.lock().expect("link lock");
    let link = guard.as_mut()?;
    let frames = encode_repl_apply(ops, || shard.lag.next_seq());
    let last_seq = frames.last().map(|(_, seq)| *seq)?;
    for (frame, _) in &frames {
        if link.write_all(frame).is_err() {
            drop(guard);
            degrade_backup(shard);
            return None;
        }
    }
    Some(last_seq)
}

/// Wait for the backup's durability point to reach `target`. Acks are
/// cumulative, so one ack may cover several chunks. Returns `false` on
/// link EOF / error / timeout — the degrade signal.
fn wait_for_backup(shard: &ShardState, target: u64) -> bool {
    let mut guard = shard.link.lock().expect("link lock");
    let Some(link) = guard.as_mut() else {
        return false;
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    while shard.lag.acked() < target {
        // Drain every complete ack already buffered.
        let mut progressed = true;
        while progressed {
            match parse_reply(&buf) {
                Ok(Some((Reply::ReplAck(seq), n))) => {
                    shard.lag.record_acked(seq);
                    buf.drain(..n);
                }
                Ok(Some(_)) | Err(_) => return false,
                Ok(None) => progressed = false,
            }
        }
        if shard.lag.acked() >= target {
            break;
        }
        if Instant::now() >= deadline {
            return false;
        }
        match link.read(&mut tmp) {
            Ok(0) => return false,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return false,
        }
    }
    true
}

/// Backup-side failure: drop the link, join the endpoint, mark the set
/// degraded. The primary keeps serving solo — nothing acked is lost,
/// because acks were always gated on the *primary's* durability too.
fn degrade_backup(shard: &ShardState) {
    quiesce_link(shard);
    shard.set.degrade();
}

fn committer_loop(shared: &Arc<Shared>, si: usize) {
    let shard = &shared.shards[si];
    loop {
        let batch: Vec<Pending> = {
            let mut q = shard.queue.lock().expect("queue lock");
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) || shard.dead.load(Ordering::Acquire)
                {
                    // Empty queue + shutdown/death: every ticket this
                    // shard ever accepted has been resolved. Quiesce the
                    // replication link so the backup endpoint exits too.
                    drop(q);
                    quiesce_link(shard);
                    return;
                }
                let (g, _) = shard
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("queue wait");
                q = g;
            }
            let n = q.len().min(shared.cfg.batch_max);
            let batch: Vec<Pending> = q.drain(..n).collect();
            shard.space_cv.notify_all();
            batch
        };
        let ops: Vec<WriteOp> = batch.iter().map(|p| p.op.clone()).collect();
        debug_assert!(
            ops.iter().all(|op| shared.route(op.key()) == si),
            "op routed to the wrong shard's committer"
        );
        // Hand the group to the backup *before* the primary's commit: the
        // backup applies concurrently (latency = max of the two passes)
        // and its state stays a superset-prefix of the primary's at every
        // primary crash point.
        let obs_send = jnvm_obs::span_begin();
        let ack_target = stream_to_backup(shard, &ops);
        if ack_target.is_some() {
            jnvm_obs::span_end(jnvm_obs::SpanKind::ReplSend, obs_send);
        }
        let active = shard.active();
        match catch_crash(|| commit_writes(&active.grid, &active.be, &ops)) {
            Ok(out) => {
                if let Some(target) = ack_target {
                    let obs_ack = jnvm_obs::span_begin();
                    let backup_ok = wait_for_backup(shard, target);
                    jnvm_obs::span_end(jnvm_obs::SpanKind::ReplAck, obs_ack);
                    if !backup_ok {
                        // Backup died mid-batch. The primary already
                        // holds the group durably — ack off it alone.
                        degrade_backup(shard);
                    }
                }
                // The group durability point (on every live replica) is
                // behind us: release acks.
                shard.groups.fetch_add(out.groups as u64, Ordering::Relaxed);
                shard.batches.fetch_add(1, Ordering::Relaxed);
                shard.charged_ns.store(thread_charged_ns(), Ordering::Release);
                for (p, ok) in batch.iter().zip(out.results.iter()) {
                    resolve_done(shared, shard, p, *ok);
                }
            }
            Err(_) => {
                // Power failed mid-batch on the active device: nothing
                // here reached its durability point as a group — refuse
                // to ack any of it.
                fail_batch_and_queue(shared, shard, &batch);
                if shard.set.backup().is_some() {
                    // Failover: quiesce the link (the endpoint finishes
                    // applying everything streamed, then exits; the join
                    // makes this committer the backup's only writer),
                    // promote, keep serving. The frozen primary is never
                    // touched again.
                    quiesce_link(shard);
                    shard.set.promote();
                    continue;
                }
                // No redundancy left: take only this shard down. The
                // other shards' committers never touch this device and
                // keep committing.
                shard.dead.store(true, Ordering::Release);
                quiesce_link(shard);
                return;
            }
        }
    }
}

/// Enqueue a write on its shard, blocking while that shard's queue is
/// full (backpressure). Returns the ticket and the shard index.
fn enqueue(shared: &Shared, op: WriteOp) -> Result<(Arc<Ticket>, usize), &'static str> {
    let si = shared.route(op.key());
    let shard = &shared.shards[si];
    let mut q = shard.queue.lock().expect("queue lock");
    loop {
        if shard.dead.load(Ordering::Acquire) {
            return Err("shard crashed");
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return Err("server shutting down");
        }
        if q.len() < shared.cfg.queue_cap {
            break;
        }
        let (g, _) = shard
            .space_cv
            .wait_timeout(q, Duration::from_millis(50))
            .expect("space wait");
        q = g;
    }
    let ticket = Arc::new(Ticket::new());
    q.push_back(Pending {
        op,
        ticket: Arc::clone(&ticket),
        enqueued: Instant::now(),
    });
    shared.queued_writes.fetch_add(1, Ordering::Relaxed);
    shard.queue_cv.notify_one();
    Ok((ticket, si))
}

fn send(stream: &mut TcpStream, reply: &Reply) -> bool {
    stream.write_all(&encode_reply(reply)).is_ok()
}

/// Release replies for every outstanding write, in request order. A
/// failed ticket (its shard crashed) answers `Err` but does **not** end
/// the connection: the other shards are still serving, and per-shard
/// failure isolation is the point of the sharded engine. Returns `false`
/// only when the connection itself is done for. Counters are NOT touched
/// here — the committer counts at ticket resolution, so a dead client
/// socket cannot skew the accounting.
fn flush_outstanding(
    shared: &Shared,
    outstanding: &mut VecDeque<(Arc<Ticket>, usize, Instant)>,
    stream: &mut TcpStream,
    hist: &mut Histogram,
) -> bool {
    while let Some((ticket, si, enqueued)) = outstanding.pop_front() {
        match ticket.wait(&shared.shards[si]) {
            TicketState::Done(true) => {
                hist.record(enqueued.elapsed().as_nanos() as u64);
                if !send(stream, &Reply::Ok) {
                    return false;
                }
            }
            TicketState::Done(false) => {
                if !send(stream, &Reply::NotFound) {
                    return false;
                }
            }
            TicketState::Waiting | TicketState::Failed => {
                if !send(stream, &Reply::Err("write lost to a crash".into())) {
                    return false;
                }
            }
        }
    }
    true
}

/// Exchange the connect-time hello: send ours, read the client's two
/// bytes (tolerating the read timeout while waiting), check magic +
/// version. Returns `false` when the connection must close — mismatch,
/// socket error, or shutdown arriving before the client's hello (the
/// shutdown self-connect sends nothing, by design).
fn exchange_hello(shared: &Shared, stream: &mut TcpStream) -> bool {
    if stream.write_all(&hello_frame()).is_err() {
        return false;
    }
    let mut theirs = [0u8; 2];
    let mut got = 0;
    let deadline = Instant::now() + Duration::from_secs(5);
    while got < 2 {
        if shared.shutdown.load(Ordering::Acquire) || Instant::now() >= deadline {
            return false;
        }
        match stream.read(&mut theirs[got..]) {
            Ok(0) => return false,
            Ok(n) => got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return false,
        }
    }
    check_hello(theirs).is_ok()
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    if !exchange_hello(shared, &mut stream) {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut outstanding: VecDeque<(Arc<Ticket>, usize, Instant)> = VecDeque::new();
    let mut hist = Histogram::new();

    'conn: loop {
        // Drain every complete frame already buffered (pipelining).
        let mut consumed = 0;
        loop {
            let outcome = parse_frame(&buf[consumed..]);
            let (req, n) = match outcome {
                ParseOutcome::Incomplete => break,
                // Unparseable stream: cut the connection. Whatever writes
                // are already queued stay queued — they were never acked,
                // and the committers complete or fail them on their own.
                ParseOutcome::Malformed(_) => break 'conn,
                ParseOutcome::Frame(req, n) => (req, n),
            };
            consumed += n;
            let write_op = match req {
                Request::Set(rec) => Some(WriteOp::Set(rec)),
                Request::SetField { key, field, value } => {
                    Some(WriteOp::SetField { key, field, value })
                }
                Request::Del(key) => Some(WriteOp::Del(key)),
                other => {
                    // Non-write requests ride behind every earlier write on
                    // this connection: flush first so replies stay in
                    // request order and reads see the connection's own
                    // acked writes.
                    if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
                        break 'conn;
                    }
                    let shutdown = matches!(other, Request::Shutdown);
                    let reply = match other {
                        Request::Get(key) => {
                            let shard = &shared.shards[shared.route(&key)];
                            if shard.dead.load(Ordering::Acquire) {
                                // A dead shard's image may hold in-flight
                                // state only recovery may interpret:
                                // refuse reads rather than serve it.
                                Reply::Err("shard crashed".into())
                            } else {
                                // The active replica can freeze under us
                                // (crash fired, promotion not done yet):
                                // catch it here and answer Err — the next
                                // read after failover lands on the backup.
                                let unit = shard.active();
                                match read_in_crash_window(|| unit.grid.read(&key)) {
                                    Some(Some(rec)) => Reply::Value(encode_record(&rec)),
                                    Some(None) => Reply::NotFound,
                                    None => {
                                        Reply::Err("replica crashed; failing over".into())
                                    }
                                }
                            }
                        }
                        Request::Len => {
                            match read_in_crash_window(|| {
                                shared
                                    .shards
                                    .iter()
                                    .map(|s| s.active().grid.len() as u64)
                                    .sum::<u64>()
                            }) {
                                Some(total) => Reply::Value(total.to_le_bytes().to_vec()),
                                None => Reply::Err("replica crashed; failing over".into()),
                            }
                        }
                        Request::Stats => Reply::Value(stats_text(shared).into_bytes()),
                        Request::Trace => {
                            Reply::Value(jnvm_obs::trace_text(64).into_bytes())
                        }
                        Request::Metrics => Reply::Value(metrics_text(shared).into_bytes()),
                        Request::Shutdown => Reply::Ok,
                        // Replication frames belong on the committer ↔
                        // endpoint link, never on a client connection.
                        Request::ReplApply { .. } => {
                            Reply::Err("repl frame on a client connection".into())
                        }
                        Request::Invalid(m) => Reply::Err(m.to_string()),
                        Request::Set(_) | Request::SetField { .. } | Request::Del(_) => {
                            unreachable!("writes handled above")
                        }
                    };
                    if !send(&mut stream, &reply) {
                        break 'conn;
                    }
                    if shutdown {
                        request_shutdown(shared);
                        break 'conn;
                    }
                    continue;
                }
            };
            if let Some(op) = write_op {
                match enqueue(shared, op) {
                    Ok((ticket, si)) => outstanding.push_back((ticket, si, Instant::now())),
                    Err(msg) => {
                        if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
                            break 'conn;
                        }
                        // Refused before a ticket existed — rejected, not
                        // failed (it never entered the queued population).
                        shared.rejected_writes.fetch_add(1, Ordering::Relaxed);
                        if !send(&mut stream, &Reply::Err(msg.to_string())) {
                            break 'conn;
                        }
                    }
                }
            }
        }
        buf.drain(..consumed);

        // Everything parsed is enqueued; release the acks before blocking
        // on the socket again so single-window clients make progress.
        if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
            break 'conn;
        }

        match stream.read(&mut tmp) {
            Ok(0) => break 'conn,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.all_dead() || shared.shutdown.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }

    shared
        .latency
        .lock()
        .expect("latency lock")
        .merge(&hist);
}

/// The `METRICS` reply: the obs registry (per-label fence accounting,
/// span totals, latency histograms) plus the server's acked-write count —
/// the two sides of the "one commit-ack sample per acked write"
/// invariant, in one report.
fn metrics_text(shared: &Shared) -> String {
    let mut out = jnvm_obs::metrics_text();
    out.push_str(&format!(
        "acked_writes={}\n",
        shared.acked_writes.load(Ordering::Relaxed)
    ));
    out
}

fn stats_text(shared: &Shared) -> String {
    let s = snapshot(shared);
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut len = 0usize;
    let mut d = StatsSnapshot::default();
    for shard in &shared.shards {
        let unit = shard.active();
        let g = unit.grid.metrics();
        reads += g.reads.load(Ordering::Relaxed);
        writes += g.writes.load(Ordering::Relaxed);
        hits += g.hits.load(Ordering::Relaxed);
        misses += g.misses.load(Ordering::Relaxed);
        if !shard.dead.load(Ordering::Acquire) {
            len += unit.grid.len();
        }
        // Device stats absorb over every replica: replication's fence
        // cost is real and must show up in ordering_points_per_acked.
        for i in 0..shard.set.len() {
            d.absorb(&shard.set.get(i).pmem.stats());
        }
    }
    let lat = shared.latency.lock().expect("latency lock").summary();
    let acked = s.acked_writes.max(1);
    format!(
        "backend={}\nshards={}\nreplicas={}\ndead_shards={}\npromotions={}\ndegraded_shards={}\nlen={}\nreads={}\nwrites={}\nhits={}\nmisses={}\n\
         acked_writes={}\nnacked_writes={}\nfailed_writes={}\nqueued_writes={}\nrejected_writes={}\nacked_after_promotion={}\n\
         repl_sent={}\nrepl_acked={}\nrepl_lag={}\ngroups={}\nbatches={}\nconnections={}\n\
         pwbs={}\npfences={}\npsyncs={}\nordering_points={}\nordering_points_per_acked_write={:.4}\n\
         redundant_pwbs={}\nredundant_fences={}\nsan_violations={}\nack_latency={}\n",
        shared.shards[0].active().be.name(),
        s.shards,
        s.replicas,
        s.dead_shards,
        s.promotions,
        s.degraded_shards,
        len,
        reads,
        writes,
        hits,
        misses,
        s.acked_writes,
        s.nacked_writes,
        s.failed_writes,
        s.queued_writes,
        s.rejected_writes,
        s.acked_after_promotion,
        s.repl_sent,
        s.repl_acked,
        s.repl_sent.saturating_sub(s.repl_acked),
        s.groups,
        s.batches,
        s.connections,
        d.pwbs,
        d.pfences,
        d.psyncs,
        d.ordering_points(),
        d.ordering_points() as f64 / acked as f64,
        d.redundant_pwbs,
        d.redundant_fences,
        d.san_violations,
        lat.display_us(),
    )
}
